//! Scheme shootout on a generated Shakespeare play: storage footprint and
//! the nine Table 2 queries, side by side across Interval, Prime, Prefix-2.
//!
//! ```text
//! cargo run -p xmlprime --release --example scheme_shootout
//! ```

use std::time::Instant;
use xmlprime::datagen::shakespeare::{PlayParams, ShakespeareCorpus};
use xmlprime::prelude::*;
use xmlprime::query::queries::TEST_QUERIES;

fn main() {
    let corpus = ShakespeareCorpus::generate_with(2, 42, &PlayParams::hamlet_like());
    let tree = corpus.tree;
    let n = tree.elements().count();
    println!("corpus: {} plays, {n} element nodes\n", corpus.plays);

    let t = Instant::now();
    let interval = IntervalEvaluator::build(&tree);
    println!("built Interval  in {:>7.1?}", t.elapsed());
    let t = Instant::now();
    let prime = PrimeEvaluator::build(&tree, 5);
    println!("built Prime     in {:>7.1?} (includes the SC table)", t.elapsed());
    let t = Instant::now();
    let prefix2 = Prefix2Evaluator::build(&tree);
    println!("built Prefix-2  in {:>7.1?}\n", t.elapsed());

    println!("fixed-width storage (bits × rows):");
    for (name, bits) in [
        ("Interval", interval.fixed_width_bits()),
        ("Prime", prime.fixed_width_bits()),
        ("Prefix-2", prefix2.fixed_width_bits()),
    ] {
        println!("  {name:>9}: {:>10} bits ({:.1} bits/node)", bits, bits as f64 / n as f64);
    }

    println!("\nquery results (all schemes must agree):");
    println!("{:>3}  {:>8} {:>10} {:>10} {:>10}", "id", "rows", "interval", "prime", "prefix2");
    for q in &TEST_QUERIES {
        let mut cells: Vec<String> = Vec::new();
        let mut rows = 0usize;
        for ev in [&interval as &dyn Evaluator, &prime, &prefix2] {
            let t = Instant::now();
            let result = ev.eval_str(q.path);
            cells.push(format!("{:>8.2}ms", t.elapsed().as_secs_f64() * 1e3));
            if rows != 0 {
                assert_eq!(rows, result.len(), "{}: schemes disagree!", q.id);
            }
            rows = result.len();
        }
        println!("{:>3}  {rows:>8} {}", q.id, cells.join(" "));
    }
    println!("\nall three schemes returned identical result sets");
}
