//! Deep documents: tree decomposition and label-to-path decoding.
//!
//! Depth is the prime scheme's weak axis (Figure 5): every level multiplies
//! another prime into the label. This example shows the two §3.2 answers:
//!
//! 1. **Tree decomposition** — label subtrees independently and keep a
//!    labeled global tree; a 100-level document's labels shrink from
//!    hundreds of bits to a few dozen.
//! 2. And the flip side of path-product labels: a label *is* its ancestor
//!    path — factorizing it recovers the full root chain with no tree
//!    access (`xp_prime::path::decode_path`).
//!
//! ```text
//! cargo run -p xmlprime --example deep_documents
//! ```

use xmlprime::prelude::*;
use xmlprime::prime::decompose::DecomposedPrimeDoc;
use xmlprime::prime::path::decode_path;

fn main() {
    // A deep document: a 100-level section hierarchy.
    let mut tree = XmlTree::new("doc");
    let mut at = tree.root();
    for i in 0..100 {
        at = tree.append_element(at, format!("sec{i}"));
    }
    let deepest = at;

    // Flat labeling: the deepest label is a product of 100 primes.
    let flat = TopDownPrime::unoptimized().label(&tree);
    println!("flat labeling:       max label {:>4} bits", flat.size_stats().max_bits);

    // Decomposed labeling at several cut depths.
    for cut in [4usize, 8, 16] {
        let doc = DecomposedPrimeDoc::build(&tree, cut);
        println!(
            "decomposed (cut {cut:>2}): max label {:>4} bits across {} subtrees",
            doc.max_label_bits(),
            doc.subtree_count(),
        );
        // The cross-subtree ancestor test still answers from labels alone.
        assert!(doc.is_ancestor(tree.root(), deepest));
        assert!(!doc.is_ancestor(deepest, tree.root()));
    }

    // Path decoding on a shallow-but-bushy document: one integer holds the
    // whole ancestry.
    let mut bush = XmlTree::new("library");
    let shelf = bush.append_element(bush.root(), "shelf");
    let book = bush.append_element(shelf, "book");
    let chapter = bush.append_element(book, "chapter");
    bush.append_element(bush.root(), "catalogue");
    let ordered = OrderedPrimeDoc::build(&bush, 5).unwrap();
    let label = ordered.labels().label(chapter);
    println!("\nchapter label = {} (self {})", label.value(), label.self_label());
    let path = decode_path(&ordered, label).unwrap();
    let tags: Vec<&str> = path.iter().map(|&n| bush.tag(n).unwrap()).collect();
    println!("decoded root path from the label alone: /{}", tags.join("/"));
    assert_eq!(tags, ["shelf", "book", "chapter"]);
}
