//! Quickstart: parse a document, label it three ways, compare the labels.
//!
//! ```text
//! cargo run -p xmlprime --example quickstart
//! ```

use xmlprime::prelude::*;

fn main() {
    // Figure 2's tree, as XML.
    let doc_src = "<library>\
        <book><title/><author/><author/></book>\
        <book><title/><author/></book>\
    </library>";
    let tree = parse(doc_src).unwrap();
    println!("document: {doc_src}\n");

    // --- the paper's scheme -------------------------------------------
    let prime = TopDownPrime::optimized().label(&tree);
    println!("top-down prime labels (Opt1 + Opt2):");
    for (node, label) in prime.iter() {
        println!(
            "  {:8} {:>10}  (self {}, {} bits)",
            tree.tag(node).unwrap_or("?"),
            label.value().to_string(),
            label.self_label(),
            label.size_bits(),
        );
    }

    // Ancestor tests are divisibility (Property 3).
    let library = tree.root();
    let first_book = tree.first_child(library).unwrap();
    let first_title = tree.first_child(first_book).unwrap();
    assert!(prime.label(library).is_ancestor_of(prime.label(first_title)));
    assert!(prime.label(first_book).is_parent_of(prime.label(first_title)));
    assert!(!prime.label(first_title).is_ancestor_of(prime.label(first_book)));
    println!("\nancestor/parent tests: OK (pure label arithmetic)");

    // --- the baselines -------------------------------------------------
    for (name, max_bits) in [
        ("Interval", IntervalScheme::dense().label(&tree).size_stats().max_bits),
        ("Prime", prime.size_stats().max_bits),
        ("Prefix-2", Prefix2Scheme.label(&tree).size_stats().max_bits),
        ("Dewey", DeweyScheme.label(&tree).size_stats().max_bits),
    ] {
        println!("{name:>9}: max label {max_bits} bits");
    }
}
