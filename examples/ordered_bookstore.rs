//! Ordered updates on a bookstore: the §4 scenario end to end.
//!
//! A storefront keeps books whose author lists are *ordered* (first author
//! matters!). Editors keep inserting authors in the middle. With interval
//! or prefix labels every insertion cascades; with the prime scheme + SC
//! table only the congruence records covering shifted nodes are touched.
//!
//! ```text
//! cargo run -p xmlprime --example ordered_bookstore
//! ```

use xmlprime::prelude::*;

fn main() {
    let mut tree = parse(
        "<store>\
           <book><author/><author/><author/></book>\
           <book><author/><author/></book>\
           <book><author/></book>\
         </store>",
    )
    .unwrap();

    let mut doc = OrderedPrimeDoc::build(&tree, 5).unwrap();
    println!("initial SC table: {} records covering {} nodes", doc.sc_table().record_count(), doc.sc_table().len());

    // Editorial churn: always insert a new SECOND author into book 1.
    let store = tree.root();
    for round in 1..=6 {
        let book1 = tree.first_child(store).unwrap();
        let second_author = tree.element_children(book1).nth(1).unwrap();
        let report = doc.insert_sibling_before(&mut tree, second_author, "author").unwrap();
        println!(
            "round {round}: inserted author at order {}, touched {} SC record(s), {} label(s) relabeled",
            doc.order_of(report.node),
            report.sc_records_updated,
            report.relabeled_existing,
        );
        doc.verify_order_consistency(&tree);
    }

    // Order-sensitive queries answer from labels + SC table alone.
    let book1 = tree.first_child(store).unwrap();
    let authors: Vec<NodeId> = tree.element_children(book1).collect();
    println!("\nbook 1 now has {} authors; their global order numbers:", authors.len());
    for (i, a) in authors.iter().enumerate() {
        println!("  author[{}] -> order {}", i + 1, doc.order_of(*a));
    }

    // Deleting never shifts order numbers.
    let victim = authors[4];
    let touched = doc.delete(&mut tree, victim).unwrap();
    println!("\ndeleted author[5]: {} SC record(s) re-solved, everyone else untouched", touched);
    doc.verify_order_consistency(&tree);
}
