//! A dynamic news feed: continuous prepends — the worst case for static
//! labeling — handled by the prime scheme without label churn.
//!
//! Scenario: an RSS-like document where new `<item>`s always arrive at the
//! *front* (newest first), interleaved with deletions of expired items.
//! This is exactly the update pattern §1 motivates ("XML documents on the
//! Web are subjected to frequent changes").
//!
//! ```text
//! cargo run -p xmlprime --example dynamic_feed
//! ```

use xmlprime::prelude::*;

fn main() {
    let mut tree = parse(
        "<feed><meta/><item/><item/><item/><item/><item/><item/><item/><item/></feed>",
    )
    .unwrap();
    let mut doc = OrderedPrimeDoc::build(&tree, 5).unwrap();

    let feed = tree.root();
    let mut total_sc_updates = 0usize;
    let mut total_relabels = 0usize;

    for day in 1..=30 {
        // Morning: a new item lands at the top of the feed.
        let first_item = tree
            .element_children(feed)
            .find(|&n| tree.tag(n) == Some("item"))
            .expect("feed always has items");
        let report = doc.insert_sibling_before(&mut tree, first_item, "item").unwrap();
        total_sc_updates += report.sc_records_updated;
        total_relabels += report.relabeled_existing;

        // Evening: the oldest item expires.
        if day % 2 == 0 {
            let last = tree.last_child(feed).unwrap();
            doc.delete(&mut tree, last).unwrap();
        }
        doc.verify_order_consistency(&tree);
    }

    let items = tree.element_children(feed).filter(|&n| tree.tag(n) == Some("item")).count();
    println!("after 30 days of churn: {items} live items");
    println!("SC records re-solved in total:   {total_sc_updates}");
    println!("labels rewritten in total:       {total_relabels} (small-prime escapes only)");
    println!("SC table now: {} records / {} nodes", doc.sc_table().record_count(), doc.sc_table().len());

    // The feed is still perfectly ordered and queryable.
    let newest = tree
        .element_children(feed)
        .find(|&n| tree.tag(n) == Some("item"))
        .unwrap();
    assert!(tree
        .element_children(feed)
        .filter(|&n| tree.tag(n) == Some("item"))
        .all(|n| doc.order_of(n) >= doc.order_of(newest)));
    println!("newest item has the smallest order among items: OK");
}
