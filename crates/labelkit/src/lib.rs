//! # xp-labelkit — the shared labeling framework
//!
//! Every labeling scheme in this reproduction — the paper's prime scheme
//! (`xp-prime`) and the baselines it compares against (`xp-baselines`) —
//! speaks the vocabulary defined here:
//!
//! * [`LabelOps`] — what a label can do *by itself*: answer the
//!   ancestor/parent tests and report its size in bits (the paper's storage
//!   metric). Schemes whose labels also encode document order additionally
//!   implement [`OrderedLabel`].
//! * [`Scheme`] — a labeling algorithm: assigns a label to every element of
//!   an [`xp_xmltree::XmlTree`].
//! * [`LabeledDoc`] — the result: a per-node label table over the tree's
//!   arena, with size statistics and the label-diff accounting the update
//!   experiments (Figures 16–18) are measured in.
//! * [`BitString`] — bit-packed variable-length labels for the prefix
//!   schemes.
//! * [`DynamicScheme`] / [`LabeledStore`] — the mutation protocol: typed
//!   insert/delete/move operations with per-mutation [`RelabelReport`]s, so
//!   every scheme's update cost is measured by the same harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Runtime failures surface as typed errors; remaining panics are
// documented contracts built on `panic!`, not `unwrap`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod bitstring;
pub mod codec;
pub mod doc;
pub mod dynamic;
pub mod scheme;
pub mod shard;

pub use bitstring::BitString;
pub use codec::{CodecError, LabelCodec};
pub use doc::{LabelSizeStats, LabeledDoc};
pub use dynamic::{
    copy_fragment, full_relabel, graft_fragment, DynamicError, DynamicScheme, InsertPos,
    LabeledStore, Mutation, RelabelReport,
};
pub use scheme::{assert_parent_contract, AncestorTester, LabelOps, OrderedLabel, Scheme};
pub use shard::{
    apply_batch_sharded, maintain_shards, merge_shard, relabel_shard, shard_capacity_check,
    split_shard, take_dirty_shards, ChainLink, ShardCapacityError, ShardCell, ShardId, ShardPart,
    ShardPolicy, ShardedLabel, ShardedScheme, ShardedState, SHARD_ID_CAPACITY,
};
