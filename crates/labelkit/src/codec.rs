//! Binary (de)serialization of labeled documents.
//!
//! The paper's storage discussion (§3.1, §5.1) is about how labels sit in a
//! database: fixed-width columns when the maximum label is small, variable
//! width otherwise. This module provides the variable-width on-disk form:
//! LEB128 varints for numbers, length-prefixed bytes for big labels, one
//! record per node.
//!
//! Every scheme's label type implements [`LabelCodec`]; a [`LabeledDoc`]
//! round-trips through [`encode_doc`] / [`decode_doc`].

use crate::doc::LabeledDoc;
use crate::scheme::LabelOps;
use xp_xmltree::XmlTree;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-record.
    UnexpectedEnd,
    /// A varint ran past 64 bits.
    VarintOverflow,
    /// A structural invariant failed (e.g. node index out of range).
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `v` as a LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing the slice.
pub fn read_varint(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = input.split_first().ok_or(CodecError::UnexpectedEnd)?;
        *input = rest;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::VarintOverflow);
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Appends a length-prefixed byte string.
pub fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Reads a length-prefixed byte string, advancing the slice.
pub fn read_bytes<'a>(input: &mut &'a [u8]) -> Result<&'a [u8], CodecError> {
    let len = read_varint(input)? as usize;
    if input.len() < len {
        return Err(CodecError::UnexpectedEnd);
    }
    let (bytes, rest) = input.split_at(len);
    *input = rest;
    Ok(bytes)
}

/// A label type that can serialize itself.
pub trait LabelCodec: Sized {
    /// Appends the label's encoding.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one label, advancing the slice.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;
}

/// Serializes a labeled document: node count, then `(arena index, label)`
/// records in document order.
pub fn encode_doc<L: LabelOps + LabelCodec>(doc: &LabeledDoc<L>) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, doc.len() as u64);
    for (node, label) in doc.iter() {
        write_varint(&mut out, node.index() as u64);
        label.encode(&mut out);
    }
    out
}

/// Deserializes a labeled document over `tree`'s arena.
///
/// The arena indices must resolve to element nodes of `tree` — decoding a
/// document against the wrong tree is reported as corruption.
pub fn decode_doc<L: LabelOps + LabelCodec>(
    tree: &XmlTree,
    mut input: &[u8],
) -> Result<LabeledDoc<L>, CodecError> {
    let input = &mut input;
    let count = read_varint(input)? as usize;
    if count > tree.arena_len() {
        return Err(CodecError::Corrupt("more labels than arena slots"));
    }
    let by_index: std::collections::HashMap<usize, xp_xmltree::NodeId> =
        tree.elements().map(|n| (n.index(), n)).collect();
    let mut doc = LabeledDoc::new(tree);
    for _ in 0..count {
        let idx = read_varint(input)? as usize;
        let node = *by_index.get(&idx).ok_or(CodecError::Corrupt("unknown node index"))?;
        let label = L::decode(input)?;
        doc.set(node, label);
    }
    if !input.is_empty() {
        return Err(CodecError::Corrupt("trailing bytes"));
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::parse;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Toy(u64);

    impl LabelOps for Toy {
        fn is_ancestor_of(&self, other: &Self) -> bool {
            other.0 % self.0 == 0 && self.0 != other.0
        }
        fn size_bits(&self) -> u64 {
            64 - self.0.leading_zeros() as u64
        }
    }

    impl LabelCodec for Toy {
        fn encode(&self, out: &mut Vec<u8>) {
            write_varint(out, self.0);
        }
        fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
            read_varint(input).map(Toy)
        }
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 255, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(read_varint(&mut slice), Ok(v));
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        let mut eleven_bytes = vec![0xffu8; 10];
        eleven_bytes.push(0x01);
        assert_eq!(read_varint(&mut eleven_bytes.as_slice()), Err(CodecError::VarintOverflow));
        assert_eq!(read_varint(&mut [0x80u8, 0x80].as_slice()), Err(CodecError::UnexpectedEnd));
        assert_eq!(read_varint(&mut [].as_slice()), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn byte_strings_round_trip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello");
        write_bytes(&mut buf, b"");
        let mut slice = buf.as_slice();
        assert_eq!(read_bytes(&mut slice).unwrap(), b"hello");
        assert_eq!(read_bytes(&mut slice).unwrap(), b"");
        assert!(slice.is_empty());
        assert_eq!(read_bytes(&mut [5u8, 1, 2].as_slice()), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn doc_round_trips() {
        let tree = parse("<a><b/><c><d/></c></a>").unwrap();
        let mut doc: LabeledDoc<Toy> = LabeledDoc::new(&tree);
        for (i, node) in tree.elements().enumerate() {
            doc.set(node, Toy(i as u64 * 37 + 2));
        }
        let bytes = encode_doc(&doc);
        let decoded: LabeledDoc<Toy> = decode_doc(&tree, &bytes).unwrap();
        assert_eq!(decoded.len(), doc.len());
        for node in tree.elements() {
            assert_eq!(decoded.label(node), doc.label(node));
        }
    }

    #[test]
    fn decoding_against_the_wrong_tree_is_detected() {
        let tree = parse("<a><b/><c/></a>").unwrap();
        let mut doc: LabeledDoc<Toy> = LabeledDoc::new(&tree);
        for node in tree.elements() {
            doc.set(node, Toy(7));
        }
        let bytes = encode_doc(&doc);
        let smaller = parse("<a/>").unwrap();
        let err = decode_doc::<Toy>(&smaller, &bytes).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt(_)));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let tree = parse("<a/>").unwrap();
        let mut doc: LabeledDoc<Toy> = LabeledDoc::new(&tree);
        doc.set(tree.root(), Toy(3));
        let mut bytes = encode_doc(&doc);
        bytes.push(0xAA);
        let err = decode_doc::<Toy>(&tree, &bytes).unwrap_err();
        assert_eq!(err, CodecError::Corrupt("trailing bytes"));
    }
}
