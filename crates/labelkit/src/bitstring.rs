//! [`BitString`]: bit-packed variable-length binary strings.
//!
//! The prefix labeling schemes ([7], §2 of the paper) label nodes with binary
//! strings; the ancestor test is "is one label a proper prefix of the other",
//! and document order is prefix-respecting lexicographic order.

use std::cmp::Ordering;
use std::fmt;

/// A sequence of bits, packed 8 per byte, MSB-first within each byte.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitString {
    bytes: Vec<u8>,
    len: usize,
}

impl BitString {
    /// The empty bit string.
    pub fn new() -> Self {
        BitString::default()
    }

    /// Parses a string of `'0'`/`'1'` characters (other characters panic) —
    /// test and doc convenience.
    ///
    /// # Panics
    /// Panics on characters other than `0` and `1`.
    pub fn from_bits(s: &str) -> Self {
        let mut out = BitString::new();
        for c in s.chars() {
            match c {
                '0' => out.push(false),
                '1' => out.push(true),
                c => panic!("invalid bit character {c:?}"),
            }
        }
        out
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let byte_idx = self.len / 8;
        if byte_idx == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 0x80 >> (self.len % 8);
        }
        self.len += 1;
    }

    /// Bit at position `i` (0-indexed from the start).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range (len {})", self.len);
        self.bytes[i / 8] & (0x80 >> (i % 8)) != 0
    }

    /// Appends all bits of `other`.
    pub fn extend_from(&mut self, other: &BitString) {
        // Fast path: byte-aligned append.
        if self.len % 8 == 0 {
            self.bytes.extend_from_slice(&other.bytes);
            self.len += other.len;
            // Clear any stale bits past the new length in the final byte.
            let tail_bits = self.len % 8;
            if tail_bits != 0 {
                let last = self.bytes.len() - 1;
                self.bytes[last] &= !(0xffu8 >> tail_bits);
            }
            return;
        }
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }

    /// Returns `self ++ other` without mutating either.
    pub fn concat(&self, other: &BitString) -> BitString {
        let mut out = self.clone();
        out.extend_from(other);
        out
    }

    /// `true` iff `self` is a **proper** prefix of `other` — the prefix
    /// schemes' ancestor test.
    pub fn is_proper_prefix_of(&self, other: &BitString) -> bool {
        self.len < other.len && (0..self.len).all(|i| self.get(i) == other.get(i))
    }

    /// Iterates the bits front to back.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Raw form for serialization: `(bit length, packed bytes)`.
    pub fn to_raw_parts(&self) -> (usize, &[u8]) {
        (self.len, &self.bytes)
    }

    /// Rebuilds from the raw form. Bits past `len` in the final byte are
    /// cleared so equality stays canonical.
    ///
    /// # Panics
    /// Panics if `bytes` is shorter than `len` requires.
    pub fn from_raw_parts(len: usize, bytes: &[u8]) -> Self {
        assert!(bytes.len() >= len.div_ceil(8), "byte buffer too short for {len} bits");
        let mut bytes = bytes[..len.div_ceil(8)].to_vec();
        let tail_bits = len % 8;
        if tail_bits != 0 {
            let last = bytes.len() - 1;
            bytes[last] &= !(0xffu8 >> tail_bits);
        }
        BitString { bytes, len }
    }
}

impl PartialOrd for BitString {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitString {
    /// Prefix-respecting lexicographic order: a proper prefix sorts before
    /// its extensions. For prefix labels this is exactly preorder document
    /// order (parents precede children; siblings sort by self-label).
    fn cmp(&self, other: &Self) -> Ordering {
        let common = self.len.min(other.len);
        for i in 0..common {
            match (self.get(i), other.get(i)) {
                (false, true) => return Ordering::Less,
                (true, false) => return Ordering::Greater,
                _ => {}
            }
        }
        self.len.cmp(&other.len)
    }
}

macro_rules! fmt_bits {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for bit in self.iter() {
                f.write_str(if bit { "1" } else { "0" })?;
            }
            Ok(())
        }
    };
}

impl fmt::Debug for BitString {
    fmt_bits!();
}

impl fmt::Display for BitString {
    fmt_bits!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trip() {
        let mut b = BitString::new();
        let pattern = [true, false, false, true, true, true, false, true, true, false];
        for &bit in &pattern {
            b.push(bit);
        }
        assert_eq!(b.len(), 10);
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(b.get(i), bit, "bit {i}");
        }
    }

    #[test]
    fn from_bits_and_display() {
        let b = BitString::from_bits("11010");
        assert_eq!(b.to_string(), "11010");
        assert_eq!(b.len(), 5);
        assert_eq!(BitString::from_bits("").len(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn from_bits_rejects_garbage() {
        BitString::from_bits("10x");
    }

    #[test]
    fn concat_aligned_and_unaligned() {
        // Unaligned: 5 bits + 6 bits.
        let a = BitString::from_bits("11010");
        let c = a.concat(&BitString::from_bits("001101"));
        assert_eq!(c.to_string(), "11010001101");
        // Aligned: 8 bits + arbitrary.
        let mut d = BitString::from_bits("10110100");
        d.extend_from(&BitString::from_bits("111"));
        assert_eq!(d.to_string(), "10110100111");
    }

    #[test]
    fn proper_prefix_semantics() {
        let p = BitString::from_bits("110");
        assert!(p.is_proper_prefix_of(&BitString::from_bits("1101")));
        assert!(p.is_proper_prefix_of(&BitString::from_bits("110000")));
        assert!(!p.is_proper_prefix_of(&BitString::from_bits("110")), "not proper");
        assert!(!p.is_proper_prefix_of(&BitString::from_bits("111")));
        assert!(!p.is_proper_prefix_of(&BitString::from_bits("11")));
        assert!(BitString::new().is_proper_prefix_of(&p), "root prefixes everything");
    }

    #[test]
    fn ordering_is_prefix_respecting_lexicographic() {
        // The paper's §2 example labels: "2,11" vs "21,1" becomes, in CKM
        // binary terms, distinguishable; here just check the order law.
        let mut labels: Vec<BitString> =
            ["0", "10", "1100", "1101", "1110", "11110000", "", "01"]
                .iter()
                .map(|s| BitString::from_bits(s))
                .collect();
        labels.sort();
        let texts: Vec<String> = labels.iter().map(|b| b.to_string()).collect();
        assert_eq!(texts, ["", "0", "01", "10", "1100", "1101", "1110", "11110000"]);
    }

    #[test]
    fn prefix_sorts_before_extension() {
        let parent = BitString::from_bits("10");
        let child = BitString::from_bits("100");
        assert_eq!(parent.cmp(&child), Ordering::Less);
        assert_eq!(child.cmp(&parent), Ordering::Greater);
        assert_eq!(parent.cmp(&parent.clone()), Ordering::Equal);
    }

    #[test]
    fn stale_high_bits_do_not_leak_into_equality() {
        // Build "1" two ways: directly, and by pushing then comparing.
        let direct = BitString::from_bits("1");
        let built = BitString::from_bits("1");
        assert_eq!(direct, built);
        // Aligned extend clears trailing garbage.
        let mut a = BitString::from_bits("10110100");
        a.extend_from(&BitString::from_bits("1"));
        let mut b = BitString::from_bits("10110100");
        b.push(true);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitString::from_bits("10").get(2);
    }
}
