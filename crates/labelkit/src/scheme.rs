//! The [`LabelOps`] / [`OrderedLabel`] / [`Scheme`] traits.

use crate::doc::LabeledDoc;
use std::cmp::Ordering;
use xp_xmltree::XmlTree;

/// Operations every node label supports, *using only the labels themselves* —
/// the defining property of a labeling scheme (§1: "the relationships between
/// two nodes can be uniquely and quickly determined simply by examining their
/// labels").
///
/// Labels are plain values (`Send + Sync`): table builds and structural
/// joins fan label comparisons out across the `xp-par` worker pool, so a
/// label type must be safe to share and move across threads. Every label in
/// this workspace is an owned integer/string structure, and instrumentation
/// wrappers use atomics, so the bounds cost nothing.
pub trait LabelOps: Clone + Eq + std::fmt::Debug + Send + Sync {
    /// `true` iff the node labeled `self` is a **proper ancestor** of the
    /// node labeled `other`.
    fn is_ancestor_of(&self, other: &Self) -> bool;

    /// `true` iff the node labeled `self` is the **parent** of the node
    /// labeled `other`.
    ///
    /// # Contract
    ///
    /// The default refines the ancestor test via [`LabelOps::level_hint`]:
    /// it returns `true` only when **both** labels report a level and they
    /// differ by exactly one. A label type without `level_hint` therefore
    /// gets a default that **silently answers `false` even for true
    /// parents** — it degrades, it does not panic. Such schemes MUST
    /// override this method with a direct test or the parent axis is
    /// unusable. In this workspace:
    ///
    /// * prime overrides it (`parent.value * child.self_label ==
    ///   child.value`, no levels involved),
    /// * the prefix and Dewey labels override it (ancestor + one extra
    ///   component, cheaper than the two-level comparison),
    /// * interval and floatival labels carry levels and rely on the default.
    ///
    /// Overrides must agree with the default's semantics: `is_parent_of`
    /// implies `is_ancestor_of`, and when both labels do expose levels, a
    /// parent's level is exactly one less than its child's.
    /// [`assert_parent_contract`] checks this coherence under
    /// `debug_assertions`; scheme test suites run it over whole documents.
    fn is_parent_of(&self, other: &Self) -> bool {
        self.is_ancestor_of(other)
            && match (self.level_hint(), other.level_hint()) {
                (Some(a), Some(b)) => b == a + 1,
                _ => false,
            }
    }

    /// Storage size of this label in bits — the metric of Figures 13–14.
    fn size_bits(&self) -> u64;

    /// The node's depth if the label encodes it (prefix/Dewey labels do;
    /// interval labels don't).
    fn level_hint(&self) -> Option<usize> {
        None
    }

    /// Returns a reusable predicate answering "is `self` a proper ancestor
    /// of the argument?" — for call sites that test **one fixed ancestor
    /// candidate against many nodes** (the descendant axis of the query
    /// engine, the stack tops of the structural join).
    ///
    /// The default just delegates to [`LabelOps::is_ancestor_of`], so every
    /// scheme gets it for free. Schemes whose ancestor test repeats
    /// per-`self` setup work may override it to front-load that work: the
    /// prime scheme's test divides by `self`'s label, so its override
    /// captures a Barrett reduction context (precomputed reciprocal) and
    /// answers each call with multiplications only.
    ///
    /// # Contract
    /// For all `x`: `tester(&x) == self.is_ancestor_of(&x)`, bit for bit —
    /// an override changes cost, never answers. The end-to-end differential
    /// suites (`predicate_differential`) pin this across whole documents.
    fn ancestor_tester(&self) -> AncestorTester<'_, Self> {
        Box::new(move |other| self.is_ancestor_of(other))
    }
}

/// A boxed fixed-ancestor predicate borrowed from the ancestor's label; see
/// [`LabelOps::ancestor_tester`].
pub type AncestorTester<'a, L> = Box<dyn Fn(&L) -> bool + Send + Sync + 'a>;

/// Debug-checks the [`LabelOps::is_parent_of`] contract on one label pair:
///
/// * parent ⇒ ancestor (an override must never claim parenthood over a
///   non-descendant);
/// * ancestor + both levels present + levels adjacent ⇒ parent (an override
///   must not be *stricter* than the level-refined ancestor test);
/// * parent + both levels present ⇒ levels adjacent.
///
/// Compiles to nothing in release builds. Call it from scheme tests over
/// every (or a sampled) label pair of a labeled document; it panics with a
/// description of the violated clause.
pub fn assert_parent_contract<L: LabelOps>(a: &L, b: &L) {
    if cfg!(debug_assertions) {
        let parent = a.is_parent_of(b);
        let ancestor = a.is_ancestor_of(b);
        debug_assert!(
            !parent || ancestor,
            "is_parent_of claims {a:?} is parent of {b:?} but is_ancestor_of denies it"
        );
        if let (Some(la), Some(lb)) = (a.level_hint(), b.level_hint()) {
            debug_assert!(
                !(ancestor && lb == la + 1) || parent,
                "{a:?} is an ancestor of {b:?} one level up, but is_parent_of denies it"
            );
            debug_assert!(
                !parent || lb == la + 1,
                "is_parent_of claims {a:?} (level {la}) is parent of {b:?} (level {lb})"
            );
        }
    }
}

/// Labels that additionally encode **document order**, so `preceding` /
/// `following` queries can be answered by comparison alone. The prime scheme
/// deliberately does *not* implement this — its order lives in the external
/// SC table (§4), which is what makes its order-sensitive updates cheap.
pub trait OrderedLabel: LabelOps {
    /// Total document order: `Less` means `self`'s node precedes `other`'s.
    fn doc_cmp(&self, other: &Self) -> Ordering;
}

/// A labeling algorithm.
pub trait Scheme {
    /// The label type this scheme produces.
    type Label: LabelOps;

    /// Human-readable name used in experiment output ("Prime", "Interval", …).
    fn name(&self) -> &'static str;

    /// Labels every element node of `tree`.
    fn label(&self, tree: &XmlTree) -> LabeledDoc<Self::Label>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy label: the node's preorder interval, for exercising defaults.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Toy {
        start: u64,
        end: u64,
        level: usize,
    }

    impl LabelOps for Toy {
        fn is_ancestor_of(&self, other: &Self) -> bool {
            self.start < other.start && other.end <= self.end
        }
        fn size_bits(&self) -> u64 {
            64 - self.end.leading_zeros() as u64
        }
        fn level_hint(&self) -> Option<usize> {
            Some(self.level)
        }
    }

    #[test]
    fn default_parent_test_uses_level_hint() {
        let root = Toy { start: 1, end: 10, level: 0 };
        let child = Toy { start: 2, end: 9, level: 1 };
        let grandchild = Toy { start: 3, end: 4, level: 2 };
        assert!(root.is_parent_of(&child));
        assert!(!root.is_parent_of(&grandchild), "ancestor but not parent");
        assert!(child.is_parent_of(&grandchild));
        assert!(!grandchild.is_parent_of(&child));
        for x in [&root, &child, &grandchild] {
            for y in [&root, &child, &grandchild] {
                assert_parent_contract(x, y);
            }
        }
    }

    /// A label with no level information: the default parent test degrades
    /// to constant `false` — the documented contract, checked explicitly.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Levelless {
        start: u64,
        end: u64,
    }

    impl LabelOps for Levelless {
        fn is_ancestor_of(&self, other: &Self) -> bool {
            self.start < other.start && other.end <= self.end
        }
        fn size_bits(&self) -> u64 {
            128
        }
    }

    #[test]
    fn default_ancestor_tester_delegates_exactly() {
        let root = Toy { start: 1, end: 10, level: 0 };
        let child = Toy { start: 2, end: 9, level: 1 };
        let sibling = Toy { start: 11, end: 12, level: 1 };
        let tester = root.ancestor_tester();
        for other in [&root, &child, &sibling] {
            assert_eq!(tester(other), root.is_ancestor_of(other));
        }
    }

    #[test]
    fn default_parent_test_degrades_to_false_without_level_hint() {
        let parent = Levelless { start: 1, end: 10 };
        let child = Levelless { start: 2, end: 9 };
        assert!(parent.is_ancestor_of(&child));
        assert!(!parent.is_parent_of(&child), "true parent, but no levels to refine with");
        // The degraded answer still satisfies the coherence contract.
        assert_parent_contract(&parent, &child);
    }
}
