//! The [`LabelOps`] / [`OrderedLabel`] / [`Scheme`] traits.

use crate::doc::LabeledDoc;
use std::cmp::Ordering;
use xp_xmltree::XmlTree;

/// Operations every node label supports, *using only the labels themselves* —
/// the defining property of a labeling scheme (§1: "the relationships between
/// two nodes can be uniquely and quickly determined simply by examining their
/// labels").
pub trait LabelOps: Clone + Eq + std::fmt::Debug {
    /// `true` iff the node labeled `self` is a **proper ancestor** of the
    /// node labeled `other`.
    fn is_ancestor_of(&self, other: &Self) -> bool;

    /// `true` iff the node labeled `self` is the **parent** of the node
    /// labeled `other`.
    ///
    /// The default refines the ancestor test via [`LabelOps::level_hint`];
    /// schemes with a cheaper direct test override it.
    fn is_parent_of(&self, other: &Self) -> bool {
        self.is_ancestor_of(other)
            && match (self.level_hint(), other.level_hint()) {
                (Some(a), Some(b)) => b == a + 1,
                _ => false,
            }
    }

    /// Storage size of this label in bits — the metric of Figures 13–14.
    fn size_bits(&self) -> u64;

    /// The node's depth if the label encodes it (prefix/Dewey labels do;
    /// interval labels don't).
    fn level_hint(&self) -> Option<usize> {
        None
    }
}

/// Labels that additionally encode **document order**, so `preceding` /
/// `following` queries can be answered by comparison alone. The prime scheme
/// deliberately does *not* implement this — its order lives in the external
/// SC table (§4), which is what makes its order-sensitive updates cheap.
pub trait OrderedLabel: LabelOps {
    /// Total document order: `Less` means `self`'s node precedes `other`'s.
    fn doc_cmp(&self, other: &Self) -> Ordering;
}

/// A labeling algorithm.
pub trait Scheme {
    /// The label type this scheme produces.
    type Label: LabelOps;

    /// Human-readable name used in experiment output ("Prime", "Interval", …).
    fn name(&self) -> &'static str;

    /// Labels every element node of `tree`.
    fn label(&self, tree: &XmlTree) -> LabeledDoc<Self::Label>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy label: the node's preorder interval, for exercising defaults.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Toy {
        start: u64,
        end: u64,
        level: usize,
    }

    impl LabelOps for Toy {
        fn is_ancestor_of(&self, other: &Self) -> bool {
            self.start < other.start && other.end <= self.end
        }
        fn size_bits(&self) -> u64 {
            64 - self.end.leading_zeros() as u64
        }
        fn level_hint(&self) -> Option<usize> {
            Some(self.level)
        }
    }

    #[test]
    fn default_parent_test_uses_level_hint() {
        let root = Toy { start: 1, end: 10, level: 0 };
        let child = Toy { start: 2, end: 9, level: 1 };
        let grandchild = Toy { start: 3, end: 4, level: 2 };
        assert!(root.is_parent_of(&child));
        assert!(!root.is_parent_of(&grandchild), "ancestor but not parent");
        assert!(child.is_parent_of(&grandchild));
        assert!(!grandchild.is_parent_of(&child));
    }
}
