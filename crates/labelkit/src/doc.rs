//! [`LabeledDoc`]: the per-node label table a [`crate::Scheme`] produces.

use crate::scheme::LabelOps;
use xp_xmltree::{NodeId, XmlTree};

/// Labels for the element nodes of one document.
///
/// Keyed by the tree's arena indices, so it stays valid (for the nodes that
/// existed) across structural mutations — which is exactly what the update
/// experiments need: mutate the tree, let the scheme react, then
/// [`diff`](LabeledDoc::diff_count) old vs new tables to count relabelings.
#[derive(Debug, Clone)]
pub struct LabeledDoc<L> {
    labels: Vec<Option<L>>,
    /// Element nodes in document order at labeling time.
    order: Vec<NodeId>,
}

impl<L: LabelOps> LabeledDoc<L> {
    /// Creates an empty table sized for `tree`'s arena.
    pub fn new(tree: &XmlTree) -> Self {
        LabeledDoc { labels: vec![None; tree.arena_len()], order: Vec::new() }
    }

    /// Inserts (or replaces) the label of `node`, recording document order on
    /// first insertion.
    pub fn set(&mut self, node: NodeId, label: L) {
        if node.index() >= self.labels.len() {
            self.labels.resize(node.index() + 1, None);
        }
        if self.labels[node.index()].is_none() {
            self.order.push(node);
        }
        self.labels[node.index()] = Some(label);
    }

    /// The label of `node`, if it was labeled.
    pub fn get(&self, node: NodeId) -> Option<&L> {
        self.labels.get(node.index()).and_then(|slot| slot.as_ref())
    }

    /// Drops `node`'s label, returning it if one was set. O(n) in the number
    /// of labeled nodes (the document-order list is compacted) — fine for
    /// mutation-sized batches, which is the only caller.
    pub fn remove(&mut self, node: NodeId) -> Option<L> {
        let taken = self.labels.get_mut(node.index()).and_then(|slot| slot.take());
        if taken.is_some() {
            self.order.retain(|&n| n != node);
        }
        taken
    }

    /// The label of `node`.
    ///
    /// # Panics
    /// Panics if the node was never labeled.
    pub fn label(&self, node: NodeId) -> &L {
        self.get(node).unwrap_or_else(|| panic!("node {node} has no label"))
    }

    /// Labeled nodes in the document order they were labeled in.
    pub fn nodes(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of labeled nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` iff nothing is labeled.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates `(node, label)` in document order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &L)> + '_ {
        self.order.iter().map(move |&n| (n, self.label(n)))
    }

    /// Label-size statistics (bits) over all labeled nodes — Figure 13/14's
    /// metric is [`LabelSizeStats::max_bits`]: "the length of label is
    /// determined by the maximal length of labels in the data set".
    pub fn size_stats(&self) -> LabelSizeStats {
        let mut max_bits = 0u64;
        let mut total_bits = 0u64;
        for (_, l) in self.iter() {
            let b = l.size_bits();
            max_bits = max_bits.max(b);
            total_bits += b;
        }
        LabelSizeStats {
            max_bits,
            total_bits,
            count: self.len(),
        }
    }

    /// Counts nodes whose label differs between `self` (before) and `after`,
    /// plus nodes that only exist in `after` (`new_count`).
    ///
    /// This is the measurement of §5.3: "count the number of nodes whose
    /// labels need to be re-labeled after the insertion". The paper counts
    /// the inserted node itself as one relabeling, so callers typically
    /// report `changed + new_count`.
    pub fn diff_count(&self, after: &LabeledDoc<L>) -> DiffReport {
        let mut changed = 0usize;
        let mut new_count = 0usize;
        for (node, new_label) in after.iter() {
            match self.get(node) {
                Some(old) if old == new_label => {}
                Some(_) => changed += 1,
                None => new_count += 1,
            }
        }
        DiffReport { changed, new_count }
    }
}

/// Result of [`LabeledDoc::diff_count`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffReport {
    /// Pre-existing nodes whose labels changed.
    pub changed: usize,
    /// Nodes labeled only in the "after" table (the insertions).
    pub new_count: usize,
}

impl DiffReport {
    /// Total relabelings under the paper's accounting (changed + inserted).
    pub fn total(&self) -> usize {
        self.changed + self.new_count
    }
}

/// Aggregate label sizes in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelSizeStats {
    /// Largest single label — the fixed-length storage requirement.
    pub max_bits: u64,
    /// Sum over all labels.
    pub total_bits: u64,
    /// Number of labels.
    pub count: usize,
}

impl LabelSizeStats {
    /// Mean label size in bits.
    pub fn avg_bits(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::LabelOps;
    use xp_xmltree::parse;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct N(u64);

    impl LabelOps for N {
        fn is_ancestor_of(&self, other: &Self) -> bool {
            other.0 % self.0 == 0 && other.0 != self.0
        }
        fn size_bits(&self) -> u64 {
            64 - self.0.leading_zeros() as u64
        }
    }

    fn doc_with(tree: &XmlTree, labels: &[(NodeId, u64)]) -> LabeledDoc<N> {
        let mut d = LabeledDoc::new(tree);
        for &(n, v) in labels {
            d.set(n, N(v));
        }
        d
    }

    use xp_xmltree::XmlTree;

    #[test]
    fn set_get_and_order() {
        let tree = parse("<a><b/><c/></a>").unwrap();
        let ids: Vec<NodeId> = tree.elements().collect();
        let d = doc_with(&tree, &[(ids[0], 1), (ids[1], 2), (ids[2], 3)]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.label(ids[1]), &N(2));
        assert_eq!(d.nodes(), ids.as_slice());
    }

    #[test]
    fn replacing_a_label_keeps_one_order_entry() {
        let tree = parse("<a/>").unwrap();
        let root = tree.root();
        let mut d = doc_with(&tree, &[(root, 1)]);
        d.set(root, N(5));
        assert_eq!(d.len(), 1);
        assert_eq!(d.label(root), &N(5));
    }

    #[test]
    #[should_panic(expected = "has no label")]
    fn label_of_unlabeled_node_panics() {
        let tree = parse("<a><b/></a>").unwrap();
        let b = tree.first_child(tree.root()).unwrap();
        let d = doc_with(&tree, &[]);
        let _ = d.label(b);
    }

    #[test]
    fn size_stats() {
        let tree = parse("<a><b/><c/></a>").unwrap();
        let ids: Vec<NodeId> = tree.elements().collect();
        let d = doc_with(&tree, &[(ids[0], 1), (ids[1], 255), (ids[2], 256)]);
        let s = d.size_stats();
        assert_eq!(s.max_bits, 9);
        assert_eq!(s.total_bits, 1 + 8 + 9);
        assert_eq!(s.count, 3);
        assert!((s.avg_bits() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn diff_counts_changes_and_insertions() {
        let mut tree = parse("<a><b/></a>").unwrap();
        let a = tree.root();
        let b = tree.first_child(a).unwrap();
        let before = doc_with(&tree, &[(a, 1), (b, 2)]);
        // Insert a node, keep a's label, change b's, label the new one.
        let c = tree.append_element(a, "c");
        let after = doc_with(&tree, &[(a, 1), (b, 7), (c, 3)]);
        let diff = before.diff_count(&after);
        assert_eq!(diff.changed, 1);
        assert_eq!(diff.new_count, 1);
        assert_eq!(diff.total(), 2);
    }

    #[test]
    fn diff_of_identical_docs_is_zero() {
        let tree = parse("<a><b/></a>").unwrap();
        let ids: Vec<NodeId> = tree.elements().collect();
        let d1 = doc_with(&tree, &[(ids[0], 1), (ids[1], 2)]);
        let d2 = d1.clone();
        assert_eq!(d1.diff_count(&d2), DiffReport { changed: 0, new_count: 0 });
    }

    #[test]
    fn remove_drops_label_and_order_entry() {
        let tree = parse("<a><b/><c/></a>").unwrap();
        let ids: Vec<NodeId> = tree.elements().collect();
        let mut d = doc_with(&tree, &[(ids[0], 1), (ids[1], 2), (ids[2], 3)]);
        assert_eq!(d.remove(ids[1]), Some(N(2)));
        assert_eq!(d.remove(ids[1]), None, "second remove is a no-op");
        assert_eq!(d.len(), 2);
        assert_eq!(d.nodes(), &[ids[0], ids[2]]);
        assert!(d.get(ids[1]).is_none());
    }

    #[test]
    fn set_grows_for_nodes_created_after_construction() {
        let mut tree = parse("<a/>").unwrap();
        let mut d: LabeledDoc<N> = LabeledDoc::new(&tree);
        let b = tree.append_element(tree.root(), "b"); // beyond initial arena
        d.set(b, N(2));
        assert_eq!(d.label(b), &N(2));
    }
}
