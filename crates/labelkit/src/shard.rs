//! Sharded documents: §3.2 subtree decomposition promoted to the unit of
//! scale.
//!
//! A [`ShardedScheme`] wraps any [`DynamicScheme`] and labels a document as
//! a forest of **shards** — decomposition subtrees in the sense of the
//! paper's §3.2. Each shard owns a private *shadow tree* (its subtree with
//! every child-shard root replaced by a leaf **stub** element), a private
//! inner label document, and a private copy of the inner scheme's state
//! (for the prime scheme: its own prime pool and SC chunk set). Because
//! every shard starts its own prime pool from scratch, label magnitude —
//! and therefore §4.2 relabel-storm radius — is bounded by the shard, not
//! the document: the fig16–18 update costs become O(shard).
//!
//! A node's public label is a [`ShardedLabel`]: its shard id, its local
//! label inside the shard's shadow, and the **anchor chain** — the stub
//! labels of every enclosing shard root, shared per-shard behind an `Arc`.
//! The ancestor test composes exactly as in §3.2: same shard ⇒ local test;
//! different shards ⇒ test the would-be ancestor's local label against the
//! stub on the descendant's chain for that shard (absent ⇒ not related).
//!
//! Mutations route to the owning shard and run against its shadow;
//! [`apply_batch_sharded`] fans a batch out across shards via `xp-par`,
//! applying mutations that touch different shards in parallel while
//! preserving sequential semantics (global arena ids, labels, and
//! outcomes are byte-identical to the one-at-a-time facade at every
//! `XP_THREADS`; see its docs for the one relabel-attribution caveat).
//! Shards that outgrow [`ShardPolicy::max_shard_nodes`]
//! are split by [`maintain_shards`] / [`split_shard`], cold shards merged
//! back by [`merge_shard`], and a hot shard can be relabeled from scratch —
//! without touching its siblings — by [`relabel_shard`].

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use xp_xmltree::{NodeId, XmlTree};

use crate::doc::LabeledDoc;
use crate::dynamic::{
    graft_fragment, DynamicError, DynamicScheme, InsertPos, LabeledStore, Mutation, RelabelReport,
};
use crate::scheme::{AncestorTester, LabelOps, Scheme};

// ---------------------------------------------------------------------------
// Shard identity and capacity guard
// ---------------------------------------------------------------------------

/// Identity of one shard (decomposition subtree) within a sharded document.
///
/// Ids are allocated densely from zero (the top shard, which contains the
/// document root, is always shard 0) and are never reused: a purged or
/// merged shard leaves a permanent gap, exactly like the node arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The id as a slot index into per-shard tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Hard ceiling on shard (and decomposition-subtree) ids: they are stored
/// as `u32`, so at most `u32::MAX` ids exist (the all-ones value is kept
/// as a sentinel and never allocated).
pub const SHARD_ID_CAPACITY: usize = u32::MAX as usize;

/// A shard/subtree id allocation overflowed its capacity.
///
/// Raised instead of silently truncating the id to 32 bits — truncation
/// would alias two different subtrees and corrupt every cross-shard
/// ancestor test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardCapacityError {
    /// The index that was requested.
    pub next_index: usize,
    /// The effective capacity it collided with.
    pub capacity: usize,
}

impl fmt::Display for ShardCapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard id overflow: next index {} exceeds capacity {}",
            self.next_index, self.capacity
        )
    }
}

impl std::error::Error for ShardCapacityError {}

/// Checked allocation of the next shard (or decomposition subtree) id.
///
/// Returns the index as a `u32` iff `next_index < min(capacity,
/// SHARD_ID_CAPACITY)`; otherwise a typed [`ShardCapacityError`]. The
/// `capacity` parameter exists so boundary tests can exercise the guard
/// without building four billion subtrees.
pub fn shard_capacity_check(
    next_index: usize,
    capacity: usize,
) -> Result<u32, ShardCapacityError> {
    let cap = capacity.min(SHARD_ID_CAPACITY);
    if next_index < cap {
        Ok(next_index as u32)
    } else {
        Err(ShardCapacityError { next_index, capacity: cap })
    }
}

fn internal(msg: &'static str) -> DynamicError {
    #[derive(Debug)]
    struct ShardInternal(&'static str);
    impl fmt::Display for ShardInternal {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "shard layer invariant violated: {}", self.0)
        }
    }
    impl std::error::Error for ShardInternal {}
    DynamicError::Scheme(Box::new(ShardInternal(msg)))
}

fn capacity_err(e: ShardCapacityError) -> DynamicError {
    DynamicError::Scheme(Box::new(e))
}

// ---------------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------------

/// One link of a [`ShardedLabel`]'s anchor chain: an enclosing shard and
/// the local label of this subtree's stub inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink<L> {
    /// The enclosing shard.
    pub shard: ShardId,
    /// The stub's label inside that shard's shadow tree.
    pub stub: L,
}

/// Public label of a node in a sharded document: shard id, anchor chain,
/// and the inner scheme's label local to the shard's shadow tree.
///
/// The chain lists every enclosing shard from the top shard down to this
/// shard's parent; it is shared per shard behind an `Arc`, so its storage
/// cost amortizes to O(1) per node (`size_bits` charges the shard id plus
/// the local label, the paper's per-node storage metric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedLabel<L> {
    /// The shard that canonically owns this node.
    pub shard: ShardId,
    /// Stub labels of every enclosing shard root, outermost first.
    pub chain: Arc<Vec<ChainLink<L>>>,
    /// The inner scheme's label inside the shard's shadow tree.
    pub local: L,
    /// `true` iff this node is its shard's root (it then also appears as a
    /// stub in the parent shard).
    pub at_root: bool,
}

impl<L: LabelOps> LabelOps for ShardedLabel<L> {
    fn is_ancestor_of(&self, other: &Self) -> bool {
        if self.shard == other.shard {
            return self.local.is_ancestor_of(&other.local);
        }
        // §3.2 composition: `self` can only be an ancestor if its shard
        // encloses `other`'s, i.e. appears on `other`'s anchor chain; the
        // test then runs locally against the stub recorded there. The stub
        // *is* the chain shard's root seen from `self`'s shard, so
        // ancestor-or-self of the stub means proper ancestor of `other`.
        match other.chain.iter().find(|link| link.shard == self.shard) {
            Some(link) => self.local == link.stub || self.local.is_ancestor_of(&link.stub),
            None => false,
        }
    }

    fn is_parent_of(&self, other: &Self) -> bool {
        if self.shard == other.shard {
            return self.local.is_parent_of(&other.local);
        }
        // Cross-shard parenthood happens exactly at a shard boundary: the
        // child is a shard root and its stub's parent in our shadow is us.
        other.at_root
            && other.chain.last().is_some_and(|link| {
                link.shard == self.shard && self.local.is_parent_of(&link.stub)
            })
    }

    fn size_bits(&self) -> u64 {
        // Shard id + local label; the chain is shared per shard and
        // amortizes away (documented in DESIGN.md §13).
        32 + self.local.size_bits()
    }

    fn level_hint(&self) -> Option<usize> {
        // Global depth = Σ stub depths along the chain + local depth.
        let mut depth = self.local.level_hint()?;
        for link in self.chain.iter() {
            depth += link.stub.level_hint()?;
        }
        Some(depth)
    }

    fn ancestor_tester(&self) -> AncestorTester<'_, Self> {
        let tester = self.local.ancestor_tester();
        let sid = self.shard;
        let local = &self.local;
        Box::new(move |other: &Self| {
            if other.shard == sid {
                tester(&other.local)
            } else {
                match other.chain.iter().find(|link| link.shard == sid) {
                    Some(link) => *local == link.stub || tester(&link.stub),
                    None => false,
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

/// How a document is cut into shards and when shards split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Every element whose depth is a positive multiple of `cut_depth`
    /// starts a new shard; `0` keeps the whole document in one shard.
    pub cut_depth: usize,
    /// [`maintain_shards`] splits any shard holding more than this many
    /// member elements; `0` disables splitting.
    pub max_shard_nodes: usize,
}

impl ShardPolicy {
    /// One shard for the whole document (sharding off).
    pub fn single() -> Self {
        ShardPolicy { cut_depth: 0, max_shard_nodes: 0 }
    }

    /// Cut at every depth that is a positive multiple of `d`.
    pub fn at_depth(d: usize) -> Self {
        ShardPolicy { cut_depth: d, max_shard_nodes: 0 }
    }

    /// Pick a cut depth from the document size: small documents stay
    /// unsharded, larger ones cut at depth 2 (the Table-1 shape puts the
    /// bulk of nodes below depth 2, giving wide fan-out of mid-size
    /// shards).
    pub fn auto(node_count: usize) -> Self {
        if node_count < 4096 {
            ShardPolicy::single()
        } else {
            ShardPolicy::at_depth(2)
        }
    }

    /// Sets the split threshold (see [`ShardPolicy::max_shard_nodes`]).
    pub fn with_max_shard_nodes(mut self, n: usize) -> Self {
        self.max_shard_nodes = n;
        self
    }
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy::single()
    }
}

// ---------------------------------------------------------------------------
// Shard cells and sharded state
// ---------------------------------------------------------------------------

/// One shard's private world: shadow tree, inner labels/state, and the
/// id maps stitching shadow arena slots to global arena slots.
pub struct ShardCell<S: DynamicScheme> {
    /// The shard's subtree with each child-shard root copied as a leaf
    /// stub element.
    shadow: XmlTree,
    /// Inner labels over the shadow tree (stubs included).
    local_doc: LabeledDoc<S::Label>,
    /// The inner scheme's private state (prime pool, SC chunks, …).
    state: S::State,
    /// Enclosing shard, `None` for the top shard.
    parent: Option<ShardId>,
    /// Global node that is this shard's root.
    root_global: NodeId,
    /// Global arena index → local shadow node, canonical members only
    /// (the shard root maps to the shadow root; stubs are *not* listed —
    /// a stub's global node belongs to the child shard).
    to_local: HashMap<usize, NodeId>,
    /// Local shadow arena index → global node (stubs map to the child
    /// shard's root, i.e. the same global node as the child's shadow root).
    to_global: Vec<Option<NodeId>>,
    /// Local shadow arena index → child shard, for stub leaves.
    stubs: BTreeMap<usize, ShardId>,
    /// Child shard → its stub node in this shadow (inverse of `stubs`).
    stub_node: BTreeMap<ShardId, NodeId>,
    /// Canonical member count (shard root included, stubs excluded).
    members: usize,
    /// Set by every mutation that touched this shard; drained by
    /// [`ShardedState::take_dirty`] for per-shard checkpointing.
    dirty: bool,
}

impl<S: DynamicScheme> ShardCell<S> {
    /// The shard's shadow tree.
    pub fn shadow(&self) -> &XmlTree {
        &self.shadow
    }

    /// Inner labels over the shadow tree.
    pub fn local_doc(&self) -> &LabeledDoc<S::Label> {
        &self.local_doc
    }

    /// The inner scheme's private state.
    pub fn local_state(&self) -> &S::State {
        &self.state
    }

    /// Enclosing shard, `None` for the top shard.
    pub fn parent(&self) -> Option<ShardId> {
        self.parent
    }

    /// Global node that is this shard's root.
    pub fn root_global(&self) -> NodeId {
        self.root_global
    }

    /// Canonical member count (shard root included, stubs excluded).
    pub fn members(&self) -> usize {
        self.members
    }

    /// `true` iff the shard changed since the last [`ShardedState::take_dirty`].
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The local shadow node for a global node, if this shard owns it.
    pub fn local_of(&self, global: NodeId) -> Option<NodeId> {
        self.to_local.get(&global.index()).copied()
    }

    /// The global node a local shadow node stands for (stubs map to the
    /// child shard's root).
    pub fn global_of(&self, local: NodeId) -> Option<NodeId> {
        self.to_global.get(local.index()).copied().flatten()
    }

    /// Child shards and their stub nodes in this shadow.
    pub fn stub_children(&self) -> impl Iterator<Item = (NodeId, ShardId)> + '_ {
        self.stub_node.iter().map(|(&sid, &n)| (n, sid))
    }

    /// `true` iff `local` is a stub leaf standing for a child shard.
    pub fn is_stub(&self, local: NodeId) -> bool {
        self.stubs.contains_key(&local.index())
    }

    fn set_global(&mut self, local: NodeId, global: NodeId) {
        if self.to_global.len() <= local.index() {
            self.to_global.resize(local.index() + 1, None);
        }
        self.to_global[local.index()] = Some(global);
    }
}

impl<S: DynamicScheme> Clone for ShardCell<S>
where
    S::State: Clone,
{
    fn clone(&self) -> Self {
        ShardCell {
            shadow: self.shadow.clone(),
            local_doc: self.local_doc.clone(),
            state: self.state.clone(),
            parent: self.parent,
            root_global: self.root_global,
            to_local: self.to_local.clone(),
            to_global: self.to_global.clone(),
            stubs: self.stubs.clone(),
            stub_node: self.stub_node.clone(),
            members: self.members,
            dirty: self.dirty,
        }
    }
}

impl<S: DynamicScheme> fmt::Debug for ShardCell<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardCell")
            .field("root_global", &self.root_global)
            .field("parent", &self.parent)
            .field("members", &self.members)
            .field("stubs", &self.stubs.len())
            .field("dirty", &self.dirty)
            .finish()
    }
}

const NO_SHARD: u32 = u32::MAX;

/// Scheme state of a sharded document: the shard registry.
pub struct ShardedState<S: DynamicScheme> {
    /// Slot per ever-allocated shard id; purged/merged shards leave `None`.
    shards: Vec<Option<ShardCell<S>>>,
    /// Anchor chain per shard id (empty for the top shard), shared with
    /// every member label via `Arc`.
    chains: Vec<Arc<Vec<ChainLink<S::Label>>>>,
    /// Global arena index → owning shard id (`NO_SHARD` = unlabeled).
    shard_of: Vec<u32>,
}

impl<S: DynamicScheme> ShardedState<S> {
    fn empty() -> Self {
        ShardedState { shards: Vec::new(), chains: Vec::new(), shard_of: Vec::new() }
    }

    /// Number of shard id slots ever allocated (including purged gaps).
    pub fn shard_slots(&self) -> usize {
        self.shards.len()
    }

    /// Ids of the live shards, ascending.
    pub fn live_shards(&self) -> Vec<ShardId> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| ShardId(i as u32)))
            .collect()
    }

    /// Number of live shards.
    pub fn live_count(&self) -> usize {
        self.shards.iter().filter(|c| c.is_some()).count()
    }

    /// The cell for `sid`, if live.
    pub fn cell(&self, sid: ShardId) -> Option<&ShardCell<S>> {
        self.shards.get(sid.index()).and_then(|c| c.as_ref())
    }

    fn cell_mut(&mut self, sid: ShardId) -> Option<&mut ShardCell<S>> {
        self.shards.get_mut(sid.index()).and_then(|c| c.as_mut())
    }

    fn take_cell(&mut self, sid: ShardId) -> Option<ShardCell<S>> {
        self.shards.get_mut(sid.index()).and_then(|c| c.take())
    }

    fn put_cell(&mut self, sid: ShardId, cell: ShardCell<S>) {
        if let Some(slot) = self.shards.get_mut(sid.index()) {
            *slot = Some(cell);
        }
    }

    fn drop_cell(&mut self, sid: ShardId) {
        if let Some(slot) = self.shards.get_mut(sid.index()) {
            *slot = None;
        }
    }

    /// The shard canonically owning a global node.
    pub fn shard_of_node(&self, global: NodeId) -> Option<ShardId> {
        match self.shard_of.get(global.index()) {
            Some(&s) if s != NO_SHARD => Some(ShardId(s)),
            _ => None,
        }
    }

    fn set_shard_of(&mut self, global: NodeId, sid: ShardId) {
        if self.shard_of.len() <= global.index() {
            self.shard_of.resize(global.index() + 1, NO_SHARD);
        }
        self.shard_of[global.index()] = sid.0;
    }

    fn clear_shard_of(&mut self, global: NodeId) {
        if let Some(slot) = self.shard_of.get_mut(global.index()) {
            *slot = NO_SHARD;
        }
    }

    /// The anchor chain of `sid` (empty for the top shard).
    pub fn chain_links(&self, sid: ShardId) -> &[ChainLink<S::Label>] {
        self.chains.get(sid.index()).map_or(&[], |c| c.as_slice())
    }

    fn chain_arc(&self, sid: ShardId) -> Arc<Vec<ChainLink<S::Label>>> {
        self.chains.get(sid.index()).cloned().unwrap_or_default()
    }

    /// Shard ids from the top shard down to `sid`, inclusive.
    pub fn shard_path(&self, sid: ShardId) -> Vec<ShardId> {
        let mut path: Vec<ShardId> =
            self.chain_links(sid).iter().map(|l| l.shard).collect();
        path.push(sid);
        path
    }

    /// Drains the dirty flags: ids of every shard touched since the last
    /// call. This is what per-shard checkpointing keys on.
    pub fn take_dirty(&mut self) -> Vec<ShardId> {
        let mut out = Vec::new();
        for (i, slot) in self.shards.iter_mut().enumerate() {
            if let Some(cell) = slot {
                if cell.dirty {
                    cell.dirty = false;
                    out.push(ShardId(i as u32));
                }
            }
        }
        out
    }

    /// Re-derives the mirror labels of every member of `start`, then
    /// cascades into child shards whose recorded anchor chain no longer
    /// matches (their stub was relabeled, or their chain prefix changed).
    /// Returns the globals whose mirror label actually changed, sorted by
    /// arena index.
    fn sync_from(
        &mut self,
        doc: &mut LabeledDoc<ShardedLabel<S::Label>>,
        start: ShardId,
    ) -> Vec<NodeId> {
        let mut changed: Vec<NodeId> = Vec::new();
        let mut queue: Vec<ShardId> = vec![start];
        let mut qi = 0;
        while qi < queue.len() {
            let sid = queue[qi];
            qi += 1;
            let parent = match self.cell(sid) {
                Some(c) => c.parent,
                None => continue,
            };
            // 1. Refresh this shard's chain from the parent's current stub.
            if let Some(p) = parent {
                let stub_label = self.cell(p).and_then(|pc| {
                    pc.stub_node
                        .get(&sid)
                        .copied()
                        .and_then(|sn| pc.local_doc.get(sn).cloned())
                });
                if let Some(sl) = stub_label {
                    let mut links: Vec<ChainLink<S::Label>> =
                        self.chain_links(p).to_vec();
                    links.push(ChainLink { shard: p, stub: sl });
                    if self.chain_links(sid) != links.as_slice() {
                        self.chains[sid.index()] = Arc::new(links);
                    }
                }
            }
            // 2. Re-mirror members; collect child shards whose chain is
            //    now stale (pruning subtrees whose stub didn't change).
            let chain = self.chain_arc(sid);
            let mut updates: Vec<(NodeId, ShardedLabel<S::Label>)> = Vec::new();
            let mut kids: Vec<ShardId> = Vec::new();
            if let Some(cell) = self.cell(sid) {
                for (local, llabel) in cell.local_doc.iter() {
                    if let Some(&child) = cell.stubs.get(&local.index()) {
                        let rec = self.chain_links(child);
                        let fresh = rec.len() == chain.len() + 1
                            && rec[..chain.len()] == chain[..]
                            && rec
                                .last()
                                .is_some_and(|l| l.shard == sid && l.stub == *llabel);
                        if !fresh {
                            kids.push(child);
                        }
                    } else if let Some(g) =
                        cell.to_global.get(local.index()).copied().flatten()
                    {
                        let label = ShardedLabel {
                            shard: sid,
                            chain: chain.clone(),
                            local: llabel.clone(),
                            at_root: g == cell.root_global,
                        };
                        if doc.get(g) != Some(&label) {
                            updates.push((g, label));
                        }
                    }
                }
            }
            for (g, l) in updates {
                doc.set(g, l);
                changed.push(g);
            }
            queue.extend(kids);
        }
        changed.sort_by_key(|n| n.index());
        changed.dedup();
        changed
    }
}

impl<S: DynamicScheme> Clone for ShardedState<S>
where
    S::State: Clone,
{
    fn clone(&self) -> Self {
        ShardedState {
            shards: self.shards.clone(),
            chains: self.chains.clone(),
            shard_of: self.shard_of.clone(),
        }
    }
}

impl<S: DynamicScheme> fmt::Debug for ShardedState<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedState")
            .field("live_shards", &self.live_count())
            .field("shard_slots", &self.shards.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Decomposition plan
// ---------------------------------------------------------------------------

struct PreShard {
    shadow: XmlTree,
    parent: Option<ShardId>,
    root_global: NodeId,
    to_global: Vec<Option<NodeId>>,
    stubs: Vec<(NodeId, ShardId)>,
}

impl PreShard {
    fn set_global(&mut self, local: NodeId, global: NodeId) {
        if self.to_global.len() <= local.index() {
            self.to_global.resize(local.index() + 1, None);
        }
        self.to_global[local.index()] = Some(global);
    }
}

/// Pure decomposition: cut `tree` into shadow trees at every depth that is
/// a positive multiple of `cut_depth` (0 ⇒ single shard), mapping ids both
/// ways and recording stub sites. Mutates nothing.
fn decompose_plan(tree: &XmlTree, cut_depth: usize) -> Result<Vec<PreShard>, DynamicError> {
    let root = tree.root();
    let root_tag = tree.tag(root).ok_or_else(|| internal("document root is not an element"))?;
    let mut shards: Vec<PreShard> = vec![PreShard {
        shadow: XmlTree::new(root_tag),
        parent: None,
        root_global: root,
        to_global: Vec::new(),
        stubs: Vec::new(),
    }];
    let top_root = shards[0].shadow.root();
    shards[0].set_global(top_root, root);

    // Work items: a global node to place, the shard and local parent it
    // lands under, and its global depth. Children are pushed reversed so
    // they pop — and append into the shadow — in document order.
    let mut stack: Vec<(NodeId, ShardId, NodeId, usize)> = tree
        .children(root)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .map(|c| (c, ShardId(0), top_root, 1))
        .collect();

    while let Some((g, sid, lparent, depth)) = stack.pop() {
        if let Some(text) = tree.text(g) {
            shards[sid.index()].shadow.append_text(lparent, text);
            continue;
        }
        let Some(tag) = tree.tag(g) else { continue };
        let cut = cut_depth > 0 && depth % cut_depth == 0;
        let (child_sid, child_local) = if cut {
            // Stub leaf in the current shard, fresh shard for the subtree.
            let new_sid = ShardId(
                shard_capacity_check(shards.len(), SHARD_ID_CAPACITY).map_err(capacity_err)?,
            );
            let stub = shards[sid.index()].shadow.append_element(lparent, tag);
            shards[sid.index()].set_global(stub, g);
            shards[sid.index()].stubs.push((stub, new_sid));
            let mut pre = PreShard {
                shadow: XmlTree::new(tag),
                parent: Some(sid),
                root_global: g,
                to_global: Vec::new(),
                stubs: Vec::new(),
            };
            let r = pre.shadow.root();
            pre.set_global(r, g);
            shards.push(pre);
            (new_sid, r)
        } else {
            let l = shards[sid.index()].shadow.append_element(lparent, tag);
            shards[sid.index()].set_global(l, g);
            (sid, l)
        };
        let kids: Vec<NodeId> = tree.children(g).collect();
        for c in kids.into_iter().rev() {
            stack.push((c, child_sid, child_local, depth + 1));
        }
    }
    Ok(shards)
}

// ---------------------------------------------------------------------------
// The sharded scheme
// ---------------------------------------------------------------------------

/// A [`DynamicScheme`] adaptor that labels a document as a set of shards,
/// each labeled independently by the inner scheme, and routes every
/// mutation to the shard owning its target.
#[derive(Debug, Clone)]
pub struct ShardedScheme<S> {
    inner: S,
    policy: ShardPolicy,
}

impl<S> ShardedScheme<S> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: S, policy: ShardPolicy) -> Self {
        ShardedScheme { inner, policy }
    }

    /// The wrapped scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The sharding policy.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }
}

impl<S> Scheme for ShardedScheme<S>
where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    type Label = ShardedLabel<S::Label>;

    fn name(&self) -> &'static str {
        "Sharded"
    }

    fn label(&self, tree: &XmlTree) -> LabeledDoc<Self::Label> {
        // Static labeling is init minus the retained state; a capacity
        // overflow (practically unreachable) degrades to an empty doc,
        // matching this method's infallible signature.
        match self.init(tree) {
            Ok((doc, _)) => doc,
            Err(_) => LabeledDoc::new(tree),
        }
    }
}

/// Routes a *sibling-position* reference (insert-before anchor,
/// insert-parent target, delete target): a shard root is represented by
/// its stub in the parent shard, everything else by its own local node.
fn try_route_sibling<S: DynamicScheme>(
    state: &ShardedState<S>,
    node: NodeId,
) -> Option<(ShardId, NodeId)> {
    let sid = state.shard_of_node(node)?;
    let cell = state.cell(sid)?;
    if node == cell.root_global {
        let p = cell.parent?;
        let stub = state.cell(p)?.stub_node.get(&sid).copied()?;
        Some((p, stub))
    } else {
        cell.local_of(node).map(|l| (sid, l))
    }
}

fn route_sibling<S: DynamicScheme>(
    state: &ShardedState<S>,
    node: NodeId,
) -> Result<(ShardId, NodeId), DynamicError> {
    try_route_sibling(state, node)
        .ok_or_else(|| internal("node is not routable to a shard"))
}

/// Routes a *member* reference (last-child-of parent): always the node's
/// own canonical shard (a shard root maps to its shadow root).
fn try_route_member<S: DynamicScheme>(
    state: &ShardedState<S>,
    node: NodeId,
) -> Option<(ShardId, NodeId)> {
    let sid = state.shard_of_node(node)?;
    state.cell(sid)?.local_of(node).map(|l| (sid, l))
}

fn route_pos<S: DynamicScheme>(
    state: &ShardedState<S>,
    pos: InsertPos,
) -> Result<(ShardId, InsertPos), DynamicError> {
    try_route_pos(state, pos).ok_or_else(|| internal("insert position is not routable"))
}

fn try_route_pos<S: DynamicScheme>(
    state: &ShardedState<S>,
    pos: InsertPos,
) -> Option<(ShardId, InsertPos)> {
    match pos {
        InsertPos::Before(anchor) => {
            let (sid, la) = try_route_sibling(state, anchor)?;
            Some((sid, InsertPos::Before(la)))
        }
        InsertPos::LastChildOf(p) => {
            let (sid, lp) = try_route_member(state, p)?;
            Some((sid, InsertPos::LastChildOf(lp)))
        }
    }
}

/// After a successful inner insert: register the created nodes (global ↔
/// local, shard ownership), mirror their labels plus every relabeled
/// member, and cascade through child shards if a stub was relabeled.
/// `created` and `rep.inserted` must align one-to-one (both are fragment
/// preorder — the [`DynamicScheme`] contract).
fn post_op<S: DynamicScheme>(
    state: &mut ShardedState<S>,
    doc: &mut LabeledDoc<ShardedLabel<S::Label>>,
    sid: ShardId,
    created: &[NodeId],
    rep: RelabelReport,
) -> Result<RelabelReport, DynamicError> {
    let mut out = RelabelReport { side_updates: rep.side_updates, ..Default::default() };
    if created.len() != rep.inserted.len() {
        return Err(internal("inner scheme inserted a different node count than the graft"));
    }
    {
        let cell = state
            .cell_mut(sid)
            .ok_or_else(|| internal("mutation routed to a purged shard"))?;
        for (&g, &l) in created.iter().zip(rep.inserted.iter()) {
            cell.to_local.insert(g.index(), l);
            cell.set_global(l, g);
            cell.members += 1;
        }
        cell.dirty = true;
    }
    for &g in created {
        state.set_shard_of(g, sid);
    }
    let chain = state.chain_arc(sid);
    let mut cascade = false;
    {
        let cell = state
            .cell(sid)
            .ok_or_else(|| internal("mutation routed to a purged shard"))?;
        for (&g, &l) in created.iter().zip(rep.inserted.iter()) {
            let local = cell
                .local_doc
                .get(l)
                .cloned()
                .ok_or_else(|| internal("inserted node has no local label"))?;
            doc.set(
                g,
                ShardedLabel { shard: sid, chain: chain.clone(), local, at_root: false },
            );
            out.inserted.push(g);
        }
        for &l in &rep.relabeled {
            if cell.is_stub(l) {
                cascade = true;
                continue;
            }
            if let (Some(g), Some(ll)) = (cell.global_of(l), cell.local_doc.get(l)) {
                doc.set(
                    g,
                    ShardedLabel {
                        shard: sid,
                        chain: chain.clone(),
                        local: ll.clone(),
                        at_root: g == cell.root_global,
                    },
                );
                out.relabeled.push(g);
            }
        }
    }
    if cascade {
        for g in state.sync_from(doc, sid) {
            if !out.relabeled.contains(&g) && !out.inserted.contains(&g) {
                out.relabeled.push(g);
            }
        }
    }
    Ok(out)
}

/// After a successful inner delete (the global subtree is already
/// detached): unregister every global in the deleted subtree, purge child
/// shards that lived inside it, and mirror surviving relabels.
fn finish_delete<S: DynamicScheme>(
    state: &mut ShardedState<S>,
    doc: &mut LabeledDoc<ShardedLabel<S::Label>>,
    sid: ShardId,
    subtree: Vec<NodeId>,
    rep: RelabelReport,
) -> Result<RelabelReport, DynamicError> {
    let mut out = RelabelReport { side_updates: rep.side_updates, ..Default::default() };
    let mut purged: BTreeSet<ShardId> = BTreeSet::new();
    for &g in &subtree {
        if let Some(s) = state.shard_of_node(g) {
            if s != sid {
                purged.insert(s);
            }
        }
    }
    for &g in &subtree {
        doc.remove(g);
        state.clear_shard_of(g);
    }
    {
        let cell = state
            .cell_mut(sid)
            .ok_or_else(|| internal("delete routed to a purged shard"))?;
        for &g in &subtree {
            if let Some(l) = cell.to_local.remove(&g.index()) {
                if let Some(slot) = cell.to_global.get_mut(l.index()) {
                    *slot = None;
                }
                cell.members = cell.members.saturating_sub(1);
            }
        }
        // Stubs of purged direct children (a stub's global belongs to the
        // child shard, so the loop above never sees it).
        for &child in &purged {
            if let Some(stub_l) = cell.stub_node.remove(&child) {
                cell.stubs.remove(&stub_l.index());
                if let Some(slot) = cell.to_global.get_mut(stub_l.index()) {
                    *slot = None;
                }
            }
        }
        cell.dirty = true;
    }
    for &s in &purged {
        state.drop_cell(s);
    }
    let chain = state.chain_arc(sid);
    let mut cascade = false;
    {
        let cell = state
            .cell(sid)
            .ok_or_else(|| internal("delete routed to a purged shard"))?;
        for &l in &rep.relabeled {
            if cell.is_stub(l) {
                cascade = true;
                continue;
            }
            if let (Some(g), Some(ll)) = (cell.global_of(l), cell.local_doc.get(l)) {
                doc.set(
                    g,
                    ShardedLabel {
                        shard: sid,
                        chain: chain.clone(),
                        local: ll.clone(),
                        at_root: g == cell.root_global,
                    },
                );
                out.relabeled.push(g);
            }
        }
    }
    if cascade {
        for g in state.sync_from(doc, sid) {
            if !out.relabeled.contains(&g) {
                out.relabeled.push(g);
            }
        }
    }
    out.removed = subtree;
    Ok(out)
}

impl<S> DynamicScheme for ShardedScheme<S>
where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    type State = ShardedState<S>;

    fn init(
        &self,
        tree: &XmlTree,
    ) -> Result<(LabeledDoc<Self::Label>, Self::State), DynamicError> {
        let pre = decompose_plan(tree, self.policy.cut_depth)?;
        // Label every shard independently — in parallel when the pool is
        // on and no fault spec is armed (armed faults fire on global
        // trigger counters, so parallel interleaving would make the
        // failing shard nondeterministic; sequential keeps it exact).
        let inited: Vec<Result<(LabeledDoc<S::Label>, S::State), DynamicError>> =
            if xp_testkit::fault::active() || xp_par::threads() <= 1 {
                pre.iter().map(|p| self.inner.init(&p.shadow)).collect()
            } else {
                xp_par::par_map(&pre, |p| self.inner.init(&p.shadow))
            };

        let mut state = ShardedState::empty();
        for (pre_shard, res) in pre.into_iter().zip(inited) {
            let (local_doc, inner_state) = res?;
            let stubs: BTreeMap<usize, ShardId> =
                pre_shard.stubs.iter().map(|&(n, s)| (n.index(), s)).collect();
            let stub_node: BTreeMap<ShardId, NodeId> =
                pre_shard.stubs.iter().map(|&(n, s)| (s, n)).collect();
            let mut to_local = HashMap::new();
            for (li, slot) in pre_shard.to_global.iter().enumerate() {
                if let Some(g) = slot {
                    if !stubs.contains_key(&li) {
                        if let Some(l) = pre_shard.shadow.node_at(li) {
                            to_local.insert(g.index(), l);
                        }
                    }
                }
            }
            let members = to_local.len();
            state.shards.push(Some(ShardCell {
                shadow: pre_shard.shadow,
                local_doc,
                state: inner_state,
                parent: pre_shard.parent,
                root_global: pre_shard.root_global,
                to_local,
                to_global: pre_shard.to_global,
                stubs,
                stub_node,
                members,
                dirty: false,
            }));
            state.chains.push(Arc::new(Vec::new()));
        }
        // Anchor chains, top-down (a shard's id is always greater than its
        // parent's, so one ascending pass suffices).
        for i in 0..state.shards.len() {
            let sid = ShardId(i as u32);
            let Some(p) = state.cell(sid).and_then(|c| c.parent) else { continue };
            let stub_label = state
                .cell(p)
                .and_then(|pc| {
                    pc.stub_node
                        .get(&sid)
                        .copied()
                        .and_then(|sn| pc.local_doc.get(sn).cloned())
                })
                .ok_or_else(|| internal("decomposition lost a stub label"))?;
            let mut links = state.chain_links(p).to_vec();
            links.push(ChainLink { shard: p, stub: stub_label });
            state.chains[i] = Arc::new(links);
        }
        // Shard ownership and the mirror doc, in global document order.
        for i in 0..state.shards.len() {
            let sid = ShardId(i as u32);
            let globals: Vec<NodeId> = match state.cell(sid) {
                Some(c) => c.to_local.keys().filter_map(|&gi| tree.node_at(gi)).collect(),
                None => continue,
            };
            for g in globals {
                state.set_shard_of(g, sid);
            }
        }
        let mut doc = LabeledDoc::new(tree);
        for g in tree.elements() {
            let sid = state
                .shard_of_node(g)
                .ok_or_else(|| internal("decomposition missed an element"))?;
            let chain = state.chain_arc(sid);
            let cell =
                state.cell(sid).ok_or_else(|| internal("decomposition lost a shard"))?;
            let l = cell
                .local_of(g)
                .ok_or_else(|| internal("decomposition lost a node mapping"))?;
            let local = cell
                .local_doc
                .get(l)
                .cloned()
                .ok_or_else(|| internal("inner scheme left a node unlabeled"))?;
            doc.set(
                g,
                ShardedLabel { shard: sid, chain, local, at_root: g == cell.root_global },
            );
        }
        Ok((doc, state))
    }

    fn insert_before(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<Self::Label>,
        state: &mut Self::State,
        anchor: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        let (sid, la) = route_sibling(state, anchor)?;
        let g = tree.create_element(tag);
        tree.insert_before(anchor, g);
        let inner_res = {
            let cell = state
                .cell_mut(sid)
                .ok_or_else(|| internal("mutation routed to a purged shard"))?;
            let ShardCell { shadow, local_doc, state: lstate, .. } = cell;
            self.inner.insert_before(shadow, local_doc, lstate, la, tag)
        };
        match inner_res {
            Ok(rep) => post_op(state, doc, sid, &[g], rep),
            Err(e) => {
                tree.detach(g);
                let _ = state.sync_from(doc, sid);
                Err(e)
            }
        }
    }

    fn insert_subtree(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<Self::Label>,
        state: &mut Self::State,
        pos: InsertPos,
        fragment: &XmlTree,
    ) -> Result<RelabelReport, DynamicError> {
        let (sid, lpos) = route_pos(state, pos)?;
        let created = graft_fragment(tree, pos, fragment);
        let inner_res = {
            let cell = state
                .cell_mut(sid)
                .ok_or_else(|| internal("mutation routed to a purged shard"))?;
            let ShardCell { shadow, local_doc, state: lstate, .. } = cell;
            self.inner.insert_subtree(shadow, local_doc, lstate, lpos, fragment)
        };
        match inner_res {
            Ok(rep) => post_op(state, doc, sid, &created, rep),
            Err(e) => {
                if let Some(&root) = created.first() {
                    tree.detach(root);
                }
                let _ = state.sync_from(doc, sid);
                Err(e)
            }
        }
    }

    fn insert_parent(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<Self::Label>,
        state: &mut Self::State,
        target: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        // The wrapper takes the target's sibling position: for a shard
        // root, that position is the stub's in the parent shard — the
        // wrapper becomes a member there and the stub moves under it,
        // cascading the child shard's chain.
        let (sid, lt) = route_sibling(state, target)?;
        let wrapper = tree.wrap_with_parent(target, tag);
        let inner_res = {
            let cell = state
                .cell_mut(sid)
                .ok_or_else(|| internal("mutation routed to a purged shard"))?;
            let ShardCell { shadow, local_doc, state: lstate, .. } = cell;
            self.inner.insert_parent(shadow, local_doc, lstate, lt, tag)
        };
        match inner_res {
            Ok(rep) => post_op(state, doc, sid, &[wrapper], rep),
            Err(e) => {
                // Unwind the wrap: target back to the wrapper's slot, then
                // drop the wrapper (same recipe as the inner schemes).
                tree.detach(target);
                tree.insert_before(wrapper, target);
                tree.detach(wrapper);
                let _ = state.sync_from(doc, sid);
                Err(e)
            }
        }
    }

    fn delete(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<Self::Label>,
        state: &mut Self::State,
        target: NodeId,
    ) -> Result<RelabelReport, DynamicError> {
        // A shard root deletes as its stub in the parent shard; the child
        // shard (and every shard nested below the target) is then purged
        // wholesale in finish_delete.
        let (sid, lt) = route_sibling(state, target)?;
        let subtree: Vec<NodeId> = tree.element_descendants(target).collect();
        let inner_res = {
            let cell = state
                .cell_mut(sid)
                .ok_or_else(|| internal("mutation routed to a purged shard"))?;
            let ShardCell { shadow, local_doc, state: lstate, .. } = cell;
            self.inner.delete(shadow, local_doc, lstate, lt)
        };
        match inner_res {
            Ok(rep) => {
                tree.detach(target);
                finish_delete(state, doc, sid, subtree, rep)
            }
            Err(e) => {
                // Mirror the inner schemes' convention: a failure *after*
                // the detach committed means the delete stands (labels
                // dropped, side maintenance abandoned at zero cost).
                let detached = state
                    .cell(sid)
                    .is_some_and(|c| c.shadow.parent(lt).is_none());
                if detached {
                    tree.detach(target);
                    finish_delete(state, doc, sid, subtree, RelabelReport::default())
                } else {
                    let _ = state.sync_from(doc, sid);
                    Err(e)
                }
            }
        }
    }

    fn doc_cmp(
        &self,
        _doc: &LabeledDoc<Self::Label>,
        state: &Self::State,
        a: NodeId,
        b: NodeId,
    ) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        let (Some(sa), Some(sb)) = (state.shard_of_node(a), state.shard_of_node(b)) else {
            return Ordering::Equal;
        };
        // Walk both shard paths to their divergence point; each side is
        // then represented inside the deepest common shard either by its
        // own local node (if it lives there) or by the stub of the next
        // shard down its path.
        let path_a = state.shard_path(sa);
        let path_b = state.shard_path(sb);
        let mut p = 0;
        while p < path_a.len() && p < path_b.len() && path_a[p] == path_b[p] {
            p += 1;
        }
        if p == 0 {
            return Ordering::Equal;
        }
        let (c, ra, rb) = if p == path_a.len() && p == path_b.len() {
            let Some(cell) = state.cell(sa) else { return Ordering::Equal };
            (sa, cell.local_of(a), cell.local_of(b))
        } else if p == path_a.len() {
            let Some(cell) = state.cell(sa) else { return Ordering::Equal };
            (sa, cell.local_of(a), cell.stub_node.get(&path_b[p]).copied())
        } else if p == path_b.len() {
            let Some(cell) = state.cell(sb) else { return Ordering::Equal };
            (sb, cell.stub_node.get(&path_a[p]).copied(), cell.local_of(b))
        } else {
            let common = path_a[p - 1];
            let Some(cell) = state.cell(common) else { return Ordering::Equal };
            (
                common,
                cell.stub_node.get(&path_a[p]).copied(),
                cell.stub_node.get(&path_b[p]).copied(),
            )
        };
        match (state.cell(c), ra, rb) {
            (Some(cell), Some(ra), Some(rb)) => {
                self.inner.doc_cmp(&cell.local_doc, &cell.state, ra, rb)
            }
            _ => Ordering::Equal,
        }
    }

    fn needs_recovery(&self, state: &Self::State) -> bool {
        state
            .shards
            .iter()
            .flatten()
            .any(|cell| self.inner.needs_recovery(&cell.state))
    }
}

// ---------------------------------------------------------------------------
// Shard maintenance: relabel / split / merge
// ---------------------------------------------------------------------------

/// Relabels one shard from scratch with the inner scheme — its siblings
/// are untouched (this is the O(shard) answer to a §4.2 relabel storm).
/// Returns the report of mirror labels that actually changed.
pub fn relabel_shard<S>(
    store: &mut LabeledStore<ShardedScheme<S>>,
    sid: ShardId,
) -> Result<RelabelReport, DynamicError>
where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    let (scheme, _tree, doc, state) = store.parts_mut();
    {
        let cell = state.cell_mut(sid).ok_or_else(|| internal("relabel of a missing shard"))?;
        let (local_doc, inner_state) = scheme.inner().init(&cell.shadow)?;
        cell.local_doc = local_doc;
        cell.state = inner_state;
        cell.dirty = true;
    }
    let changed = state.sync_from(doc, sid);
    Ok(RelabelReport { relabeled: changed, ..Default::default() })
}

struct RebuiltShadow {
    shadow: XmlTree,
    to_global: Vec<Option<NodeId>>,
    stubs: Vec<(NodeId, ShardId)>,
    members: usize,
}

/// Copies `cell.shadow`'s subtree rooted at `from` into a fresh tree.
/// Existing stubs stay stubs (same child shard); if `cut` names a node,
/// that node is copied as a leaf and becomes a stub for `cut`'s shard.
fn rebuild_shadow<S: DynamicScheme>(
    cell: &ShardCell<S>,
    from: NodeId,
    cut: Option<(NodeId, ShardId)>,
) -> Result<RebuiltShadow, DynamicError> {
    let src = &cell.shadow;
    let tag = src.tag(from).ok_or_else(|| internal("shadow root is not an element"))?;
    let mut out = RebuiltShadow {
        shadow: XmlTree::new(tag),
        to_global: Vec::new(),
        stubs: Vec::new(),
        members: 0,
    };
    let root = out.shadow.root();
    let set_global = |to_global: &mut Vec<Option<NodeId>>, l: NodeId, old: NodeId| {
        if to_global.len() <= l.index() {
            to_global.resize(l.index() + 1, None);
        }
        to_global[l.index()] = cell.to_global.get(old.index()).copied().flatten();
    };
    set_global(&mut out.to_global, root, from);
    out.members = 1;
    let mut stack: Vec<(NodeId, NodeId)> = src
        .children(from)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .map(|c| (c, root))
        .collect();
    while let Some((old, dst)) = stack.pop() {
        if let Some(text) = src.text(old) {
            out.shadow.append_text(dst, text);
            continue;
        }
        let Some(tag) = src.tag(old) else { continue };
        let l = out.shadow.append_element(dst, tag);
        set_global(&mut out.to_global, l, old);
        if let Some(&existing_child) = cell.stubs.get(&old.index()) {
            out.stubs.push((l, existing_child));
            continue; // stubs are leaves
        }
        if let Some((v, new_sid)) = cut {
            if old == v {
                out.stubs.push((l, new_sid));
                continue; // the cut subtree moves to the new shard
            }
        }
        out.members += 1;
        let kids: Vec<NodeId> = src.children(old).collect();
        for c in kids.into_iter().rev() {
            stack.push((c, l));
        }
    }
    Ok(out)
}

fn make_cell<S: DynamicScheme>(
    built: RebuiltShadow,
    local_doc: LabeledDoc<S::Label>,
    inner_state: S::State,
    parent: Option<ShardId>,
    root_global: NodeId,
) -> ShardCell<S> {
    let stubs: BTreeMap<usize, ShardId> =
        built.stubs.iter().map(|&(n, s)| (n.index(), s)).collect();
    let stub_node: BTreeMap<ShardId, NodeId> =
        built.stubs.iter().map(|&(n, s)| (s, n)).collect();
    let mut to_local = HashMap::new();
    for (li, slot) in built.to_global.iter().enumerate() {
        if let Some(g) = slot {
            if !stubs.contains_key(&li) {
                if let Some(l) = built.shadow.node_at(li) {
                    to_local.insert(g.index(), l);
                }
            }
        }
    }
    ShardCell {
        shadow: built.shadow,
        local_doc,
        state: inner_state,
        parent,
        root_global,
        to_local,
        to_global: built.to_global,
        stubs,
        stub_node,
        members: built.members,
        dirty: true,
    }
}

/// Splits the heaviest eligible child subtree of `sid` off into a new
/// shard. Atomic: both replacement shards are fully rebuilt and relabeled
/// *before* the registry is touched — an inner-scheme failure leaves the
/// store exactly as it was. Returns `None` if nothing in the shard is
/// worth splitting (no non-stub child with at least two elements).
pub fn split_shard<S>(
    store: &mut LabeledStore<ShardedScheme<S>>,
    sid: ShardId,
) -> Result<Option<RelabelReport>, DynamicError>
where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    let (scheme, _tree, doc, state) = store.parts_mut();
    let Some(cell) = state.cell(sid) else {
        return Err(internal("split of a missing shard"));
    };
    // Victim: the element child of the shadow root owning the most
    // non-stub descendants (at least two, so the split actually moves
    // weight); ties break to document order.
    let root_l = cell.shadow.root();
    let mut victim: Option<(usize, NodeId)> = None;
    for c in cell.shadow.element_children(root_l) {
        if cell.is_stub(c) {
            continue;
        }
        let weight = cell
            .shadow
            .element_descendants(c)
            .filter(|d| !cell.is_stub(*d))
            .count();
        if weight >= 2 && victim.map_or(true, |(w, _)| weight > w) {
            victim = Some((weight, c));
        }
    }
    let Some((_, victim)) = victim else { return Ok(None) };
    let new_sid = ShardId(
        shard_capacity_check(state.shard_slots(), SHARD_ID_CAPACITY).map_err(capacity_err)?,
    );
    let child_built = rebuild_shadow(cell, victim, None)?;
    let parent_built = rebuild_shadow(cell, root_l, Some((victim, new_sid)))?;
    let victim_global = cell
        .global_of(victim)
        .ok_or_else(|| internal("split victim has no global mapping"))?;
    let (child_doc, child_state) = scheme.inner().init(&child_built.shadow)?;
    let (parent_doc, parent_state) = scheme.inner().init(&parent_built.shadow)?;
    // Commit point — everything below is infallible bookkeeping.
    let old = state
        .take_cell(sid)
        .ok_or_else(|| internal("split of a missing shard"))?;
    let cell_c = make_cell::<S>(parent_built, parent_doc, parent_state, old.parent, old.root_global);
    let cell_t = make_cell::<S>(child_built, child_doc, child_state, Some(sid), victim_global);
    let moved_children: Vec<ShardId> = cell_t.stub_node.keys().copied().collect();
    drop(old);
    state.put_cell(sid, cell_c);
    state.shards.push(Some(cell_t));
    state.chains.push(Arc::new(Vec::new()));
    // Grandchild shards that moved under the new shard re-parent to it.
    for child in moved_children {
        if let Some(c) = state.cell_mut(child) {
            c.parent = Some(new_sid);
        }
    }
    // Ownership transfer for the members that moved.
    let moved_globals: Vec<usize> = state
        .cell(new_sid)
        .map(|c| c.to_local.keys().copied().collect())
        .unwrap_or_default();
    for gi in moved_globals {
        if gi < state.shard_of.len() {
            state.shard_of[gi] = new_sid.0;
        } else {
            state.shard_of.resize(gi + 1, NO_SHARD);
            state.shard_of[gi] = new_sid.0;
        }
    }
    let changed = state.sync_from(doc, sid);
    Ok(Some(RelabelReport { relabeled: changed, ..Default::default() }))
}

/// Merges shard `sid` back into its parent, splicing its shadow over the
/// stub. Atomic in the same sense as [`split_shard`]. The merged shard's
/// id slot is retired (never reused).
pub fn merge_shard<S>(
    store: &mut LabeledStore<ShardedScheme<S>>,
    sid: ShardId,
) -> Result<RelabelReport, DynamicError>
where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    let (scheme, _tree, doc, state) = store.parts_mut();
    let Some(cell) = state.cell(sid) else {
        return Err(internal("merge of a missing shard"));
    };
    let p = cell.parent.ok_or_else(|| internal("cannot merge the top shard"))?;
    let pcell = state.cell(p).ok_or_else(|| internal("merge parent is missing"))?;
    let stub_l = pcell
        .stub_node
        .get(&sid)
        .copied()
        .ok_or_else(|| internal("merge parent lost the stub"))?;

    // Rebuild the parent shadow with the child's content spliced in at
    // the stub site. Nodes come from two source shadows, so this walk is
    // bespoke rather than rebuild_shadow.
    enum Src {
        P(NodeId),
        C(NodeId),
    }
    let ptag = pcell
        .shadow
        .tag(pcell.shadow.root())
        .ok_or_else(|| internal("shadow root is not an element"))?;
    let mut built = RebuiltShadow {
        shadow: XmlTree::new(ptag),
        to_global: Vec::new(),
        stubs: Vec::new(),
        members: 0,
    };
    let root = built.shadow.root();
    let set_global = |to_global: &mut Vec<Option<NodeId>>, l: NodeId, g: Option<NodeId>| {
        if to_global.len() <= l.index() {
            to_global.resize(l.index() + 1, None);
        }
        to_global[l.index()] = g;
    };
    set_global(&mut built.to_global, root, pcell.global_of(pcell.shadow.root()));
    built.members = 1;
    let mut stack: Vec<(Src, NodeId)> = pcell
        .shadow
        .children(pcell.shadow.root())
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .map(|c| (Src::P(c), root))
        .collect();
    while let Some((src, dst)) = stack.pop() {
        match src {
            Src::P(old) => {
                if let Some(text) = pcell.shadow.text(old) {
                    built.shadow.append_text(dst, text);
                    continue;
                }
                let Some(tag) = pcell.shadow.tag(old) else { continue };
                let l = built.shadow.append_element(dst, tag);
                set_global(&mut built.to_global, l, pcell.global_of(old));
                if old == stub_l {
                    // Splice: the stub becomes a real member; the child
                    // shard's root children continue under it.
                    built.members += 1;
                    let kids: Vec<NodeId> =
                        cell.shadow.children(cell.shadow.root()).collect();
                    for c in kids.into_iter().rev() {
                        stack.push((Src::C(c), l));
                    }
                    continue;
                }
                if let Some(&child) = pcell.stubs.get(&old.index()) {
                    built.stubs.push((l, child));
                    continue;
                }
                built.members += 1;
                let kids: Vec<NodeId> = pcell.shadow.children(old).collect();
                for c in kids.into_iter().rev() {
                    stack.push((Src::P(c), l));
                }
            }
            Src::C(old) => {
                if let Some(text) = cell.shadow.text(old) {
                    built.shadow.append_text(dst, text);
                    continue;
                }
                let Some(tag) = cell.shadow.tag(old) else { continue };
                let l = built.shadow.append_element(dst, tag);
                set_global(&mut built.to_global, l, cell.global_of(old));
                if let Some(&child) = cell.stubs.get(&old.index()) {
                    built.stubs.push((l, child));
                    continue;
                }
                built.members += 1;
                let kids: Vec<NodeId> = cell.shadow.children(old).collect();
                for c in kids.into_iter().rev() {
                    stack.push((Src::C(c), l));
                }
            }
        }
    }
    let (new_doc, new_state) = scheme.inner().init(&built.shadow)?;
    // Commit point.
    let old_child = state
        .take_cell(sid)
        .ok_or_else(|| internal("merge of a missing shard"))?;
    let old_parent = state
        .take_cell(p)
        .ok_or_else(|| internal("merge parent is missing"))?;
    let merged =
        make_cell::<S>(built, new_doc, new_state, old_parent.parent, old_parent.root_global);
    let adopted: Vec<ShardId> = old_child.stub_node.keys().copied().collect();
    state.put_cell(p, merged);
    for child in adopted {
        if let Some(c) = state.cell_mut(child) {
            c.parent = Some(p);
        }
    }
    let moved: Vec<usize> = old_child.to_local.keys().copied().collect();
    for gi in moved {
        if gi >= state.shard_of.len() {
            state.shard_of.resize(gi + 1, NO_SHARD);
        }
        state.shard_of[gi] = p.0;
    }
    let changed = state.sync_from(doc, p);
    Ok(RelabelReport { relabeled: changed, ..Default::default() })
}

/// Splits every shard that outgrew [`ShardPolicy::max_shard_nodes`],
/// repeatedly, until all shards fit (or can't be split further). Called
/// by the server's epoch loop after each batch, so split timing never
/// differs between the per-mutation facade and the batch applier.
pub fn maintain_shards<S>(
    store: &mut LabeledStore<ShardedScheme<S>>,
) -> Result<RelabelReport, DynamicError>
where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    let max = store.scheme().policy().max_shard_nodes;
    let mut report = RelabelReport::default();
    if max == 0 {
        return Ok(report);
    }
    let mut unsplittable: BTreeSet<ShardId> = BTreeSet::new();
    loop {
        let next = store
            .state()
            .live_shards()
            .into_iter()
            .find(|&sid| {
                !unsplittable.contains(&sid)
                    && store.state().cell(sid).is_some_and(|c| c.members > max)
            });
        let Some(sid) = next else { break };
        match split_shard(store, sid)? {
            Some(r) => report.merge(r),
            None => {
                unsplittable.insert(sid);
            }
        }
    }
    Ok(report)
}

/// Drains the dirty flags of a sharded store: the shards mutated since the
/// last drain, in ascending id order. The persistence layer checkpoints
/// exactly these shards' segments; the query layer refreshes exactly these
/// partitions.
pub fn take_dirty_shards<S>(store: &mut LabeledStore<ShardedScheme<S>>) -> Vec<ShardId>
where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    let (_, _, _, state) = store.parts_mut();
    state.take_dirty()
}

// ---------------------------------------------------------------------------
// Parallel batch apply
// ---------------------------------------------------------------------------

enum LocalOp {
    InsertBefore { anchor: NodeId, tag: String },
    InsertSubtree { pos: InsertPos, fragment: XmlTree },
    Delete { target: NodeId },
}

enum PlanKind {
    Insert { created: Vec<NodeId> },
    Delete { target: NodeId, subtree: Vec<NodeId> },
}

struct PlanMeta {
    op_idx: usize,
    sid: ShardId,
    kind: PlanKind,
}

enum Decision {
    Planned(PlanMeta, LocalOp),
    Done(Result<RelabelReport, DynamicError>),
    Barrier,
}

/// Classifies one mutation against the current state. Plannable mutations
/// get their *global* tree edit eagerly, in mutation order — so the global
/// arena allocates ids exactly as the sequential facade would — while the
/// shard-local edit is deferred to the parallel workers. `Barrier` means
/// "flush the segment and run this one sequentially" and is always safe.
#[allow(clippy::too_many_arguments)]
fn plan_one<S: DynamicScheme>(
    tree: &mut XmlTree,
    doc: &LabeledDoc<ShardedLabel<S::Label>>,
    state: &ShardedState<S>,
    mutation: &Mutation,
    op_idx: usize,
    pending_deleted: &mut HashSet<usize>,
    seg_created: &mut HashSet<usize>,
) -> Decision {
    match mutation {
        Mutation::InsertBefore { anchor, tag } => {
            if pending_deleted.contains(&anchor.index()) || seg_created.contains(&anchor.index())
            {
                return Decision::Barrier;
            }
            if doc.get(*anchor).is_none() {
                return Decision::Done(Err(DynamicError::UnknownNode(*anchor)));
            }
            if *anchor == tree.root() {
                return Decision::Done(Err(DynamicError::RootTarget(*anchor)));
            }
            let Some((sid, la)) = try_route_sibling(state, *anchor) else {
                return Decision::Barrier;
            };
            let g = tree.create_element(tag.as_str());
            tree.insert_before(*anchor, g);
            seg_created.insert(g.index());
            Decision::Planned(
                PlanMeta { op_idx, sid, kind: PlanKind::Insert { created: vec![g] } },
                LocalOp::InsertBefore { anchor: la, tag: tag.clone() },
            )
        }
        Mutation::InsertSubtree { pos, xml } => {
            let anchor = pos.anchor();
            if pending_deleted.contains(&anchor.index()) || seg_created.contains(&anchor.index())
            {
                return Decision::Barrier;
            }
            // Parse first: the sequential facade reports a bad fragment
            // before looking at the anchor.
            let fragment = match xp_xmltree::parse(xml) {
                Ok(f) => f,
                Err(e) => return Decision::Done(Err(DynamicError::Fragment(e.to_string()))),
            };
            if doc.get(anchor).is_none() {
                return Decision::Done(Err(DynamicError::UnknownNode(anchor)));
            }
            if let InsertPos::Before(a) = pos {
                if *a == tree.root() {
                    return Decision::Done(Err(DynamicError::RootTarget(*a)));
                }
            }
            let Some((sid, lpos)) = try_route_pos(state, *pos) else {
                return Decision::Barrier;
            };
            let created = graft_fragment(tree, *pos, &fragment);
            for &g in &created {
                seg_created.insert(g.index());
            }
            Decision::Planned(
                PlanMeta { op_idx, sid, kind: PlanKind::Insert { created } },
                LocalOp::InsertSubtree { pos: lpos, fragment },
            )
        }
        Mutation::Delete { target } => {
            if pending_deleted.contains(&target.index())
                || seg_created.contains(&target.index())
            {
                return Decision::Barrier;
            }
            if doc.get(*target).is_none() {
                return Decision::Done(Err(DynamicError::UnknownNode(*target)));
            }
            if *target == tree.root() {
                return Decision::Done(Err(DynamicError::RootTarget(*target)));
            }
            let Some(sid) = state.shard_of_node(*target) else { return Decision::Barrier };
            let Some(cell) = state.cell(sid) else { return Decision::Barrier };
            // Shard-root and stub-spanning deletes purge whole shards —
            // run those through the sequential facade.
            if *target == cell.root_global {
                return Decision::Barrier;
            }
            let Some(lt) = cell.local_of(*target) else { return Decision::Barrier };
            if cell.shadow.element_descendants(lt).any(|d| cell.is_stub(d)) {
                return Decision::Barrier;
            }
            let subtree: Vec<NodeId> = tree.element_descendants(*target).collect();
            if subtree.iter().any(|g| pending_deleted.contains(&g.index())) {
                return Decision::Barrier;
            }
            for g in &subtree {
                pending_deleted.insert(g.index());
            }
            Decision::Planned(
                PlanMeta { op_idx, sid, kind: PlanKind::Delete { target: *target, subtree } },
                LocalOp::Delete { target: lt },
            )
        }
        // Parent-wraps can reroute shard roots and moves are composite:
        // both go through the sequential facade.
        Mutation::InsertParent { .. } | Mutation::MoveSubtree { .. } => Decision::Barrier,
    }
}

struct CellWork<S: DynamicScheme> {
    sid: ShardId,
    cell: ShardCell<S>,
    ops: Vec<(usize, LocalOp)>,
}

fn run_cell<S: DynamicScheme>(
    inner: &S,
    work: &mut CellWork<S>,
) -> Vec<(usize, Result<RelabelReport, DynamicError>)> {
    let CellWork { cell, ops, .. } = work;
    let mut out = Vec::with_capacity(ops.len());
    for (pi, op) in ops.drain(..) {
        let ShardCell { shadow, local_doc, state, .. } = &mut *cell;
        let res = match op {
            LocalOp::InsertBefore { anchor, tag } => {
                inner.insert_before(shadow, local_doc, state, anchor, &tag)
            }
            LocalOp::InsertSubtree { pos, fragment } => {
                inner.insert_subtree(shadow, local_doc, state, pos, &fragment)
            }
            LocalOp::Delete { target } => match inner.delete(shadow, local_doc, state, target) {
                Ok(rep) => Ok(rep),
                // Same error-after-detach convention as the facade.
                Err(e) if shadow.parent(target).is_some() => Err(e),
                Err(_) => Ok(RelabelReport::default()),
            },
        };
        out.push((pi, res));
    }
    out
}

fn flush_segment<S>(
    store: &mut LabeledStore<ShardedScheme<S>>,
    metas: Vec<PlanMeta>,
    mut locals: Vec<Option<LocalOp>>,
    out: &mut [Option<Result<RelabelReport, DynamicError>>],
) where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    let (scheme, tree, doc, state) = store.parts_mut();
    let mut groups: BTreeMap<ShardId, Vec<usize>> = BTreeMap::new();
    for (pi, meta) in metas.iter().enumerate() {
        groups.entry(meta.sid).or_default().push(pi);
    }
    let mut results: BTreeMap<usize, Result<RelabelReport, DynamicError>> = BTreeMap::new();
    let mut work: Vec<CellWork<S>> = Vec::new();
    for (sid, pis) in groups {
        match state.take_cell(sid) {
            Some(cell) => {
                let mut ops = Vec::with_capacity(pis.len());
                for pi in pis {
                    match locals.get_mut(pi).and_then(Option::take) {
                        Some(op) => ops.push((pi, op)),
                        None => {
                            results.insert(pi, Err(internal("batch plan lost a local op")));
                        }
                    }
                }
                work.push(CellWork { sid, cell, ops });
            }
            None => {
                for pi in pis {
                    results.insert(pi, Err(internal("batch routed to a purged shard")));
                }
            }
        }
    }
    // Shard-local mutations run concurrently — one worker per cell, no
    // shared state between cells. The plan (and therefore the global
    // arena) is already fixed, so the outcome is identical at any
    // XP_THREADS.
    let inner = scheme.inner();
    let worker_out: Vec<Vec<(usize, Result<RelabelReport, DynamicError>)>> =
        if work.len() <= 1 || xp_par::threads() <= 1 {
            work.iter_mut().map(|w| run_cell(inner, w)).collect()
        } else {
            xp_par::par_map_mut(&mut work, |_, w| run_cell(inner, w))
        };
    for w in work {
        state.put_cell(w.sid, w.cell);
    }
    for (pi, res) in worker_out.into_iter().flatten() {
        results.insert(pi, res);
    }
    // Post phase, strictly in plan (= mutation) order: registration,
    // mirror labels, cascades, and global detaches for deletes.
    for (pi, meta) in metas.into_iter().enumerate() {
        let res = results
            .remove(&pi)
            .unwrap_or_else(|| Err(internal("batch worker lost a result")));
        let outcome = match res {
            Ok(rep) => match meta.kind {
                PlanKind::Insert { ref created } => post_op(state, doc, meta.sid, created, rep),
                PlanKind::Delete { target, subtree } => {
                    tree.detach(target);
                    finish_delete(state, doc, meta.sid, subtree, rep)
                }
            },
            Err(e) => {
                if let PlanKind::Insert { ref created } = meta.kind {
                    if let Some(&root) = created.first() {
                        tree.detach(root);
                    }
                }
                let _ = state.sync_from(doc, meta.sid);
                Err(e)
            }
        };
        if let Some(slot) = out.get_mut(meta.op_idx) {
            *slot = Some(outcome);
        }
    }
}

/// Applies a batch of mutations, fanning independent shard-local work out
/// across `xp-par` workers while preserving sequential semantics: the
/// resulting tree, labels, global arena ids, per-mutation success/failure,
/// `inserted`/`removed` lists, and `side_updates` are identical to applying
/// the batch one mutation at a time through [`LabeledStore::apply`] — and
/// the whole outcome (reports included) is identical at every `XP_THREADS`
/// setting. The one permitted difference from the one-at-a-time facade is
/// relabel *attribution*: a chain cascade posted for an early mutation of
/// the batch can absorb relabels a later mutation of the same batch would
/// otherwise report, so individual `relabeled` lists may shift between ops
/// (the batch-wide union never exceeds the facade's union — net-no-op
/// relabels within one batch are simply not reported). With a fault spec
/// armed the whole batch runs sequentially (the facade path), keeping
/// fault sites deterministic.
pub fn apply_batch_sharded<S>(
    store: &mut LabeledStore<ShardedScheme<S>>,
    mutations: &[Mutation],
) -> Vec<Result<RelabelReport, DynamicError>>
where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    if mutations.len() <= 1 || xp_testkit::fault::active() {
        return mutations.iter().map(|m| store.apply(m)).collect();
    }
    let mut out: Vec<Option<Result<RelabelReport, DynamicError>>> =
        (0..mutations.len()).map(|_| None).collect();
    let mut i = 0;
    while i < mutations.len() {
        let mut metas: Vec<PlanMeta> = Vec::new();
        let mut locals: Vec<Option<LocalOp>> = Vec::new();
        let mut pending_deleted: HashSet<usize> = HashSet::new();
        let mut seg_created: HashSet<usize> = HashSet::new();
        let mut j = i;
        let mut barrier = false;
        while j < mutations.len() {
            let (_, tree, doc, state) = store.parts_mut();
            match plan_one(
                tree,
                doc,
                state,
                &mutations[j],
                j,
                &mut pending_deleted,
                &mut seg_created,
            ) {
                Decision::Planned(meta, op) => {
                    metas.push(meta);
                    locals.push(Some(op));
                    j += 1;
                }
                Decision::Done(res) => {
                    out[j] = Some(res);
                    j += 1;
                }
                Decision::Barrier => {
                    barrier = true;
                    break;
                }
            }
        }
        if !metas.is_empty() {
            flush_segment(store, metas, locals, &mut out);
        }
        if barrier && j < mutations.len() {
            out[j] = Some(store.apply(&mutations[j]));
            j += 1;
        }
        i = j;
    }
    out.into_iter()
        .map(|o| o.unwrap_or_else(|| Err(internal("batch mutation was never applied"))))
        .collect()
}

// ---------------------------------------------------------------------------
// Serialization parts (per-shard checkpointing)
// ---------------------------------------------------------------------------

/// One shard's persistable pieces, for per-shard checkpoint segments in
/// `xp-store`. [`ShardCell::export`] produces these; a full set (plus the
/// global tree) reassembles into a live store via
/// [`ShardedScheme::assemble`].
pub struct ShardPart<S: DynamicScheme> {
    /// The shard's id (gaps allowed — purged ids simply don't appear).
    pub id: ShardId,
    /// The shadow tree.
    pub shadow: XmlTree,
    /// Inner labels over the shadow.
    pub local_doc: LabeledDoc<S::Label>,
    /// Inner scheme state.
    pub state: S::State,
    /// Enclosing shard.
    pub parent: Option<ShardId>,
    /// Global node that is this shard's root.
    pub root_global: NodeId,
    /// Local shadow arena index → global node.
    pub to_global: Vec<Option<NodeId>>,
    /// Stub node → child shard.
    pub stubs: Vec<(NodeId, ShardId)>,
}

impl<S: DynamicScheme> ShardCell<S> {
    /// Clones this cell's persistable pieces for checkpointing.
    pub fn export(&self, id: ShardId) -> ShardPart<S>
    where
        S::State: Clone,
    {
        ShardPart {
            id,
            shadow: self.shadow.clone(),
            local_doc: self.local_doc.clone(),
            state: self.state.clone(),
            parent: self.parent,
            root_global: self.root_global,
            to_global: self.to_global.clone(),
            stubs: self.stubs.iter().filter_map(|(&li, &s)| {
                self.shadow.node_at(li).map(|n| (n, s))
            }).collect(),
        }
    }
}

impl<S> ShardedScheme<S>
where
    S: DynamicScheme + Send + Sync,
    S::State: Send,
{
    /// Reassembles a live sharded document from recovered parts: derives
    /// the id maps, ownership table, anchor chains, and mirror labels.
    /// `tree` must be the recovered *global* tree the parts were
    /// checkpointed against.
    pub fn assemble(
        &self,
        tree: &XmlTree,
        parts: Vec<ShardPart<S>>,
    ) -> Result<(LabeledDoc<ShardedLabel<S::Label>>, ShardedState<S>), DynamicError> {
        let slots = parts.iter().map(|p| p.id.index() + 1).max().unwrap_or(0);
        let mut state = ShardedState::empty();
        state.shards.resize_with(slots, || None);
        state.chains = vec![Arc::new(Vec::new()); slots];
        for part in parts {
            let built = RebuiltShadow {
                shadow: part.shadow,
                to_global: part.to_global,
                stubs: part.stubs,
                members: 0, // recomputed by make_cell's to_local pass below
            };
            let mut cell =
                make_cell::<S>(built, part.local_doc, part.state, part.parent, part.root_global);
            cell.members = cell.to_local.len();
            cell.dirty = false;
            state.shards[part.id.index()] = Some(cell);
        }
        for i in 0..slots {
            let sid = ShardId(i as u32);
            let Some(p) = state.cell(sid).and_then(|c| c.parent) else { continue };
            let stub_label = state
                .cell(p)
                .and_then(|pc| {
                    pc.stub_node
                        .get(&sid)
                        .copied()
                        .and_then(|sn| pc.local_doc.get(sn).cloned())
                })
                .ok_or_else(|| internal("recovered parts lost a stub label"))?;
            let mut links = state.chain_links(p).to_vec();
            links.push(ChainLink { shard: p, stub: stub_label });
            state.chains[i] = Arc::new(links);
        }
        for i in 0..slots {
            let sid = ShardId(i as u32);
            let globals: Vec<NodeId> = match state.cell(sid) {
                Some(c) => c.to_local.keys().filter_map(|&gi| tree.node_at(gi)).collect(),
                None => continue,
            };
            for g in globals {
                state.set_shard_of(g, sid);
            }
        }
        let mut doc = LabeledDoc::new(tree);
        for g in tree.elements() {
            let sid = state
                .shard_of_node(g)
                .ok_or_else(|| internal("recovered parts miss an element"))?;
            let chain = state.chain_arc(sid);
            let cell = state.cell(sid).ok_or_else(|| internal("recovered parts lost a shard"))?;
            let l = cell
                .local_of(g)
                .ok_or_else(|| internal("recovered parts lost a node mapping"))?;
            let local = cell
                .local_doc
                .get(l)
                .cloned()
                .ok_or_else(|| internal("recovered shard left a node unlabeled"))?;
            doc.set(
                g,
                ShardedLabel { shard: sid, chain, local, at_root: g == cell.root_global },
            );
        }
        Ok((doc, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_testkit::rng::{SeedableRng, Xoshiro256};

    // -- A toy Dewey-path inner scheme ------------------------------------
    //
    // labelkit cannot depend on xp-prime (cycle), so the shard layer is
    // exercised with a deliberately relabel-happy inner scheme: labels are
    // element-child-index paths, every structural edit recomputes all of
    // them, and document order is lexicographic path order. Sibling shifts
    // relabel whole suffixes — which is exactly what stresses the mirror
    // mapping, the stub cascade, and the report plumbing.

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Dewey(Vec<u32>);

    impl LabelOps for Dewey {
        fn is_ancestor_of(&self, other: &Self) -> bool {
            other.0.len() > self.0.len() && other.0[..self.0.len()] == self.0[..]
        }
        fn size_bits(&self) -> u64 {
            (self.0.len() as u64) * 32
        }
        fn level_hint(&self) -> Option<usize> {
            Some(self.0.len())
        }
    }

    #[derive(Debug, Clone)]
    struct DeweyScheme;

    fn assign(tree: &XmlTree) -> LabeledDoc<Dewey> {
        let mut doc = LabeledDoc::new(tree);
        let root = tree.root();
        doc.set(root, Dewey(Vec::new()));
        let mut stack: Vec<(NodeId, Vec<u32>)> = vec![(root, Vec::new())];
        while let Some((n, path)) = stack.pop() {
            let kids: Vec<NodeId> = tree.element_children(n).collect();
            for (i, &c) in kids.iter().enumerate().rev() {
                let mut p = path.clone();
                p.push(i as u32);
                doc.set(c, Dewey(p.clone()));
                stack.push((c, p));
            }
        }
        // Re-set in preorder so insertion order is deterministic.
        let mut ordered = LabeledDoc::new(tree);
        for e in tree.elements() {
            if let Some(l) = doc.get(e) {
                ordered.set(e, l.clone());
            }
        }
        ordered
    }

    fn diff_relabel(
        tree: &XmlTree,
        doc: &mut LabeledDoc<Dewey>,
        created: &[NodeId],
    ) -> RelabelReport {
        let fresh = assign(tree);
        let mut rep = RelabelReport { inserted: created.to_vec(), ..Default::default() };
        for (n, l) in fresh.iter() {
            if doc.get(n) != Some(l) {
                doc.set(n, l.clone());
                if !created.contains(&n) {
                    rep.relabeled.push(n);
                }
            }
        }
        rep
    }

    impl Scheme for DeweyScheme {
        type Label = Dewey;
        fn name(&self) -> &'static str {
            "dewey-toy"
        }
        fn label(&self, tree: &XmlTree) -> LabeledDoc<Dewey> {
            assign(tree)
        }
    }

    impl DynamicScheme for DeweyScheme {
        type State = ();
        fn init(&self, tree: &XmlTree) -> Result<(LabeledDoc<Dewey>, ()), DynamicError> {
            Ok((assign(tree), ()))
        }
        fn insert_before(
            &self,
            tree: &mut XmlTree,
            doc: &mut LabeledDoc<Dewey>,
            _state: &mut (),
            anchor: NodeId,
            tag: &str,
        ) -> Result<RelabelReport, DynamicError> {
            let n = tree.create_element(tag);
            tree.insert_before(anchor, n);
            Ok(diff_relabel(tree, doc, &[n]))
        }
        fn insert_subtree(
            &self,
            tree: &mut XmlTree,
            doc: &mut LabeledDoc<Dewey>,
            _state: &mut (),
            pos: InsertPos,
            fragment: &XmlTree,
        ) -> Result<RelabelReport, DynamicError> {
            let created = graft_fragment(tree, pos, fragment);
            Ok(diff_relabel(tree, doc, &created))
        }
        fn insert_parent(
            &self,
            tree: &mut XmlTree,
            doc: &mut LabeledDoc<Dewey>,
            _state: &mut (),
            target: NodeId,
            tag: &str,
        ) -> Result<RelabelReport, DynamicError> {
            let w = tree.wrap_with_parent(target, tag);
            Ok(diff_relabel(tree, doc, &[w]))
        }
        fn delete(
            &self,
            tree: &mut XmlTree,
            doc: &mut LabeledDoc<Dewey>,
            _state: &mut (),
            target: NodeId,
        ) -> Result<RelabelReport, DynamicError> {
            let subtree: Vec<NodeId> = tree.element_descendants(target).collect();
            tree.detach(target);
            for &g in &subtree {
                doc.remove(g);
            }
            let mut rep = diff_relabel(tree, doc, &[]);
            rep.removed = subtree;
            Ok(rep)
        }
        fn doc_cmp(
            &self,
            doc: &LabeledDoc<Dewey>,
            _state: &(),
            a: NodeId,
            b: NodeId,
        ) -> Ordering {
            match (doc.get(a), doc.get(b)) {
                (Some(x), Some(y)) => x.0.cmp(&y.0),
                _ => Ordering::Equal,
            }
        }
    }

    // -- helpers ----------------------------------------------------------

    fn random_tree(seed: u64, nodes: usize) -> XmlTree {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut tree = XmlTree::new("r");
        let mut elems = vec![tree.root()];
        for i in 0..nodes {
            let parent = elems[(rng.next_u64() as usize) % elems.len()];
            let tag = format!("t{}", i % 5);
            let e = tree.append_element(parent, tag);
            if rng.next_u64() % 4 == 0 {
                tree.append_text(parent, "x");
            }
            elems.push(e);
        }
        tree
    }

    fn sharded(
        tree: &XmlTree,
        cut: usize,
    ) -> LabeledStore<ShardedScheme<DeweyScheme>> {
        let scheme = ShardedScheme::new(DeweyScheme, ShardPolicy::at_depth(cut));
        match LabeledStore::build(scheme, tree.clone()) {
            Ok(s) => s,
            Err(e) => panic!("sharded build failed: {e}"),
        }
    }

    fn unsharded(tree: &XmlTree) -> LabeledStore<DeweyScheme> {
        match LabeledStore::build(DeweyScheme, tree.clone()) {
            Ok(s) => s,
            Err(e) => panic!("unsharded build failed: {e}"),
        }
    }

    /// Every pairwise relation and the total order must agree with the
    /// tree's ground truth.
    fn check_against_tree(store: &LabeledStore<ShardedScheme<DeweyScheme>>) {
        let tree = store.tree();
        let elems: Vec<NodeId> = tree.elements().collect();
        for &a in &elems {
            let la = match store.doc().get(a) {
                Some(l) => l,
                None => panic!("{a:?} unlabeled"),
            };
            if let Some(hint) = la.level_hint() {
                assert_eq!(hint, tree.depth(a), "level_hint of {a:?}");
            }
            for &b in &elems {
                let lb = match store.doc().get(b) {
                    Some(l) => l,
                    None => panic!("{b:?} unlabeled"),
                };
                let truth = a != b && tree.is_ancestor(a, b);
                assert_eq!(la.is_ancestor_of(lb), truth, "ancestor({a:?},{b:?})");
                let tester = la.ancestor_tester();
                assert_eq!(tester(lb), truth, "tester({a:?},{b:?})");
                assert_eq!(
                    la.is_parent_of(lb),
                    tree.parent(b) == Some(a),
                    "parent({a:?},{b:?})"
                );
            }
        }
        // Total document order == preorder.
        let ordered = store.ordered_nodes();
        assert_eq!(ordered, elems, "ordered_nodes is preorder");
    }

    fn trees_equal(a: &XmlTree, b: &XmlTree) -> bool {
        fn sig(t: &XmlTree, n: NodeId, out: &mut Vec<String>) {
            if let Some(tag) = t.tag(n) {
                out.push(format!("<{tag}"));
                for c in t.children(n) {
                    sig(t, c, out);
                }
                out.push(">".into());
            } else if let Some(text) = t.text(n) {
                out.push(format!("[{text}]"));
            }
        }
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        sig(a, a.root(), &mut sa);
        sig(b, b.root(), &mut sb);
        sa == sb
    }

    // -- tests ------------------------------------------------------------

    #[test]
    fn capacity_check_guards_the_boundary() {
        assert_eq!(shard_capacity_check(0, 8), Ok(0));
        assert_eq!(shard_capacity_check(7, 8), Ok(7));
        let err = match shard_capacity_check(8, 8) {
            Err(e) => e,
            Ok(v) => panic!("expected overflow, got {v}"),
        };
        assert_eq!(err, ShardCapacityError { next_index: 8, capacity: 8 });
        assert!(err.to_string().contains("8"));
        // The hard u32 ceiling applies even with a larger requested cap.
        assert!(shard_capacity_check(SHARD_ID_CAPACITY, usize::MAX).is_err());
        assert!(shard_capacity_check(SHARD_ID_CAPACITY - 1, usize::MAX).is_ok());
    }

    #[test]
    fn sharded_labels_match_tree_truth_at_every_cut_depth() {
        for seed in [1u64, 7, 42] {
            let tree = random_tree(seed, 60);
            for cut in [0usize, 1, 2, 3] {
                let store = sharded(&tree, cut);
                if cut == 0 {
                    assert_eq!(store.state().live_count(), 1, "cut 0 is one shard");
                } else if cut == 1 {
                    assert!(store.state().live_count() > 1, "cut 1 must shard");
                }
                check_against_tree(&store);
            }
        }
    }

    #[test]
    fn mutations_stay_lockstep_with_unsharded_oracle() {
        let tree = random_tree(11, 40);
        for cut in [1usize, 2, 3] {
            let mut s = sharded(&tree, cut);
            let mut o = unsharded(&tree);
            let mut rng = Xoshiro256::seed_from_u64(99);
            for step in 0..60 {
                let elems: Vec<NodeId> = o.tree().elements().collect();
                let pick = elems[(rng.next_u64() as usize) % elems.len()];
                let m = match rng.next_u64() % 5 {
                    0 => Mutation::InsertBefore { anchor: pick, tag: "n".into() },
                    1 => Mutation::InsertSubtree {
                        pos: InsertPos::LastChildOf(pick),
                        xml: "<f><g/>txt<h><i/></h></f>".into(),
                    },
                    2 => Mutation::InsertParent { target: pick, tag: "w".into() },
                    3 => Mutation::Delete { target: pick },
                    _ => Mutation::InsertSubtree {
                        pos: InsertPos::Before(pick),
                        xml: "<f/>".into(),
                    },
                };
                let rs = s.apply(&m);
                let ro = o.apply(&m);
                assert_eq!(rs.is_ok(), ro.is_ok(), "cut {cut} step {step} {m:?}");
                if let (Ok(rs), Ok(ro)) = (&rs, &ro) {
                    assert_eq!(rs.inserted, ro.inserted, "cut {cut} step {step}");
                    assert_eq!(rs.removed, ro.removed, "cut {cut} step {step}");
                }
                assert!(
                    trees_equal(s.tree(), o.tree()),
                    "cut {cut} step {step}: trees diverged"
                );
            }
            check_against_tree(&s);
            assert_eq!(s.ordered_nodes(), o.ordered_nodes(), "cut {cut}: order");
        }
    }

    #[test]
    fn mutation_in_one_shard_leaves_sibling_shards_untouched() {
        // r -> a,b ; cut at depth 1 puts a and b in separate shards.
        let mut tree = XmlTree::new("r");
        let a = tree.append_element(tree.root(), "a");
        let b = tree.append_element(tree.root(), "b");
        for _ in 0..10 {
            let x = tree.append_element(a, "x");
            tree.append_element(x, "y");
            let x = tree.append_element(b, "x");
            tree.append_element(x, "y");
        }
        let mut s = sharded(&tree, 1);
        let b_members: Vec<(NodeId, ShardedLabel<Dewey>)> = s
            .tree()
            .element_descendants(b)
            .filter_map(|n| s.doc().get(n).map(|l| (n, l.clone())))
            .collect();
        assert!(!b_members.is_empty());
        // Front-insert storm inside a's shard.
        let first = match s.tree().element_children(a).next() {
            Some(n) => n,
            None => panic!("a has children"),
        };
        let rep = match s.insert_before(first, "z") {
            Ok(r) => r,
            Err(e) => panic!("insert failed: {e}"),
        };
        // O(shard): everything touched lives under a (or is a itself).
        for &n in rep.relabeled.iter().chain(rep.inserted.iter()) {
            assert!(
                n == a || s.tree().is_ancestor(a, n),
                "touched {n:?} outside the mutated shard"
            );
        }
        for (n, before) in b_members {
            assert_eq!(s.doc().get(n), Some(&before), "b-shard label {n:?} changed");
        }
        check_against_tree(&s);
    }

    #[test]
    fn split_merge_relabel_preserve_truth() {
        // A deep spine with a side branch per level: at cut depth 3 each
        // shadow spans three levels, so the top shard has a shadow-root
        // child with ≥ 2 non-stub descendants — i.e. it is splittable.
        let mut tree = XmlTree::new("r");
        let mut cur = tree.root();
        for _ in 0..9 {
            let next = tree.append_element(cur, "c");
            let side = tree.append_element(cur, "s");
            tree.append_element(side, "t");
            cur = next;
        }
        let mut s = sharded(&tree, 3);
        assert!(s.state().live_count() > 1, "deep tree must shard at cut 3");
        let before_order = s.ordered_nodes();
        // Split the heaviest shard (whichever splits first).
        let mut split_id = None;
        for sid in s.state().live_shards() {
            match split_shard(&mut s, sid) {
                Ok(Some(_)) => {
                    split_id = Some(sid);
                    break;
                }
                Ok(None) => continue,
                Err(e) => panic!("split failed: {e}"),
            }
        }
        let split_id = match split_id {
            Some(i) => i,
            None => panic!("no shard was splittable"),
        };
        check_against_tree(&s);
        assert_eq!(s.ordered_nodes(), before_order, "split must not reorder");
        // The new shard is the last slot; merge it back.
        let new_sid = ShardId((s.state().shard_slots() - 1) as u32);
        assert_eq!(
            s.state().cell(new_sid).and_then(|c| c.parent()),
            Some(split_id)
        );
        match merge_shard(&mut s, new_sid) {
            Ok(_) => {}
            Err(e) => panic!("merge failed: {e}"),
        }
        assert!(s.state().cell(new_sid).is_none(), "merged slot is retired");
        check_against_tree(&s);
        assert_eq!(s.ordered_nodes(), before_order, "merge must not reorder");
        // Relabel a shard in place: deterministic init ⇒ no label changes.
        for sid in s.state().live_shards() {
            let rep = match relabel_shard(&mut s, sid) {
                Ok(r) => r,
                Err(e) => panic!("relabel failed: {e}"),
            };
            assert!(rep.relabeled.is_empty(), "idempotent relabel of {sid}");
        }
        check_against_tree(&s);
    }

    #[test]
    fn maintain_shards_enforces_max_members() {
        let tree = random_tree(21, 80);
        let scheme =
            ShardedScheme::new(DeweyScheme, ShardPolicy::at_depth(2).with_max_shard_nodes(8));
        let mut s = match LabeledStore::build(scheme, tree.clone()) {
            Ok(s) => s,
            Err(e) => panic!("build failed: {e}"),
        };
        match maintain_shards(&mut s) {
            Ok(_) => {}
            Err(e) => panic!("maintain failed: {e}"),
        }
        for sid in s.state().live_shards() {
            let cell = match s.state().cell(sid) {
                Some(c) => c,
                None => continue,
            };
            // Either within bounds or genuinely unsplittable (no child
            // subtree with ≥ 2 members).
            if cell.members() > 8 {
                let root = cell.shadow().root();
                let splittable = cell.shadow().element_children(root).any(|c| {
                    !cell.is_stub(c)
                        && cell
                            .shadow()
                            .element_descendants(c)
                            .filter(|d| !cell.is_stub(*d))
                            .count()
                            >= 2
                });
                assert!(!splittable, "{sid} oversized but splittable");
            }
        }
        check_against_tree(&s);
    }

    /// The batch contract: every per-op outcome (`Ok`/`Err`), `inserted`,
    /// `removed`, and `side_updates` match the one-at-a-time facade, the
    /// final tree/labels/order are byte-identical, and the full report
    /// vector (relabel attribution included) is identical at every thread
    /// count. Relabel *attribution* may shift between ops of one batch
    /// relative to the facade, so for `relabeled` we assert the batch-wide
    /// union is a subset of the facade's union (the batch never invents a
    /// relabel, it may only skip net-no-op ones).
    #[test]
    fn batch_apply_matches_facade_and_is_thread_deterministic() {
        let tree = random_tree(3, 40);
        let mut seq_store = sharded(&tree, 2);
        let thread_counts = [1usize, 2, 8];
        let mut batch_stores: Vec<LabeledStore<ShardedScheme<DeweyScheme>>> =
            thread_counts.iter().map(|_| sharded(&tree, 2)).collect();
        let mut rng = Xoshiro256::seed_from_u64(1234);
        for round in 0..6 {
            let elems: Vec<NodeId> = seq_store.tree().elements().collect();
            let mut muts = Vec::new();
            for _ in 0..8 {
                let pick = elems[(rng.next_u64() as usize) % elems.len()];
                muts.push(match rng.next_u64() % 6 {
                    0 | 1 => Mutation::InsertBefore { anchor: pick, tag: "n".into() },
                    2 => Mutation::InsertSubtree {
                        pos: InsertPos::LastChildOf(pick),
                        xml: "<f><g/><h/></f>".into(),
                    },
                    3 => Mutation::Delete { target: pick },
                    4 => Mutation::InsertParent { target: pick, tag: "w".into() },
                    _ => Mutation::InsertSubtree {
                        pos: InsertPos::Before(pick),
                        xml: "<f>t</f>".into(),
                    },
                });
            }
            let seq_res: Vec<_> = muts.iter().map(|m| seq_store.apply(m)).collect();
            let batch_res: Vec<Vec<Result<RelabelReport, DynamicError>>> = thread_counts
                .iter()
                .zip(batch_stores.iter_mut())
                .map(|(&t, store)| xp_par::with_threads(t, || apply_batch_sharded(store, &muts)))
                .collect();
            // Determinism across thread counts: full reports byte-identical.
            for (i, res) in batch_res.iter().enumerate().skip(1) {
                for (k, (a, b)) in batch_res[0].iter().zip(res.iter()).enumerate() {
                    match (a, b) {
                        (Ok(a), Ok(b)) => assert_eq!(
                            a, b,
                            "threads {} vs {} round {round} op {k}",
                            thread_counts[0], thread_counts[i]
                        ),
                        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                        _ => panic!("round {round} op {k}: outcome varies by threads"),
                    }
                }
            }
            // Against the facade: outcomes, inserted, removed, side_updates
            // per op; relabeled union is a subset of the facade's union.
            let mut seq_union: Vec<NodeId> = Vec::new();
            let mut batch_union: Vec<NodeId> = Vec::new();
            for (k, (br, sr)) in batch_res[0].iter().zip(seq_res.iter()).enumerate() {
                match (br, sr) {
                    (Ok(b), Ok(s)) => {
                        assert_eq!(b.inserted, s.inserted, "round {round} op {k}");
                        assert_eq!(b.removed, s.removed, "round {round} op {k}");
                        assert_eq!(b.side_updates, s.side_updates, "round {round} op {k}");
                        batch_union.extend(b.relabeled.iter().copied());
                        seq_union.extend(s.relabeled.iter().copied());
                    }
                    (Err(_), Err(_)) => {}
                    _ => panic!("round {round} op {k}: {br:?} vs {sr:?}"),
                }
            }
            seq_union.sort();
            seq_union.dedup();
            batch_union.sort();
            batch_union.dedup();
            for n in &batch_union {
                assert!(
                    seq_union.contains(n),
                    "round {round}: batch relabeled {n:?} but the facade never did"
                );
            }
            // Final state byte-identical to the facade for every store.
            for (t, store) in thread_counts.iter().zip(batch_stores.iter()) {
                assert!(
                    trees_equal(store.tree(), seq_store.tree()),
                    "threads {t} round {round}: trees diverged"
                );
                for n in store.tree().elements() {
                    assert_eq!(
                        store.doc().get(n),
                        seq_store.doc().get(n),
                        "threads {t} round {round}: label of {n:?}"
                    );
                }
                assert_eq!(
                    store.ordered_nodes(),
                    seq_store.ordered_nodes(),
                    "threads {t} round {round}: order diverged"
                );
            }
        }
        for store in &batch_stores {
            check_against_tree(store);
        }
    }

    #[test]
    fn dirty_tracking_names_exactly_the_touched_shards() {
        let mut tree = XmlTree::new("r");
        let a = tree.append_element(tree.root(), "a");
        let b = tree.append_element(tree.root(), "b");
        tree.append_element(a, "x");
        tree.append_element(b, "x");
        let mut s = sharded(&tree, 1);
        let (_, _, _, state) = s.parts_mut();
        let _ = state.take_dirty(); // clear build-time flags
        let target = match s.tree().element_children(a).next() {
            Some(n) => n,
            None => panic!("a has a child"),
        };
        match s.insert_before(target, "z") {
            Ok(_) => {}
            Err(e) => panic!("insert failed: {e}"),
        }
        let a_sid = match s.state().shard_of_node(a) {
            Some(x) => x,
            None => panic!("a owned"),
        };
        let (_, _, _, state) = s.parts_mut();
        assert_eq!(state.take_dirty(), vec![a_sid]);
        assert!(state.take_dirty().is_empty(), "flags drained");
    }

    #[test]
    fn export_assemble_roundtrip() {
        let tree = random_tree(17, 45);
        let s = sharded(&tree, 2);
        let parts: Vec<ShardPart<DeweyScheme>> = s
            .state()
            .live_shards()
            .into_iter()
            .filter_map(|sid| s.state().cell(sid).map(|c| c.export(sid)))
            .collect();
        let (doc2, state2) = match s.scheme().assemble(s.tree(), parts) {
            Ok(x) => x,
            Err(e) => panic!("assemble failed: {e}"),
        };
        for n in s.tree().elements() {
            assert_eq!(s.doc().get(n), doc2.get(n), "label of {n:?}");
        }
        assert_eq!(state2.live_count(), s.state().live_count());
        for sid in s.state().live_shards() {
            let (a, b) = match (s.state().cell(sid), state2.cell(sid)) {
                (Some(a), Some(b)) => (a, b),
                _ => panic!("{sid} lost in roundtrip"),
            };
            assert_eq!(a.members(), b.members(), "{sid} members");
            assert_eq!(a.root_global(), b.root_global(), "{sid} root");
            assert_eq!(a.parent(), b.parent(), "{sid} parent");
        }
    }
}
