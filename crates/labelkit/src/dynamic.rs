//! The dynamic mutation protocol: [`DynamicScheme`], [`RelabelReport`], and
//! the [`LabeledStore`] facade.
//!
//! The paper's subject is *dynamic* ordered trees, so a scheme is more than
//! its label ops: it is label ops **plus** an update protocol. This module
//! defines that protocol once, for every scheme in the workspace:
//!
//! * [`DynamicScheme`] extends [`Scheme`] with typed mutations
//!   (`insert_before`, `insert_subtree`, `insert_parent`, `delete`,
//!   `move_subtree`), each returning a [`RelabelReport`] that names exactly
//!   which labels the mutation touched.
//! * [`LabeledStore`] owns the [`XmlTree`], the [`LabeledDoc`], and the
//!   scheme's side state (the prime scheme's SC table lives there), so
//!   callers get one mutation API regardless of scheme.
//! * [`RelabelReport`] composes under [`RelabelReport::merge`] (sequential
//!   application), which is how multi-step mutations such as
//!   [`DynamicScheme::move_subtree`] account their true cost.
//!
//! Schemes report *true* relabel cost: a static scheme that must renumber
//! half the document after an insertion reports every one of those nodes,
//! which is precisely the measurement Figures 16–18 are built on.

use crate::codec::CodecError;
use crate::doc::LabeledDoc;
use crate::scheme::Scheme;
use std::cmp::Ordering;
use xp_xmltree::{NodeId, XmlTree};

/// Which labels a mutation changed.
///
/// The three node lists are disjoint: a node is *inserted* (labeled for the
/// first time), *relabeled* (existing label replaced), or *removed* (label
/// dropped). `side_updates` counts scheme-side bookkeeping that the paper's
/// accounting charges like a relabel — for the prime scheme, SC records
/// re-solved ("We consider a record update in the SC table as a node that
/// requires re-labeling").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelabelReport {
    /// Nodes labeled for the first time by this mutation.
    pub inserted: Vec<NodeId>,
    /// Pre-existing nodes whose labels changed.
    pub relabeled: Vec<NodeId>,
    /// Nodes whose labels were dropped (deleted subtrees).
    pub removed: Vec<NodeId>,
    /// Scheme-side record updates (SC records for the prime scheme; 0 for
    /// schemes whose state lives entirely in the labels).
    pub side_updates: usize,
}

impl RelabelReport {
    /// An empty report (the identity of [`RelabelReport::merge`]).
    pub fn new() -> Self {
        RelabelReport::default()
    }

    /// A report consisting of a single fresh node.
    pub fn single_insert(node: NodeId) -> Self {
        RelabelReport { inserted: vec![node], ..Default::default() }
    }

    /// Number of labels written (inserted + relabeled) — Figures 16/17's
    /// "nodes to relabel" metric.
    pub fn labels_touched(&self) -> usize {
        self.inserted.len() + self.relabeled.len()
    }

    /// Total cost under the paper's accounting: labels written plus one per
    /// scheme-side record update — Figure 18's metric.
    pub fn total_cost(&self) -> usize {
        self.labels_touched() + self.side_updates
    }

    /// `true` iff the mutation touched nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.relabeled.is_empty()
            && self.removed.is_empty()
            && self.side_updates == 0
    }

    /// Sequential composition: `self` happened first, `later` after it.
    ///
    /// The algebra (see DESIGN.md §8):
    /// * insert ∘ relabel = insert (relabeling a node this composite op
    ///   created is still just one insertion),
    /// * insert ∘ remove = nothing (the node never escaped the op),
    /// * remove ∘ insert = relabel (the node existed before and after, with
    ///   a possibly different label),
    /// * `side_updates` add.
    pub fn merge(&mut self, later: RelabelReport) {
        for n in later.removed {
            if let Some(i) = self.inserted.iter().position(|&x| x == n) {
                // Inserted then removed inside the composite op: cancels.
                self.inserted.swap_remove(i);
                continue;
            }
            if let Some(i) = self.relabeled.iter().position(|&x| x == n) {
                self.relabeled.swap_remove(i);
            }
            if !self.removed.contains(&n) {
                self.removed.push(n);
            }
        }
        for n in later.inserted {
            if let Some(i) = self.removed.iter().position(|&x| x == n) {
                // Removed then re-inserted: the node survived the composite
                // op with a (possibly) new label.
                self.removed.swap_remove(i);
                if !self.relabeled.contains(&n) {
                    self.relabeled.push(n);
                }
                continue;
            }
            if !self.inserted.contains(&n) {
                self.inserted.push(n);
            }
        }
        for n in later.relabeled {
            if !self.inserted.contains(&n) && !self.relabeled.contains(&n) {
                self.relabeled.push(n);
            }
        }
        self.side_updates += later.side_updates;
    }
}

/// A failure of a dynamic mutation. The structural validation errors are
/// raised before any state changes; `Scheme` wraps a scheme-specific error
/// (e.g. the prime pipeline's typed error), after which the store has rolled
/// the mutation back or repaired itself to a consistent state.
#[derive(Debug)]
pub enum DynamicError {
    /// The target or anchor node carries no label in this store.
    UnknownNode(NodeId),
    /// The mutation targeted the document root (which has no parent or
    /// siblings and cannot be deleted or moved).
    RootTarget(NodeId),
    /// `move_subtree` would place a subtree inside itself.
    MoveIntoSelf {
        /// The subtree being moved.
        subject: NodeId,
        /// The offending destination inside it.
        dest: NodeId,
    },
    /// A subtree fragment failed to parse.
    Fragment(String),
    /// A previous mutation failed partway and left scheme state with an
    /// open recovery journal: checked read paths
    /// ([`LabeledStore::try_ordered_nodes`]) refuse to answer until
    /// recovery runs, instead of returning undefined orders.
    NeedsRecovery,
    /// The scheme's own mutation machinery failed.
    Scheme(Box<dyn std::error::Error + Send + Sync + 'static>),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::UnknownNode(n) => write!(f, "node {n} is not labeled in this store"),
            DynamicError::RootTarget(n) => {
                write!(f, "node {n} is the document root, which cannot anchor this mutation")
            }
            DynamicError::MoveIntoSelf { subject, dest } => {
                write!(f, "cannot move {subject} to {dest}: destination lies inside the subtree")
            }
            DynamicError::Fragment(msg) => write!(f, "bad subtree fragment: {msg}"),
            DynamicError::NeedsRecovery => {
                write!(f, "store state has an open recovery journal; recover before reading")
            }
            DynamicError::Scheme(e) => write!(f, "scheme mutation failed: {e}"),
        }
    }
}

impl std::error::Error for DynamicError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DynamicError::Scheme(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

/// Where an insertion lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPos {
    /// Immediately before this node, as its previous sibling.
    Before(NodeId),
    /// As the last child of this node.
    LastChildOf(NodeId),
}

impl InsertPos {
    /// The node the position is expressed relative to.
    pub fn anchor(&self) -> NodeId {
        match *self {
            InsertPos::Before(n) | InsertPos::LastChildOf(n) => n,
        }
    }
}

/// A mutation in data form — what the CLI and the property tests drive
/// [`LabeledStore::apply`] with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Insert a new element named `tag` before `anchor`.
    InsertBefore {
        /// The sibling the new element precedes.
        anchor: NodeId,
        /// Tag of the new element.
        tag: String,
    },
    /// Insert a parsed XML fragment at `pos`.
    InsertSubtree {
        /// Where the fragment root lands.
        pos: InsertPos,
        /// The fragment, as XML source.
        xml: String,
    },
    /// Wrap `target` (and its subtree) in a new parent element named `tag`.
    InsertParent {
        /// The node being wrapped.
        target: NodeId,
        /// Tag of the wrapper.
        tag: String,
    },
    /// Delete `target` and its subtree.
    Delete {
        /// The subtree root to delete.
        target: NodeId,
    },
    /// Detach `target`'s subtree and re-insert it at `pos`.
    MoveSubtree {
        /// The subtree root being moved.
        target: NodeId,
        /// Where it goes.
        pos: InsertPos,
    },
}

// Wire tags of the mutation codec (WAL frame payloads — see DESIGN.md §11).
const MUT_INSERT_BEFORE: u64 = 0;
const MUT_INSERT_SUBTREE: u64 = 1;
const MUT_INSERT_PARENT: u64 = 2;
const MUT_DELETE: u64 = 3;
const MUT_MOVE_SUBTREE: u64 = 4;

const POS_BEFORE: u64 = 0;
const POS_LAST_CHILD_OF: u64 = 1;

fn write_node(out: &mut Vec<u8>, node: NodeId) {
    crate::codec::write_varint(out, node.index() as u64);
}

fn read_node(input: &mut &[u8], tree: &XmlTree) -> Result<NodeId, CodecError> {
    let idx = crate::codec::read_varint(input)?;
    usize::try_from(idx)
        .ok()
        .and_then(|i| tree.node_at(i))
        .ok_or(CodecError::Corrupt("mutation names a node outside the arena"))
}

fn write_pos(out: &mut Vec<u8>, pos: InsertPos) {
    match pos {
        InsertPos::Before(n) => {
            crate::codec::write_varint(out, POS_BEFORE);
            write_node(out, n);
        }
        InsertPos::LastChildOf(n) => {
            crate::codec::write_varint(out, POS_LAST_CHILD_OF);
            write_node(out, n);
        }
    }
}

fn read_pos(input: &mut &[u8], tree: &XmlTree) -> Result<InsertPos, CodecError> {
    match crate::codec::read_varint(input)? {
        POS_BEFORE => Ok(InsertPos::Before(read_node(input, tree)?)),
        POS_LAST_CHILD_OF => Ok(InsertPos::LastChildOf(read_node(input, tree)?)),
        _ => Err(CodecError::Corrupt("unknown insert position tag")),
    }
}

fn read_string(input: &mut &[u8]) -> Result<String, CodecError> {
    let bytes = crate::codec::read_bytes(input)?;
    std::str::from_utf8(bytes)
        .map(str::to_owned)
        .map_err(|_| CodecError::Corrupt("mutation string is not UTF-8"))
}

impl Mutation {
    /// Appends the wire form of this mutation to `out`. Node references are
    /// stored as arena slot indices — valid across process restarts because
    /// slots are never reused and checkpoints preserve arena layout exactly
    /// ([`xp_xmltree::TreeSnapshot`]).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Mutation::InsertBefore { anchor, tag } => {
                crate::codec::write_varint(out, MUT_INSERT_BEFORE);
                write_node(out, *anchor);
                crate::codec::write_bytes(out, tag.as_bytes());
            }
            Mutation::InsertSubtree { pos, xml } => {
                crate::codec::write_varint(out, MUT_INSERT_SUBTREE);
                write_pos(out, *pos);
                crate::codec::write_bytes(out, xml.as_bytes());
            }
            Mutation::InsertParent { target, tag } => {
                crate::codec::write_varint(out, MUT_INSERT_PARENT);
                write_node(out, *target);
                crate::codec::write_bytes(out, tag.as_bytes());
            }
            Mutation::Delete { target } => {
                crate::codec::write_varint(out, MUT_DELETE);
                write_node(out, *target);
            }
            Mutation::MoveSubtree { target, pos } => {
                crate::codec::write_varint(out, MUT_MOVE_SUBTREE);
                write_node(out, *target);
                write_pos(out, *pos);
            }
        }
    }

    /// Decodes one mutation from the front of `input`, resolving node
    /// references against `tree`'s arena. Fails with a typed
    /// [`CodecError`] on unknown tags, non-UTF-8 strings, or node indices
    /// the arena does not (yet) contain.
    pub fn decode(input: &mut &[u8], tree: &XmlTree) -> Result<Mutation, CodecError> {
        match crate::codec::read_varint(input)? {
            MUT_INSERT_BEFORE => Ok(Mutation::InsertBefore {
                anchor: read_node(input, tree)?,
                tag: read_string(input)?,
            }),
            MUT_INSERT_SUBTREE => Ok(Mutation::InsertSubtree {
                pos: read_pos(input, tree)?,
                xml: read_string(input)?,
            }),
            MUT_INSERT_PARENT => Ok(Mutation::InsertParent {
                target: read_node(input, tree)?,
                tag: read_string(input)?,
            }),
            MUT_DELETE => Ok(Mutation::Delete { target: read_node(input, tree)? }),
            MUT_MOVE_SUBTREE => Ok(Mutation::MoveSubtree {
                target: read_node(input, tree)?,
                pos: read_pos(input, tree)?,
            }),
            _ => Err(CodecError::Corrupt("unknown mutation tag")),
        }
    }
}

/// A [`Scheme`] that additionally supports incremental mutations.
///
/// Mutations operate on three pieces the [`LabeledStore`] owns: the tree,
/// the label table, and `State` — whatever the scheme keeps beside the
/// labels (the prime scheme's SC table and prime allocator; `()` for schemes
/// whose labels are self-contained).
///
/// # Contract
///
/// * On `Ok(report)`, tree / labels / state are mutually consistent and the
///   report lists exactly the label writes that happened.
/// * On `Err`, the implementation must leave the store consistent: either
///   the mutation was fully rolled back, or (for multi-step mutations) a
///   prefix of it was applied cleanly. Labels and tree must agree — every
///   attached element labeled, every label on an attached element.
/// * `insert_subtree` copies the fragment's element structure and text
///   content; attributes are not part of the label-store model.
pub trait DynamicScheme: Scheme {
    /// Scheme-side state beyond the labels (e.g. SC table + prime pool).
    type State;

    /// Labels `tree` from scratch and builds the scheme state.
    fn init(&self, tree: &XmlTree) -> Result<(LabeledDoc<Self::Label>, Self::State), DynamicError>;

    /// Inserts one new element named `tag` immediately before `anchor`.
    fn insert_before(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<Self::Label>,
        state: &mut Self::State,
        anchor: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError>;

    /// Inserts a copy of `fragment` (root element and all) at `pos`.
    fn insert_subtree(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<Self::Label>,
        state: &mut Self::State,
        pos: InsertPos,
        fragment: &XmlTree,
    ) -> Result<RelabelReport, DynamicError>;

    /// Wraps `target` in a new parent element named `tag` (Figure 17's
    /// non-leaf insertion).
    fn insert_parent(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<Self::Label>,
        state: &mut Self::State,
        target: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError>;

    /// Deletes `target` and its subtree.
    fn delete(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<Self::Label>,
        state: &mut Self::State,
        target: NodeId,
    ) -> Result<RelabelReport, DynamicError>;

    /// Moves `target`'s subtree to `pos`.
    ///
    /// The default implementation is delete + re-insert of a structural
    /// copy, merged into one report — the honest cost for schemes without a
    /// cheaper move. The moved subtree receives **fresh node ids** (arena
    /// slots are never reused); callers needing the new ids read them from
    /// the report's `inserted` list (preorder).
    fn move_subtree(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<Self::Label>,
        state: &mut Self::State,
        target: NodeId,
        pos: InsertPos,
    ) -> Result<RelabelReport, DynamicError> {
        validate_move(tree, doc, target, pos)?;
        let fragment = copy_fragment(tree, target);
        let mut report = self.delete(tree, doc, state, target)?;
        let insert = self.insert_subtree(tree, doc, state, pos, &fragment)?;
        report.merge(insert);
        Ok(report)
    }

    /// Document-order comparison of two labeled nodes, from the scheme's own
    /// order machinery (label comparison, or `SC mod self` for prime).
    fn doc_cmp(
        &self,
        doc: &LabeledDoc<Self::Label>,
        state: &Self::State,
        a: NodeId,
        b: NodeId,
    ) -> Ordering;

    /// `true` iff `state` carries an open recovery journal from a mutation
    /// that failed partway — reads are undefined until recovery runs.
    /// Schemes whose state lives entirely in the labels have nothing to
    /// recover; the prime scheme consults its SC table's journal.
    fn needs_recovery(&self, state: &Self::State) -> bool {
        let _ = state;
        false
    }
}

/// Shared validation for [`DynamicScheme::move_subtree`]: the subject must
/// be a labeled non-root node and the destination must not lie inside it.
pub fn validate_move<L: crate::LabelOps>(
    tree: &XmlTree,
    doc: &LabeledDoc<L>,
    target: NodeId,
    pos: InsertPos,
) -> Result<(), DynamicError> {
    if doc.get(target).is_none() {
        return Err(DynamicError::UnknownNode(target));
    }
    if target == tree.root() {
        return Err(DynamicError::RootTarget(target));
    }
    let dest = pos.anchor();
    if doc.get(dest).is_none() {
        return Err(DynamicError::UnknownNode(dest));
    }
    if dest == target || tree.is_ancestor(target, dest) {
        return Err(DynamicError::MoveIntoSelf { subject: target, dest });
    }
    if let InsertPos::Before(anchor) = pos {
        if anchor == tree.root() {
            return Err(DynamicError::RootTarget(anchor));
        }
    }
    Ok(())
}

/// Deep-copies `node`'s subtree (element structure and text content) into a
/// fresh single-rooted tree. Attributes are not copied — see the
/// [`DynamicScheme`] contract.
pub fn copy_fragment(tree: &XmlTree, node: NodeId) -> XmlTree {
    let mut frag = XmlTree::new(tree.tag(node).unwrap_or("node"));
    let frag_root = frag.root();
    copy_children(tree, node, &mut frag, frag_root);
    frag
}

fn copy_children(src: &XmlTree, from: NodeId, dst: &mut XmlTree, to: NodeId) {
    let kids: Vec<NodeId> = src.children(from).collect();
    for child in kids {
        if let Some(tag) = src.tag(child) {
            let new = dst.append_element(to, tag);
            copy_children(src, child, dst, new);
        } else if let Some(text) = src.text(child) {
            dst.append_text(to, text);
        }
    }
}

/// Grafts a copy of `fragment` into `tree` at `pos` and returns the new
/// **element** node ids in preorder (fragment root first). Purely
/// structural — the caller labels the returned nodes.
pub fn graft_fragment(tree: &mut XmlTree, pos: InsertPos, fragment: &XmlTree) -> Vec<NodeId> {
    let root_tag = fragment.tag(fragment.root()).unwrap_or("node").to_string();
    let new_root = tree.create_element(root_tag);
    match pos {
        InsertPos::Before(anchor) => tree.insert_before(anchor, new_root),
        InsertPos::LastChildOf(parent) => tree.append_child(parent, new_root),
    }
    let mut created = vec![new_root];
    graft_children(fragment, fragment.root(), tree, new_root, &mut created);
    created
}

fn graft_children(
    src: &XmlTree,
    from: NodeId,
    dst: &mut XmlTree,
    to: NodeId,
    created: &mut Vec<NodeId>,
) {
    let kids: Vec<NodeId> = src.children(from).collect();
    for child in kids {
        if let Some(tag) = src.tag(child) {
            let tag = tag.to_string();
            let new = dst.append_element(to, tag);
            created.push(new);
            graft_children(src, child, dst, new, created);
        } else if let Some(text) = src.text(child) {
            let text = text.to_string();
            dst.append_text(to, text);
        }
    }
}

/// Relabel-on-exhaustion fallback: relabels the whole document from scratch
/// with `scheme` and replaces `doc`, reporting the true diff (every changed
/// label, every fresh label, every dropped one). This is the honest cost a
/// static scheme pays when a mutation leaves no room for local repair.
pub fn full_relabel<S: Scheme + ?Sized>(
    scheme: &S,
    tree: &XmlTree,
    doc: &mut LabeledDoc<S::Label>,
) -> RelabelReport {
    let fresh = scheme.label(tree);
    let mut report = RelabelReport::new();
    for (node, label) in fresh.iter() {
        match doc.get(node) {
            Some(old) if old == label => {}
            Some(_) => report.relabeled.push(node),
            None => report.inserted.push(node),
        }
    }
    for &node in doc.nodes() {
        if fresh.get(node).is_none() {
            report.removed.push(node);
        }
    }
    *doc = fresh;
    report
}

/// The unified dynamic-labeling facade: one store that owns the tree, the
/// labels, and the scheme state, with a single mutation API for every
/// scheme.
///
/// ```
/// # use xp_labelkit::{LabeledStore, DynamicScheme};
/// # fn demo<S: DynamicScheme>(scheme: S, tree: xp_xmltree::XmlTree)
/// #     -> Result<(), xp_labelkit::DynamicError> {
/// let mut store = LabeledStore::build(scheme, tree)?;
/// let anchor = store.tree().first_child(store.tree().root()).unwrap();
/// let report = store.insert_before(anchor, "item")?;
/// assert_eq!(report.inserted.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LabeledStore<S: DynamicScheme> {
    scheme: S,
    tree: XmlTree,
    doc: LabeledDoc<S::Label>,
    state: S::State,
}

impl<S: DynamicScheme + Clone> Clone for LabeledStore<S>
where
    S::State: Clone,
{
    fn clone(&self) -> Self {
        self.fork()
    }
}

impl<S: DynamicScheme> LabeledStore<S> {
    /// Labels `tree` with `scheme` and takes ownership of everything.
    pub fn build(scheme: S, tree: XmlTree) -> Result<Self, DynamicError> {
        let (doc, state) = scheme.init(&tree)?;
        Ok(LabeledStore { scheme, tree, doc, state })
    }

    /// Reassembles a store from previously captured parts (a persistence
    /// layer's checkpoint). The caller asserts the parts are mutually
    /// consistent — scheme-side validation (e.g. the prime scheme's
    /// label/SC cross-check) happens while constructing `state`.
    pub fn from_parts(scheme: S, tree: XmlTree, doc: LabeledDoc<S::Label>, state: S::State) -> Self {
        LabeledStore { scheme, tree, doc, state }
    }

    /// The scheme.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The document tree.
    pub fn tree(&self) -> &XmlTree {
        &self.tree
    }

    /// The label table.
    pub fn doc(&self) -> &LabeledDoc<S::Label> {
        &self.doc
    }

    /// The scheme-side state (the prime scheme's ordered document — SC table
    /// and all — lives here).
    pub fn state(&self) -> &S::State {
        &self.state
    }

    /// Simultaneous mutable access to every part of the store, for
    /// crate-internal maintenance paths (the shard layer's split / merge /
    /// relabel operations and its batch applier) that must coordinate tree,
    /// labels, and scheme state in one motion.
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (&S, &mut XmlTree, &mut LabeledDoc<S::Label>, &mut S::State) {
        (&self.scheme, &mut self.tree, &mut self.doc, &mut self.state)
    }

    /// The snapshot API: a deep, fully independent copy of the store —
    /// tree, labels, and scheme state. A fork cut at epoch *e* answers
    /// every query exactly as the original did at *e*, no matter what is
    /// applied to either side afterwards; this is what gives a concurrent
    /// reader an isolated, consistent labeling while the single writer
    /// applies the next epoch (see `xp-server`).
    pub fn fork(&self) -> Self
    where
        S: Clone,
        S::State: Clone,
    {
        LabeledStore {
            scheme: self.scheme.clone(),
            tree: self.tree.clone(),
            doc: self.doc.clone(),
            state: self.state.clone(),
        }
    }

    /// Inserts a new element named `tag` immediately before `anchor`.
    pub fn insert_before(
        &mut self,
        anchor: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        if self.doc.get(anchor).is_none() {
            return Err(DynamicError::UnknownNode(anchor));
        }
        if anchor == self.tree.root() {
            return Err(DynamicError::RootTarget(anchor));
        }
        self.scheme.insert_before(&mut self.tree, &mut self.doc, &mut self.state, anchor, tag)
    }

    /// Inserts a copy of `fragment` at `pos`.
    pub fn insert_subtree(
        &mut self,
        pos: InsertPos,
        fragment: &XmlTree,
    ) -> Result<RelabelReport, DynamicError> {
        let anchor = pos.anchor();
        if self.doc.get(anchor).is_none() {
            return Err(DynamicError::UnknownNode(anchor));
        }
        if let InsertPos::Before(a) = pos {
            if a == self.tree.root() {
                return Err(DynamicError::RootTarget(a));
            }
        }
        self.scheme.insert_subtree(&mut self.tree, &mut self.doc, &mut self.state, pos, fragment)
    }

    /// Wraps `target` in a new parent element named `tag`.
    pub fn insert_parent(
        &mut self,
        target: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        if self.doc.get(target).is_none() {
            return Err(DynamicError::UnknownNode(target));
        }
        if target == self.tree.root() {
            return Err(DynamicError::RootTarget(target));
        }
        self.scheme.insert_parent(&mut self.tree, &mut self.doc, &mut self.state, target, tag)
    }

    /// Deletes `target` and its subtree.
    pub fn delete(&mut self, target: NodeId) -> Result<RelabelReport, DynamicError> {
        if self.doc.get(target).is_none() {
            return Err(DynamicError::UnknownNode(target));
        }
        if target == self.tree.root() {
            return Err(DynamicError::RootTarget(target));
        }
        self.scheme.delete(&mut self.tree, &mut self.doc, &mut self.state, target)
    }

    /// Moves `target`'s subtree to `pos`. See
    /// [`DynamicScheme::move_subtree`] for the node-id caveat.
    pub fn move_subtree(
        &mut self,
        target: NodeId,
        pos: InsertPos,
    ) -> Result<RelabelReport, DynamicError> {
        self.scheme.move_subtree(&mut self.tree, &mut self.doc, &mut self.state, target, pos)
    }

    /// Applies a [`Mutation`], dispatching to the typed methods. Fragment
    /// XML is parsed here.
    pub fn apply(&mut self, mutation: &Mutation) -> Result<RelabelReport, DynamicError> {
        match mutation {
            Mutation::InsertBefore { anchor, tag } => self.insert_before(*anchor, tag),
            Mutation::InsertSubtree { pos, xml } => {
                let fragment = xp_xmltree::parse(xml)
                    .map_err(|e| DynamicError::Fragment(e.to_string()))?;
                self.insert_subtree(*pos, &fragment)
            }
            Mutation::InsertParent { target, tag } => self.insert_parent(*target, tag),
            Mutation::Delete { target } => self.delete(*target),
            Mutation::MoveSubtree { target, pos } => self.move_subtree(*target, *pos),
        }
    }

    /// Document-order comparison of two labeled nodes.
    pub fn doc_cmp(&self, a: NodeId, b: NodeId) -> Ordering {
        self.scheme.doc_cmp(&self.doc, &self.state, a, b)
    }

    /// Every labeled node, sorted into document order by the scheme's own
    /// order machinery — the basis for an order oracle over the store.
    ///
    /// Answers are undefined while [`LabeledStore::needs_recovery`] is
    /// `true`; use [`LabeledStore::try_ordered_nodes`] on paths that may
    /// read a store whose last mutation failed.
    pub fn ordered_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.doc.nodes().to_vec();
        nodes.sort_by(|&a, &b| self.scheme.doc_cmp(&self.doc, &self.state, a, b));
        nodes
    }

    /// `true` iff the scheme state carries an open recovery journal from a
    /// mutation that failed partway (see [`DynamicScheme::needs_recovery`]).
    pub fn needs_recovery(&self) -> bool {
        self.scheme.needs_recovery(&self.state)
    }

    /// Checked variant of [`LabeledStore::ordered_nodes`]: refuses with
    /// [`DynamicError::NeedsRecovery`] instead of sorting by orders read
    /// from half-mutated scheme state.
    pub fn try_ordered_nodes(&self) -> Result<Vec<NodeId>, DynamicError> {
        if self.needs_recovery() {
            return Err(DynamicError::NeedsRecovery);
        }
        Ok(self.ordered_nodes())
    }

    /// Throws the labels and state away and relabels from scratch,
    /// reporting the diff. This is the relabel-from-scratch oracle the
    /// differential tests compare against, and the recovery of last resort.
    pub fn relabel_from_scratch(&mut self) -> Result<RelabelReport, DynamicError> {
        let (fresh, state) = self.scheme.init(&self.tree)?;
        let mut report = RelabelReport::new();
        for (node, label) in fresh.iter() {
            match self.doc.get(node) {
                Some(old) if old == label => {}
                Some(_) => report.relabeled.push(node),
                None => report.inserted.push(node),
            }
        }
        for &node in self.doc.nodes() {
            if fresh.get(node).is_none() {
                report.removed.push(node);
            }
        }
        self.doc = fresh;
        self.state = state;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        // NodeId has no public constructor; manufacture ids through a tree.
        let mut tree = XmlTree::new("r");
        let mut last = tree.root();
        for _ in 0..i {
            last = tree.append_element(tree.root(), "x");
        }
        last
    }

    #[test]
    fn merge_cancels_insert_then_remove() {
        let a = n(1);
        let mut r = RelabelReport::single_insert(a);
        r.merge(RelabelReport { removed: vec![a], ..Default::default() });
        assert!(r.is_empty());
    }

    #[test]
    fn merge_turns_remove_then_insert_into_relabel() {
        let a = n(1);
        let mut r = RelabelReport { removed: vec![a], side_updates: 2, ..Default::default() };
        r.merge(RelabelReport { inserted: vec![a], side_updates: 3, ..Default::default() });
        assert_eq!(r.relabeled, vec![a]);
        assert!(r.removed.is_empty() && r.inserted.is_empty());
        assert_eq!(r.side_updates, 5);
        assert_eq!(r.total_cost(), 1 + 5);
    }

    #[test]
    fn merge_keeps_insert_over_later_relabel() {
        let a = n(1);
        let b = n(2);
        let mut r = RelabelReport::single_insert(a);
        r.merge(RelabelReport { relabeled: vec![a, b], ..Default::default() });
        assert_eq!(r.inserted, vec![a]);
        assert_eq!(r.relabeled, vec![b]);
        assert_eq!(r.labels_touched(), 2);
    }

    #[test]
    fn copy_and_graft_round_trip_structure_and_text() {
        let src = xp_xmltree::parse("<a><b>hi<c/></b><d/></a>").unwrap();
        let b = src.first_child(src.root()).unwrap();
        let frag = copy_fragment(&src, b);
        assert_eq!(frag.tag(frag.root()), Some("b"));
        assert_eq!(frag.elements().count(), 2, "b and c");

        let mut dst = xp_xmltree::parse("<r><x/></r>").unwrap();
        let x = dst.first_child(dst.root()).unwrap();
        let created = graft_fragment(&mut dst, InsertPos::Before(x), &frag);
        assert_eq!(created.len(), 2);
        assert_eq!(dst.tag(created[0]), Some("b"));
        assert_eq!(dst.first_child(dst.root()), Some(created[0]));
        let text: Vec<&str> = dst.children(created[0]).filter_map(|c| dst.text(c)).collect();
        assert_eq!(text, ["hi"]);
    }
}
