//! # xmlprime — prime-number labeling for dynamic ordered XML trees
//!
//! A from-scratch Rust reproduction of Wu, Lee & Hsu,
//! *A Prime Number Labeling Scheme for Dynamic Ordered XML Trees*
//! (ICDE 2004), packaged as one facade crate.
//!
//! ## The 60-second tour
//!
//! ```
//! use xmlprime::prelude::*;
//!
//! // Parse an ordered XML document (from-scratch parser).
//! let mut tree = parse("<book><author/><author/><author/></book>").unwrap();
//!
//! // Label it with the prime scheme + SC order table (chunk size 5).
//! let mut doc = OrderedPrimeDoc::build(&tree, 5).unwrap();
//!
//! // Ancestor tests are pure label arithmetic: label(y) mod label(x) == 0.
//! let book = tree.root();
//! let first_author = tree.first_child(book).unwrap();
//! assert!(doc.labels().label(book).is_ancestor_of(doc.labels().label(first_author)));
//!
//! // Order-sensitive insertion: a new SECOND author. No cascade of
//! // relabeling — the SC table shifts order numbers instead.
//! let second = tree.element_children(book).nth(1).unwrap();
//! let report = doc.insert_sibling_before(&mut tree, second, "author").unwrap();
//! assert_eq!(doc.order_of(report.node), 2);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`bignum`] | `xp-bignum` | arbitrary-precision integers (from scratch) |
//! | [`primes`] | `xp-primes` | sieves, Miller–Rabin, prime pools |
//! | [`xmltree`] | `xp-xmltree` | ordered tree store + XML parser |
//! | [`datagen`] | `xp-datagen` | synthetic corpora (Table 1, Shakespeare) |
//! | [`labelkit`] | `xp-labelkit` | `Scheme`/`LabelOps` traits, bit strings |
//! | [`prime`] | `xp-prime` | **the paper's scheme**: top-down/bottom-up, Opt1–3, CRT, SC table |
//! | [`baselines`] | `xp-baselines` | Interval/XISS, Prefix-1, Prefix-2, Dewey |
//! | [`query`] | `xp-query` | label-predicate XPath-subset engine |
//! | [`store`] | `xp-store` | crash-safe disk store: WAL + checkpoint manifest |
//! | [`server`] | `xp-server` | concurrent label server with epoch-snapshot isolation |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xp_baselines as baselines;
pub use xp_bignum as bignum;
pub use xp_datagen as datagen;
pub use xp_labelkit as labelkit;
pub use xp_prime as prime;
pub use xp_primes as primes;
pub use xp_query as query;
pub use xp_server as server;
pub use xp_store as store;
pub use xp_xmltree as xmltree;

/// The most common imports in one place.
pub mod prelude {
    pub use xp_baselines::{
        DeweyScheme, FloatIntervalScheme, IntervalScheme, Prefix1Scheme, Prefix2Scheme,
    };
    pub use xp_bignum::UBig;
    pub use xp_labelkit::{
        take_dirty_shards, DynamicError, DynamicScheme, InsertPos, LabelOps, LabeledDoc,
        LabeledStore, Mutation, OrderedLabel, RelabelReport, Scheme, ShardId, ShardPolicy,
        ShardedLabel, ShardedScheme,
    };
    pub use xp_prime::{
        DynamicPrime, OrderedPrimeDoc, PrimeLabel, PrimeOptions, ScTable, TopDownPrime,
    };
    pub use xp_query::{Evaluator, IntervalEvaluator, Path, Prefix2Evaluator, PrimeEvaluator};
    pub use xp_xmltree::{parse, NodeId, TreeStats, XmlTree};
}
