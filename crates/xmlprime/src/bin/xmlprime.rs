//! `xmlprime` — a command-line front end to the labeling library.
//!
//! ```text
//! xmlprime stats  <file.xml>
//! xmlprime label  <file.xml> [--scheme S] [--limit N]
//! xmlprime query  <file.xml> <path> [--scheme S]
//! xmlprime order  <file.xml> [--chunk N]
//! ```
//!
//! `<file.xml>` may be `-` for stdin. Schemes: `prime` (default),
//! `prime-opt`, `interval`, `prefix1`, `prefix2`, `dewey`, `float`.

use std::io::Read;
use std::process::ExitCode;
use xmlprime::prelude::*;
use xmlprime::query::engine::QueryError;
use xmlprime::xmltree::{ParseError, ParseErrorKind};

const USAGE: &str = "\
xmlprime — prime-number labeling for dynamic ordered XML trees

USAGE:
    xmlprime stats  <file.xml>
    xmlprime label  <file.xml> [--scheme S] [--limit N]
    xmlprime query  <file.xml> <path> [--scheme prime|interval|prefix2]
                    [--explain]  print the evaluation plan first
                    [--sql]      print the paper's SQL translation instead
    xmlprime order  <file.xml> [--chunk N]

    <file.xml> may be '-' to read from stdin.

SCHEMES (for `label`):
    prime       top-down prime scheme, no optimizations (default)
    prime-opt   with Opt1 (reserved primes) + Opt2 (2^n leaves)
    interval    XISS-style (order, size) intervals
    prefix1     basic binary prefix labels
    prefix2     Cohen-Kaplan-Milo optimized prefix labels
    dewey       Dewey sibling-ordinal vectors
    float       QRS floating-point intervals

EXAMPLES:
    xmlprime stats corpus.xml
    xmlprime label corpus.xml --scheme prime-opt --limit 20
    xmlprime query corpus.xml '//PLAY//ACT[3]//LINE' --scheme interval
    echo '<a><b/><c/></a>' | xmlprime order - --chunk 5
";

/// A classified CLI failure: each class maps to a distinct exit code so
/// scripts can tell bad invocations, bad input, exceeded resource budgets,
/// labeling failures, and query failures apart.
enum CliError {
    /// Exit 1: bad command line.
    Usage(String),
    /// Exit 2: input could not be read or parsed.
    Input(String),
    /// Exit 3: a resource limit was exceeded (parser limits, bignum
    /// bit budget, query row/step budget).
    Limit(String),
    /// Exit 4: labeling or SC-table maintenance failed.
    Label(String),
    /// Exit 5: query evaluation failed.
    Query(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            CliError::Usage(_) => 1,
            CliError::Input(_) => 2,
            CliError::Limit(_) => 3,
            CliError::Label(_) => 4,
            CliError::Query(_) => 5,
        })
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Input(m)
            | CliError::Limit(m)
            | CliError::Label(m)
            | CliError::Query(m) => m,
        }
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Parser failures: limit violations get the limit exit code, everything
/// else is an input error.
fn classify_parse(file: &str, e: ParseError) -> CliError {
    match e.kind {
        ParseErrorKind::LimitExceeded(_) => CliError::Limit(format!("{file}: {e}")),
        _ => CliError::Input(format!("{file}: parse error at {e}")),
    }
}

/// Labeling failures: budget violations get the limit exit code.
fn classify_label(e: xmlprime::prime::Error) -> CliError {
    use xmlprime::prime::sc::ScError;
    match &e {
        xmlprime::prime::Error::Budget(_)
        | xmlprime::prime::Error::Sc(ScError::Budget(_)) => CliError::Limit(e.to_string()),
        _ => CliError::Label(e.to_string()),
    }
}

/// Query failures: budget violations get the limit exit code.
fn classify_query(e: QueryError) -> CliError {
    match &e {
        QueryError::LimitExceeded(_) => CliError::Limit(e.to_string()),
        _ => CliError::Query(e.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            e.exit_code()
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(usage("missing command"));
    };
    match command.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "label" => cmd_label(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "order" => cmd_order(&args[1..]),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(usage(format!("unknown command {other:?}"))),
    }
}

/// Reads the document argument (`-` = stdin) and parses it.
fn load(path: &str) -> Result<XmlTree, CliError> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Input(format!("stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?
    };
    parse(&text).map_err(|e| classify_parse(path, e))
}

/// Pulls `--flag value` out of an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["--explain", "--sql"];

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file] = pos[..] else {
        return Err(usage("stats takes exactly one file"));
    };
    let tree = load(file)?;
    let s = TreeStats::compute(&tree);
    println!("elements:    {}", s.node_count);
    println!("max depth:   {}", s.max_depth);
    println!("max fan-out: {}", s.max_fanout);
    println!("leaves:      {} ({:.0}%)", s.leaf_count, 100.0 * s.leaf_fraction());
    println!("avg depth:   {:.2}", s.avg_depth);
    println!("levels:      {:?}", s.level_counts);
    println!("tags:");
    for (tag, count) in &s.tag_histogram {
        println!("  {tag:20} {count}");
    }
    Ok(())
}

fn cmd_label(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file] = pos[..] else {
        return Err(usage("label takes exactly one file"));
    };
    let tree = load(file)?;
    let scheme = flag_value(args, "--scheme").unwrap_or("prime");
    let limit: usize = match flag_value(args, "--limit") {
        Some(v) => v.parse().map_err(|_| usage(format!("bad --limit {v:?}")))?,
        None => usize::MAX,
    };

    fn show<L: LabelOps + std::fmt::Debug>(
        tree: &XmlTree,
        doc: &LabeledDoc<L>,
        limit: usize,
        render: impl Fn(&L) -> String,
    ) {
        for (node, label) in doc.iter().take(limit) {
            let depth = tree.depth(node);
            println!(
                "{:indent$}{:12} {:>4} bits  {}",
                "",
                tree.tag(node).unwrap_or("?"),
                label.size_bits(),
                render(label),
                indent = depth * 2,
            );
        }
        let stats = doc.size_stats();
        println!(
            "\n{} labels; max {} bits, avg {:.1} bits",
            stats.count, stats.max_bits, stats.avg_bits()
        );
    }

    match scheme {
        "prime" => show(&tree, &TopDownPrime::unoptimized().label(&tree), limit, |l| {
            format!("{} (self {})", l.value(), l.self_label())
        }),
        "prime-opt" => show(&tree, &TopDownPrime::optimized().label(&tree), limit, |l| {
            format!("{} (self {})", l.value(), l.self_label())
        }),
        "interval" => show(&tree, &IntervalScheme::dense().label(&tree), limit, |l| {
            format!("[{}, {}]", l.order, l.order + l.size)
        }),
        "prefix1" => {
            show(&tree, &Prefix1Scheme.label(&tree), limit, |l| l.bits().to_string())
        }
        "prefix2" => {
            show(&tree, &Prefix2Scheme.label(&tree), limit, |l| l.bits().to_string())
        }
        "dewey" => show(&tree, &DeweyScheme.label(&tree), limit, |l| l.to_string()),
        "float" => show(
            &tree,
            &xmlprime::baselines::FloatIntervalScheme.label(&tree),
            limit,
            |l| format!("[{:.6}, {:.6})", l.start, l.end),
        ),
        other => return Err(usage(format!("unknown scheme {other:?}"))),
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file, path] = pos[..] else {
        return Err(usage("query takes a file and a path"));
    };
    let tree = load(file)?;
    let parsed = Path::parse(path).map_err(|e| usage(format!("{path:?}: {e}")))?;
    let scheme = flag_value(args, "--scheme").unwrap_or("prime");

    if args.iter().any(|a| a == "--sql") {
        use xmlprime::query::sql::{to_sql, SqlScheme};
        let s = match scheme {
            "prime" => SqlScheme::Prime,
            "interval" => SqlScheme::Interval,
            "prefix2" => SqlScheme::Prefix,
            other => return Err(usage(format!("unknown scheme {other:?}"))),
        };
        println!("-- {scheme} translation of {path}\n{}", to_sql(&parsed, s));
        return Ok(());
    }

    let explain = args.iter().any(|a| a == "--explain");
    let result = match scheme {
        "prime" => {
            let ev = PrimeEvaluator::try_build(&tree, 5).map_err(classify_label)?;
            if explain {
                print!("{}", xmlprime::query::plan::Plan::of(ev.table(), &parsed).render());
            }
            ev.try_eval(&parsed).map_err(classify_query)?
        }
        "interval" => {
            let ev = IntervalEvaluator::build(&tree);
            if explain {
                print!("{}", xmlprime::query::plan::Plan::of(ev.table(), &parsed).render());
            }
            ev.try_eval(&parsed).map_err(classify_query)?
        }
        "prefix2" => {
            let ev = Prefix2Evaluator::build(&tree);
            if explain {
                print!("{}", xmlprime::query::plan::Plan::of(ev.table(), &parsed).render());
            }
            ev.try_eval(&parsed).map_err(classify_query)?
        }
        other => {
            return Err(usage(format!(
                "unknown scheme {other:?} (query supports prime|interval|prefix2)"
            )))
        }
    };
    if explain {
        println!();
    }
    for &node in &result {
        let ancestry: Vec<&str> = {
            let mut chain: Vec<&str> =
                tree.ancestors(node).filter_map(|a| tree.tag(a)).collect();
            chain.reverse();
            chain
        };
        println!(
            "{}{}{}",
            ancestry.join("/"),
            if ancestry.is_empty() { "" } else { "/" },
            tree.tag(node).unwrap_or("?"),
        );
    }
    println!("\n{} node(s) matched", result.len());
    Ok(())
}

fn cmd_order(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file] = pos[..] else {
        return Err(usage("order takes exactly one file"));
    };
    let tree = load(file)?;
    let chunk: usize = match flag_value(args, "--chunk") {
        Some(v) => v.parse().map_err(|_| usage(format!("bad --chunk {v:?}")))?,
        None => 5,
    };
    let doc = OrderedPrimeDoc::build(&tree, chunk).map_err(classify_label)?;
    println!(
        "SC table: {} record(s) covering {} node(s), chunk capacity {chunk}",
        doc.sc_table().record_count(),
        doc.sc_table().len(),
    );
    for (i, rec) in doc.sc_table().records().iter().enumerate() {
        println!(
            "  record {i}: {} member(s), max self-label {}, SC = {}",
            rec.len(),
            rec.max_self_label(),
            rec.sc(),
        );
    }
    println!("\nnode orders (SC mod self-label):");
    for node in tree.elements().take(30) {
        println!(
            "  {:3}  {:12} self {}",
            doc.order_of(node),
            tree.tag(node).unwrap_or("?"),
            doc.labels().label(node).self_label(),
        );
    }
    if tree.elements().count() > 30 {
        println!("  … ({} more)", tree.elements().count() - 30);
    }
    Ok(())
}
