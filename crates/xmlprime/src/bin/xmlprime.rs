//! `xmlprime` — a command-line front end to the labeling library.
//!
//! ```text
//! xmlprime stats  <file.xml>
//! xmlprime label  <file.xml> [--scheme S] [--limit N]
//! xmlprime query  <file.xml> <path> [--scheme S]
//! xmlprime order  <file.xml> [--chunk N]
//! xmlprime update <file.xml> <node#> (--tag T | --xml F) [--scheme S]
//! xmlprime delete <file.xml> <node#> [--scheme S]
//! xmlprime move   <file.xml> <node#> (before|child-of) <node#> [--scheme S]
//! xmlprime save   <file.xml> --store <dir> [--uri U] [--chunk N]
//! xmlprime load   --store <dir> [--uri U]
//! xmlprime fsck   --store <dir>
//! xmlprime serve  --store <dir> [--tcp ADDR] [--unix PATH]
//! xmlprime remote (--tcp ADDR | --unix PATH) <op> [...]
//! ```
//!
//! `<file.xml>` may be `-` for stdin. Schemes: `prime` (default),
//! `prime-opt`, `interval`, `prefix1`, `prefix2`, `dewey`, `float`.
//! The mutation commands run through the unified [`LabeledStore`] dynamic
//! API and print the relabel cost the scheme actually paid.

use std::io::Read;
use std::process::ExitCode;
use xmlprime::prelude::*;
use xmlprime::query::engine::QueryError;
use xmlprime::xmltree::{ParseError, ParseErrorKind};

const USAGE: &str = "\
xmlprime — prime-number labeling for dynamic ordered XML trees

USAGE:
    xmlprime stats  <file.xml>
    xmlprime label  <file.xml> [--scheme S] [--limit N]
    xmlprime query  <file.xml> <path> [--scheme prime|interval|prefix2]
                    [--explain]  print the evaluation plan first
                    [--sql]      print the paper's SQL translation instead
    xmlprime order  <file.xml> [--chunk N]
    xmlprime update <file.xml> <node#> [--scheme S] [--chunk N] [--gap G]
                    [--shards auto|D]
                    --tag T [--before | --child | --parent]
                    --xml '<frag/>' [--before | --child]
    xmlprime delete <file.xml> <node#> [--scheme S] [--chunk N] [--gap G]
                    [--shards auto|D]
    xmlprime move   <file.xml> <node#> (before|child-of) <node#>
                    [--scheme S] [--chunk N] [--gap G] [--shards auto|D]
    xmlprime save   <file.xml> --store <dir> [--uri U] [--chunk N]
    xmlprime load   --store <dir> [--uri U]
    xmlprime fsck   --store <dir>
    xmlprime serve  --store <dir> [--tcp ADDR] [--unix PATH]
                    [--batch N] [--checkpoint-after N]
                    [--cache] [--cache-capacity N]
    xmlprime remote (--tcp ADDR | --unix PATH) <op> [...]
                    ops: ping | docs | stats | query <uri> <path> |
                    insert <uri> <node@> --tag T [--child] |
                    delete <uri> <node@> | shutdown

    <file.xml> may be '-' to read from stdin.
    <node#> is the 1-based document-order element index (see `label`).

MUTATIONS:
    update --tag T --before    new element T before node (default)
    update --tag T --child     new element T as node's last child
    update --tag T --parent    wrap node's subtree in a new element T
    update --xml F             parse fragment F and insert it at the position
    delete                     remove the node's subtree
    move   before <n>          move the subtree before element n
    move   child-of <n>        move the subtree to be element n's last child

    `--scheme` picks the dynamic scheme (prime|interval|prefix1|prefix2|
    dewey|float); `--chunk N` sets the prime SC chunk (default 5); `--gap G`
    labels the interval scheme with spare room between ranks (default dense).
    The exit report shows inserted/relabeled/removed label counts plus SC
    side updates — the scheme's true update cost.

    `--shards auto|D` (prime only) routes the mutation through the §3.2
    shard facade: the document is cut into decomposition subtrees every D
    levels (auto picks D from the document size; small documents stay
    unsharded) and only the touched shard's labels move. The report adds a
    line showing live shard count and how many shards the mutation dirtied.

PERSISTENCE:
    save    label a document with the prime scheme and add it to a
            crash-safe on-disk store (created on first use); the URI
            defaults to the file name
    load    without --uri, list the store's documents; with --uri,
            serialize the stored (possibly mutated) document to stdout
    fsck    read-only integrity check of a store directory: manifest,
            checkpoint segments, WAL replay, and the full labeling
            consistency suite; exits 6 on corruption, repairs nothing
    serve   open (or create) a store and serve it over TCP and/or a
            Unix socket until a client sends shutdown; --batch caps the
            group-commit window (mutations per fsync, default 256)
    remote  one-shot client operations against a running server;
            <node@> is the arena index reported by `remote query`

EXIT CODES:
    0 ok · 1 usage · 2 input · 3 limit · 4 label · 5 query ·
    6 corrupt store · 7 store needs recovery (re-open to replay the WAL)

SCHEMES (for `label`):
    prime       top-down prime scheme, no optimizations (default)
    prime-opt   with Opt1 (reserved primes) + Opt2 (2^n leaves)
    interval    XISS-style (order, size) intervals
    prefix1     basic binary prefix labels
    prefix2     Cohen-Kaplan-Milo optimized prefix labels
    dewey       Dewey sibling-ordinal vectors
    float       QRS floating-point intervals

EXAMPLES:
    xmlprime stats corpus.xml
    xmlprime label corpus.xml --scheme prime-opt --limit 20
    xmlprime query corpus.xml '//PLAY//ACT[3]//LINE' --scheme interval
    echo '<a><b/><c/></a>' | xmlprime order - --chunk 5
";

/// A classified CLI failure: each class maps to a distinct exit code so
/// scripts can tell bad invocations, bad input, exceeded resource budgets,
/// labeling failures, and query failures apart.
enum CliError {
    /// Exit 1: bad command line.
    Usage(String),
    /// Exit 2: input could not be read or parsed.
    Input(String),
    /// Exit 3: a resource limit was exceeded (parser limits, bignum
    /// bit budget, query row/step budget).
    Limit(String),
    /// Exit 4: labeling or SC-table maintenance failed.
    Label(String),
    /// Exit 5: query evaluation failed.
    Query(String),
    /// Exit 6: an on-disk store is corrupt (bad magic, failed checksum,
    /// sequence gap, or a recovered document failing consistency checks).
    Corrupt(String),
    /// Exit 7: a document is in a recoverable interrupted state — a
    /// mutation's SC journal survived a crash and must be replayed before
    /// order queries can answer. Unlike exit 6, nothing is lost: re-open
    /// the store (or run recovery) and retry.
    NeedsRecovery(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            CliError::Usage(_) => 1,
            CliError::Input(_) => 2,
            CliError::Limit(_) => 3,
            CliError::Label(_) => 4,
            CliError::Query(_) => 5,
            CliError::Corrupt(_) => 6,
            CliError::NeedsRecovery(_) => 7,
        })
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Input(m)
            | CliError::Limit(m)
            | CliError::Label(m)
            | CliError::Query(m)
            | CliError::Corrupt(m)
            | CliError::NeedsRecovery(m) => m,
        }
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Parser failures: limit violations get the limit exit code, everything
/// else is an input error.
fn classify_parse(file: &str, e: ParseError) -> CliError {
    match e.kind {
        ParseErrorKind::LimitExceeded(_) => CliError::Limit(format!("{file}: {e}")),
        _ => CliError::Input(format!("{file}: parse error at {e}")),
    }
}

/// Labeling failures: budget violations get the limit exit code, an
/// interrupted-but-replayable SC journal gets the recoverable exit code.
fn classify_label(e: xmlprime::prime::Error) -> CliError {
    use xmlprime::prime::sc::ScError;
    match &e {
        xmlprime::prime::Error::Budget(_)
        | xmlprime::prime::Error::Sc(ScError::Budget(_)) => CliError::Limit(e.to_string()),
        xmlprime::prime::Error::Sc(ScError::NeedsRecovery) => {
            CliError::NeedsRecovery(e.to_string())
        }
        _ => CliError::Label(e.to_string()),
    }
}

/// Query failures: budget violations get the limit exit code.
fn classify_query(e: QueryError) -> CliError {
    match &e {
        QueryError::LimitExceeded(_) => CliError::Limit(e.to_string()),
        _ => CliError::Query(e.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            if matches!(e, CliError::Usage(_)) {
                eprintln!("\n{USAGE}");
            }
            e.exit_code()
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(usage("missing command"));
    };
    match command.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "label" => cmd_label(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "order" => cmd_order(&args[1..]),
        "update" => cmd_update(&args[1..]),
        "delete" => cmd_delete(&args[1..]),
        "move" => cmd_move(&args[1..]),
        "save" => cmd_save(&args[1..]),
        "load" => cmd_load(&args[1..]),
        "fsck" => cmd_fsck(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "remote" => cmd_remote(&args[1..]),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(usage(format!("unknown command {other:?}"))),
    }
}

/// Reads the document argument (`-` = stdin) and parses it.
fn load(path: &str) -> Result<XmlTree, CliError> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Input(format!("stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?
    };
    parse(&text).map_err(|e| classify_parse(path, e))
}

/// Pulls `--flag value` out of an argument list.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["--explain", "--sql", "--before", "--child", "--parent", "--cache"];

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file] = pos[..] else {
        return Err(usage("stats takes exactly one file"));
    };
    let tree = load(file)?;
    let s = TreeStats::compute(&tree);
    println!("elements:    {}", s.node_count);
    println!("max depth:   {}", s.max_depth);
    println!("max fan-out: {}", s.max_fanout);
    println!("leaves:      {} ({:.0}%)", s.leaf_count, 100.0 * s.leaf_fraction());
    println!("avg depth:   {:.2}", s.avg_depth);
    println!("levels:      {:?}", s.level_counts);
    println!("tags:");
    for (tag, count) in &s.tag_histogram {
        println!("  {tag:20} {count}");
    }
    Ok(())
}

fn cmd_label(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file] = pos[..] else {
        return Err(usage("label takes exactly one file"));
    };
    let tree = load(file)?;
    let scheme = flag_value(args, "--scheme").unwrap_or("prime");
    let limit: usize = match flag_value(args, "--limit") {
        Some(v) => v.parse().map_err(|_| usage(format!("bad --limit {v:?}")))?,
        None => usize::MAX,
    };

    fn show<L: LabelOps + std::fmt::Debug>(
        tree: &XmlTree,
        doc: &LabeledDoc<L>,
        limit: usize,
        render: impl Fn(&L) -> String,
    ) {
        for (node, label) in doc.iter().take(limit) {
            let depth = tree.depth(node);
            println!(
                "{:indent$}{:12} {:>4} bits  {}",
                "",
                tree.tag(node).unwrap_or("?"),
                label.size_bits(),
                render(label),
                indent = depth * 2,
            );
        }
        let stats = doc.size_stats();
        println!(
            "\n{} labels; max {} bits, avg {:.1} bits",
            stats.count, stats.max_bits, stats.avg_bits()
        );
    }

    match scheme {
        "prime" => show(&tree, &TopDownPrime::unoptimized().label(&tree), limit, |l| {
            format!("{} (self {})", l.value(), l.self_label())
        }),
        "prime-opt" => show(&tree, &TopDownPrime::optimized().label(&tree), limit, |l| {
            format!("{} (self {})", l.value(), l.self_label())
        }),
        "interval" => show(&tree, &IntervalScheme::dense().label(&tree), limit, |l| {
            format!("[{}, {}]", l.order, l.order + l.size)
        }),
        "prefix1" => {
            show(&tree, &Prefix1Scheme.label(&tree), limit, |l| l.bits().to_string())
        }
        "prefix2" => {
            show(&tree, &Prefix2Scheme.label(&tree), limit, |l| l.bits().to_string())
        }
        "dewey" => show(&tree, &DeweyScheme.label(&tree), limit, |l| l.to_string()),
        "float" => show(
            &tree,
            &xmlprime::baselines::FloatIntervalScheme.label(&tree),
            limit,
            |l| format!("[{:.6}, {:.6})", l.start, l.end),
        ),
        other => return Err(usage(format!("unknown scheme {other:?}"))),
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file, path] = pos[..] else {
        return Err(usage("query takes a file and a path"));
    };
    let tree = load(file)?;
    let parsed = Path::parse(path).map_err(|e| usage(format!("{path:?}: {e}")))?;
    let scheme = flag_value(args, "--scheme").unwrap_or("prime");

    if args.iter().any(|a| a == "--sql") {
        use xmlprime::query::sql::{to_sql, SqlScheme};
        let s = match scheme {
            "prime" => SqlScheme::Prime,
            "interval" => SqlScheme::Interval,
            "prefix2" => SqlScheme::Prefix,
            other => return Err(usage(format!("unknown scheme {other:?}"))),
        };
        println!("-- {scheme} translation of {path}\n{}", to_sql(&parsed, s));
        return Ok(());
    }

    let explain = args.iter().any(|a| a == "--explain");
    let result = match scheme {
        "prime" => {
            let ev = PrimeEvaluator::try_build(&tree, 5).map_err(classify_label)?;
            if explain {
                print!("{}", xmlprime::query::plan::Plan::of(ev.table(), &parsed).render());
            }
            ev.try_eval(&parsed).map_err(classify_query)?
        }
        "interval" => {
            let ev = IntervalEvaluator::build(&tree);
            if explain {
                print!("{}", xmlprime::query::plan::Plan::of(ev.table(), &parsed).render());
            }
            ev.try_eval(&parsed).map_err(classify_query)?
        }
        "prefix2" => {
            let ev = Prefix2Evaluator::build(&tree);
            if explain {
                print!("{}", xmlprime::query::plan::Plan::of(ev.table(), &parsed).render());
            }
            ev.try_eval(&parsed).map_err(classify_query)?
        }
        other => {
            return Err(usage(format!(
                "unknown scheme {other:?} (query supports prime|interval|prefix2)"
            )))
        }
    };
    if explain {
        println!();
    }
    for &node in &result {
        let ancestry: Vec<&str> = {
            let mut chain: Vec<&str> =
                tree.ancestors(node).filter_map(|a| tree.tag(a)).collect();
            chain.reverse();
            chain
        };
        println!(
            "{}{}{}",
            ancestry.join("/"),
            if ancestry.is_empty() { "" } else { "/" },
            tree.tag(node).unwrap_or("?"),
        );
    }
    println!("\n{} node(s) matched", result.len());
    Ok(())
}

fn cmd_order(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file] = pos[..] else {
        return Err(usage("order takes exactly one file"));
    };
    let tree = load(file)?;
    let chunk: usize = match flag_value(args, "--chunk") {
        Some(v) => v.parse().map_err(|_| usage(format!("bad --chunk {v:?}")))?,
        None => 5,
    };
    let doc = OrderedPrimeDoc::build(&tree, chunk).map_err(classify_label)?;
    println!(
        "SC table: {} record(s) covering {} node(s), chunk capacity {chunk}",
        doc.sc_table().record_count(),
        doc.sc_table().len(),
    );
    for (i, rec) in doc.sc_table().records().iter().enumerate() {
        println!(
            "  record {i}: {} member(s), max self-label {}, SC = {}",
            rec.len(),
            rec.max_self_label(),
            rec.sc(),
        );
    }
    println!("\nnode orders (SC mod self-label):");
    for node in tree.elements().take(30) {
        println!(
            "  {:3}  {:12} self {}",
            doc.order_of(node),
            tree.tag(node).unwrap_or("?"),
            doc.labels().label(node).self_label(),
        );
    }
    if tree.elements().count() > 30 {
        println!("  … ({} more)", tree.elements().count() - 30);
    }
    Ok(())
}

/// Dynamic-mutation failures: bad node references are usage errors (the
/// numbers came from the command line), fragment problems are input
/// errors, and scheme-side failures reuse the labeling classification.
fn classify_dynamic(e: DynamicError) -> CliError {
    match e {
        DynamicError::UnknownNode(_)
        | DynamicError::RootTarget(_)
        | DynamicError::MoveIntoSelf { .. } => CliError::Usage(e.to_string()),
        DynamicError::Fragment(m) => CliError::Input(format!("fragment: {m}")),
        DynamicError::NeedsRecovery => CliError::NeedsRecovery(e.to_string()),
        DynamicError::Scheme(inner) => match inner.downcast::<xmlprime::prime::Error>() {
            Ok(prime_err) => classify_label(*prime_err),
            Err(other) => CliError::Label(other.to_string()),
        },
    }
}

/// Resolves a 1-based document-order element index from the CLI.
fn nth_element(tree: &XmlTree, spec: &str) -> Result<NodeId, CliError> {
    let n: usize = spec
        .parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| usage(format!("bad node number {spec:?} (1-based integer)")))?;
    tree.elements().nth(n - 1).ok_or_else(|| {
        usage(format!("node {n} out of range: document has {} elements", tree.elements().count()))
    })
}

/// Shared flags of the mutation commands.
struct MutationOpts {
    scheme: String,
    chunk: usize,
    gap: Option<u64>,
    shards: Option<ShardsFlag>,
}

/// Value of `--shards`: an explicit cut depth or size-based auto-pick.
enum ShardsFlag {
    Auto,
    CutDepth(usize),
}

impl ShardsFlag {
    fn policy(&self, node_count: usize) -> ShardPolicy {
        match self {
            ShardsFlag::Auto => ShardPolicy::auto(node_count),
            ShardsFlag::CutDepth(d) => ShardPolicy::at_depth(*d),
        }
    }
}

fn mutation_opts(args: &[String]) -> Result<MutationOpts, CliError> {
    let scheme = flag_value(args, "--scheme").unwrap_or("prime").to_string();
    let chunk = match flag_value(args, "--chunk") {
        Some(v) => v.parse().map_err(|_| usage(format!("bad --chunk {v:?}")))?,
        None => 5,
    };
    let gap = match flag_value(args, "--gap") {
        Some(v) => Some(v.parse().map_err(|_| usage(format!("bad --gap {v:?}")))?),
        None => None,
    };
    let shards = match flag_value(args, "--shards") {
        Some("auto") => Some(ShardsFlag::Auto),
        Some(v) => match v.parse::<usize>() {
            Ok(d) if d >= 1 => Some(ShardsFlag::CutDepth(d)),
            _ => return Err(usage(format!("bad --shards {v:?} (want 'auto' or a depth >= 1)"))),
        },
        None => None,
    };
    if shards.is_some() && scheme != "prime" {
        return Err(usage("--shards only applies to the prime scheme"));
    }
    Ok(MutationOpts { scheme, chunk, gap, shards })
}

/// Builds a store for one dynamic scheme, applies the mutation, and
/// reports `(report, labels now in the store)`.
fn apply_mutation<S: DynamicScheme>(
    scheme: S,
    tree: XmlTree,
    mutation: &Mutation,
) -> Result<(RelabelReport, usize), CliError> {
    let mut store = LabeledStore::build(scheme, tree).map_err(classify_dynamic)?;
    let report = store.apply(mutation).map_err(classify_dynamic)?;
    let labels = store.doc().len();
    Ok((report, labels))
}

/// The `--shards` path: the same mutation, routed through the shard
/// facade so only the touched shard's labels move; reports which shards
/// the mutation (plus any split/merge maintenance) dirtied.
fn apply_mutation_sharded(
    opts: &MutationOpts,
    flag: &ShardsFlag,
    tree: XmlTree,
    mutation: &Mutation,
) -> Result<(), CliError> {
    let policy = flag.policy(tree.len());
    let scheme = ShardedScheme::new(DynamicPrime::new(opts.chunk), policy);
    let mut store = LabeledStore::build(scheme, tree).map_err(classify_dynamic)?;
    let report = store.apply(mutation).map_err(classify_dynamic)?;
    let labels = store.doc().len();
    let dirty = take_dirty_shards(&mut store);
    print_report(&report, labels);
    println!(
        "shards:       {} live (cut depth {}), {} dirtied by this mutation",
        store.state().live_count(),
        policy.cut_depth,
        dirty.len(),
    );
    Ok(())
}

fn print_report(report: &RelabelReport, labels: usize) {
    println!("inserted:     {}", report.inserted.len());
    println!("relabeled:    {}", report.relabeled.len());
    println!("removed:      {}", report.removed.len());
    println!("side updates: {} (SC records)", report.side_updates);
    println!("total cost:   {}", report.total_cost());
    println!("labels now:   {labels}");
}

fn dispatch_mutation(
    opts: &MutationOpts,
    tree: XmlTree,
    mutation: &Mutation,
) -> Result<(), CliError> {
    if let Some(flag) = &opts.shards {
        return apply_mutation_sharded(opts, flag, tree, mutation);
    }
    let (report, labels) = match opts.scheme.as_str() {
        "prime" => apply_mutation(DynamicPrime::new(opts.chunk), tree, mutation)?,
        "interval" => match opts.gap {
            Some(g) if g >= 1 => apply_mutation(IntervalScheme::with_gap(g), tree, mutation)?,
            Some(g) => return Err(usage(format!("--gap must be >= 1, got {g}"))),
            None => apply_mutation(IntervalScheme::dense(), tree, mutation)?,
        },
        "prefix1" => apply_mutation(Prefix1Scheme, tree, mutation)?,
        "prefix2" => apply_mutation(Prefix2Scheme, tree, mutation)?,
        "dewey" => apply_mutation(DeweyScheme, tree, mutation)?,
        "float" => apply_mutation(FloatIntervalScheme, tree, mutation)?,
        other => {
            return Err(usage(format!(
                "unknown scheme {other:?} (mutations support prime|interval|prefix1|prefix2|dewey|float)"
            )))
        }
    };
    print_report(&report, labels);
    Ok(())
}

fn cmd_update(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file, node] = pos[..] else {
        return Err(usage("update takes a file and a node number"));
    };
    let tree = load(file)?;
    let target = nth_element(&tree, node)?;
    let opts = mutation_opts(args)?;
    let as_parent = args.iter().any(|a| a == "--parent");
    let as_child = args.iter().any(|a| a == "--child");
    let mutation = match (flag_value(args, "--tag"), flag_value(args, "--xml")) {
        (Some(tag), None) => {
            if as_parent {
                Mutation::InsertParent { target, tag: tag.to_string() }
            } else if as_child {
                Mutation::InsertSubtree {
                    pos: InsertPos::LastChildOf(target),
                    xml: format!("<{tag}/>"),
                }
            } else {
                Mutation::InsertBefore { anchor: target, tag: tag.to_string() }
            }
        }
        (None, Some(xml)) => {
            if as_parent {
                return Err(usage("--parent requires --tag, not --xml"));
            }
            let pos =
                if as_child { InsertPos::LastChildOf(target) } else { InsertPos::Before(target) };
            Mutation::InsertSubtree { pos, xml: xml.to_string() }
        }
        _ => return Err(usage("update needs exactly one of --tag or --xml")),
    };
    dispatch_mutation(&opts, tree, &mutation)
}

fn cmd_delete(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file, node] = pos[..] else {
        return Err(usage("delete takes a file and a node number"));
    };
    let tree = load(file)?;
    let target = nth_element(&tree, node)?;
    let opts = mutation_opts(args)?;
    dispatch_mutation(&opts, tree, &Mutation::Delete { target })
}

fn cmd_move(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file, node, mode, dest] = pos[..] else {
        return Err(usage("move takes a file, a node number, 'before' or 'child-of', and a destination node number"));
    };
    let tree = load(file)?;
    let target = nth_element(&tree, node)?;
    let dest = nth_element(&tree, dest)?;
    let insert_pos = match mode {
        "before" => InsertPos::Before(dest),
        "child-of" => InsertPos::LastChildOf(dest),
        other => return Err(usage(format!("bad move mode {other:?} (before|child-of)"))),
    };
    let opts = mutation_opts(args)?;
    dispatch_mutation(&opts, tree, &Mutation::MoveSubtree { target, pos: insert_pos })
}

/// Store failures: anything the recovery layer flags as on-disk damage
/// gets the dedicated corruption exit code; URI clashes are usage errors
/// (the URI came from the command line); plain I/O failures are input
/// errors; scheme-side failures reuse the labeling classification.
fn classify_store(e: xmlprime::store::StoreError) -> CliError {
    use xmlprime::store::StoreError;
    match e {
        StoreError::Corrupt { .. }
        | StoreError::Codec(_)
        | StoreError::Snapshot(_)
        | StoreError::NotAStore(_) => CliError::Corrupt(e.to_string()),
        StoreError::DuplicateUri(_) | StoreError::UnknownUri(_) => CliError::Usage(e.to_string()),
        StoreError::FrameTooLarge { .. } => CliError::Limit(e.to_string()),
        StoreError::Io { .. } | StoreError::FaultInjected(_) => CliError::Input(e.to_string()),
        StoreError::Scheme(inner) => classify_label(inner),
        StoreError::Dynamic(inner) => classify_dynamic(inner),
    }
}

/// The mandatory `--store <dir>` flag of the persistence commands.
fn store_dir(args: &[String]) -> Result<std::path::PathBuf, CliError> {
    flag_value(args, "--store")
        .map(std::path::PathBuf::from)
        .ok_or_else(|| usage("missing --store <dir>"))
}

/// Reads the document argument (`-` = stdin) as raw text.
fn read_text(path: &str) -> Result<String, CliError> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Input(format!("stdin: {e}")))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError::Input(format!("{path}: {e}")))
    }
}

fn cmd_save(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    let [file] = pos[..] else {
        return Err(usage("save takes exactly one file"));
    };
    let dir = store_dir(args)?;
    let uri = flag_value(args, "--uri").unwrap_or(file);
    if uri == "-" {
        return Err(usage("reading from stdin requires an explicit --uri"));
    }
    let chunk: usize = match flag_value(args, "--chunk") {
        Some(v) => v.parse().map_err(|_| usage(format!("bad --chunk {v:?}")))?,
        None => 5,
    };
    let xml = read_text(file)?;
    // Parse locally first so malformed input gets the parse-error exit
    // code (and message) instead of surfacing through the store.
    parse(&xml).map_err(|e| classify_parse(file, e))?;
    let mut store = if dir.join(xmlprime::store::MANIFEST_FILE).exists() {
        xmlprime::store::Store::open(&dir).map_err(classify_store)?
    } else {
        xmlprime::store::Store::create(&dir).map_err(classify_store)?
    };
    let doc_id = store.add_document(uri, &xml, chunk).map_err(classify_store)?;
    let doc = store.doc(uri).expect("document was just added");
    println!(
        "saved {uri:?} as doc {doc_id} ({} elements, chunk {chunk}) in {}",
        doc.tree().elements().count(),
        dir.display(),
    );
    Ok(())
}

fn cmd_load(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    if !pos.is_empty() {
        return Err(usage("load takes no positional arguments"));
    }
    let dir = store_dir(args)?;
    let store = xmlprime::store::Store::open(&dir).map_err(classify_store)?;
    match flag_value(args, "--uri") {
        Some(uri) => {
            let doc = store
                .doc(uri)
                .ok_or_else(|| usage(format!("store has no document {uri:?}")))?;
            print!("{}", xmlprime::xmltree::serialize::to_string_pretty(doc.tree(), 2));
        }
        None => {
            for doc in store.docs() {
                println!(
                    "{:40} doc {} epoch {} seq {} ({} elements)",
                    doc.uri(),
                    doc.doc_id(),
                    doc.epoch(),
                    doc.seq(),
                    doc.tree().elements().count(),
                );
            }
        }
    }
    Ok(())
}

fn cmd_fsck(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    if !pos.is_empty() {
        return Err(usage("fsck takes no positional arguments"));
    }
    let dir = store_dir(args)?;
    let report = xmlprime::store::fsck(&dir).map_err(classify_store)?;
    println!("store {} is consistent", dir.display());
    println!("documents:      {}", report.docs);
    println!("WAL frames:     {}", report.wal_frames);
    println!("  replayable:   {}", report.replayed);
    println!("torn tail:      {} byte(s)", report.torn_tail_bytes);
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let pos = positional(args);
    if !pos.is_empty() {
        return Err(usage("serve takes no positional arguments"));
    }
    let dir = store_dir(args)?;
    let store = if dir.join(xmlprime::store::MANIFEST_FILE).exists() {
        xmlprime::store::Store::open(&dir).map_err(classify_store)?
    } else {
        xmlprime::store::Store::create(&dir).map_err(classify_store)?
    };
    let doc_count = store.docs().count();

    let tcp = flag_value(args, "--tcp").map(String::from);
    let unix = flag_value(args, "--unix").map(std::path::PathBuf::from);
    let listen = xmlprime::server::ListenConfig {
        // With no listener flags at all, bind an ephemeral local TCP port
        // (printed below) rather than refusing to start.
        tcp: if tcp.is_none() && unix.is_none() { Some("127.0.0.1:0".into()) } else { tcp },
        unix,
    };

    let mut policy = xmlprime::server::BatchPolicy::default();
    if let Some(v) = flag_value(args, "--batch") {
        policy.max_mutations = v
            .parse()
            .ok()
            .filter(|&n: &usize| n >= 1)
            .ok_or_else(|| usage(format!("bad --batch {v:?} (integer >= 1)")))?;
    }
    if let Some(v) = flag_value(args, "--checkpoint-after") {
        policy.checkpoint_after =
            Some(v.parse().map_err(|_| usage(format!("bad --checkpoint-after {v:?}")))?);
    }

    let cache_capacity = match flag_value(args, "--cache-capacity") {
        Some(v) => Some(
            v.parse()
                .ok()
                .filter(|&n: &usize| n >= 1)
                .ok_or_else(|| usage(format!("bad --cache-capacity {v:?} (integer >= 1)")))?,
        ),
        None if args.iter().any(|a| a == "--cache") => {
            Some(xmlprime::query::cache::DEFAULT_CACHE_CAPACITY)
        }
        None => None,
    };

    let handle = match cache_capacity {
        Some(cap) => xmlprime::server::serve_with_cache(store, listen, policy, cap),
        None => xmlprime::server::serve(store, listen, policy),
    }
    .map_err(|e| CliError::Input(format!("serve: {e}")))?;
    if cache_capacity.is_some() {
        println!("query-result cache enabled");
    }
    if let Some(addr) = handle.tcp_addr() {
        println!("listening on tcp://{addr}");
    }
    if let Some(path) = handle.unix_path() {
        println!("listening on unix:{}", path.display());
    }
    println!("serving {doc_count} document(s) from {}", dir.display());
    println!("stop with: xmlprime remote --tcp <addr> shutdown");

    // Blocks until a client sends Shutdown; the store comes back so a
    // final checkpoint folds the WAL tail into segments before exit.
    if let Some(mut store) = handle.wait() {
        store.checkpoint_all().map_err(classify_store)?;
        println!("server stopped; store checkpointed");
    }
    Ok(())
}

/// Client-side failures: typed server errors keep their CLI exit class
/// (a bad path is still a query error, a budget refusal still a limit,
/// a needs-recovery still exit 7); transport problems are input errors.
fn classify_client(e: xmlprime::server::ClientError) -> CliError {
    use xmlprime::server::protocol::ErrCode;
    use xmlprime::server::ClientError as Ce;
    match e {
        Ce::Server { code, msg } => {
            let msg = format!("server: {msg}");
            match code {
                ErrCode::BadPath => CliError::Query(msg),
                ErrCode::QueryLimit => CliError::Limit(msg),
                ErrCode::UnknownDoc | ErrCode::BadRequest => CliError::Usage(msg),
                ErrCode::NeedsRecovery => CliError::NeedsRecovery(msg),
                ErrCode::Internal => CliError::Input(msg),
            }
        }
        other => CliError::Input(other.to_string()),
    }
}

/// The `--tcp`/`--unix` connection flags of `remote`.
fn remote_connect(args: &[String]) -> Result<xmlprime::server::Client, CliError> {
    match (flag_value(args, "--tcp"), flag_value(args, "--unix")) {
        (Some(addr), None) => xmlprime::server::Client::connect_tcp(addr).map_err(classify_client),
        (None, Some(path)) => {
            xmlprime::server::Client::connect_unix(std::path::Path::new(path))
                .map_err(classify_client)
        }
        _ => Err(usage("remote needs exactly one of --tcp ADDR or --unix PATH")),
    }
}

/// Parses the `<node@>` operand of `remote insert`/`remote delete`: an
/// arena slot index as reported by `remote query`.
fn arena_slot(spec: &str) -> Result<u64, CliError> {
    spec.parse().map_err(|_| usage(format!("bad node {spec:?} (arena index from `remote query`)")))
}

fn print_apply(applied: &xmlprime::server::client::Applied) -> Result<(), CliError> {
    for result in &applied.results {
        match result {
            Ok(cost) => println!("applied ({cost} label(s) touched)"),
            Err(msg) => return Err(CliError::Label(format!("server rejected mutation: {msg}"))),
        }
    }
    println!("epoch {} seq {}", applied.epoch, applied.seq);
    Ok(())
}

fn cmd_remote(args: &[String]) -> Result<(), CliError> {
    use xmlprime::server::{WireMutation, WirePos};
    let pos = positional(args);
    let Some((&op, rest)) = pos.split_first() else {
        return Err(usage("remote needs an operation"));
    };
    let mut client = remote_connect(args)?;
    match (op, rest) {
        ("ping", []) => {
            client.ping().map_err(classify_client)?;
            println!("pong");
        }
        ("docs", []) => {
            for d in client.docs().map_err(classify_client)? {
                println!(
                    "{:40} epoch {} seq {} ({} elements)",
                    d.uri, d.epoch, d.seq, d.elements
                );
            }
        }
        ("stats", []) => {
            let s = client.stats().map_err(classify_client)?;
            println!("epochs published:     {}", s.epochs);
            println!("mutations applied:    {}", s.applied);
            println!("mutations failed:     {}", s.failed);
            println!("WAL fsyncs:           {}", s.wal_fsyncs);
            println!("snapshots reclaimed:  {}", s.snapshots_reclaimed);
            println!("snapshots cloned:     {}", s.snapshots_cloned);
            println!("cache hits:           {}", s.cache_hits);
            println!("cache misses:         {}", s.cache_misses);
            println!("cache invalidated:    {}", s.cache_invalidated);
        }
        ("query", [uri, path]) => {
            let hits = client.query(uri, path).map_err(classify_client)?;
            for n in &hits.nodes {
                println!("node@{n}");
            }
            println!("{} node(s) matched at epoch {} seq {}", hits.nodes.len(), hits.epoch, hits.seq);
        }
        ("insert", [uri, node]) => {
            let slot = arena_slot(node)?;
            let tag = flag_value(args, "--tag")
                .ok_or_else(|| usage("remote insert needs --tag T"))?;
            let mutation = if args.iter().any(|a| a == "--child") {
                WireMutation::InsertSubtree {
                    pos: WirePos::LastChildOf(slot),
                    xml: format!("<{tag}/>"),
                }
            } else {
                WireMutation::InsertBefore { anchor: slot, tag: tag.to_string() }
            };
            let applied = client.apply(uri, &[mutation]).map_err(classify_client)?;
            print_apply(&applied)?;
        }
        ("delete", [uri, node]) => {
            let slot = arena_slot(node)?;
            let applied = client
                .apply(uri, &[WireMutation::Delete { target: slot }])
                .map_err(classify_client)?;
            print_apply(&applied)?;
        }
        ("shutdown", []) => {
            client.shutdown().map_err(classify_client)?;
            println!("server shutting down");
        }
        (other, _) => {
            return Err(usage(format!(
                "bad remote op {other:?} (or wrong operands): ping | docs | stats | \
                 query <uri> <path> | insert <uri> <node@> --tag T [--child] | \
                 delete <uri> <node@> | shutdown"
            )))
        }
    }
    Ok(())
}
