//! `xp-par`: a from-scratch, dependency-free parallel execution layer.
//!
//! Every hot substrate of the workspace — segmented sieving, balanced
//! product trees, top-down labeling, `LabelTable` builds, partitioned
//! structural joins — funnels its data-parallel inner loop through this
//! crate. The design goals, in order:
//!
//! 1. **Determinism.** For every primitive here, the output is a pure
//!    function of the input — *never* of the thread count, scheduling
//!    order, or timing. [`par_map`] places each result at its input's
//!    index; [`par_reduce`] combines in a fixed left-to-right order
//!    derived from the input length alone. `XP_THREADS=1` is an *exact*
//!    sequential fallback: the same code path, minus the spawns.
//! 2. **Zero dependencies.** Pure `std`: [`std::thread::scope`] for
//!    borrow-friendly workers, one shared atomic cursor for work
//!    distribution. No channels, no queues, no unsafe.
//! 3. **No nested oversubscription.** Worker threads run with an ambient
//!    thread budget of 1, so a parallel region reached from inside another
//!    parallel region degrades to the sequential path instead of spawning
//!    `threads²` OS threads.
//!
//! Sizing: the ambient thread budget is, in priority order, the value set
//! by [`with_threads`] (scoped, used by tests and benches), the
//! `XP_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! Worker panics are captured and re-raised on the calling thread via
//! [`std::panic::resume_unwind`], so a panicking closure behaves exactly
//! as it would in a sequential loop.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Scoped override of the ambient thread budget. `Some(1)` inside
    /// worker threads (the no-nesting rule); `Some(n)` inside
    /// [`with_threads`]; `None` means "consult the environment".
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores the previous thread override when dropped, so [`with_threads`]
/// unwinds correctly even when its closure panics.
struct OverrideGuard(Option<usize>);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|c| c.set(self.0));
    }
}

/// The ambient thread budget for parallel regions started from this
/// thread: the [`with_threads`] override if one is active, else
/// `XP_THREADS` (non-integers and `0` are ignored with a warning), else
/// the machine's available parallelism.
pub fn threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("XP_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                if !v.trim().is_empty() {
                    eprintln!("warning: ignoring XP_THREADS={v:?} (want an integer >= 1)");
                }
            }
        }
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Runs `f` with the ambient thread budget pinned to `n` (minimum 1) on
/// the current thread, restoring the previous budget afterwards — the
/// race-free way for tests and benches to compare thread counts inside one
/// process (mutating `XP_THREADS` via `set_var` would leak across the test
/// harness's own threads).
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = OverrideGuard(THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Maps `f` over `items`, in parallel when the ambient budget allows,
/// returning results in input order. The output is identical to
/// `items.iter().map(f).collect()` at any thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Index-driven [`par_map`]: calls `f` on every index in `0..len` and
/// returns the results in index order. The workhorse behind every other
/// primitive; use it directly when the work is described by positions
/// rather than a materialized slice (e.g. sieving window `i`).
pub fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads().min(len);
    if threads <= 1 {
        return (0..len).map(f).collect();
    }

    // Workers claim small contiguous runs from a shared cursor: one atomic
    // op per run amortizes contention, and runs keep adjacent items (often
    // adjacent memory) on one worker. 8 runs per worker gives the cursor
    // enough slack to absorb unevenly-sized items.
    let run = len.div_ceil(threads * 8).max(1);
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    // The no-nesting rule: parallel regions reached from
                    // this worker run sequentially.
                    THREAD_OVERRIDE.with(|c| c.set(Some(1)));
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(run, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        for i in start..(start + run).min(len) {
                            local.push((i, f(i)));
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => parts.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
    for (i, r) in parts.into_iter().flatten() {
        out[i] = Some(r);
    }
    // Every index in 0..len was claimed by exactly one worker, so every
    // slot is filled; flatten() drops nothing.
    out.into_iter().flatten().collect()
}

/// Splits `items` into contiguous chunks of at most `chunk_len` elements
/// (the final chunk may be shorter), maps `f` over the chunks in parallel,
/// and returns the per-chunk results in input order. The chunk boundaries
/// depend only on `items.len()` and `chunk_len` — never on the thread
/// count — so downstream consumers that care about *where* the splits fall
/// (e.g. instrumented joins) see identical partitions at any `XP_THREADS`.
pub fn par_chunks<T, R, F>(items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    par_map_indexed(chunks.len(), |i| f(chunks[i]))
}

/// Maps `f` over mutable references to `items`, in parallel when the
/// ambient budget allows, returning results in input order. Each item is
/// visited exactly once, so the closure gets genuinely exclusive `&mut`
/// access — the enabling primitive for per-shard batch mutation, where
/// every shard owns disjoint state but all shards live in one `Vec`.
///
/// Safety is purely library-level (this crate forbids `unsafe`): each
/// `&mut T` is parked in its own `Mutex<Option<&mut T>>` cell and taken by
/// the single worker that claims that index from the dispatch cursor.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    use std::sync::Mutex;
    let cells: Vec<Mutex<Option<&mut T>>> =
        items.iter_mut().map(|r| Mutex::new(Some(r))).collect();
    par_map_indexed(cells.len(), |i| {
        // A poisoned cell can only arise from another worker panicking on
        // this very index, which the dispatch cursor rules out; recover the
        // guard rather than propagate a bogus secondary panic.
        let mut guard = match cells[i].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        match guard.take() {
            Some(item) => f(i, item),
            // Unreachable: par_map_indexed claims each index exactly once.
            None => unreachable!("par_map_mut cell {i} taken twice"),
        }
    })
}

/// Parallel ordered reduction: maps `f` over `items`, then folds the
/// results left-to-right with `combine`, returning `None` on empty input.
/// The fold order is exactly `combine(combine(f(x0), f(x1)), f(x2))…` —
/// only the *evaluation* of `f` is parallel — so `combine` need only be
/// associative for the result to be identical to a sequential fold, and
/// even a non-associative `combine` still sees a deterministic order.
pub fn par_reduce<T, R, F, C>(items: &[T], f: F, combine: C) -> Option<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    C: Fn(R, R) -> R,
{
    let mapped = par_map(items, f);
    let mut iter = mapped.into_iter();
    let first = iter.next()?;
    Some(iter.fold(first, combine))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for n in [1, 2, 3, 8, 64] {
            let got = with_threads(n, || par_map(&items, |x| x * x + 1));
            assert_eq!(got, expected, "thread count {n}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(with_threads(4, || par_map(&empty, |x| x + 1)), Vec::<u32>::new());
        assert_eq!(with_threads(4, || par_map(&[7u32], |x| x + 1)), vec![8]);
    }

    #[test]
    fn par_chunks_boundaries_are_thread_independent() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<Vec<u32>> = items.chunks(10).map(<[u32]>::to_vec).collect();
        for n in [1, 2, 8] {
            let got = with_threads(n, || par_chunks(&items, 10, <[u32]>::to_vec));
            assert_eq!(got, expected, "thread count {n}");
        }
    }

    #[test]
    fn par_map_mut_gives_exclusive_access() {
        let mut items: Vec<Vec<u32>> = (0..64).map(|i| vec![i]).collect();
        for n in [1, 2, 8] {
            let lens = with_threads(n, || {
                par_map_mut(&mut items, |i, v| {
                    v.push(i as u32);
                    v.len()
                })
            });
            assert_eq!(lens.len(), 64, "thread count {n}");
        }
        // Three passes ran (1, 2, 8 threads): every item grew by three.
        assert!(items.iter().enumerate().all(|(i, v)| v.len() == 4 && v[0] == i as u32));
    }

    #[test]
    fn par_map_mut_results_in_input_order() {
        let mut items: Vec<usize> = (0..100).collect();
        let got = with_threads(8, || par_map_mut(&mut items, |i, x| i * 1000 + *x));
        let expected: Vec<usize> = (0..100).map(|i| i * 1000 + i).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn par_reduce_folds_left_to_right() {
        // String concatenation is order-sensitive: any reordering of the
        // fold would corrupt the result.
        let items: Vec<usize> = (0..50).collect();
        let expected: String = items.iter().map(ToString::to_string).collect();
        for n in [1, 2, 8] {
            let got = with_threads(n, || {
                par_reduce(&items, ToString::to_string, |a, b| a + &b)
            });
            assert_eq!(got.as_deref(), Some(expected.as_str()), "thread count {n}");
        }
        assert_eq!(
            with_threads(4, || par_reduce(&[] as &[u32], |x| *x, |a, b| a + b)),
            None
        );
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = threads();
        with_threads(3, || {
            assert_eq!(threads(), 3);
            with_threads(1, || assert_eq!(threads(), 1));
            assert_eq!(threads(), 3);
        });
        assert_eq!(threads(), outer);
    }

    #[test]
    fn with_threads_restores_after_panic() {
        let outer = threads();
        let result = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(threads(), outer);
    }

    #[test]
    fn workers_run_nested_regions_sequentially() {
        // Inside a worker the ambient budget must be 1, so nested par_map
        // calls take the sequential path instead of spawning threads².
        let budgets = with_threads(4, || par_map_indexed(16, |_| threads()));
        assert!(budgets.iter().all(|&b| b == 1), "budgets: {budgets:?}");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_indexed(64, |i| {
                    assert!(i != 33, "worker fault at 33");
                    i
                })
            })
        });
        assert!(result.is_err());
    }
}
