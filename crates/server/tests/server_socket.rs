//! End-to-end socket tests: protocol round trips over real TCP and Unix
//! connections, concurrent readers against a mutating document, and
//! clean shutdown.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use xp_server::{serve, BatchPolicy, Client, ListenConfig, WireMutation, WirePos};
use xp_store::Store;

const DOC_XML: &str = "<t0><t1><t2/></t1><t1/></t0>";

fn scratch_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xp-server-sock-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(label: &str) -> (xp_server::Handle, PathBuf) {
    let dir = scratch_dir(label);
    let mut store = Store::create(&dir).unwrap();
    store.add_document("doc.xml", DOC_XML, 4).unwrap();
    let listen = ListenConfig {
        tcp: Some("127.0.0.1:0".into()),
        unix: Some(dir.join("server.sock")),
    };
    let handle = serve(store, listen, BatchPolicy::default()).unwrap();
    (handle, dir)
}

#[test]
fn tcp_round_trip_ping_docs_query_apply() {
    let (handle, dir) = start_server("tcp");
    let addr = handle.tcp_addr().unwrap().to_string();
    let mut client = Client::connect_tcp(&addr).unwrap();

    client.ping().unwrap();
    let docs = client.docs().unwrap();
    assert_eq!(docs.len(), 1);
    assert_eq!(docs[0].uri, "doc.xml");
    assert_eq!(docs[0].epoch, 0);
    assert_eq!(docs[0].elements, 4);

    let hits = client.query("doc.xml", "//t1").unwrap();
    assert_eq!(hits.nodes.len(), 2);
    assert_eq!(hits.epoch, 0);

    // Apply: insert one subtree; the ack carries the publishing epoch.
    let root = 0u64; // arena slot of the document root
    let applied = client
        .apply(
            "doc.xml",
            &[WireMutation::InsertSubtree {
                pos: WirePos::LastChildOf(root),
                xml: "<t1><t3/></t1>".into(),
            }],
        )
        .unwrap();
    assert_eq!(applied.results.len(), 1);
    assert!(applied.results[0].is_ok());
    assert!(applied.epoch >= 1);

    // The next query must see the new epoch and the new element.
    let hits = client.query("doc.xml", "//t1").unwrap();
    assert_eq!(hits.nodes.len(), 3);
    assert!(hits.epoch >= applied.epoch);

    let stats = client.stats().unwrap();
    assert_eq!(stats.applied, 1);
    assert_eq!(stats.epochs, 1);

    // Typed errors for bad inputs.
    assert!(client.query("missing.xml", "//t1").is_err());
    assert!(client.query("doc.xml", "//t1[").is_err());

    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unix_socket_speaks_the_same_protocol() {
    let (handle, dir) = start_server("unix");
    let path = handle.unix_path().unwrap().clone();
    let mut client = Client::connect_unix(&path).unwrap();
    client.ping().unwrap();
    let hits = client.query("doc.xml", "/t0//t2").unwrap();
    assert_eq!(hits.nodes.len(), 1);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_request_stops_the_server_and_recovers_cleanly() {
    let (handle, dir) = start_server("shutdown");
    let addr = handle.tcp_addr().unwrap().to_string();
    let mut client = Client::connect_tcp(&addr).unwrap();
    client
        .apply(
            "doc.xml",
            &[WireMutation::InsertBefore { anchor: 1, tag: "t2".into() }],
        )
        .unwrap();
    client.shutdown().unwrap();
    // join() returns the store; the document reflects the applied
    // mutation and reopening from disk agrees.
    let store = handle.join().unwrap();
    assert_eq!(store.doc("doc.xml").unwrap().seq(), 1);
    drop(store);
    let reopened = Store::open(&dir).unwrap();
    reopened.verify().unwrap();
    assert_eq!(reopened.doc("doc.xml").unwrap().seq(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent readers against a mutating document, checked from the
/// *client* side: the writer only ever inserts `<p><x/><y/></p>` as one
/// atomic subtree, so in any consistent labeling `count(//x) ==
/// count(//y)`. Every query response is epoch-stamped; whenever a reader
/// sees two responses from the same epoch, the counts must match — a torn
/// labeling (snapshot mutated mid-query, or a half-applied batch made
/// visible) would break the pair.
#[test]
fn concurrent_readers_never_observe_a_torn_labeling() {
    let (handle, dir) = start_server("isolation");
    let addr = handle.tcp_addr().unwrap().to_string();
    const WRITES: u64 = 40;
    const READERS: usize = 8;

    let done = Arc::new(AtomicBool::new(false));
    let same_epoch_pairs = Arc::new(AtomicU64::new(0));

    let writer = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).unwrap();
            for _ in 0..WRITES {
                let applied = client
                    .apply(
                        "doc.xml",
                        &[WireMutation::InsertSubtree {
                            pos: WirePos::LastChildOf(0),
                            xml: "<p><x/><y/></p>".into(),
                        }],
                    )
                    .unwrap();
                assert!(applied.results[0].is_ok());
            }
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let addr = addr.clone();
            let done = Arc::clone(&done);
            let pairs = Arc::clone(&same_epoch_pairs);
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).unwrap();
                while !done.load(Ordering::Relaxed) {
                    let xs = client.query("doc.xml", "//x").unwrap();
                    let ys = client.query("doc.xml", "//y").unwrap();
                    if xs.epoch == ys.epoch {
                        assert_eq!(
                            xs.nodes.len(),
                            ys.nodes.len(),
                            "torn labeling at epoch {}",
                            xs.epoch
                        );
                        pairs.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    writer.join().unwrap();
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    // Quiesced state: everything the writer inserted is visible.
    let mut client = Client::connect_tcp(&addr).unwrap();
    let xs = client.query("doc.xml", "//x").unwrap();
    let ys = client.query("doc.xml", "//y").unwrap();
    assert_eq!(xs.nodes.len() as u64, WRITES);
    assert_eq!(ys.nodes.len() as u64, WRITES);
    assert!(
        same_epoch_pairs.load(Ordering::Relaxed) > 0,
        "the isolation check never got a same-epoch pair — no coverage"
    );

    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
