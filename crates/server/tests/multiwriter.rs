//! Multi-writer convergence and cache-transparency differential.
//!
//! N seeded writer scripts (disjoint regions, private tag vocabularies —
//! see `xp_datagen::multiwriter`) are merged under sampled
//! order-preserving interleavings and pushed through two real epoch
//! loops, one with the query-result cache enabled and one without. Per
//! step, for every writer's full query mix (all nine axes):
//!
//! * the cached loop, the uncached loop, and a cold re-evaluation against
//!   the published snapshot must return byte-identical node lists — the
//!   cache must be semantically invisible;
//! * the published snapshot must answer like a relabel-from-scratch
//!   document over the same tree (the oracle that cannot be wrong).
//!
//! At the end both loops' documents must equal the direct-apply oracle,
//! and the cached loop must actually have *used* its cache (hits > 0) —
//! a vacuous pass where everything misses proves nothing.
//!
//! The final test pins the multi-document stats fix: snapshot-lifecycle
//! counters must sum over every publisher, so `reclaimed + cloned` equals
//! the total number of published epochs across all URIs, not just the
//! last-touched one's.

use std::collections::HashMap;
use std::sync::{mpsc, Arc};

use xp_datagen::multiwriter::{initial_tree, interleave, query_paths, scripted, TraceParams};
use xp_labelkit::{LabeledStore, Mutation};
use xp_prime::DynamicPrime;
use xp_query::engine::{eval_path, OrderOracle, Path};
use xp_query::relstore::LabelTable;
use xp_server::epoch::{ApplyJob, BatchPolicy, Counters, EpochLoop};
use xp_server::protocol::{Request, Response};
use xp_server::server::handle_request;
use xp_store::{verify, Store};
use xp_xmltree::{NodeId, XmlTree};

const URI: &str = "doc.xml";

type Submit = Arc<dyn Fn(ApplyJob) -> Result<(), ApplyJob> + Send + Sync>;

struct Loop {
    epoch: EpochLoop,
    submit: Submit,
    counters: Arc<Counters>,
    dir: std::path::PathBuf,
}

fn scratch_dir(label: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("xp-server-multiwriter-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_loop(label: &str, xml: &str, cache: bool) -> Loop {
    let dir = scratch_dir(label);
    let mut store = Store::create(&dir).unwrap();
    store.add_document(URI, xml, 4).unwrap();
    let policy = BatchPolicy { max_mutations: 1, checkpoint_after: None };
    let epoch = if cache {
        EpochLoop::start_with_cache(store, policy, 256)
    } else {
        EpochLoop::start(store, policy)
    };
    let sender = epoch.sender();
    let submit: Submit = Arc::new(move |job| sender.submit(job));
    let counters = epoch.counters();
    Loop { epoch, submit, counters, dir }
}

impl Loop {
    fn snapshot(&self) -> Arc<xp_server::snapshot::EpochSnapshot> {
        self.epoch.docs().read().unwrap().get(URI).cloned().unwrap()
    }

    fn apply(&self, bytes: &[u8], context: &str) -> Result<u64, String> {
        let req = Request::Apply { uri: URI.into(), mutations: vec![bytes.to_vec()] };
        let caches = self.epoch.caches();
        match handle_request(req, &self.epoch.docs(), caches.as_ref(), &self.submit, &self.counters)
        {
            Response::Applied { results, .. } => {
                assert_eq!(results.len(), 1, "{context}: one mutation, one result");
                results.into_iter().next().unwrap()
            }
            other => panic!("{context}: apply got {other:?}"),
        }
    }

    fn query(&self, path: &str, context: &str) -> Vec<u64> {
        let req = Request::Query { uri: URI.into(), path: path.into() };
        let caches = self.epoch.caches();
        match handle_request(req, &self.epoch.docs(), caches.as_ref(), &self.submit, &self.counters)
        {
            Response::Hits { nodes, .. } => nodes,
            other => panic!("{context}: query {path} got {other:?}"),
        }
    }
}

struct TreeOrderOracle(HashMap<NodeId, u64>);

impl OrderOracle for TreeOrderOracle {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.get(&node).copied().unwrap_or(u64::MAX)
    }
}

/// All-axes differential of a published snapshot against a
/// relabel-from-scratch labeling of the identical tree.
fn check_scratch_oracle(
    snap: &xp_server::snapshot::EpochSnapshot,
    paths: &[String],
    context: &str,
) {
    let tree = XmlTree::from_snapshot(&snap.labeled().tree().snapshot())
        .unwrap_or_else(|e| panic!("{context}: snapshot tree invalid: {e}"));
    let fresh = LabeledStore::build(DynamicPrime::new(8), tree)
        .unwrap_or_else(|e| panic!("{context}: scratch relabel failed: {e}"));
    let table = LabelTable::build(fresh.tree(), fresh.doc());
    let ranks =
        TreeOrderOracle(fresh.tree().elements().enumerate().map(|(i, n)| (n, i as u64)).collect());
    for p in paths {
        let path = Path::parse(p).unwrap();
        let got = snap
            .query(&path)
            .unwrap_or_else(|e| panic!("{context}: snapshot query {p} failed: {e}"));
        let want = eval_path(&table, &ranks, &path)
            .unwrap_or_else(|e| panic!("{context}: oracle query {p} failed: {e}"));
        assert_eq!(got, want, "{context}: {p} diverged from the scratch oracle");
    }
}

#[test]
fn sampled_interleavings_converge_with_and_without_the_cache() {
    for seed in [0xA11CEu64, 0xB0B, 0xCAFE, 0xD00D] {
        let params =
            TraceParams { writers: 3, steps_per_writer: 5, region_breadth: 6, seed };
        let xml = xp_xmltree::serialize::to_string(&initial_tree(&params));
        let cached = start_loop(&format!("cached-{seed}"), &xml, true);
        let plain = start_loop(&format!("plain-{seed}"), &xml, false);
        let mut oracle =
            LabeledStore::build(DynamicPrime::new(4), xp_xmltree::parse(&xml).unwrap()).unwrap();
        let all_paths: Vec<String> =
            (0..params.writers).flat_map(query_paths).collect();

        let mut steps = vec![0usize; params.writers];
        for (i, &w) in interleave(&params).iter().enumerate() {
            let step = steps[w];
            steps[w] += 1;
            let ctx = format!("seed {seed:#x}, op {i} = writer {w} step {step}");

            // Both loops and the oracle must agree on the document before
            // the op — the mutation's NodeIds are meaningful to all three.
            let snap = cached.snapshot();
            assert_eq!(
                snap.labeled().tree().snapshot(),
                oracle.tree().snapshot(),
                "{ctx}: cached loop drifted before the op"
            );
            assert_eq!(
                plain.snapshot().labeled().tree().snapshot(),
                oracle.tree().snapshot(),
                "{ctx}: uncached loop drifted before the op"
            );
            let mutation = scripted(&params, w, step, oracle.tree());
            let mut bytes = Vec::new();
            mutation.encode(&mut bytes);

            let r_cached = cached.apply(&bytes, &ctx);
            let r_plain = plain.apply(&bytes, &ctx);
            let r_oracle = oracle.apply(&mutation);
            assert_eq!(r_cached.is_ok(), r_oracle.is_ok(), "{ctx}: cached vs oracle outcome");
            assert_eq!(r_plain.is_ok(), r_oracle.is_ok(), "{ctx}: uncached vs oracle outcome");

            // Every writer's full query mix: cached loop == uncached loop
            // == cold evaluation on the same snapshot, at every epoch.
            let snap = cached.snapshot();
            for path in &all_paths {
                let hot = cached.query(path, &ctx);
                let cold_loop = plain.query(path, &ctx);
                let parsed = Path::parse(path).unwrap();
                let cold: Vec<u64> = snap
                    .query(&parsed)
                    .unwrap_or_else(|e| panic!("{ctx}: cold {path} failed: {e}"))
                    .iter()
                    .map(|n| n.index() as u64)
                    .collect();
                assert_eq!(hot, cold, "{ctx}: cached answer for {path} differs from cold");
                assert_eq!(hot, cold_loop, "{ctx}: cached and uncached loops disagree on {path}");
            }
            check_scratch_oracle(&snap, &all_paths, &ctx);
        }

        // Convergence: both loops' final documents equal the direct oracle.
        verify::equivalent(cached.snapshot().labeled(), &oracle)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: cached loop diverged: {e}"));
        verify::equivalent(plain.snapshot().labeled(), &oracle)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: uncached loop diverged: {e}"));

        // The run must have exercised the cache, and the uncached loop must
        // not have touched one.
        let hot_stats = cached.counters.stats();
        assert!(hot_stats.cache_hits > 0, "seed {seed:#x}: the cache never hit");
        assert!(hot_stats.cache_misses > 0, "seed {seed:#x}: the cache never missed");
        let cold_stats = plain.counters.stats();
        assert_eq!(cold_stats.cache_hits + cold_stats.cache_misses, 0);

        for l in [cached, plain] {
            l.epoch.shutdown();
            let _ = std::fs::remove_dir_all(&l.dir);
        }
    }
}

/// Per-label invalidation, demonstrated: after warming every writer's
/// queries, a mutation confined to writer 0's region must leave the other
/// writers' non-wildcard entries hot — their tag footprints are disjoint
/// from everything the relabel touched.
#[test]
fn cache_hits_survive_mutations_to_disjoint_regions() {
    let params = TraceParams { writers: 3, steps_per_writer: 4, region_breadth: 8, seed: 77 };
    let xml = xp_xmltree::serialize::to_string(&initial_tree(&params));
    let server = start_loop("disjoint", &xml, true);

    // Warm: first round inserts, second round must hit across the board.
    for round in 0..2 {
        for w in 0..params.writers {
            for path in query_paths(w) {
                server.query(&path, &format!("warm round {round}"));
            }
        }
    }
    let warmed = server.counters.stats();
    let wildcard_per_writer =
        query_paths(0).iter().filter(|p| p.contains('*')).count() as u64;
    let cacheable_per_writer = query_paths(0).len() as u64 - wildcard_per_writer;
    // No epoch advanced between the rounds, so round two hits on every
    // path — wildcard entries only die at the next invalidation.
    assert_eq!(
        warmed.cache_hits,
        params.writers as u64 * query_paths(0).len() as u64,
        "round two must hit across the board"
    );

    // One mutation inside writer 0's region only.
    let snap = server.snapshot();
    let mutation = scripted(&params, 0, 0, snap.labeled().tree());
    let mut bytes = Vec::new();
    mutation.encode(&mut bytes);
    server.apply(&bytes, "disjoint mutation").unwrap_or_else(|e| panic!("apply failed: {e}"));

    // Writers 1 and 2: every cacheable entry must still be hot.
    let before = server.counters.stats();
    for w in 1..params.writers {
        for path in query_paths(w) {
            server.query(&path, "post-mutation survivor");
        }
    }
    let after = server.counters.stats();
    assert_eq!(
        after.cache_hits - before.cache_hits,
        (params.writers as u64 - 1) * cacheable_per_writer,
        "a mutation in region 0 must not evict other writers' entries"
    );

    // And the surviving answers are still correct: byte-identical to cold.
    let snap = server.snapshot();
    for w in 0..params.writers {
        for path in query_paths(w) {
            let hot = server.query(&path, "post-mutation differential");
            let parsed = Path::parse(&path).unwrap();
            let cold: Vec<u64> =
                snap.query(&parsed).unwrap().iter().map(|n| n.index() as u64).collect();
            assert_eq!(hot, cold, "stale cached answer for {path}");
        }
    }

    server.epoch.shutdown();
    let _ = std::fs::remove_dir_all(&server.dir);
}

/// Regression: with several documents behind one epoch loop, the
/// snapshot-lifecycle counters must sum over every publisher. (They used
/// to be overwritten with whichever document published last, so
/// `reclaimed + cloned` under-counted the published epochs.)
#[test]
fn snapshot_counters_sum_over_every_document() {
    let dir = scratch_dir("multidoc");
    let mut store = Store::create(&dir).unwrap();
    store.add_document("a.xml", "<t0><t1/><t2/></t0>", 4).unwrap();
    store.add_document("b.xml", "<t0><t1/><t2/></t0>", 4).unwrap();
    let epoch = EpochLoop::start(store, BatchPolicy { max_mutations: 1, checkpoint_after: None });
    let docs = epoch.docs();

    let mut published = 0u64;
    for (uri, batches) in [("a.xml", 3u64), ("b.xml", 2u64)] {
        for _ in 0..batches {
            let snap = docs.read().unwrap().get(uri).cloned().unwrap();
            let anchor = snap.labeled().tree().elements().nth(1).unwrap();
            let mutation = Mutation::InsertBefore { anchor, tag: "t1".into() };
            let mut bytes = Vec::new();
            mutation.encode(&mut bytes);
            let (tx, rx) = mpsc::sync_channel(1);
            epoch
                .submit(ApplyJob { uri: uri.into(), mutations: vec![bytes], reply: tx })
                .unwrap_or_else(|_| panic!("epoch loop died"));
            rx.recv().unwrap();
            published += 1;

            let stats = epoch.counters().stats();
            assert_eq!(
                stats.snapshots_reclaimed + stats.snapshots_cloned,
                published,
                "after {published} epochs across two documents"
            );
        }
    }

    epoch.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
