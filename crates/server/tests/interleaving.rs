//! Exhaustive interleaving differential for the epoch loop.
//!
//! N client scripts are merged in *every* serialized order (all
//! order-preserving interleavings of the per-client mutation sequences)
//! and pushed through a real [`EpochLoop`]. Two properties must hold, per
//! interleaving:
//!
//! 1. **Convergence** — the loop's final document is bit-identical to a
//!    plain [`LabeledStore`] that applied the same serialized sequence
//!    directly: same tree arena, same labels, same SC state. The epoch
//!    machinery (WAL batching, publish, reclaim/clone) must be
//!    semantically invisible.
//! 2. **Per-epoch oracle** — after every published epoch, the snapshot
//!    answers all nine query axes (plus a positional predicate) exactly
//!    like a relabel-from-scratch document built from the same tree — the
//!    oracle that cannot be wrong about what the labels should say.
//!
//! Batching is part of the matrix: the same interleavings run with group
//! commit disabled (`max_mutations = 1`, one epoch per mutation) and
//! enabled (`max_mutations = 4`); both must satisfy both properties.

use std::collections::HashMap;
use std::sync::mpsc;

use xp_labelkit::{LabeledStore, Mutation};
use xp_prime::DynamicPrime;
use xp_query::engine::{eval_path, OrderOracle, Path};
use xp_query::relstore::LabelTable;
use xp_server::epoch::{ApplyJob, ApplyOutcome, BatchPolicy, EpochLoop};
use xp_server::snapshot::EpochSnapshot;
use xp_store::{verify, Store};
use xp_xmltree::{NodeId, XmlTree};

const DOC_XML: &str = "<t0><t1><t2/><t3/></t1><t2/><t1><t3/></t1></t0>";
const URI: &str = "doc.xml";

/// One query per axis the engine supports, plus a positional step.
const PATHS: &[&str] = &[
    "//t0/t1",
    "/t0//t2",
    "//t2/parent::*",
    "//t3/ancestor::t1",
    "//t1/ancestor-or-self::*",
    "//t0/following::t1",
    "//t2/preceding::t1",
    "//t1/following-sibling::t2",
    "//t2/preceding-sibling::t1",
    "//t1[2]",
];

struct TreeOrderOracle(HashMap<NodeId, u64>);

impl TreeOrderOracle {
    fn of(tree: &XmlTree) -> Self {
        TreeOrderOracle(tree.elements().enumerate().map(|(i, n)| (n, i as u64)).collect())
    }
}

impl OrderOracle for TreeOrderOracle {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.get(&node).copied().unwrap_or(u64::MAX)
    }
}

fn scratch_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("xp-server-interleave-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The step a client takes, derived deterministically from `(client,
/// step)` against the current document tree. Both the server path and the
/// direct oracle derive from identical trees, so they produce identical
/// mutations.
fn scripted(client: usize, step: usize, tree: &XmlTree) -> Mutation {
    let n = tree.elements().count();
    let pick = |k: usize| {
        let idx = 1 + (client * 3 + step * 5 + k) % (n - 1);
        tree.elements().nth(idx).unwrap_or_else(|| tree.root())
    };
    match (client + 2 * step) % 5 {
        0 => Mutation::InsertBefore { anchor: pick(0), tag: "t1".into() },
        1 => Mutation::InsertSubtree {
            pos: xp_labelkit::InsertPos::LastChildOf(tree.root()),
            xml: "<t2><t3/></t2>".into(),
        },
        2 => Mutation::InsertParent { target: pick(1), tag: "t2".into() },
        3 => Mutation::Delete { target: pick(2) },
        _ => Mutation::MoveSubtree {
            target: pick(0),
            pos: xp_labelkit::InsertPos::Before(pick(3)),
        },
    }
}

/// All order-preserving interleavings of `counts[i]` steps per client.
fn interleavings(counts: &[usize]) -> Vec<Vec<usize>> {
    fn rec(remaining: &mut Vec<usize>, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(prefix.clone());
            return;
        }
        for c in 0..remaining.len() {
            if remaining[c] > 0 {
                remaining[c] -= 1;
                prefix.push(c);
                rec(remaining, prefix, out);
                prefix.pop();
                remaining[c] += 1;
            }
        }
    }
    let mut out = Vec::new();
    rec(&mut counts.to_vec(), &mut Vec::new(), &mut out);
    out
}

/// Nine-axis differential of a published snapshot against a
/// relabel-from-scratch document over the same tree.
fn check_against_scratch_oracle(snap: &EpochSnapshot, context: &str) {
    let tree = XmlTree::from_snapshot(&snap.labeled().tree().snapshot())
        .unwrap_or_else(|e| panic!("{context}: snapshot tree invalid: {e}"));
    let fresh = LabeledStore::build(DynamicPrime::new(8), tree)
        .unwrap_or_else(|e| panic!("{context}: scratch relabel failed: {e}"));
    let table = LabelTable::build(fresh.tree(), fresh.doc());
    let ranks = TreeOrderOracle::of(fresh.tree());
    for p in PATHS {
        let path = Path::parse(p).unwrap();
        let got = snap
            .query(&path)
            .unwrap_or_else(|e| panic!("{context}: snapshot query {p} failed: {e}"));
        let want = eval_path(&table, &ranks, &path)
            .unwrap_or_else(|e| panic!("{context}: oracle query {p} failed: {e}"));
        assert_eq!(got, want, "{context}: axis query {p} diverged from scratch oracle");
    }
}

/// Runs one interleaving through a real epoch loop and checks both
/// properties. Returns the number of epochs that were published.
fn run_interleaving(order: &[usize], steps_done: &mut [usize], policy: BatchPolicy, label: &str) {
    let dir = scratch_dir(label);
    let mut store = Store::create(&dir).unwrap();
    store.add_document(URI, DOC_XML, 4).unwrap();
    let epoch_loop = EpochLoop::start(store, policy);
    let docs = epoch_loop.docs();

    // The direct-apply oracle: same scheme, same sequence, no server.
    let oracle_tree = xp_xmltree::parse(DOC_XML).unwrap();
    let mut oracle = LabeledStore::build(DynamicPrime::new(4), oracle_tree).unwrap();

    steps_done.iter_mut().for_each(|s| *s = 0);
    for &client in order {
        let step = steps_done[client];
        steps_done[client] += 1;
        // Derive the mutation from the *published* tree — what a real
        // client can see — which equals the oracle tree because every
        // prior submission has been acknowledged.
        let snap = docs.read().unwrap().get(URI).cloned().unwrap();
        assert_eq!(
            snap.labeled().tree().snapshot(),
            oracle.tree().snapshot(),
            "{label}: published tree drifted from the oracle before ({client},{step})"
        );
        let mutation = scripted(client, step, snap.labeled().tree());
        let mut bytes = Vec::new();
        mutation.encode(&mut bytes);

        let (tx, rx) = mpsc::sync_channel(1);
        epoch_loop
            .submit(ApplyJob { uri: URI.into(), mutations: vec![bytes], reply: tx })
            .unwrap_or_else(|_| panic!("{label}: epoch loop died"));
        let outcome = rx.recv().unwrap();
        let server_result = match outcome {
            ApplyOutcome::Applied { results, .. } => {
                assert_eq!(results.len(), 1);
                results.into_iter().next().unwrap()
            }
            ApplyOutcome::Rejected { code, msg } => {
                panic!("{label}: job rejected ({code:?}): {msg}")
            }
        };
        // Mirror on the oracle: a failure must fail on both sides.
        let oracle_result = oracle.apply(&mutation);
        assert_eq!(
            server_result.is_ok(),
            oracle_result.is_ok(),
            "{label}: server and oracle disagree on whether ({client},{step}) applies"
        );

        // Per-epoch oracle: the freshly published snapshot answers all
        // nine axes like a from-scratch relabeling.
        let snap = docs.read().unwrap().get(URI).cloned().unwrap();
        check_against_scratch_oracle(&snap, &format!("{label} after ({client},{step})"));
    }

    // Convergence: the loop's final document equals the direct oracle,
    // bit for bit (tree arena, labels, SC state).
    let final_snap = docs.read().unwrap().get(URI).cloned().unwrap();
    verify::equivalent(final_snap.labeled(), &oracle)
        .unwrap_or_else(|e| panic!("{label}: final state diverged from direct oracle: {e}"));

    // And the durable store recovered from disk agrees too.
    let store = epoch_loop.shutdown().unwrap_or_else(|| panic!("{label}: writer lost the store"));
    drop(final_snap);
    drop(store);
    let reopened = Store::open(&dir).unwrap();
    verify::equivalent(reopened.doc(URI).unwrap().labeled(), &oracle)
        .unwrap_or_else(|e| panic!("{label}: recovered state diverged: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_serialized_interleaving_converges_and_answers_like_the_oracle() {
    // 3 clients × 2 steps: 6!/(2!·2!·2!) = 90 interleavings.
    let counts = [2usize, 2, 2];
    let all = interleavings(&counts);
    assert_eq!(all.len(), 90);
    let mut steps = [0usize; 3];
    for (i, order) in all.iter().enumerate() {
        run_interleaving(
            order,
            &mut steps,
            BatchPolicy { max_mutations: 1, checkpoint_after: None },
            &format!("unbatched-{i}"),
        );
    }
}

#[test]
fn group_commit_batching_is_semantically_invisible() {
    // A subset of interleavings under an aggressive batch window: multiple
    // queued jobs may fold into one epoch, yet results must be identical.
    let counts = [2usize, 2, 2];
    let all = interleavings(&counts);
    let mut steps = [0usize; 3];
    for (i, order) in all.iter().step_by(7).enumerate() {
        run_interleaving(
            order,
            &mut steps,
            BatchPolicy { max_mutations: 4, checkpoint_after: Some(8) },
            &format!("batched-{i}"),
        );
    }
}
