//! `xp-server` — a concurrent label server over the crash-safe store.
//!
//! The paper's labeling scheme is a database technique: labels live in a
//! relational table and queries never walk the tree. This crate supplies
//! the missing server half of that story. A single writer thread owns the
//! durable [`xp_store::Store`]; clients connect over TCP or Unix-domain
//! sockets with a length-prefixed binary protocol and either
//!
//! * **query** — evaluated against an immutable, epoch-stamped
//!   [`snapshot::EpochSnapshot`] published by the writer, so reads are
//!   wait-free with respect to mutations and can never observe a torn
//!   labeling; or
//! * **apply** — mutation batches queued to the [`epoch::EpochLoop`],
//!   which WALs a whole batch under one `fdatasync` (group commit),
//!   applies it, publishes the next epoch, and acknowledges each client
//!   with the epoch its mutations committed under.
//!
//! Module map:
//!
//! * [`protocol`] — frames, requests/responses, client-side
//!   [`protocol::WireMutation`]s (byte-compatible with the WAL codec).
//! * [`snapshot`] — epoch snapshots and the reclaim-or-clone
//!   [`snapshot::Publisher`].
//! * [`epoch`] — the single-writer apply loop and its group-commit
//!   policy.
//! * [`shardloop`] — the sharded sibling of the epoch loop: one batch
//!   fans across shards in parallel, one snapshot publishes per epoch.
//! * [`server`] — listeners, connection handlers, shutdown.
//! * [`client`] — a blocking client used by the CLI, tests, and bench.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod epoch;
pub mod protocol;
pub mod server;
pub mod shardloop;
pub mod snapshot;

pub use client::{Client, ClientError};
pub use epoch::{BatchPolicy, DocCaches, EpochLoop};
pub use shardloop::{ShardedApplyJob, ShardedEpochLoop, ShardedEpochSnapshot, ShardedOutcome};
pub use protocol::{Request, Response, ServerStats, WireMutation, WirePos};
pub use server::{serve, serve_with_cache, Handle, ListenConfig};
pub use snapshot::{EpochSnapshot, Publisher};
