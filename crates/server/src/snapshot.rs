//! Epoch-stamped snapshots and their reclamation.
//!
//! The apply loop owns the authoritative document state (inside the
//! [`xp_store::Store`]). After each batch it *publishes* an immutable
//! [`EpochSnapshot`] behind an `Arc`; readers clone the `Arc` and evaluate
//! queries against a labeling that never changes underneath them — the
//! paper's query machinery (structural joins over the label table, order
//! from `SC mod self-label`) runs with zero coordination against the
//! writer.
//!
//! # Reclamation
//!
//! Deep-copying a million-row label table plus SC state per epoch would
//! dominate the apply path, so the [`Publisher`] recycles buffers with a
//! simple epoch-based scheme:
//!
//! * Retired snapshots (previous epochs) are kept on a short list together
//!   with the mutation history of every batch since the oldest of them.
//! * To publish epoch `e`, the publisher looks for a retired buffer no
//!   reader holds (`Arc` strong count of exactly one — the list's own).
//!   Such a buffer is *caught up* by replaying the batches it missed:
//!   mutations are deterministic (the WAL-replay guarantee — a mutation
//!   that failed in the writer re-fails identically here), so the result
//!   is bit-equal to the writer's state without any copying.
//! * If every retired buffer is still referenced by some reader, or the
//!   needed history has been pruned, the publisher falls back to a deep
//!   copy of the current snapshot. Slow readers therefore cost memory and
//!   one clone, never writer stalls or torn reads.
//!
//! The interleaving and isolation tests pin the invariant that matters:
//! every published snapshot is indistinguishable from a
//! relabel-from-scratch document at that epoch, on all nine query axes.

use std::collections::VecDeque;
use std::sync::Arc;

use xp_labelkit::{LabeledStore, Mutation};
use xp_prime::dynamic::DynamicPrime;
use xp_prime::PrimeLabel;
use xp_query::engine::{eval_path, OrderOracle, Path, QueryError};
use xp_query::relstore::LabelTable;
use xp_xmltree::NodeId;

/// How many retired snapshots the publisher keeps as reclaim candidates.
/// Two suffices for the steady state (current + one being drained);
/// anything older is dropped outright, freeing memory instead of hoarding
/// catch-up work.
const RETIRED_CAP: usize = 2;

/// Batches of history retained for catch-up. Once a retired buffer lags
/// further than this, reclaiming it would replay more work than it saves;
/// the publisher clones instead and lets the laggard drop.
const HISTORY_CAP: usize = 64;

/// An immutable, epoch-stamped view of one document.
///
/// Holds everything a query needs — the label table for structural joins
/// and the scheme state for document order — so readers never touch the
/// store or the writer's tree.
#[derive(Debug)]
pub struct EpochSnapshot {
    epoch: u64,
    seq: u64,
    labeled: LabeledStore<DynamicPrime>,
    table: LabelTable<PrimeLabel>,
}

/// Order oracle over the snapshot's SC table (`order = SC mod self-label`).
struct SnapOracle<'a>(&'a EpochSnapshot);

impl OrderOracle for SnapOracle<'_> {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.labeled.state().order_of(node)
    }
}

impl EpochSnapshot {
    /// Wraps a labeled document as the snapshot for `epoch`/`seq`.
    pub fn new(
        epoch: u64,
        seq: u64,
        labeled: LabeledStore<DynamicPrime>,
        table: LabelTable<PrimeLabel>,
    ) -> Self {
        EpochSnapshot { epoch, seq, labeled, table }
    }

    /// Label epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mutations folded in (the document's WAL sequence).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The labeled document (tree + labels + SC state).
    pub fn labeled(&self) -> &LabeledStore<DynamicPrime> {
        &self.labeled
    }

    /// The relational label table queries join over.
    pub fn table(&self) -> &LabelTable<PrimeLabel> {
        &self.table
    }

    /// Attached element count at this epoch.
    pub fn elements(&self) -> u64 {
        self.table.len() as u64
    }

    /// Evaluates a parsed path against this snapshot.
    pub fn query(&self, path: &Path) -> Result<Vec<NodeId>, QueryError> {
        eval_path(&self.table, &SnapOracle(self), path)
    }

    /// Document-order rank of a node (for tests and order-sensitive
    /// callers).
    pub fn rank(&self, node: NodeId) -> u64 {
        self.labeled.state().order_of(node)
    }
}

/// Counters describing how snapshots were produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Published by catching up a retired buffer (no copy).
    pub reclaimed: u64,
    /// Published by deep-copying the current snapshot.
    pub cloned: u64,
}

/// Owns the publish/retire/reclaim cycle for one document. Driven only by
/// the single writer thread; readers interact through the `Arc`s it hands
/// out.
#[derive(Debug)]
pub struct Publisher {
    current: Arc<EpochSnapshot>,
    retired: Vec<Arc<EpochSnapshot>>,
    /// `(epoch, batch)` for every batch newer than the oldest retired
    /// buffer, oldest first.
    history: VecDeque<(u64, Vec<Mutation>)>,
    stats: PublishStats,
}

impl Publisher {
    /// Starts publishing with `base` as the initial epoch.
    pub fn new(base: EpochSnapshot) -> Self {
        Publisher {
            current: Arc::new(base),
            retired: Vec::new(),
            history: VecDeque::new(),
            stats: PublishStats::default(),
        }
    }

    /// The latest published snapshot. Cheap; readers hold the `Arc` for as
    /// long as they need a consistent view.
    pub fn current(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.current)
    }

    /// How snapshots have been produced so far.
    pub fn stats(&self) -> PublishStats {
        self.stats
    }

    /// Publishes the state after `batch` was applied, as epoch `epoch`
    /// with document sequence `seq`. Must be called once per applied
    /// batch, in order, with exactly the mutations handed to
    /// [`xp_store::Store::apply_batch`].
    pub fn publish(&mut self, epoch: u64, seq: u64, batch: &[Mutation]) -> Arc<EpochSnapshot> {
        self.history.push_back((epoch, batch.to_vec()));
        let mut snapshot = match self.take_reclaimable() {
            Some(snap) => {
                self.stats.reclaimed += 1;
                snap
            }
            None => {
                // Copy the pre-batch state; the catch-up below replays the
                // new batch onto it (and is what makes the two paths
                // produce identical bytes).
                self.stats.cloned += 1;
                EpochSnapshot {
                    epoch: self.current.epoch,
                    seq: self.current.seq,
                    labeled: self.current.labeled.fork(),
                    table: self.current.table.clone(),
                }
            }
        };
        self.catch_up(&mut snapshot, epoch, seq);
        let fresh = Arc::new(snapshot);
        let old = std::mem::replace(&mut self.current, Arc::clone(&fresh));
        self.retired.push(old);
        if self.retired.len() > RETIRED_CAP {
            // Oldest first: keep the most recently retired buffers, which
            // need the least catch-up.
            self.retired.remove(0);
        }
        self.prune_history();
        fresh
    }

    /// Pops a retired buffer that (a) no reader still references and
    /// (b) the retained history can catch up.
    fn take_reclaimable(&mut self) -> Option<EpochSnapshot> {
        let oldest_replayable = self.history.front().map(|&(e, _)| e)?;
        for i in (0..self.retired.len()).rev() {
            let lagging = self.retired[i].epoch;
            // Every batch with epoch > lagging must still be retained,
            // i.e. the history must reach back to lagging + 1.
            if Arc::strong_count(&self.retired[i]) == 1 && oldest_replayable <= lagging + 1 {
                let arc = self.retired.swap_remove(i);
                // The count was checked an instant ago and only this
                // thread mints clones, so the unwrap cannot race.
                return Arc::try_unwrap(arc).ok();
            }
        }
        None
    }

    /// Replays the batches `snap` missed, bringing it to `epoch`/`seq`.
    fn catch_up(&mut self, snap: &mut EpochSnapshot, epoch: u64, seq: u64) {
        for (batch_epoch, batch) in &self.history {
            if *batch_epoch <= snap.epoch {
                continue;
            }
            for mutation in batch {
                // Mirrors Store::apply_batch: a mutation that failed in
                // the writer fails identically here (deterministic
                // schemes are the WAL-replay contract) and changes
                // nothing.
                if let Ok(report) = snap.labeled.apply(mutation) {
                    snap.table.apply_report(snap.labeled.tree(), snap.labeled.doc(), &report);
                }
            }
        }
        snap.epoch = epoch;
        snap.seq = seq;
    }

    /// Drops history no retired buffer needs any more.
    fn prune_history(&mut self) {
        let floor = self.retired.iter().map(|s| s.epoch).min().unwrap_or(u64::MAX);
        while let Some(&(e, _)) = self.history.front() {
            if e <= floor && self.history.len() > 1 {
                self.history.pop_front();
            } else {
                break;
            }
        }
        while self.history.len() > HISTORY_CAP {
            self.history.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::InsertPos;
    use xp_query::relstore::LabelTable;

    fn base() -> EpochSnapshot {
        let tree = xp_xmltree::parse("<r><a/><b><c/></b></r>").unwrap();
        let labeled = LabeledStore::build(DynamicPrime::new(8), tree).unwrap();
        let table = LabelTable::build(labeled.tree(), labeled.doc());
        EpochSnapshot::new(0, 0, labeled, table)
    }

    fn mutation_for(snap: &EpochSnapshot, i: u64) -> Mutation {
        let anchor = snap.labeled.tree().elements().nth(1).unwrap();
        if i % 2 == 0 {
            Mutation::InsertBefore { anchor, tag: "x".into() }
        } else {
            Mutation::InsertSubtree {
                pos: InsertPos::LastChildOf(snap.labeled.tree().root()),
                xml: "<y><z/></y>".into(),
            }
        }
    }

    /// Applies `m` the way the writer does, returning the post state.
    fn writer_apply(snap: &EpochSnapshot, m: &Mutation, epoch: u64, seq: u64) -> EpochSnapshot {
        let mut labeled = snap.labeled.fork();
        let mut table = snap.table.clone();
        let report = labeled.apply(m).unwrap();
        table.apply_report(labeled.tree(), labeled.doc(), &report);
        EpochSnapshot::new(epoch, seq, labeled, table)
    }

    #[test]
    fn steady_state_reclaims_instead_of_cloning() {
        let mut publisher = Publisher::new(base());
        let mut writer = publisher.current();
        for epoch in 1..=10u64 {
            let m = mutation_for(&writer, epoch);
            writer = {
                let next = writer_apply(&writer, &m, epoch, epoch);
                publisher.publish(epoch, epoch, std::slice::from_ref(&m));
                Arc::new(next)
            };
            let published = publisher.current();
            assert_eq!(published.epoch(), epoch);
            assert_eq!(
                published.labeled().tree().snapshot(),
                writer.labeled().tree().snapshot(),
                "published tree equals writer tree at epoch {epoch}"
            );
        }
        let stats = publisher.stats();
        assert!(
            stats.reclaimed >= 7,
            "with no readers, almost every publish reclaims: {stats:?}"
        );
    }

    #[test]
    fn held_snapshots_force_clones_but_stay_immutable() {
        let mut publisher = Publisher::new(base());
        let pinned = publisher.current();
        let elements_at_0 = pinned.elements();
        for epoch in 1..=4u64 {
            let m = mutation_for(&publisher.current(), epoch);
            publisher.publish(epoch, epoch, std::slice::from_ref(&m));
        }
        // The reader's view never moved.
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.elements(), elements_at_0);
        assert!(publisher.stats().cloned >= 1, "a held buffer forces the copy path");
        // Once released, the buffer becomes reclaimable again.
        drop(pinned);
        let before = publisher.stats().reclaimed;
        for epoch in 5..=8u64 {
            let m = mutation_for(&publisher.current(), epoch);
            publisher.publish(epoch, epoch, std::slice::from_ref(&m));
        }
        assert!(publisher.stats().reclaimed > before);
    }

    /// Replay-debt bound: the reclaim guard at `take_reclaimable` admits a
    /// lagging buffer only when the retained history reaches back to
    /// `lagging + 1` — one batch per missed epoch, never a gap. Driven
    /// well past `HISTORY_CAP` with a seeded pin/release pattern, every
    /// published snapshot must stay byte-identical to the writer's state:
    /// an off-by-one in the guard would let `catch_up` skip a pruned batch
    /// and publish a silently wrong document.
    #[test]
    fn reclaimed_buffers_never_replay_past_the_retained_history() {
        let mut publisher = Publisher::new(base());
        let mut writer = publisher.current();
        let mut pinned: Vec<(u64, Arc<EpochSnapshot>)> = Vec::new();
        for epoch in 1..=(HISTORY_CAP as u64 + 16) {
            // Seeded pin/release pattern: pin every 3rd epoch, hold each
            // pin for a pseudo-random 1..=13 epochs.
            pinned.retain(|&(release_at, _)| release_at > epoch);
            if epoch % 3 == 0 {
                let hold = 1 + (epoch * 7 + 3) % 13;
                pinned.push((epoch + hold, publisher.current()));
            }
            let m = mutation_for(&writer, epoch);
            writer = {
                let next = writer_apply(&writer, &m, epoch, epoch);
                publisher.publish(epoch, epoch, std::slice::from_ref(&m));
                Arc::new(next)
            };
            let published = publisher.current();
            assert_eq!(published.epoch(), epoch);
            assert_eq!(
                published.labeled().tree().snapshot(),
                writer.labeled().tree().snapshot(),
                "published tree diverged from the writer at epoch {epoch}"
            );
            assert_eq!(
                published.labeled().ordered_nodes(),
                writer.labeled().ordered_nodes(),
                "published document order diverged at epoch {epoch}"
            );
            assert!(
                publisher.history.len() <= HISTORY_CAP,
                "history must stay bounded, holds {}",
                publisher.history.len()
            );
        }
        // History must stay a contiguous epoch suffix — the structural
        // fact the `lagging + 1` guard arithmetic rests on.
        for pair in publisher.history.make_contiguous().windows(2) {
            assert_eq!(pair[1].0, pair[0].0 + 1, "history epochs must be gap-free");
        }
        let stats = publisher.stats();
        assert!(stats.reclaimed > 0, "the pattern must exercise the reclaim path");
        assert!(stats.cloned > 0, "the pattern must exercise the clone path");
    }

    /// Counter consistency: every publish is accounted exactly once, as
    /// either a reclaim or a clone — `reclaimed + cloned` equals the
    /// number of publishes regardless of how readers pin buffers.
    #[test]
    fn every_publish_is_counted_as_reclaim_or_clone() {
        let mut publisher = Publisher::new(base());
        let mut held = Vec::new();
        let mut publishes = 0u64;
        for epoch in 1..=20u64 {
            if epoch % 4 == 0 {
                held.push(publisher.current());
            }
            if epoch % 7 == 0 {
                held.clear();
            }
            let m = mutation_for(&publisher.current(), epoch);
            publisher.publish(epoch, epoch, std::slice::from_ref(&m));
            publishes += 1;
            let stats = publisher.stats();
            assert_eq!(
                stats.reclaimed + stats.cloned,
                publishes,
                "epoch {epoch}: a publish went uncounted or double-counted"
            );
        }
    }

    #[test]
    fn queries_run_against_the_published_epoch() {
        let mut publisher = Publisher::new(base());
        let path = Path::parse("//x").unwrap();
        assert_eq!(publisher.current().query(&path).unwrap().len(), 0);
        let m = mutation_for(&publisher.current(), 0);
        publisher.publish(1, 1, std::slice::from_ref(&m));
        assert_eq!(publisher.current().query(&path).unwrap().len(), 1);
    }
}
