//! The sharded epoch loop: one batch fans across shards, one snapshot
//! publishes per epoch.
//!
//! This is the sharded sibling of [`crate::epoch::EpochLoop`], built over
//! [`xp_store::ShardedDocStore`] (one document whose unit of scale is the
//! §3.2 decomposition subtree). The single-writer discipline is identical
//! — one thread owns the store; readers only ever see immutable published
//! snapshots — but the work inside an epoch is shard-grained:
//!
//! 1. **Gather** jobs up to [`crate::epoch::BatchPolicy::max_mutations`].
//! 2. **Commit** the whole batch through
//!    [`xp_store::ShardedDocStore::apply_batch`]: one WAL `fdatasync`,
//!    then the applies fan out across the touched shards in parallel
//!    (`xp-par`), then the split/merge maintenance pass runs.
//! 3. **Refresh** the per-shard [`ShardedTables`] partitions of exactly
//!    the shards the batch dirtied — `O(touched shards)`, never the
//!    document — and prune partitions of shards that merged away.
//! 4. **Publish** a single [`ShardedEpochSnapshot`] covering all shards:
//!    the composed label table (a row concat of the partitions — the
//!    [`xp_labelkit::ShardedLabel`]s answer every axis across shard
//!    boundaries by themselves) plus the document-order rank map. Label
//!    and table *maintenance* stay `O(touched shards)`; the publish step
//!    pays an `O(n)` row concat, which involves no label arithmetic.
//! 5. **Reply** to each job with its per-mutation outcomes and the epoch.
//!
//! Durability before visibility, as in the flat loop: the WAL fsync in
//! step 2 precedes the publish in step 4.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};

use xp_labelkit::{Mutation, ShardId, ShardedLabel};
use xp_prime::PrimeLabel;
use xp_query::engine::{eval_path, OrderOracle, Path, QueryError};
use xp_query::relstore::LabelTable;
use xp_query::{QueryCache, ShardedTables, TouchedTags};
use xp_store::{ShardedDocStore, StoreError};
use xp_xmltree::NodeId;

use crate::epoch::BatchPolicy;

/// An immutable, epoch-stamped view of the whole sharded document: one
/// snapshot per epoch, no matter how many shards the batch touched.
#[derive(Debug)]
pub struct ShardedEpochSnapshot {
    epoch: u64,
    seq: u64,
    shards: Vec<ShardId>,
    table: LabelTable<ShardedLabel<PrimeLabel>>,
    ranks: HashMap<NodeId, u64>,
}

struct RankOracle<'a>(&'a HashMap<NodeId, u64>);

impl OrderOracle for RankOracle<'_> {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.get(&node).copied().unwrap_or(u64::MAX)
    }
}

impl ShardedEpochSnapshot {
    /// Label epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mutations folded in (the document's WAL sequence).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Live shards at this epoch, ascending.
    pub fn shards(&self) -> &[ShardId] {
        &self.shards
    }

    /// Attached element count at this epoch.
    pub fn elements(&self) -> u64 {
        self.table.len() as u64
    }

    /// The composed cross-shard label table queries join over.
    pub fn table(&self) -> &LabelTable<ShardedLabel<PrimeLabel>> {
        &self.table
    }

    /// Evaluates a parsed path against this snapshot — all nine axes,
    /// across shard boundaries.
    pub fn query(&self, path: &Path) -> Result<Vec<NodeId>, QueryError> {
        eval_path(&self.table, &RankOracle(&self.ranks), path)
    }

    /// Document-order rank of a node at this epoch.
    pub fn rank(&self, node: NodeId) -> u64 {
        self.ranks.get(&node).copied().unwrap_or(u64::MAX)
    }
}

/// Outcome of one [`ShardedApplyJob`].
#[derive(Debug, Clone)]
pub enum ShardedOutcome {
    /// The batch committed; per-mutation results in submission order
    /// (`Ok(labels touched)` or the scheme's error message).
    Applied {
        /// Epoch whose snapshot reflects this job.
        epoch: u64,
        /// Document sequence after the job's mutations.
        seq: u64,
        /// One entry per submitted mutation.
        results: Vec<Result<u64, String>>,
    },
    /// The job was rejected whole (WAL-level failure) before consuming
    /// any sequence numbers.
    Rejected {
        /// Human-readable detail.
        msg: String,
    },
}

/// A typed mutation batch awaiting the sharded writer.
pub struct ShardedApplyJob {
    /// Mutations against the live tree, in order.
    pub mutations: Vec<Mutation>,
    /// Where the outcome goes; a dropped receiver discards the reply.
    pub reply: mpsc::SyncSender<ShardedOutcome>,
}

enum Job {
    Apply(ShardedApplyJob),
    Checkpoint,
    Stop,
}

/// The reader-facing side: the latest published snapshot, swapped
/// atomically at each epoch boundary.
pub type PublishedShardedDoc = Arc<RwLock<Arc<ShardedEpochSnapshot>>>;

/// Handle to a running sharded epoch loop.
pub struct ShardedEpochLoop {
    jobs: mpsc::Sender<Job>,
    published: PublishedShardedDoc,
    cache: Option<Arc<Mutex<QueryCache>>>,
    writer: Option<std::thread::JoinHandle<ShardedDocStore>>,
}

impl ShardedEpochLoop {
    /// Takes ownership of `store` and starts the writer thread, publishing
    /// the store's current state as the initial snapshot.
    pub fn start(store: ShardedDocStore, policy: BatchPolicy) -> ShardedEpochLoop {
        ShardedEpochLoop::launch(store, policy, None)
    }

    /// Like [`ShardedEpochLoop::start`], with a query-result cache of
    /// `cache_capacity` entries. Invalidation is shard-granular: a batch
    /// drops exactly the entries whose tag footprint intersects the tag
    /// vocabulary of the partitions it dirtied (before and after refresh).
    pub fn start_with_cache(
        store: ShardedDocStore,
        policy: BatchPolicy,
        cache_capacity: usize,
    ) -> ShardedEpochLoop {
        ShardedEpochLoop::launch(store, policy, Some(cache_capacity))
    }

    fn launch(
        store: ShardedDocStore,
        policy: BatchPolicy,
        cache_capacity: Option<usize>,
    ) -> ShardedEpochLoop {
        let tables = ShardedTables::build(store.labeled());
        let initial = publish_state(&store, &tables, store.epoch(), store.seq());
        let epoch0 = initial.epoch();
        let published: PublishedShardedDoc = Arc::new(RwLock::new(Arc::new(initial)));
        let cache =
            cache_capacity.map(|cap| Arc::new(Mutex::new(QueryCache::new(cap, epoch0))));
        let (tx, rx) = mpsc::channel::<Job>();
        let writer_published = Arc::clone(&published);
        let writer_cache = cache.clone();
        let writer = std::thread::Builder::new()
            .name("xp-shard-writer".into())
            .spawn(move || writer_loop(store, tables, policy, rx, writer_published, writer_cache))
            .unwrap_or_else(|e| panic!("spawning the sharded writer failed: {e}"));
        ShardedEpochLoop { jobs: tx, published, cache, writer: Some(writer) }
    }

    /// The latest published snapshot. Readers clone the `Arc` and keep a
    /// consistent view for as long as they hold it.
    pub fn snapshot(&self) -> Arc<ShardedEpochSnapshot> {
        match self.published.read() {
            Ok(s) => Arc::clone(&s),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// The query-result cache, when one was configured.
    pub fn cache(&self) -> Option<Arc<Mutex<QueryCache>>> {
        self.cache.clone()
    }

    /// Evaluates `path_text` against the latest published snapshot, going
    /// through the result cache when one is configured. Answers are
    /// byte-identical to [`ShardedEpochSnapshot::query`] on the same
    /// snapshot — the cache can only short-circuit the evaluation.
    pub fn query_cached(&self, path_text: &str) -> Result<Vec<NodeId>, QueryError> {
        let snap = self.snapshot();
        if let Some(cache) = &self.cache {
            let cached = {
                let mut guard = match cache.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard.lookup(path_text, snap.epoch())
            };
            if let Some(nodes) = cached {
                return Ok(nodes);
            }
        }
        let parsed = Path::parse(path_text).map_err(QueryError::Path)?;
        let nodes = snap.query(&parsed)?;
        if let Some(cache) = &self.cache {
            let mut guard = match cache.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.insert(path_text, &parsed, snap.epoch(), nodes.clone());
        }
        Ok(nodes)
    }

    /// Enqueues a job. Fails only if the writer has already stopped.
    pub fn submit(&self, job: ShardedApplyJob) -> Result<(), ShardedApplyJob> {
        self.jobs.send(Job::Apply(job)).map_err(|e| match e.0 {
            Job::Apply(j) => j,
            _ => unreachable!("we only send Apply here"),
        })
    }

    /// Asks the writer to checkpoint (rewriting only dirty shards' files)
    /// after the currently queued jobs drain.
    pub fn request_checkpoint(&self) {
        let _ = self.jobs.send(Job::Checkpoint);
    }

    /// Stops the writer after it drains queued jobs, returning the store.
    pub fn shutdown(mut self) -> Option<ShardedDocStore> {
        let _ = self.jobs.send(Job::Stop);
        self.writer.take().and_then(|w| w.join().ok())
    }
}

/// Builds the epoch's snapshot from the store's current state: composed
/// table plus the document-order rank map (derived from the sharded
/// scheme's own cross-shard order, i.e. per-shard SC composed through the
/// boundary chains).
fn publish_state(
    store: &ShardedDocStore,
    tables: &ShardedTables<PrimeLabel>,
    epoch: u64,
    seq: u64,
) -> ShardedEpochSnapshot {
    let ranks: HashMap<NodeId, u64> = store
        .labeled()
        .ordered_nodes()
        .into_iter()
        .enumerate()
        .map(|(i, n)| (n, i as u64))
        .collect();
    ShardedEpochSnapshot {
        epoch,
        seq,
        shards: store.live_shards(),
        table: tables.compose(),
        ranks,
    }
}

fn writer_loop(
    mut store: ShardedDocStore,
    mut tables: ShardedTables<PrimeLabel>,
    policy: BatchPolicy,
    jobs: mpsc::Receiver<Job>,
    published: PublishedShardedDoc,
    cache: Option<Arc<Mutex<QueryCache>>>,
) -> ShardedDocStore {
    let mut epoch = store.epoch();
    loop {
        let first = match jobs.recv() {
            Ok(Job::Apply(j)) => j,
            Ok(Job::Checkpoint) => {
                let _ = store.checkpoint();
                continue;
            }
            Ok(Job::Stop) | Err(_) => break,
        };
        let mut batch = vec![first];
        let mut queued = batch[0].mutations.len();
        let mut stop_after = false;
        while queued < policy.max_mutations {
            match jobs.try_recv() {
                Ok(Job::Apply(j)) => {
                    queued += j.mutations.len();
                    batch.push(j);
                }
                Ok(Job::Checkpoint) => {
                    let _ = store.checkpoint();
                }
                Ok(Job::Stop) => {
                    stop_after = true;
                    break;
                }
                Err(_) => break,
            }
        }
        epoch += 1;
        run_batch(&mut store, &mut tables, batch, epoch, &published, &cache);
        if let Some(limit) = policy.checkpoint_after {
            if store.seq().saturating_sub(store.durable_seq()) >= limit {
                let _ = store.checkpoint();
            }
        }
        if stop_after {
            break;
        }
    }
    store
}

/// Commits one gathered batch, refreshes the dirtied partitions, publishes
/// the epoch's snapshot, and replies to every job.
fn run_batch(
    store: &mut ShardedDocStore,
    tables: &mut ShardedTables<PrimeLabel>,
    batch: Vec<ShardedApplyJob>,
    epoch: u64,
    published: &PublishedShardedDoc,
    cache: &Option<Arc<Mutex<QueryCache>>>,
) {
    let flat: Vec<Mutation> = batch.iter().flat_map(|j| j.mutations.iter().cloned()).collect();
    if flat.is_empty() {
        let (e, seq) = {
            let snap = match published.read() {
                Ok(s) => Arc::clone(&s),
                Err(poisoned) => Arc::clone(&poisoned.into_inner()),
            };
            (snap.epoch(), snap.seq())
        };
        for job in batch {
            let _ = job
                .reply
                .try_send(ShardedOutcome::Applied { epoch: e, seq, results: Vec::new() });
        }
        return;
    }

    let outcome = match store.apply_batch(&flat) {
        Ok(o) => o,
        Err(e) => {
            let msg = match &e {
                StoreError::Io { .. } => format!("commit failed: {e}"),
                _ => format!("apply failed: {e}"),
            };
            for job in batch {
                let _ = job.reply.try_send(ShardedOutcome::Rejected { msg: clone_msg(&msg) });
            }
            return;
        }
    };

    // O(touched shards): refresh exactly the dirtied partitions, then
    // prune partitions whose shard merged away. When caching, the batch's
    // touched tags are exactly the tag vocabulary of those partitions:
    // *before* refresh to cover removed rows, *after* to cover inserts —
    // shard-granular invalidation, never the whole document.
    let dead: Vec<ShardId> = tables
        .partitions()
        .map(|(sid, _)| sid)
        .filter(|&sid| store.labeled().state().cell(sid).is_none())
        .collect();
    let mut touched = TouchedTags::new();
    if cache.is_some() {
        if outcome.results.iter().any(Result::is_err) {
            // A failed mutation's partial effects cannot be attributed.
            touched.mark_unknown();
        }
        for sid in outcome.dirty.iter().copied().chain(dead.iter().copied()) {
            collect_partition_tags(tables, sid, &mut touched);
        }
    }
    for &sid in &outcome.dirty {
        tables.rebuild_partition(store.labeled(), sid);
    }
    for sid in dead {
        tables.rebuild_partition(store.labeled(), sid);
    }
    if cache.is_some() {
        for &sid in &outcome.dirty {
            collect_partition_tags(tables, sid, &mut touched);
        }
    }

    // Invalidate before the epoch swap: by the time a reader can hold the
    // new epoch, every entry this batch could have stalled is gone.
    if let Some(cache) = cache {
        let mut guard = match cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.advance(epoch, &touched);
    }

    // Durability already holds (the WAL fsync happened inside
    // apply_batch); now publish the single epoch snapshot.
    let snap = Arc::new(publish_state(store, tables, epoch, store.seq()));
    match published.write() {
        Ok(mut slot) => *slot = Arc::clone(&snap),
        Err(poisoned) => *poisoned.into_inner() = Arc::clone(&snap),
    }

    // Slice per-mutation results back out to their jobs.
    let mut cursor = 0usize;
    let mut seq_cursor = store.seq() - flat.len() as u64;
    for job in batch {
        let n = job.mutations.len();
        let slice = &outcome.results[cursor..cursor + n];
        cursor += n;
        seq_cursor += n as u64;
        let results: Vec<Result<u64, String>> = slice
            .iter()
            .map(|r| match r {
                Ok(report) => Ok(report.labels_touched() as u64),
                Err(e) => Err(e.to_string()),
            })
            .collect();
        let _ = job.reply.try_send(ShardedOutcome::Applied {
            epoch,
            seq: seq_cursor,
            results,
        });
    }
}

fn clone_msg(msg: &str) -> String {
    msg.to_owned()
}

/// Folds every tag that appears in shard `sid`'s partition into `touched`.
fn collect_partition_tags(
    tables: &ShardedTables<PrimeLabel>,
    sid: ShardId,
    touched: &mut TouchedTags,
) {
    if let Some(part) = tables.partition(sid) {
        for row in part.rows() {
            touched.add(part.tag_name(row.tag));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::{InsertPos, LabeledStore, ShardPolicy};
    use xp_prime::DynamicPrime;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("xp-shardloop-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_tree() -> xp_xmltree::XmlTree {
        xp_xmltree::parse(
            "<lib><shelf><book><title>a</title><title>b</title></book><book/></shelf>\
             <shelf><case><book/><book/></case></shelf><attic><box/></attic></lib>",
        )
        .unwrap()
    }

    fn start(name: &str) -> (ShardedEpochLoop, PathBuf) {
        let dir = tmpdir(name);
        let store =
            ShardedDocStore::create(&dir, "doc", sample_tree(), 8, ShardPolicy::at_depth(2))
                .unwrap();
        (ShardedEpochLoop::start(store, BatchPolicy::default()), dir)
    }

    fn apply(
        lp: &ShardedEpochLoop,
        mutations: Vec<Mutation>,
    ) -> (u64, u64, Vec<Result<u64, String>>) {
        let (tx, rx) = mpsc::sync_channel(1);
        lp.submit(ShardedApplyJob { mutations, reply: tx }).ok().unwrap();
        match rx.recv().unwrap() {
            ShardedOutcome::Applied { epoch, seq, results } => (epoch, seq, results),
            ShardedOutcome::Rejected { msg } => panic!("rejected: {msg}"),
        }
    }

    #[test]
    fn one_batch_fans_across_shards_into_one_snapshot() {
        let (lp, dir) = start("fan");
        let snap0 = lp.snapshot();
        assert!(snap0.shards().len() > 2);
        assert_eq!(snap0.table().len() as u64, snap0.elements());

        // Three mutations in three different shards, one job. Anchors are
        // resolved against the published snapshot — the writer's tree is
        // identical (single writer, no batch in flight yet).
        let title = snap0.query(&Path::parse("//title").unwrap()).unwrap()[0];
        let case = snap0.query(&Path::parse("//case").unwrap()).unwrap()[0];
        let bx = snap0.query(&Path::parse("//box").unwrap()).unwrap()[0];
        let muts = vec![
            Mutation::InsertBefore { anchor: title, tag: "neu".into() },
            Mutation::InsertSubtree {
                pos: InsertPos::LastChildOf(case),
                xml: "<disc><trk/></disc>".into(),
            },
            Mutation::InsertBefore { anchor: bx, tag: "crate".into() },
        ];
        let (epoch, seq, results) = apply(&lp, muts.clone());
        assert_eq!(epoch, snap0.epoch() + 1, "one batch publishes exactly one epoch");
        assert_eq!(seq, 3);
        assert!(results.iter().all(Result::is_ok));

        // The published snapshot answers cross-shard queries identically
        // to an unsharded oracle over the same mutations.
        let snap = lp.snapshot();
        assert_eq!(snap.epoch(), epoch);
        let mut oracle = LabeledStore::build(DynamicPrime::new(8), sample_tree()).unwrap();
        for m in &muts {
            oracle.apply(m).unwrap();
        }
        let otable = LabelTable::build(oracle.tree(), oracle.doc());
        struct O<'a>(&'a LabeledStore<DynamicPrime>);
        impl OrderOracle for O<'_> {
            fn rank(&self, n: NodeId) -> u64 {
                self.0.state().order_of(n)
            }
        }
        for q in ["//book", "//title", "/lib/shelf", "//book/following-sibling::*", "//neu"] {
            let path = Path::parse(q).unwrap();
            let got = snap.query(&path).unwrap();
            let want = eval_path(&otable, &O(&oracle), &path).unwrap();
            assert_eq!(got, want, "query {q}");
        }

        // Old snapshot still answers the pre-batch state.
        assert_eq!(snap0.elements() + 4, snap.elements());
        let store = lp.shutdown().unwrap();
        assert_eq!(store.seq(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_request_folds_the_wal_and_survives_restart() {
        let (lp, dir) = start("ckpt");
        let title = lp.snapshot().query(&Path::parse("//title").unwrap()).unwrap()[0];
        let (_, seq, _) =
            apply(&lp, vec![Mutation::InsertBefore { anchor: title, tag: "neu".into() }]);
        lp.request_checkpoint();
        let store = lp.shutdown().unwrap();
        assert_eq!(store.durable_seq(), seq, "checkpoint folded the batch");
        let elements = store.labeled().doc().nodes().len();
        drop(store);

        let back = ShardedDocStore::open(&dir).unwrap();
        assert_eq!(back.durable_seq(), seq);
        assert_eq!(back.labeled().doc().nodes().len(), elements);
        // Restarting the loop over the recovered store publishes a
        // snapshot that sees the mutation.
        let lp2 = ShardedEpochLoop::start(back, BatchPolicy::default());
        assert_eq!(lp2.snapshot().query(&Path::parse("//neu").unwrap()).unwrap().len(), 1);
        drop(lp2.shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_answers_match_cold_evaluation_and_survive_disjoint_shards() {
        let dir = tmpdir("cache");
        let store =
            ShardedDocStore::create(&dir, "doc", sample_tree(), 8, ShardPolicy::at_depth(2))
                .unwrap();
        let lp = ShardedEpochLoop::start_with_cache(store, BatchPolicy::default(), 64);
        let stats = |lp: &ShardedEpochLoop| {
            let cache = lp.cache().unwrap();
            let guard = cache.lock().unwrap();
            guard.stats()
        };
        let cold = |lp: &ShardedEpochLoop, p: &str| {
            lp.snapshot().query(&Path::parse(p).unwrap()).unwrap()
        };

        // Warm three entries (all misses), then re-query (all hits); every
        // answer must be byte-identical to cold evaluation on the snapshot.
        let warm = ["//attic/box", "//case", "//book"];
        for pass in 0..2 {
            for p in warm {
                assert_eq!(lp.query_cached(p).unwrap(), cold(&lp, p), "pass {pass} path {p}");
            }
        }
        let s0 = stats(&lp);
        assert_eq!((s0.misses, s0.hits), (3, 3));

        // A batch inside a book-under-shelf shard touches tags {book,
        // title} only. `//book` must die; `//attic/box` and `//case` have
        // disjoint footprints (the *case* partition contains books, but
        // the batch never dirtied it) and must keep hitting.
        let title = cold(&lp, "//title")[0];
        apply(&lp, vec![Mutation::InsertBefore { anchor: title, tag: "title".into() }]);
        for p in warm {
            assert_eq!(lp.query_cached(p).unwrap(), cold(&lp, p), "post-batch path {p}");
        }
        let s1 = stats(&lp);
        assert_eq!(s1.hits, s0.hits + 2, "disjoint-shard entries survive the epoch");
        assert_eq!(s1.misses, s0.misses + 1, "only the touched tag re-evaluates");

        // A failing mutation cannot attribute its partial effects, so the
        // whole cache flushes: everything re-misses, still byte-identical.
        let root_target = cold(&lp, "/lib")[0];
        let (_, _, results) = apply(&lp, vec![Mutation::Delete { target: root_target }]);
        assert!(results[0].is_err());
        for p in warm {
            assert_eq!(lp.query_cached(p).unwrap(), cold(&lp, p), "post-flush path {p}");
        }
        let s2 = stats(&lp);
        assert_eq!(s2.misses, s1.misses + 3, "a rejected mutation flushes the cache");
        drop(lp.shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_mutations_report_per_mutation_not_per_batch() {
        let (lp, dir) = start("mixed");
        let snap = lp.snapshot();
        let title = snap.query(&Path::parse("//title").unwrap()).unwrap()[0];
        let root_target = snap.query(&Path::parse("/lib").unwrap()).unwrap()[0];
        let (_, _, results) = apply(
            &lp,
            vec![
                Mutation::InsertBefore { anchor: title, tag: "ok".into() },
                Mutation::Delete { target: root_target }, // root delete must fail
                Mutation::InsertBefore { anchor: title, tag: "ok2".into() },
            ],
        );
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        let after = lp.snapshot();
        assert_eq!(after.query(&Path::parse("//ok").unwrap()).unwrap().len(), 1);
        assert_eq!(after.query(&Path::parse("//ok2").unwrap()).unwrap().len(), 1);
        drop(lp.shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
