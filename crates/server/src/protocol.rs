//! The wire protocol: length-prefixed, checksummed message frames carrying
//! varint-encoded requests and responses.
//!
//! # Framing
//!
//! Every message — both directions — is one store frame
//! (`[len: u32 le][crc: u32 le][payload]`, CRC-32/IEEE over the payload;
//! see [`xp_store::frame`]). Reusing the WAL's frame codec means a message
//! that survives the socket is bit-identical in shape to one that survives
//! the disk, and the same corruption checks guard both. Messages are
//! additionally capped at [`MAX_MESSAGE`] bytes so a garbage length prefix
//! cannot make the server allocate gigabytes.
//!
//! # Requests and responses
//!
//! Payloads are a varint tag followed by tag-specific fields, encoded with
//! the same varint/length-prefixed-bytes primitives as the store's
//! manifest ([`xp_labelkit::codec`]). Strings are UTF-8. Node references
//! cross the wire as arena slot indices (`NodeId::index()`), which are
//! stable for the lifetime of a document because slots are never reused —
//! the same representation the WAL itself uses.
//!
//! Client-side mutations are [`WireMutation`]s: structurally identical to
//! [`xp_labelkit::Mutation`] but holding raw `u64` node indices, because
//! the client has no arena to resolve them against. `WireMutation::encode`
//! produces bytes that [`Mutation::decode`] accepts — the server decodes
//! against the live tree, which also validates that every referenced slot
//! exists. This byte compatibility is pinned by a test.

use std::io::{Read, Write};

use xp_labelkit::codec::{read_bytes, read_varint, write_bytes, write_varint, CodecError};
use xp_store::frame::{crc32, encode_frame, FRAME_HEADER};

/// Hard cap on one protocol message (16 MiB). Mutation batches and query
/// results both fit comfortably; anything larger is a corrupt or hostile
/// length prefix.
pub const MAX_MESSAGE: usize = 16 << 20;

/// Wire error codes carried by [`Response::Err`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Internal server failure (I/O, store corruption, …).
    Internal,
    /// The request referenced a document URI the store does not hold.
    UnknownDoc,
    /// The query path failed to parse.
    BadPath,
    /// The query ran past an evaluation limit.
    QueryLimit,
    /// A request or mutation payload failed to decode.
    BadRequest,
    /// The document needs recovery before it can serve reads.
    NeedsRecovery,
}

impl ErrCode {
    fn to_u64(self) -> u64 {
        match self {
            ErrCode::Internal => 0,
            ErrCode::UnknownDoc => 1,
            ErrCode::BadPath => 2,
            ErrCode::QueryLimit => 3,
            ErrCode::BadRequest => 4,
            ErrCode::NeedsRecovery => 5,
        }
    }

    fn from_u64(v: u64) -> Option<ErrCode> {
        Some(match v {
            0 => ErrCode::Internal,
            1 => ErrCode::UnknownDoc,
            2 => ErrCode::BadPath,
            3 => ErrCode::QueryLimit,
            4 => ErrCode::BadRequest,
            5 => ErrCode::NeedsRecovery,
            _ => return None,
        })
    }
}

/// Where a client-side insertion lands (wire form of
/// [`xp_labelkit::InsertPos`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WirePos {
    /// Immediately before the node at this arena index.
    Before(u64),
    /// As the last child of the node at this arena index.
    LastChildOf(u64),
}

/// A client-side mutation over raw node indices. Byte-compatible with
/// [`xp_labelkit::Mutation`]'s codec: the server decodes these bytes with
/// `Mutation::decode`, resolving indices against the live tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMutation {
    /// New element named `tag` immediately before the anchor node.
    InsertBefore {
        /// Arena index of the anchor.
        anchor: u64,
        /// Tag for the new element.
        tag: String,
    },
    /// A parsed XML fragment grafted at `pos`.
    InsertSubtree {
        /// Where the fragment root lands.
        pos: WirePos,
        /// The fragment, as XML text.
        xml: String,
    },
    /// Wrap the target node in a new parent named `tag`.
    InsertParent {
        /// Arena index of the node to wrap.
        target: u64,
        /// Tag for the new parent.
        tag: String,
    },
    /// Delete the target node's subtree.
    Delete {
        /// Arena index of the subtree root.
        target: u64,
    },
    /// Move the target subtree to `pos`.
    MoveSubtree {
        /// Arena index of the subtree root.
        target: u64,
        /// Destination.
        pos: WirePos,
    },
}

// Tags mirror xp-labelkit's private MUT_*/POS_* constants; the byte-compat
// test in this module breaks if either side drifts.
const MUT_INSERT_BEFORE: u64 = 0;
const MUT_INSERT_SUBTREE: u64 = 1;
const MUT_INSERT_PARENT: u64 = 2;
const MUT_DELETE: u64 = 3;
const MUT_MOVE_SUBTREE: u64 = 4;
const POS_BEFORE: u64 = 0;
const POS_LAST_CHILD_OF: u64 = 1;

fn write_wire_pos(out: &mut Vec<u8>, pos: WirePos) {
    match pos {
        WirePos::Before(n) => {
            write_varint(out, POS_BEFORE);
            write_varint(out, n);
        }
        WirePos::LastChildOf(n) => {
            write_varint(out, POS_LAST_CHILD_OF);
            write_varint(out, n);
        }
    }
}

impl WireMutation {
    /// Appends the mutation in [`xp_labelkit::Mutation`] wire form.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireMutation::InsertBefore { anchor, tag } => {
                write_varint(out, MUT_INSERT_BEFORE);
                write_varint(out, *anchor);
                write_bytes(out, tag.as_bytes());
            }
            WireMutation::InsertSubtree { pos, xml } => {
                write_varint(out, MUT_INSERT_SUBTREE);
                write_wire_pos(out, *pos);
                write_bytes(out, xml.as_bytes());
            }
            WireMutation::InsertParent { target, tag } => {
                write_varint(out, MUT_INSERT_PARENT);
                write_varint(out, *target);
                write_bytes(out, tag.as_bytes());
            }
            WireMutation::Delete { target } => {
                write_varint(out, MUT_DELETE);
                write_varint(out, *target);
            }
            WireMutation::MoveSubtree { target, pos } => {
                write_varint(out, MUT_MOVE_SUBTREE);
                write_varint(out, *target);
                write_wire_pos(out, *pos);
            }
        }
    }

    /// The encoded bytes as an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// A summary of one document the server holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocInfo {
    /// Document URI.
    pub uri: String,
    /// Published label epoch (number of applied batches).
    pub epoch: u64,
    /// Mutations folded into the published snapshot.
    pub seq: u64,
    /// Attached elements at that epoch.
    pub elements: u64,
}

/// Per-mutation apply outcome carried by [`Response::Applied`]. A failed
/// mutation still consumed a WAL sequence number — the error is the
/// scheme's message, and replay re-fails it identically.
pub type WireApply = Result<u64, String>;

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Enumerate documents.
    ListDocs,
    /// Evaluate a query path against the latest published snapshot.
    Query {
        /// Document URI.
        uri: String,
        /// Path expression (the engine's XPath subset).
        path: String,
    },
    /// Apply a batch of mutations through the epoch loop.
    Apply {
        /// Document URI.
        uri: String,
        /// Encoded [`WireMutation`]s (or [`xp_labelkit::Mutation`]s —
        /// same bytes), one length-prefixed blob each.
        mutations: Vec<Vec<u8>>,
    },
    /// Server counters.
    Stats,
    /// Stop the server once in-flight work drains.
    Shutdown,
}

const REQ_PING: u64 = 0;
const REQ_LIST: u64 = 1;
const REQ_QUERY: u64 = 2;
const REQ_APPLY: u64 = 3;
const REQ_STATS: u64 = 4;
const REQ_SHUTDOWN: u64 = 5;

/// Server counters reported by [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Label epochs published (batches applied).
    pub epochs: u64,
    /// Mutations applied successfully.
    pub applied: u64,
    /// Mutations that consumed a sequence number but failed in the scheme.
    pub failed: u64,
    /// WAL data syncs issued.
    pub wal_fsyncs: u64,
    /// Snapshots published by catching up a retired buffer (cheap path).
    pub snapshots_reclaimed: u64,
    /// Snapshots published by deep-copying the current one (slow path).
    pub snapshots_cloned: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that fell through to cold evaluation (0 when caching is
    /// off — every query then skips the cache entirely).
    pub cache_misses: u64,
    /// Cached results dropped by relabel-driven invalidation.
    pub cache_invalidated: u64,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// [`Request::Ping`] reply.
    Pong,
    /// Document listing.
    Docs(Vec<DocInfo>),
    /// Query hits, stamped with the snapshot they were computed against.
    Hits {
        /// Label epoch of the snapshot.
        epoch: u64,
        /// Mutation sequence folded into it.
        seq: u64,
        /// Matching nodes, as arena indices in document order.
        nodes: Vec<u64>,
    },
    /// Apply outcome, stamped with the epoch the batch produced.
    Applied {
        /// Label epoch that published this batch.
        epoch: u64,
        /// Document sequence after the batch.
        seq: u64,
        /// Per-mutation outcome: labels touched, or the scheme error.
        results: Vec<WireApply>,
    },
    /// Counter snapshot.
    Stats(ServerStats),
    /// The server acknowledged shutdown.
    Bye,
    /// A typed failure.
    Err {
        /// What kind of failure.
        code: ErrCode,
        /// Human-readable detail.
        msg: String,
    },
}

const RESP_PONG: u64 = 0;
const RESP_DOCS: u64 = 1;
const RESP_HITS: u64 = 2;
const RESP_APPLIED: u64 = 3;
const RESP_STATS: u64 = 4;
const RESP_BYE: u64 = 5;
const RESP_ERR: u64 = 6;

fn read_string(input: &mut &[u8]) -> Result<String, CodecError> {
    std::str::from_utf8(read_bytes(input)?)
        .map(str::to_owned)
        .map_err(|_| CodecError::Corrupt("protocol string is not UTF-8"))
}

impl Request {
    /// Serializes the request payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => write_varint(&mut out, REQ_PING),
            Request::ListDocs => write_varint(&mut out, REQ_LIST),
            Request::Query { uri, path } => {
                write_varint(&mut out, REQ_QUERY);
                write_bytes(&mut out, uri.as_bytes());
                write_bytes(&mut out, path.as_bytes());
            }
            Request::Apply { uri, mutations } => {
                write_varint(&mut out, REQ_APPLY);
                write_bytes(&mut out, uri.as_bytes());
                write_varint(&mut out, mutations.len() as u64);
                for m in mutations {
                    write_bytes(&mut out, m);
                }
            }
            Request::Stats => write_varint(&mut out, REQ_STATS),
            Request::Shutdown => write_varint(&mut out, REQ_SHUTDOWN),
        }
        out
    }

    /// Parses a request payload.
    pub fn decode(mut input: &[u8]) -> Result<Request, CodecError> {
        let input = &mut input;
        let req = match read_varint(input)? {
            REQ_PING => Request::Ping,
            REQ_LIST => Request::ListDocs,
            REQ_QUERY => Request::Query {
                uri: read_string(input)?,
                path: read_string(input)?,
            },
            REQ_APPLY => {
                let uri = read_string(input)?;
                let count = read_varint(input)?;
                let mut mutations = Vec::new();
                for _ in 0..count {
                    mutations.push(read_bytes(input)?.to_vec());
                }
                Request::Apply { uri, mutations }
            }
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            _ => return Err(CodecError::Corrupt("unknown request tag")),
        };
        if !input.is_empty() {
            return Err(CodecError::Corrupt("trailing request bytes"));
        }
        Ok(req)
    }
}

impl Response {
    /// Serializes the response payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => write_varint(&mut out, RESP_PONG),
            Response::Docs(docs) => {
                write_varint(&mut out, RESP_DOCS);
                write_varint(&mut out, docs.len() as u64);
                for d in docs {
                    write_bytes(&mut out, d.uri.as_bytes());
                    write_varint(&mut out, d.epoch);
                    write_varint(&mut out, d.seq);
                    write_varint(&mut out, d.elements);
                }
            }
            Response::Hits { epoch, seq, nodes } => {
                write_varint(&mut out, RESP_HITS);
                write_varint(&mut out, *epoch);
                write_varint(&mut out, *seq);
                write_varint(&mut out, nodes.len() as u64);
                for &n in nodes {
                    write_varint(&mut out, n);
                }
            }
            Response::Applied { epoch, seq, results } => {
                write_varint(&mut out, RESP_APPLIED);
                write_varint(&mut out, *epoch);
                write_varint(&mut out, *seq);
                write_varint(&mut out, results.len() as u64);
                for r in results {
                    match r {
                        Ok(touched) => {
                            write_varint(&mut out, 0);
                            write_varint(&mut out, *touched);
                        }
                        Err(msg) => {
                            write_varint(&mut out, 1);
                            write_bytes(&mut out, msg.as_bytes());
                        }
                    }
                }
            }
            Response::Stats(s) => {
                write_varint(&mut out, RESP_STATS);
                for v in [
                    s.epochs,
                    s.applied,
                    s.failed,
                    s.wal_fsyncs,
                    s.snapshots_reclaimed,
                    s.snapshots_cloned,
                    s.cache_hits,
                    s.cache_misses,
                    s.cache_invalidated,
                ] {
                    write_varint(&mut out, v);
                }
            }
            Response::Bye => write_varint(&mut out, RESP_BYE),
            Response::Err { code, msg } => {
                write_varint(&mut out, RESP_ERR);
                write_varint(&mut out, code.to_u64());
                write_bytes(&mut out, msg.as_bytes());
            }
        }
        out
    }

    /// Parses a response payload.
    pub fn decode(mut input: &[u8]) -> Result<Response, CodecError> {
        let input = &mut input;
        let resp = match read_varint(input)? {
            RESP_PONG => Response::Pong,
            RESP_DOCS => {
                let count = read_varint(input)?;
                let mut docs = Vec::new();
                for _ in 0..count {
                    docs.push(DocInfo {
                        uri: read_string(input)?,
                        epoch: read_varint(input)?,
                        seq: read_varint(input)?,
                        elements: read_varint(input)?,
                    });
                }
                Response::Docs(docs)
            }
            RESP_HITS => {
                let epoch = read_varint(input)?;
                let seq = read_varint(input)?;
                let count = read_varint(input)?;
                let mut nodes = Vec::with_capacity(count.min(1 << 20) as usize);
                for _ in 0..count {
                    nodes.push(read_varint(input)?);
                }
                Response::Hits { epoch, seq, nodes }
            }
            RESP_APPLIED => {
                let epoch = read_varint(input)?;
                let seq = read_varint(input)?;
                let count = read_varint(input)?;
                let mut results = Vec::new();
                for _ in 0..count {
                    results.push(match read_varint(input)? {
                        0 => Ok(read_varint(input)?),
                        1 => Err(read_string(input)?),
                        _ => return Err(CodecError::Corrupt("unknown apply outcome tag")),
                    });
                }
                Response::Applied { epoch, seq, results }
            }
            RESP_STATS => Response::Stats(ServerStats {
                epochs: read_varint(input)?,
                applied: read_varint(input)?,
                failed: read_varint(input)?,
                wal_fsyncs: read_varint(input)?,
                snapshots_reclaimed: read_varint(input)?,
                snapshots_cloned: read_varint(input)?,
                cache_hits: read_varint(input)?,
                cache_misses: read_varint(input)?,
                cache_invalidated: read_varint(input)?,
            }),
            RESP_BYE => Response::Bye,
            RESP_ERR => {
                let code = ErrCode::from_u64(read_varint(input)?)
                    .ok_or(CodecError::Corrupt("unknown error code"))?;
                Response::Err { code, msg: read_string(input)? }
            }
            _ => return Err(CodecError::Corrupt("unknown response tag")),
        };
        if !input.is_empty() {
            return Err(CodecError::Corrupt("trailing response bytes"));
        }
        Ok(resp)
    }
}

/// Writes one framed message.
pub fn write_message(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// Reads one framed message. `Ok(None)` means the peer closed the
/// connection cleanly at a frame boundary; corruption (bad CRC, oversized
/// length, torn frame) is an [`std::io::ErrorKind::InvalidData`] error.
pub fn read_message(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        n if n < FRAME_HEADER => {
            return Err(bad_data("torn frame header"));
        }
        _ => {}
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let want_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_MESSAGE {
        return Err(bad_data("message exceeds MAX_MESSAGE"));
    }
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload)? < len {
        return Err(bad_data("torn frame payload"));
    }
    if crc32(&payload) != want_crc {
        return Err(bad_data("frame checksum mismatch"));
    }
    Ok(Some(payload))
}

/// Reads until `buf` is full or EOF; returns bytes read. A read timeout
/// (used by the server to poll its stop flag) only propagates when it
/// strikes at a frame boundary — once any byte of a frame has arrived,
/// the rest is waited for, so timeouts never tear messages.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if filled > 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

fn bad_data(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::{InsertPos, Mutation};

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Ping,
            Request::ListDocs,
            Request::Query { uri: "a.xml".into(), path: "//act/scene".into() },
            Request::Apply {
                uri: "a.xml".into(),
                mutations: vec![vec![1, 2, 3], vec![]],
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Pong,
            Response::Docs(vec![DocInfo {
                uri: "a.xml".into(),
                epoch: 3,
                seq: 17,
                elements: 42,
            }]),
            Response::Hits { epoch: 9, seq: 40, nodes: vec![0, 5, 1 << 40] },
            Response::Applied {
                epoch: 10,
                seq: 41,
                results: vec![Ok(7), Err("nope".into())],
            },
            Response::Stats(ServerStats {
                epochs: 1,
                applied: 2,
                failed: 3,
                wal_fsyncs: 4,
                snapshots_reclaimed: 5,
                snapshots_cloned: 6,
                cache_hits: 7,
                cache_misses: 8,
                cache_invalidated: 9,
            }),
            Response::Bye,
            Response::Err { code: ErrCode::BadPath, msg: "unparsable".into() },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn wire_mutation_bytes_match_the_labelkit_codec() {
        let tree = xp_xmltree::parse("<r><a><b/></a><c/></r>").unwrap();
        let a = tree.elements().nth(1).unwrap();
        let c = tree.elements().nth(3).unwrap();
        let pairs: Vec<(WireMutation, Mutation)> = vec![
            (
                WireMutation::InsertBefore { anchor: a.index() as u64, tag: "x".into() },
                Mutation::InsertBefore { anchor: a, tag: "x".into() },
            ),
            (
                WireMutation::InsertSubtree {
                    pos: WirePos::LastChildOf(c.index() as u64),
                    xml: "<s/>".into(),
                },
                Mutation::InsertSubtree { pos: InsertPos::LastChildOf(c), xml: "<s/>".into() },
            ),
            (
                WireMutation::InsertParent { target: a.index() as u64, tag: "w".into() },
                Mutation::InsertParent { target: a, tag: "w".into() },
            ),
            (
                WireMutation::Delete { target: c.index() as u64 },
                Mutation::Delete { target: c },
            ),
            (
                WireMutation::MoveSubtree {
                    target: c.index() as u64,
                    pos: WirePos::Before(a.index() as u64),
                },
                Mutation::MoveSubtree { target: c, pos: InsertPos::Before(a) },
            ),
        ];
        for (wire, real) in pairs {
            let mut expected = Vec::new();
            real.encode(&mut expected);
            assert_eq!(wire.to_bytes(), expected, "{wire:?}");
            // And the server-side decode resolves back to the original.
            let bytes = wire.to_bytes();
            let mut input = bytes.as_slice();
            assert_eq!(Mutation::decode(&mut input, &tree).unwrap(), real);
            assert!(input.is_empty());
        }
    }

    #[test]
    fn framed_stream_round_trips_and_rejects_corruption() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Request::Ping.encode()).unwrap();
        write_message(&mut buf, &Request::Stats.encode()).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(
            Request::decode(&read_message(&mut r).unwrap().unwrap()).unwrap(),
            Request::Ping
        );
        assert_eq!(
            Request::decode(&read_message(&mut r).unwrap().unwrap()).unwrap(),
            Request::Stats
        );
        assert!(read_message(&mut r).unwrap().is_none(), "clean EOF");

        // Flip a payload bit: the checksum catches it.
        let mut corrupt = buf.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        let mut r = corrupt.as_slice();
        assert!(read_message(&mut r).is_ok(), "first frame untouched");
        assert_eq!(
            read_message(&mut r).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );

        // An absurd length prefix is rejected before allocation.
        let mut huge = ((MAX_MESSAGE + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 4]);
        assert_eq!(
            read_message(&mut huge.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
