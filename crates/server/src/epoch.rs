//! The single-writer epoch loop: batching, group commit, publish.
//!
//! One thread owns the [`Store`] and therefore every document's
//! authoritative tree, labels, and SC table. Connection handlers never
//! touch it — they enqueue [`ApplyJob`]s and read published
//! [`EpochSnapshot`]s. That single-writer discipline is what makes the
//! concurrency story trivially torn-read-free: there is exactly one
//! mutator, and everything readers see is immutable.
//!
//! # Epoch lifecycle
//!
//! 1. **Gather.** The loop blocks for one job, then drains whatever else
//!    has queued, up to [`BatchPolicy::max_mutations`] per document.
//! 2. **Decode.** Each job's mutation bytes are decoded against the live
//!    tree. A job that fails to decode is rejected whole, before anything
//!    is logged — it consumes no sequence numbers.
//! 3. **Commit.** All of a document's decoded mutations go through
//!    [`Store::apply_batch`]: every frame is written to the WAL, then one
//!    `fdatasync` covers the batch (group commit). A mutation the scheme
//!    rejects still consumed its sequence number and will re-fail
//!    identically on replay; its error is reported to the submitting
//!    client only.
//! 4. **Publish.** The document's [`Publisher`] stamps a new epoch and
//!    swaps the shared snapshot pointer. Readers that already hold the
//!    previous `Arc` keep a consistent pre-batch view; new queries see the
//!    new epoch.
//! 5. **Reply.** Every job in the batch gets its per-mutation outcomes and
//!    the epoch that covers them.
//!
//! Durability before visibility: the fsync in step 3 happens before the
//! publish in step 4, so no client can observe (or build on) labels that
//! a crash could un-happen.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};

use xp_labelkit::Mutation;
use xp_query::{QueryCache, TouchedTags};
use xp_store::{Store, StoreError};

use crate::protocol::{ErrCode, ServerStats, WireApply};
use crate::snapshot::{EpochSnapshot, Publisher};

/// Group-commit policy for the epoch loop.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Most mutations folded into one epoch (and one fsync) per document.
    /// `1` disables group commit: every mutation pays its own sync — the
    /// knob the `bench_server` fsync gate flips.
    pub max_mutations: usize,
    /// Checkpoint a document once its WAL tail exceeds this many
    /// mutations. `None` leaves checkpointing to the operator.
    pub checkpoint_after: Option<u64>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy { max_mutations: 256, checkpoint_after: Some(4096) }
    }
}

/// Outcome of one [`ApplyJob`].
#[derive(Debug, Clone)]
pub enum ApplyOutcome {
    /// The batch committed; per-mutation results in submission order.
    Applied {
        /// Label epoch whose snapshot reflects this job.
        epoch: u64,
        /// Document sequence after the job's mutations.
        seq: u64,
        /// One entry per submitted mutation.
        results: Vec<WireApply>,
    },
    /// The job was rejected before consuming any sequence numbers.
    Rejected {
        /// Failure classification for the wire.
        code: ErrCode,
        /// Human-readable detail.
        msg: String,
    },
}

/// A mutation batch from one client, awaiting the writer.
pub struct ApplyJob {
    /// Target document URI.
    pub uri: String,
    /// Encoded mutations ([`crate::protocol::WireMutation`] bytes).
    pub mutations: Vec<Vec<u8>>,
    /// Where the outcome goes. A dropped receiver just discards the
    /// reply.
    pub reply: mpsc::SyncSender<ApplyOutcome>,
}

enum Job {
    Apply(ApplyJob),
    Stop,
}

/// A cloneable handle for submitting jobs to the writer thread.
#[derive(Clone)]
pub struct JobSender(mpsc::Sender<Job>);

impl JobSender {
    /// Enqueues a job; gives it back if the writer has stopped.
    pub fn submit(&self, job: ApplyJob) -> Result<(), ApplyJob> {
        self.0.send(Job::Apply(job)).map_err(|e| match e.0 {
            Job::Apply(j) => j,
            Job::Stop => unreachable!("JobSender only sends Apply"),
        })
    }
}

/// Atomic counters mirrored into [`ServerStats`].
#[derive(Debug, Default)]
pub struct Counters {
    epochs: AtomicU64,
    applied: AtomicU64,
    failed: AtomicU64,
    wal_fsyncs: AtomicU64,
    reclaimed: AtomicU64,
    cloned: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_invalidated: AtomicU64,
}

impl Counters {
    /// Snapshot of the counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            epochs: self.epochs.load(Ordering::Relaxed),
            applied: self.applied.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            snapshots_reclaimed: self.reclaimed.load(Ordering::Relaxed),
            snapshots_cloned: self.cloned.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_invalidated: self.cache_invalidated.load(Ordering::Relaxed),
        }
    }

    /// Counts one query answered from the result cache.
    pub fn count_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query that fell through to cold evaluation.
    pub fn count_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` cache entries dropped by invalidation.
    pub fn count_cache_invalidated(&self, n: u64) {
        self.cache_invalidated.fetch_add(n, Ordering::Relaxed);
    }
}

/// The reader-facing side of the epoch loop: the published snapshot per
/// document, swapped atomically at each epoch boundary.
pub type PublishedDocs = Arc<RwLock<HashMap<String, Arc<EpochSnapshot>>>>;

/// Per-document query-result caches (present only when caching is on).
/// Connection handlers consult these; the writer invalidates them right
/// before each epoch swap.
pub type DocCaches = Arc<RwLock<HashMap<String, Arc<Mutex<QueryCache>>>>>;

/// Handle to a running epoch loop.
pub struct EpochLoop {
    jobs: mpsc::Sender<Job>,
    docs: PublishedDocs,
    caches: Option<DocCaches>,
    counters: Arc<Counters>,
    writer: Option<std::thread::JoinHandle<Store>>,
}

impl EpochLoop {
    /// Takes ownership of `store` and starts the writer thread. Every
    /// document already in the store is published as its initial epoch.
    pub fn start(store: Store, policy: BatchPolicy) -> EpochLoop {
        EpochLoop::launch(store, policy, None)
    }

    /// Like [`EpochLoop::start`], with a query-result cache of
    /// `cache_capacity` entries per document (see `xp_query::cache`).
    pub fn start_with_cache(store: Store, policy: BatchPolicy, cache_capacity: usize) -> EpochLoop {
        EpochLoop::launch(store, policy, Some(cache_capacity))
    }

    fn launch(store: Store, policy: BatchPolicy, cache_capacity: Option<usize>) -> EpochLoop {
        let docs: PublishedDocs = Arc::new(RwLock::new(HashMap::new()));
        let counters = Arc::new(Counters::default());
        let (tx, rx) = mpsc::channel::<Job>();
        // Publish every document's initial epoch *before* the writer
        // thread exists, so callers see a complete map the moment this
        // returns.
        let mut publishers = HashMap::new();
        publish_initial(&store, &docs, &mut publishers);
        let caches = cache_capacity.map(|cap| {
            let mut map = HashMap::new();
            for doc in store.docs() {
                map.insert(
                    doc.uri().to_owned(),
                    Arc::new(Mutex::new(QueryCache::new(cap, 0))),
                );
            }
            Arc::new(RwLock::new(map))
        });
        let writer_docs = Arc::clone(&docs);
        let writer_caches = caches.clone();
        let writer_counters = Arc::clone(&counters);
        let writer = std::thread::Builder::new()
            .name("xp-epoch-writer".into())
            .spawn(move || {
                writer_loop(store, policy, rx, publishers, writer_docs, writer_caches, writer_counters)
            })
            .unwrap_or_else(|e| panic!("spawning the epoch writer failed: {e}"));
        EpochLoop { jobs: tx, docs, caches, counters, writer: Some(writer) }
    }

    /// The published-snapshot map readers query against.
    pub fn docs(&self) -> PublishedDocs {
        Arc::clone(&self.docs)
    }

    /// The per-document query caches, when caching is enabled.
    pub fn caches(&self) -> Option<DocCaches> {
        self.caches.clone()
    }

    /// A cloneable submitter for connection handlers.
    pub fn sender(&self) -> JobSender {
        JobSender(self.jobs.clone())
    }

    /// Shared counters.
    pub fn counters(&self) -> Arc<Counters> {
        Arc::clone(&self.counters)
    }

    /// Enqueues a job. Fails only if the writer has already stopped.
    pub fn submit(&self, job: ApplyJob) -> Result<(), ApplyJob> {
        self.jobs.send(Job::Apply(job)).map_err(|e| match e.0 {
            Job::Apply(j) => j,
            Job::Stop => unreachable!("we only send Apply here"),
        })
    }

    /// Stops the writer after it drains queued jobs, returning the store.
    pub fn shutdown(mut self) -> Option<Store> {
        let _ = self.jobs.send(Job::Stop);
        self.writer.take().and_then(|w| w.join().ok())
    }
}

fn writer_loop(
    mut store: Store,
    policy: BatchPolicy,
    jobs: mpsc::Receiver<Job>,
    mut publishers: HashMap<String, Publisher>,
    docs: PublishedDocs,
    caches: Option<DocCaches>,
    counters: Arc<Counters>,
) -> Store {
    loop {
        let first = match jobs.recv() {
            Ok(Job::Apply(j)) => j,
            Ok(Job::Stop) | Err(_) => break,
        };
        let mut batch = vec![first];
        let mut queued_mutations = batch[0].mutations.len();
        let mut stop_after = false;
        while queued_mutations < policy.max_mutations {
            match jobs.try_recv() {
                Ok(Job::Apply(j)) => {
                    queued_mutations += j.mutations.len();
                    batch.push(j);
                }
                Ok(Job::Stop) => {
                    stop_after = true;
                    break;
                }
                Err(_) => break,
            }
        }
        run_batch(&mut store, &policy, batch, &docs, &caches, &mut publishers, &counters);
        if stop_after {
            break;
        }
    }
    store
}

/// Publishes epoch 0 of every document the store already holds.
fn publish_initial(
    store: &Store,
    docs: &PublishedDocs,
    publishers: &mut HashMap<String, Publisher>,
) {
    let mut map = match docs.write() {
        Ok(m) => m,
        Err(poisoned) => poisoned.into_inner(),
    };
    for doc in store.docs() {
        let labeled = doc.labeled().fork();
        let table = doc.table().clone();
        let snap = EpochSnapshot::new(0, doc.seq(), labeled, table);
        let publisher = Publisher::new(snap);
        map.insert(doc.uri().to_owned(), publisher.current());
        publishers.insert(doc.uri().to_owned(), publisher);
    }
}

/// Applies one gathered batch: group jobs by URI (preserving submission
/// order), decode, commit, publish, reply.
fn run_batch(
    store: &mut Store,
    policy: &BatchPolicy,
    batch: Vec<ApplyJob>,
    docs: &PublishedDocs,
    caches: &Option<DocCaches>,
    publishers: &mut HashMap<String, Publisher>,
    counters: &Arc<Counters>,
) {
    // (uri -> job indices), in first-seen order.
    let mut by_uri: Vec<(String, Vec<usize>)> = Vec::new();
    for (i, job) in batch.iter().enumerate() {
        match by_uri.iter_mut().find(|(u, _)| *u == job.uri) {
            Some((_, idxs)) => idxs.push(i),
            None => by_uri.push((job.uri.clone(), vec![i])),
        }
    }
    let mut replies: Vec<Option<ApplyOutcome>> = batch.iter().map(|_| None).collect();

    for (uri, job_idxs) in by_uri {
        let Some(publisher) = publishers.get_mut(&uri) else {
            for &i in &job_idxs {
                replies[i] = Some(ApplyOutcome::Rejected {
                    code: ErrCode::UnknownDoc,
                    msg: format!("no document at uri {uri:?}"),
                });
            }
            continue;
        };

        // Decode every job against the live tree; reject bad jobs whole.
        let mut decoded: Vec<(usize, Vec<Mutation>)> = Vec::new();
        {
            let Some(doc) = store.doc(&uri) else { continue };
            let tree = doc.tree();
            for &i in &job_idxs {
                let mut muts = Vec::with_capacity(batch[i].mutations.len());
                let mut bad = None;
                for bytes in &batch[i].mutations {
                    let mut input = bytes.as_slice();
                    match Mutation::decode(&mut input, tree) {
                        Ok(m) if input.is_empty() => muts.push(m),
                        Ok(_) => {
                            bad = Some("trailing mutation bytes".to_owned());
                            break;
                        }
                        Err(e) => {
                            bad = Some(e.to_string());
                            break;
                        }
                    }
                }
                match bad {
                    Some(msg) => {
                        replies[i] = Some(ApplyOutcome::Rejected {
                            code: ErrCode::BadRequest,
                            msg,
                        })
                    }
                    None => decoded.push((i, muts)),
                }
            }
        }
        let flat: Vec<Mutation> =
            decoded.iter().flat_map(|(_, ms)| ms.iter().cloned()).collect();
        if flat.is_empty() {
            // Nothing to log: empty jobs still get a (trivial) reply
            // stamped with the current epoch.
            let epoch = publisher.current().epoch();
            let seq = publisher.current().seq();
            for (i, _) in decoded {
                replies[i] = Some(ApplyOutcome::Applied { epoch, seq, results: Vec::new() });
            }
            continue;
        }

        // One WAL append_batch = one fsync for the whole epoch.
        let results = match store.apply_batch(&uri, &flat) {
            Ok(r) => r,
            Err(e) => {
                let code = match &e {
                    StoreError::UnknownUri(_) => ErrCode::UnknownDoc,
                    _ => ErrCode::Internal,
                };
                for (i, _) in decoded {
                    replies[i] = Some(ApplyOutcome::Rejected {
                        code,
                        msg: format!("apply failed: {e}"),
                    });
                }
                continue;
            }
        };

        let (epoch, seq) = {
            let doc = match store.doc(&uri) {
                Some(d) => d,
                None => continue,
            };
            let epoch = publisher.current().epoch() + 1;
            counters.epochs.fetch_add(1, Ordering::Relaxed);
            publisher.publish(epoch, doc.seq(), &flat);
            (epoch, doc.seq())
        };
        counters.wal_fsyncs.store(store.wal_fsyncs(), Ordering::Relaxed);

        // Invalidate the document's query cache *before* the epoch swap:
        // by the time a reader can hold the new epoch, every entry this
        // batch could have stalled is gone. Tag attribution comes from the
        // RelabelReports, resolved against the post-apply tree (removed
        // subtrees keep their arena tags); a failed mutation's effects
        // cannot be attributed, so it flushes the cache wholesale.
        if let Some(caches) = caches {
            let cache = {
                let map = match caches.read() {
                    Ok(m) => m,
                    Err(poisoned) => poisoned.into_inner(),
                };
                map.get(&uri).cloned()
            };
            if let Some(cache) = cache {
                let mut touched = TouchedTags::new();
                match store.doc(&uri) {
                    Some(doc) => {
                        let tree = doc.tree();
                        for r in &results {
                            match r {
                                Ok(report) => touched.add_report(report, tree),
                                Err(_) => touched.mark_unknown(),
                            }
                        }
                    }
                    None => touched.mark_unknown(),
                }
                let mut cache = match cache.lock() {
                    Ok(c) => c,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let dropped = cache.advance(epoch, &touched);
                counters.count_cache_invalidated(dropped);
            }
        }

        {
            let mut map = match docs.write() {
                Ok(m) => m,
                Err(poisoned) => poisoned.into_inner(),
            };
            map.insert(uri.clone(), publisher.current());
        }

        // Slice per-mutation results back out to their jobs.
        let mut cursor = 0usize;
        let mut seq_cursor = seq - flat.len() as u64;
        for (i, muts) in decoded {
            let slice = &results[cursor..cursor + muts.len()];
            cursor += muts.len();
            seq_cursor += muts.len() as u64;
            let wire: Vec<WireApply> = slice
                .iter()
                .map(|r| match r {
                    Ok(report) => {
                        counters.applied.fetch_add(1, Ordering::Relaxed);
                        Ok(report.labels_touched() as u64)
                    }
                    Err(e) => {
                        counters.failed.fetch_add(1, Ordering::Relaxed);
                        Err(e.to_string())
                    }
                })
                .collect();
            replies[i] = Some(ApplyOutcome::Applied { epoch, seq: seq_cursor, results: wire });
        }

        // Checkpoint policy: fold the WAL tail once it is long enough.
        if let Some(limit) = policy.checkpoint_after {
            let tail = store
                .doc(&uri)
                .map(|d| d.seq().saturating_sub(d.durable_seq()))
                .unwrap_or(0);
            if tail >= limit {
                let _ = store.checkpoint(&uri);
            }
        }
    }

    // Snapshot-lifecycle counters sum over *every* document's publisher.
    // (Storing the last-published document's stats here used to clobber the
    // other documents' counts, breaking `reclaimed + cloned == published -
    // live` whenever a store served more than one URI.)
    let (mut reclaimed, mut cloned) = (0u64, 0u64);
    for publisher in publishers.values() {
        let stats = publisher.stats();
        reclaimed += stats.reclaimed;
        cloned += stats.cloned;
    }
    counters.reclaimed.store(reclaimed, Ordering::Relaxed);
    counters.cloned.store(cloned, Ordering::Relaxed);

    for (job, outcome) in batch.into_iter().zip(replies) {
        let outcome = outcome.unwrap_or(ApplyOutcome::Rejected {
            code: ErrCode::Internal,
            msg: "job was never scheduled".into(),
        });
        let _ = job.reply.try_send(outcome);
    }
}
