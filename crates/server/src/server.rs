//! Socket front end: accept loops, per-connection handlers, shutdown.
//!
//! The server listens on TCP and/or a Unix-domain socket; both speak the
//! same framed protocol. Each accepted connection gets a handler thread
//! that parses requests and serves them:
//!
//! * **Reads** (`Ping`, `ListDocs`, `Query`, `Stats`) are answered
//!   entirely from published [`EpochSnapshot`]s — the handler clones an
//!   `Arc` out of the shared map and never talks to the writer. A long
//!   query holds its snapshot alive; it cannot block an epoch or observe
//!   a half-applied batch.
//! * **Writes** (`Apply`) are packaged as [`ApplyJob`]s, queued to the
//!   epoch loop, and the handler blocks on its private reply channel. The
//!   response carries the epoch the batch committed under.
//! * **`Shutdown`** flips the stop flag; the accept loops notice within
//!   one poll interval, the epoch loop drains, and `Handle::join`
//!   returns the store.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use xp_query::engine::{Path, QueryError};
use xp_store::Store;

use crate::epoch::{
    ApplyJob, ApplyOutcome, BatchPolicy, Counters, DocCaches, EpochLoop, PublishedDocs,
};
use crate::protocol::{
    read_message, write_message, DocInfo, ErrCode, Request, Response,
};

/// Where the server should listen. At least one of the two must be set.
#[derive(Debug, Clone, Default)]
pub struct ListenConfig {
    /// TCP bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub tcp: Option<String>,
    /// Unix-domain socket path. An existing socket file is replaced.
    pub unix: Option<PathBuf>,
}

/// A running server.
pub struct Handle {
    stop: Arc<AtomicBool>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    accepters: Vec<std::thread::JoinHandle<()>>,
    epoch: EpochLoop,
    counters: Arc<Counters>,
}

impl Handle {
    /// The bound TCP address, if TCP was configured.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The Unix socket path, if configured.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Shared counters (for in-process harnesses).
    pub fn counters(&self) -> Arc<Counters> {
        Arc::clone(&self.counters)
    }

    /// Requests shutdown without waiting.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stops the server, joins every thread, and returns the store.
    pub fn join(self) -> Option<Store> {
        self.stop.store(true, Ordering::SeqCst);
        self.wait()
    }

    /// Blocks until something else stops the server — a client
    /// `Shutdown` request or a concurrent [`Handle::stop`] — then tears
    /// down and returns the store. This is the foreground-serving mode
    /// the CLI uses.
    pub fn wait(self) -> Option<Store> {
        for t in self.accepters {
            let _ = t.join();
        }
        let store = self.epoch.shutdown();
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        store
    }
}

/// Starts serving `store` on the configured listeners.
pub fn serve(store: Store, listen: ListenConfig, policy: BatchPolicy) -> std::io::Result<Handle> {
    serve_inner(store, listen, policy, None)
}

/// Like [`serve`], with a per-document query-result cache of
/// `cache_capacity` entries (`xmlprime serve --cache`). Hits, misses, and
/// invalidations show up in [`crate::protocol::ServerStats`].
pub fn serve_with_cache(
    store: Store,
    listen: ListenConfig,
    policy: BatchPolicy,
    cache_capacity: usize,
) -> std::io::Result<Handle> {
    serve_inner(store, listen, policy, Some(cache_capacity))
}

fn serve_inner(
    store: Store,
    listen: ListenConfig,
    policy: BatchPolicy,
    cache_capacity: Option<usize>,
) -> std::io::Result<Handle> {
    let epoch = match cache_capacity {
        Some(cap) => EpochLoop::start_with_cache(store, policy, cap),
        None => EpochLoop::start(store, policy),
    };
    let docs = epoch.docs();
    let caches = epoch.caches();
    let counters = epoch.counters();
    let stop = Arc::new(AtomicBool::new(false));
    let mut accepters = Vec::new();
    let mut tcp_addr = None;
    let mut unix_path = None;

    if let Some(addr) = &listen.tcp {
        let listener = TcpListener::bind(addr.as_str())?;
        listener.set_nonblocking(true)?;
        tcp_addr = Some(listener.local_addr()?);
        accepters.push(spawn_acceptor(
            "xp-accept-tcp",
            Arc::clone(&stop),
            move |stop| accept_tcp(&listener, stop),
            Arc::clone(&docs),
            caches.clone(),
            epoch_sender(&epoch),
            Arc::clone(&counters),
        ));
    }
    if let Some(path) = &listen.unix {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        unix_path = Some(path.clone());
        accepters.push(spawn_acceptor(
            "xp-accept-unix",
            Arc::clone(&stop),
            move |stop| accept_unix(&listener, stop),
            Arc::clone(&docs),
            caches.clone(),
            epoch_sender(&epoch),
            Arc::clone(&counters),
        ));
    }
    if accepters.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "ListenConfig names neither a TCP address nor a Unix path",
        ));
    }
    Ok(Handle { stop, tcp_addr, unix_path, accepters, epoch, counters })
}

/// A cloneable submitter into the epoch loop.
type Submitter = Arc<dyn Fn(ApplyJob) -> Result<(), ApplyJob> + Send + Sync>;

fn epoch_sender(epoch: &EpochLoop) -> Submitter {
    let jobs = epoch.sender();
    Arc::new(move |job| jobs.submit(job))
}

/// One accepted connection, generic over the stream type.
type Conn = Box<dyn ReadWrite + Send>;

/// A blocking byte stream (TCP or Unix).
pub trait ReadWrite: Read + Write {}
impl<T: Read + Write> ReadWrite for T {}

/// Idle handlers wake at this interval to check the stop flag; mid-frame
/// reads are unaffected (the framing layer waits out timeouts once a
/// frame has started).
const READ_POLL: Duration = Duration::from_millis(50);

fn accept_tcp(listener: &TcpListener, stop: &AtomicBool) -> Option<Conn> {
    poll_accept(stop, || match listener.accept() {
        Ok((s, _)) => {
            let _ = s.set_nodelay(true);
            let _ = s.set_nonblocking(false);
            let _ = s.set_read_timeout(Some(READ_POLL));
            Some(Box::new(s) as Conn)
        }
        Err(_) => None,
    })
}

fn accept_unix(listener: &UnixListener, stop: &AtomicBool) -> Option<Conn> {
    poll_accept(stop, || match listener.accept() {
        Ok((s, _)) => {
            let _ = s.set_nonblocking(false);
            let _ = s.set_read_timeout(Some(READ_POLL));
            Some(Box::new(s) as Conn)
        }
        Err(_) => None,
    })
}

/// Polls `try_accept` until it yields a connection or `stop` is set.
fn poll_accept(stop: &AtomicBool, mut try_accept: impl FnMut() -> Option<Conn>) -> Option<Conn> {
    loop {
        if stop.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(conn) = try_accept() {
            return Some(conn);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn spawn_acceptor(
    name: &str,
    stop: Arc<AtomicBool>,
    mut next_conn: impl FnMut(&AtomicBool) -> Option<Conn> + Send + 'static,
    docs: PublishedDocs,
    caches: Option<DocCaches>,
    submit: Submitter,
    counters: Arc<Counters>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            let mut handlers = Vec::new();
            while let Some(conn) = next_conn(&stop) {
                let docs = Arc::clone(&docs);
                let caches = caches.clone();
                let submit = Arc::clone(&submit);
                let counters = Arc::clone(&counters);
                let stop = Arc::clone(&stop);
                if let Ok(h) = std::thread::Builder::new()
                    .name("xp-conn".into())
                    .spawn(move || handle_connection(conn, docs, caches, submit, counters, stop))
                {
                    handlers.push(h);
                }
            }
            for h in handlers {
                let _ = h.join();
            }
        })
        .unwrap_or_else(|e| panic!("spawning acceptor failed: {e}"))
}

fn handle_connection(
    mut conn: Conn,
    docs: PublishedDocs,
    caches: Option<DocCaches>,
    submit: Submitter,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
) {
    loop {
        let payload = match read_message(&mut conn) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll tick: keep serving unless shutdown started.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = handle_request(req, &docs, caches.as_ref(), &submit, &counters);
                if is_shutdown {
                    let _ = write_message(&mut conn, &resp.encode());
                    stop.store(true, Ordering::SeqCst);
                    return;
                }
                resp
            }
            Err(e) => Response::Err { code: ErrCode::BadRequest, msg: e.to_string() },
        };
        if write_message(&mut conn, &response.encode()).is_err() {
            return;
        }
    }
}

/// Serves one request. Reads go straight to published snapshots (through
/// the per-document query cache when one is configured); writes round-trip
/// through the epoch loop.
pub fn handle_request(
    req: Request,
    docs: &PublishedDocs,
    caches: Option<&DocCaches>,
    submit: &Submitter,
    counters: &Counters,
) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(counters.stats()),
        Request::Shutdown => Response::Bye,
        Request::ListDocs => {
            let map = match docs.read() {
                Ok(m) => m,
                Err(poisoned) => poisoned.into_inner(),
            };
            let mut infos: Vec<DocInfo> = map
                .iter()
                .map(|(uri, snap)| DocInfo {
                    uri: uri.clone(),
                    epoch: snap.epoch(),
                    seq: snap.seq(),
                    elements: snap.elements(),
                })
                .collect();
            infos.sort_by(|a, b| a.uri.cmp(&b.uri));
            Response::Docs(infos)
        }
        Request::Query { uri, path } => {
            let snap = {
                let map = match docs.read() {
                    Ok(m) => m,
                    Err(poisoned) => poisoned.into_inner(),
                };
                map.get(&uri).cloned()
            };
            let Some(snap) = snap else {
                return Response::Err {
                    code: ErrCode::UnknownDoc,
                    msg: format!("no document at uri {uri:?}"),
                };
            };
            let parsed = match Path::parse(&path) {
                Ok(p) => p,
                Err(e) => {
                    return Response::Err { code: ErrCode::BadPath, msg: e.to_string() }
                }
            };
            // Consult the document's cache, keyed by path text and gated
            // on the reader's epoch stamp. The lock covers only the map
            // probe — cold evaluation runs without it, so a slow query
            // never blocks the writer's invalidation step.
            let cache = caches.and_then(|c| {
                let map = match c.read() {
                    Ok(m) => m,
                    Err(poisoned) => poisoned.into_inner(),
                };
                map.get(&uri).cloned()
            });
            if let Some(cache) = &cache {
                let cached = {
                    let mut guard = match cache.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.lookup(&path, snap.epoch())
                };
                match cached {
                    Some(nodes) => {
                        counters.count_cache_hit();
                        return Response::Hits {
                            epoch: snap.epoch(),
                            seq: snap.seq(),
                            nodes: nodes.iter().map(|n| n.index() as u64).collect(),
                        };
                    }
                    None => counters.count_cache_miss(),
                }
            }
            match snap.query(&parsed) {
                Ok(nodes) => {
                    if let Some(cache) = &cache {
                        let mut guard = match cache.lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        guard.insert(&path, &parsed, snap.epoch(), nodes.clone());
                    }
                    Response::Hits {
                        epoch: snap.epoch(),
                        seq: snap.seq(),
                        nodes: nodes.iter().map(|n| n.index() as u64).collect(),
                    }
                }
                Err(e @ QueryError::LimitExceeded(_)) => {
                    Response::Err { code: ErrCode::QueryLimit, msg: e.to_string() }
                }
                Err(e) => Response::Err { code: ErrCode::Internal, msg: e.to_string() },
            }
        }
        Request::Apply { uri, mutations } => {
            let (reply_tx, reply_rx) = mpsc::sync_channel(1);
            let job = ApplyJob { uri, mutations, reply: reply_tx };
            if submit(job).is_err() {
                return Response::Err {
                    code: ErrCode::Internal,
                    msg: "the epoch loop has stopped".into(),
                };
            }
            match reply_rx.recv() {
                Ok(ApplyOutcome::Applied { epoch, seq, results }) => {
                    Response::Applied { epoch, seq, results }
                }
                Ok(ApplyOutcome::Rejected { code, msg }) => Response::Err { code, msg },
                Err(_) => Response::Err {
                    code: ErrCode::Internal,
                    msg: "the epoch loop dropped the job".into(),
                },
            }
        }
    }
}

/// Connects a raw client stream to `addr` (TCP).
pub fn connect_tcp(addr: &str) -> std::io::Result<TcpStream> {
    let s = TcpStream::connect(addr)?;
    let _ = s.set_nodelay(true);
    Ok(s)
}

/// Connects a raw client stream to a Unix socket.
pub fn connect_unix(path: &std::path::Path) -> std::io::Result<UnixStream> {
    UnixStream::connect(path)
}
