//! A blocking client for the label server's framed protocol.
//!
//! One [`Client`] wraps one connection (TCP or Unix) and issues
//! request/response pairs synchronously — the protocol is strictly
//! ping-pong per connection, so a client wanting pipelining opens more
//! connections (the bench harness runs 64 of them).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path as FsPath;

use crate::protocol::{
    read_message, write_message, DocInfo, ErrCode, Request, Response, ServerStats, WireApply,
    WireMutation,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, framing).
    Io(std::io::Error),
    /// The server closed the connection mid-exchange.
    Disconnected,
    /// The response payload failed to decode.
    Codec(String),
    /// The server answered with a typed error.
    Server {
        /// The wire error code.
        code: ErrCode,
        /// Detail string from the server.
        msg: String,
    },
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Codec(msg) => write!(f, "bad response payload: {msg}"),
            ClientError::Server { code, msg } => write!(f, "server error ({code:?}): {msg}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Query hits together with the snapshot coordinates they came from.
#[derive(Debug, Clone)]
pub struct Hits {
    /// Label epoch of the answering snapshot.
    pub epoch: u64,
    /// Mutation sequence folded into it.
    pub seq: u64,
    /// Matching nodes (arena indices, document order).
    pub nodes: Vec<u64>,
}

/// Apply acknowledgement.
#[derive(Debug, Clone)]
pub struct Applied {
    /// Epoch that published this batch.
    pub epoch: u64,
    /// Document sequence after this client's mutations.
    pub seq: u64,
    /// Per-mutation outcome.
    pub results: Vec<WireApply>,
}

enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// One blocking connection to the server.
pub struct Client {
    stream: Transport,
}

impl Client {
    /// Connects over TCP.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        let s = TcpStream::connect(addr)?;
        let _ = s.set_nodelay(true);
        Ok(Client { stream: Transport::Tcp(s) })
    }

    /// Connects over a Unix-domain socket.
    pub fn connect_unix(path: &FsPath) -> Result<Client, ClientError> {
        Ok(Client { stream: Transport::Unix(UnixStream::connect(path)?) })
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_message(&mut self.stream, &req.encode())?;
        let payload = read_message(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        let resp = Response::decode(&payload).map_err(|e| ClientError::Codec(e.to_string()))?;
        if let Response::Err { code, msg } = resp {
            return Err(ClientError::Server { code, msg });
        }
        Ok(resp)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Lists the server's documents.
    pub fn docs(&mut self) -> Result<Vec<DocInfo>, ClientError> {
        match self.round_trip(&Request::ListDocs)? {
            Response::Docs(d) => Ok(d),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Evaluates `path` against `uri`'s latest published snapshot.
    pub fn query(&mut self, uri: &str, path: &str) -> Result<Hits, ClientError> {
        let req = Request::Query { uri: uri.into(), path: path.into() };
        match self.round_trip(&req)? {
            Response::Hits { epoch, seq, nodes } => Ok(Hits { epoch, seq, nodes }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Applies a batch of mutations through the epoch loop, waiting for
    /// the commit.
    pub fn apply(&mut self, uri: &str, mutations: &[WireMutation]) -> Result<Applied, ClientError> {
        let req = Request::Apply {
            uri: uri.into(),
            mutations: mutations.iter().map(WireMutation::to_bytes).collect(),
        };
        match self.round_trip(&req)? {
            Response::Applied { epoch, seq, results } => Ok(Applied { epoch, seq, results }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
