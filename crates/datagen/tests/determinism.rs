//! Determinism smoke tests: every generator in this crate must produce an
//! identical document for the same seed — the hermetic-build guarantee that
//! lets every paper figure regenerate bit-identically on any machine.

use xp_datagen::auction::{generate_site, AuctionParams};
use xp_datagen::builders::{random_tree, update_experiment_docs, RandomTreeParams};
use xp_datagen::shakespeare::{generate_play, PlayParams, ShakespeareCorpus};
use xp_datagen::DATASETS;
use xp_xmltree::{serialize, TreeStats, XmlTree};

/// The structural fingerprint the experiments depend on.
fn fingerprint(tree: &XmlTree) -> (usize, usize, usize, usize, Vec<usize>) {
    let s = TreeStats::compute(tree);
    (s.node_count, s.max_depth, s.max_fanout, s.leaf_count, s.level_counts)
}

#[test]
fn every_table1_dataset_is_deterministic_per_seed() {
    for ds in &DATASETS {
        let a = ds.generate(2004);
        let b = ds.generate(2004);
        let other = ds.generate(2005);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{}: same seed must give identical tree statistics",
            ds.id
        );
        // Determinism must be byte-level, not just statistical.
        assert_eq!(
            serialize::to_string(&a),
            serialize::to_string(&b),
            "{}: same seed must give identical serialization",
            ds.id
        );
        assert_ne!(
            serialize::to_string(&a),
            serialize::to_string(&other),
            "{}: different seeds should differ",
            ds.id
        );
    }
}

#[test]
fn shakespeare_generators_are_deterministic_per_seed() {
    let a = generate_play("Hamlet", 7, &PlayParams::hamlet_like());
    let b = generate_play("Hamlet", 7, &PlayParams::hamlet_like());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(serialize::to_string(&a), serialize::to_string(&b));

    let c1 = ShakespeareCorpus::generate_with(3, 9, &PlayParams::miniature());
    let c2 = ShakespeareCorpus::generate_with(3, 9, &PlayParams::miniature());
    assert_eq!(fingerprint(&c1.tree), fingerprint(&c2.tree));
    assert_eq!(serialize::to_string(&c1.tree), serialize::to_string(&c2.tree));
}

#[test]
fn auction_generator_is_deterministic_per_seed() {
    let a = generate_site(3, &AuctionParams::small());
    let b = generate_site(3, &AuctionParams::small());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(serialize::to_string(&a), serialize::to_string(&b));
    assert_ne!(
        serialize::to_string(&a),
        serialize::to_string(&generate_site(4, &AuctionParams::small()))
    );
}

#[test]
fn builder_generators_are_deterministic_per_seed() {
    let params = RandomTreeParams { nodes: 500, max_depth: 7, max_fanout: 12, tag_variety: 5 };
    assert_eq!(
        serialize::to_string(&random_tree(11, &params)),
        serialize::to_string(&random_tree(11, &params))
    );
    let docs1 = update_experiment_docs(5);
    let docs2 = update_experiment_docs(5);
    for (d1, d2) in docs1.iter().zip(&docs2) {
        assert_eq!(fingerprint(d1), fingerprint(d2));
    }
}
