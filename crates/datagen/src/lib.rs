//! # xp-datagen — synthetic XML corpora for the paper's experiments
//!
//! The paper labels "the 6224 real-world XML files available in \[14\]" (the
//! Niagara project collection) and runs its query/update experiments on the
//! Shakespeare plays. Those files are no longer retrievable, so this crate
//! synthesizes documents with the same *structural shape* — the only property
//! the experiments depend on (node count `N`, depth `D`, fan-out `F`, leaf
//! share, repeated paths).
//!
//! * [`datasets`] — one seeded generator per Table 1 dataset (D1–D9), each
//!   reproducing the topic vocabulary, target node count, and shape profile
//!   the paper describes (movie/actor = huge fan-out, NASA = deep & narrow,
//!   Shakespeare = play/act/scene/speech/line).
//! * [`shakespeare`] — a parametric play generator: Hamlet-like documents for
//!   the order-sensitive update experiment (Figure 18) and the ×5 replicated
//!   corpus for the query experiments (Table 2, Figure 15).
//! * [`builders`] — parametric perfect/random/chain trees for analytic
//!   figures and property tests.
//! * [`multiwriter`] — seeded N-writer relabel-storm traces: disjoint
//!   per-writer regions with distinct tag vocabularies, for the server's
//!   convergence tests and the query-cache experiments.
//!
//! Everything is deterministic given a seed, so every figure regenerates
//! bit-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auction;
pub mod builders;
pub mod datasets;
pub mod multiwriter;
pub mod shakespeare;

pub use datasets::{Dataset, DATASETS};
pub use multiwriter::TraceParams;
pub use shakespeare::{PlayParams, ShakespeareCorpus};

/// An [`xp_xmltree::XmlTree`] under construction together with a running
/// element count, so generators can hit a node-count target without
/// repeatedly re-counting. Used by every Table-1 generator and by
/// downstream synthetic corpora that scale the same idiom.
pub struct CountingBuilder {
    /// The tree being built.
    pub tree: xp_xmltree::XmlTree,
    /// Elements appended so far (the root counts).
    pub elements: usize,
}

impl CountingBuilder {
    /// A one-element tree holding just the root.
    pub fn new(root_tag: &str) -> Self {
        CountingBuilder { tree: xp_xmltree::XmlTree::new(root_tag), elements: 1 }
    }

    /// Appends an element child and counts it.
    pub fn child(&mut self, parent: xp_xmltree::NodeId, tag: &str) -> xp_xmltree::NodeId {
        self.elements += 1;
        self.tree.append_element(parent, tag)
    }

    /// Appends an element child carrying a text node.
    pub fn leaf_with_text(
        &mut self,
        parent: xp_xmltree::NodeId,
        tag: &str,
        text: &str,
    ) -> xp_xmltree::NodeId {
        let id = self.child(parent, tag);
        self.tree.append_text(id, text);
        id
    }
}
