//! Seeded multi-writer "relabel storm" traces.
//!
//! The query-cache and multi-writer experiments need a workload with two
//! properties the Table-1 corpora do not give them:
//!
//! 1. **Disjoint writer regions.** Each of `N` writers owns one subtree
//!    under the document root and every mutation it emits stays inside
//!    that subtree, so any interleaving of the per-writer scripts is
//!    conflict-free and converges to the same document.
//! 2. **Distinct tag vocabularies.** Writer `w`'s region uses tags only
//!    that writer uses (`w3a`, `w3b`, `w3c` under `region3`), so a cached
//!    query over writer `w`'s tags is provably untouched by any other
//!    writer's mutations — the workload that demonstrates *per-label*
//!    cache invalidation rather than flush-on-every-epoch.
//!
//! Scripts are not pre-materialized mutation lists: a mutation references
//! live [`NodeId`]s, which depend on every mutation applied before it.
//! Instead [`scripted`] derives writer `w`'s step-`s` mutation
//! deterministically from `(params.seed, w, s)` *and the current tree*,
//! the same contract the server interleaving tests use. Two runs that
//! apply the same interleaving therefore replay bit-identical mutation
//! sequences, and different interleavings of the same scripts still
//! converge because regions never overlap.

use xp_labelkit::{InsertPos, Mutation};
use xp_testkit::rng::{RngExt, SeedableRng, StdRng};
use xp_xmltree::{NodeId, XmlTree};

/// Shape and seed of one multi-writer trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceParams {
    /// Number of concurrent writers (and disjoint regions).
    pub writers: usize,
    /// Mutations each writer performs.
    pub steps_per_writer: usize,
    /// Initial elements per region (before any mutation).
    pub region_breadth: usize,
    /// Master seed; everything derives from it.
    pub seed: u64,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams { writers: 4, steps_per_writer: 64, region_breadth: 16, seed: 0xD0C5 }
    }
}

/// Tag of writer `w`'s region root.
pub fn region_tag(w: usize) -> String {
    format!("region{w}")
}

/// The three element tags writer `w`'s region is built from.
pub fn writer_tags(w: usize) -> [String; 3] {
    [format!("w{w}a"), format!("w{w}b"), format!("w{w}c")]
}

/// The initial document: a root with one region subtree per writer, each
/// populated with `region_breadth` elements over that writer's private
/// vocabulary (with some nesting, so every axis has work to do).
pub fn initial_tree(params: &TraceParams) -> XmlTree {
    let mut tree = XmlTree::new("db");
    let root = tree.root();
    for w in 0..params.writers {
        let region = tree.append_element(root, region_tag(w));
        let tags = writer_tags(w);
        let mut cursor = region;
        for i in 0..params.region_breadth.max(1) {
            let tag = &tags[i % tags.len()];
            let node = tree.append_element(cursor, tag.clone());
            // Every third element starts a nested chain; the rest stay
            // siblings of the chain head — mixed depth, bounded by breadth.
            cursor = if i % 3 == 2 { region } else { node };
            if i % 3 == 2 {
                tree.append_text(node, format!("v{w}_{i}"));
            }
        }
    }
    tree
}

/// Per-writer query mix: one path per axis family, all phrased over the
/// writer's private vocabulary so hits can survive other writers' epochs.
pub fn query_paths(w: usize) -> Vec<String> {
    let [a, b, c] = writer_tags(w);
    let region = region_tag(w);
    vec![
        format!("//{region}/{a}"),
        format!("//{b}"),
        format!("/db//{c}"),
        format!("//{c}/parent::*"),
        format!("//{c}/ancestor::{a}"),
        format!("//{b}/ancestor-or-self::*"),
        format!("//{a}/following::{b}"),
        format!("//{b}/preceding::{a}"),
        format!("//{a}/following-sibling::{b}"),
        format!("//{b}/preceding-sibling::{a}"),
        format!("//{a}[1]"),
    ]
}

/// Writer `w`'s region root in the current tree, if still present (region
/// roots are never mutation targets, so it always is).
pub fn region_root(tree: &XmlTree, w: usize) -> Option<NodeId> {
    let tag = region_tag(w);
    tree.elements().find(|&n| tree.tag(n) == Some(tag.as_str()))
}

/// Elements strictly inside writer `w`'s region, document order.
fn region_members(tree: &XmlTree, region: NodeId) -> Vec<NodeId> {
    tree.elements()
        .filter(|&n| n != region && tree.ancestors(n).any(|a| a == region))
        .collect()
}

/// Derives writer `w`'s step-`step` mutation against the current tree.
///
/// The mutation targets only nodes inside the writer's region (the region
/// root itself is only ever an insertion *parent*, never a target), so
/// concurrent writers' scripts commute. The dispatch is insert-heavy
/// (grow ~2 of 3 steps) so regions expand into a relabel storm rather
/// than draining.
pub fn scripted(params: &TraceParams, w: usize, step: usize, tree: &XmlTree) -> Mutation {
    let mut rng = StdRng::seed_from_u64(
        params.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (step as u64) << 20,
    );
    let tags = writer_tags(w);
    let Some(region) = region_root(tree, w) else {
        // Unreachable for trees built by `initial_tree`; keep the script
        // total anyway.
        return Mutation::InsertSubtree {
            pos: InsertPos::LastChildOf(tree.root()),
            xml: format!("<{0}/>", tags[0]),
        };
    };
    let members = region_members(tree, region);
    let pick = |rng: &mut StdRng, members: &[NodeId]| -> Option<NodeId> {
        rng.choose(members).copied()
    };
    let tag = tags[rng.gen_range(0..tags.len())].clone();
    match rng.gen_range(0..8u32) {
        0 | 1 => match pick(&mut rng, &members) {
            Some(anchor) => Mutation::InsertBefore { anchor, tag },
            None => Mutation::InsertSubtree {
                pos: InsertPos::LastChildOf(region),
                xml: format!("<{tag}/>"),
            },
        },
        2 | 3 => {
            let pos = match pick(&mut rng, &members) {
                Some(anchor) if rng.random_bool(0.5) => InsertPos::Before(anchor),
                Some(parent) => InsertPos::LastChildOf(parent),
                None => InsertPos::LastChildOf(region),
            };
            Mutation::InsertSubtree {
                pos,
                xml: format!("<{tag}><{0}/><{1}/></{tag}>", tags[1], tags[2]),
            }
        }
        4 => match pick(&mut rng, &members) {
            Some(target) => Mutation::InsertParent { target, tag },
            None => Mutation::InsertSubtree {
                pos: InsertPos::LastChildOf(region),
                xml: format!("<{tag}/>"),
            },
        },
        5 if members.len() >= 4 => match pick(&mut rng, &members) {
            Some(target) => Mutation::Delete { target },
            None => Mutation::InsertBefore { anchor: members[0], tag },
        },
        6 if members.len() >= 2 => {
            // A move that cannot land inside its own subtree: the
            // destination must not be a descendant-or-self of the target.
            let target = members[rng.gen_range(0..members.len())];
            let outside: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|&d| d != target && !tree.ancestors(d).any(|a| a == target))
                .collect();
            match rng.choose(&outside).copied() {
                Some(dest) => {
                    let pos = if rng.random_bool(0.5) {
                        InsertPos::Before(dest)
                    } else {
                        InsertPos::LastChildOf(dest)
                    };
                    Mutation::MoveSubtree { target, pos }
                }
                None => Mutation::InsertBefore { anchor: target, tag },
            }
        }
        _ => Mutation::InsertSubtree {
            pos: InsertPos::LastChildOf(region),
            xml: format!("<{tag}/>"),
        },
    }
}

/// A seeded order-preserving interleaving of the writers' scripts: a
/// sequence of writer indices in which writer `w` appears exactly
/// `steps_per_writer` times, merge order drawn from the seed. Within each
/// writer the step order is preserved (position `k` of writer `w` is its
/// step `k`), which is the only ordering a real concurrent submission
/// respects.
pub fn interleave(params: &TraceParams) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x1EAF_5EED);
    let mut remaining = vec![params.steps_per_writer; params.writers];
    let mut order = Vec::with_capacity(params.writers * params.steps_per_writer);
    let mut total: usize = remaining.iter().sum();
    while total > 0 {
        // Weighted by remaining steps: uniform over the outstanding slots,
        // so no writer starves or dominates the tail.
        let mut slot = rng.gen_range(0..total);
        for (w, r) in remaining.iter_mut().enumerate() {
            if slot < *r {
                *r -= 1;
                total -= 1;
                order.push(w);
                break;
            }
            slot -= *r;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_use_disjoint_tag_vocabularies() {
        let params = TraceParams { writers: 3, region_breadth: 9, ..Default::default() };
        let tree = initial_tree(&params);
        for w in 0..params.writers {
            let region = region_root(&tree, w).unwrap();
            let tags = writer_tags(w);
            for n in region_members(&tree, region) {
                let tag = tree.tag(n).unwrap();
                assert!(tags.iter().any(|t| t == tag), "tag {tag} leaked into region {w}");
            }
        }
    }

    #[test]
    fn scripts_are_deterministic_and_stay_inside_their_region() {
        let params = TraceParams { writers: 2, steps_per_writer: 8, ..Default::default() };
        let tree = initial_tree(&params);
        for w in 0..params.writers {
            let region = region_root(&tree, w).unwrap();
            for step in 0..params.steps_per_writer {
                let a = scripted(&params, w, step, &tree);
                let b = scripted(&params, w, step, &tree);
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "w{w} step {step} not deterministic");
                let inside = |n: NodeId| n == region || tree.ancestors(n).any(|x| x == region);
                let pos_inside = |pos: &InsertPos| match pos {
                    InsertPos::Before(n) => inside(*n),
                    InsertPos::LastChildOf(n) => inside(*n),
                };
                let ok = match &a {
                    Mutation::InsertBefore { anchor, .. } => inside(*anchor) && *anchor != region,
                    Mutation::InsertSubtree { pos, .. } => pos_inside(pos),
                    Mutation::InsertParent { target, .. } => inside(*target) && *target != region,
                    Mutation::Delete { target } => inside(*target) && *target != region,
                    Mutation::MoveSubtree { target, pos } => {
                        inside(*target) && *target != region && pos_inside(pos)
                    }
                };
                assert!(ok, "w{w} step {step} escaped its region: {a:?}");
            }
        }
    }

    #[test]
    fn interleavings_are_order_preserving_and_seeded() {
        let params = TraceParams { writers: 3, steps_per_writer: 5, ..Default::default() };
        let order = interleave(&params);
        assert_eq!(order.len(), 15);
        for w in 0..3 {
            assert_eq!(order.iter().filter(|&&x| x == w).count(), 5);
        }
        assert_eq!(order, interleave(&params), "same seed, same interleaving");
        let other = interleave(&TraceParams { seed: params.seed + 1, ..params });
        assert_ne!(order, other, "different seeds should differ (3^15 orders)");
    }
}
