//! The nine Table 1 datasets, synthesized.
//!
//! Table 1 of the paper characterizes each Niagara dataset by topic and by
//! the maximum node count over its files. §5.1.2 additionally describes the
//! shapes that drive the space results: "the movie dataset D4 contains a
//! list of movies for an actor. This dataset has a huge fan-out. … dataset
//! D7 is the NASA document that has a high depth with low fan-out."
//! Each generator below reproduces its dataset's topic vocabulary, *exact*
//! maximum node count, and shape profile.

use crate::shakespeare::{generate_play, PlayParams};
use crate::CountingBuilder;
use xp_testkit::rng::StdRng;
use xp_testkit::rng::{RngExt, SeedableRng};
use xp_xmltree::{NodeId, XmlTree};

/// One synthesized dataset: identity, Table 1 characteristics, and generator.
#[derive(Clone, Copy)]
pub struct Dataset {
    /// Paper identifier: "D1" … "D9".
    pub id: &'static str,
    /// Table 1 topic.
    pub topic: &'static str,
    /// Table 1 "Max. # of nodes": the generated document's element count.
    pub max_nodes: usize,
    generator: fn(u64, usize) -> XmlTree,
}

impl Dataset {
    /// Generates the dataset's largest document, deterministically per seed.
    pub fn generate(&self, seed: u64) -> XmlTree {
        (self.generator)(seed, self.max_nodes)
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("id", &self.id)
            .field("topic", &self.topic)
            .field("max_nodes", &self.max_nodes)
            .finish()
    }
}

/// All nine datasets, in Table 1 order.
pub const DATASETS: [Dataset; 9] = [
    Dataset { id: "D1", topic: "Sigmod record", max_nodes: 41, generator: gen_sigmod },
    Dataset { id: "D2", topic: "Movie", max_nodes: 125, generator: gen_movie },
    Dataset { id: "D3", topic: "Club", max_nodes: 340, generator: gen_club },
    Dataset { id: "D4", topic: "Actor", max_nodes: 1110, generator: gen_actor },
    Dataset { id: "D5", topic: "Car", max_nodes: 2495, generator: gen_car },
    Dataset { id: "D6", topic: "Department", max_nodes: 2686, generator: gen_department },
    Dataset { id: "D7", topic: "NASA", max_nodes: 4834, generator: gen_nasa },
    Dataset { id: "D8", topic: "Shakespears' Plays", max_nodes: 6636, generator: gen_shakespeare },
    Dataset { id: "D9", topic: "Company", max_nodes: 10052, generator: gen_company },
];

/// Looks a dataset up by id ("D1" … "D9").
pub fn dataset(id: &str) -> Option<&'static Dataset> {
    DATASETS.iter().find(|d| d.id == id)
}

/// Appends leaf elements under `parent` until the document holds exactly
/// `target` elements. Keeps generated counts exact without distorting shape:
/// the padding tags are natural leaf children of the given parent.
fn pad_to(b: &mut CountingBuilder, parent: NodeId, tag: &str, target: usize) {
    while b.elements < target {
        b.child(parent, tag);
    }
    debug_assert_eq!(b.elements, target);
}

/// D1 — Sigmod record (41 nodes): issue metadata plus a handful of articles.
fn gen_sigmod(seed: u64, target: usize) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("SigmodRecord");
    let root = b.tree.root();
    let issue = b.child(root, "issue");
    b.leaf_with_text(issue, "volume", "33");
    b.leaf_with_text(issue, "number", "2");
    let articles = b.child(issue, "articles");
    // Each article block is 7 elements; fill, then pad with authors.
    let mut last_authors = articles;
    while b.elements + 7 <= target {
        let article = b.child(articles, "article");
        b.leaf_with_text(article, "title", "A Study");
        b.leaf_with_text(article, "initPage", &rng.random_range(1..400).to_string());
        b.leaf_with_text(article, "endPage", &rng.random_range(400..500).to_string());
        let authors = b.child(article, "authors");
        b.leaf_with_text(authors, "author", "A. Writer");
        b.leaf_with_text(authors, "author", "B. Scholar");
        last_authors = authors;
    }
    pad_to(&mut b, last_authors, "author", target);
    b.tree
}

/// D2 — Movie (125 nodes): a film list with casts of a few actors.
fn gen_movie(seed: u64, target: usize) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("movies");
    let root = b.tree.root();
    let mut last_cast = root;
    while b.elements + 8 <= target {
        let movie = b.child(root, "movie");
        b.leaf_with_text(movie, "title", "A Film");
        b.leaf_with_text(movie, "year", &rng.random_range(1950..2004).to_string());
        b.leaf_with_text(movie, "genre", ["drama", "comedy", "noir"][rng.random_range(0..3)]);
        let cast = b.child(movie, "cast");
        b.leaf_with_text(cast, "actor", "Lead Actor");
        b.leaf_with_text(cast, "actor", "Supporting Actor");
        last_cast = cast;
    }
    pad_to(&mut b, last_cast, "actor", target);
    b.tree
}

/// D3 — Club (340 nodes): a member roster.
fn gen_club(seed: u64, target: usize) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("club");
    let root = b.tree.root();
    b.leaf_with_text(root, "name", "XML Appreciation Society");
    let members = b.child(root, "members");
    while b.elements + 5 <= target {
        let m = b.child(members, "member");
        b.leaf_with_text(m, "name", "Member Name");
        b.leaf_with_text(m, "age", &rng.random_range(18..80).to_string());
        b.leaf_with_text(m, "email", "member@example.org");
        b.leaf_with_text(m, "since", &rng.random_range(1990..2004).to_string());
    }
    pad_to(&mut b, members, "member", target);
    b.tree
}

/// D4 — Actor (1110 nodes): one actor with a *huge fan-out* filmography —
/// the dataset §5.1.2 singles out as breaking the prefix schemes.
fn gen_actor(seed: u64, target: usize) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("actor");
    let root = b.tree.root();
    b.leaf_with_text(root, "name", "Prolific Thespian");
    b.leaf_with_text(root, "born", &rng.random_range(1920..1970).to_string());
    let filmography = b.child(root, "filmography");
    // Every movie is a single leaf under one parent: fan-out ≈ N.
    pad_to(&mut b, filmography, "movie", target);
    b.tree
}

/// D5 — Car (2495 nodes): a flat listing of cars with fixed fields.
fn gen_car(seed: u64, target: usize) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("cars");
    let root = b.tree.root();
    while b.elements + 5 <= target {
        let car = b.child(root, "car");
        b.leaf_with_text(car, "make", ["Ford", "Toyota", "BMW"][rng.random_range(0..3)]);
        b.leaf_with_text(car, "model", "Model X");
        b.leaf_with_text(car, "year", &rng.random_range(1995..2004).to_string());
        b.leaf_with_text(car, "price", &rng.random_range(5000..60000).to_string());
    }
    pad_to(&mut b, root, "car", target);
    b.tree
}

/// D6 — Department (2686 nodes): faculties with courses and staff.
fn gen_department(seed: u64, target: usize) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("department");
    let root = b.tree.root();
    b.leaf_with_text(root, "name", "School of Computing");
    let mut last_course_list = root;
    while b.elements + 12 <= target {
        let faculty = b.child(root, "faculty");
        b.leaf_with_text(faculty, "name", "Prof. Example");
        b.leaf_with_text(faculty, "office", &format!("COM{}", rng.random_range(1..3)));
        let courses = b.child(faculty, "courses");
        for _ in 0..2 {
            let course = b.child(courses, "course");
            b.leaf_with_text(course, "code", &format!("CS{}", rng.random_range(1000..6000)));
            b.leaf_with_text(course, "title", "Database Systems");
            b.leaf_with_text(course, "credits", &rng.random_range(2..6).to_string());
        }
        last_course_list = courses;
    }
    pad_to(&mut b, last_course_list, "course", target);
    b.tree
}

/// D7 — NASA (4834 nodes): *high depth with low fan-out* (§5.1.2), the
/// structure that favors the prefix scheme. Eight levels of nesting.
fn gen_nasa(seed: u64, target: usize) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("datasets");
    let root = b.tree.root();
    let mut last_deep = root;
    // dataset/reference/source/other/title/... : each block is a depth-8
    // chain with small fan-out at each level (14 elements per block).
    while b.elements + 14 <= target {
        let dataset = b.child(root, "dataset"); // depth 1
        b.leaf_with_text(dataset, "title", "Survey");
        let reference = b.child(dataset, "reference"); // 2
        let source = b.child(reference, "source"); // 3
        let other = b.child(source, "other"); // 4
        b.leaf_with_text(other, "date", &rng.random_range(1970..2004).to_string());
        let journal = b.child(other, "journal"); // 5
        let volume = b.child(journal, "volume"); // 6
        let issue = b.child(volume, "issue"); // 7
        let pages = b.child(issue, "pages"); // 8 — the deep chain
        b.leaf_with_text(pages, "first", &rng.random_range(1..100).to_string());
        b.leaf_with_text(pages, "last", &rng.random_range(100..200).to_string());
        b.leaf_with_text(dataset, "altname", "alt");
        last_deep = pages;
    }
    pad_to(&mut b, last_deep, "note", target);
    b.tree
}

/// D8 — Shakespeare's plays (6636 nodes): the Hamlet-sized play, trimmed or
/// padded to the exact Table 1 count.
fn gen_shakespeare(seed: u64, target: usize) -> XmlTree {
    // Generate slightly small, then pad with LINE leaves in the last speech.
    let params = PlayParams {
        acts: 5,
        scenes_per_act: (3, 4),
        speeches_per_scene: (20, 30),
        lines_per_speech: (2, 4),
        personae: 26,
    };
    let play = generate_play("Hamlet", seed, &params);
    let mut b = CountingBuilder { elements: play.elements().count(), tree: play };
    // If overshot, regenerate smaller; the miniature profile always fits.
    if b.elements > target {
        let small = generate_play("Hamlet", seed, &PlayParams::miniature());
        b = CountingBuilder { elements: small.elements().count(), tree: small };
    }
    let last_speech = b
        .tree
        .elements()
        .filter(|&n| b.tree.tag(n) == Some("SPEECH"))
        .last()
        .expect("plays have speeches");
    pad_to(&mut b, last_speech, "LINE", target);
    b.tree
}

/// D9 — Company (10052 nodes): offices with employees, the largest dataset.
fn gen_company(seed: u64, target: usize) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("company");
    let root = b.tree.root();
    b.leaf_with_text(root, "name", "Example Corp");
    let offices = b.child(root, "offices");
    let mut last_office = offices;
    while b.elements + 26 <= target {
        let office = b.child(offices, "office");
        b.leaf_with_text(office, "city", ["Singapore", "Boston", "Kyoto"][rng.random_range(0..3)]);
        for _ in 0..4 {
            let employee = b.child(office, "employee");
            b.leaf_with_text(employee, "name", "Employee");
            b.leaf_with_text(employee, "title", "Engineer");
            b.leaf_with_text(employee, "salary", &rng.random_range(40_000..140_000).to_string());
            b.leaf_with_text(employee, "ext", &rng.random_range(1000..9999).to_string());
        }
        last_office = office;
    }
    pad_to(&mut b, last_office, "employee", target);
    b.tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::TreeStats;

    #[test]
    fn every_dataset_hits_its_table1_node_count_exactly() {
        for d in &DATASETS {
            let tree = d.generate(2004);
            let n = TreeStats::compute(&tree).node_count;
            assert_eq!(n, d.max_nodes, "{} ({})", d.id, d.topic);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for d in &DATASETS {
            let a = xp_xmltree::serialize::to_string(&d.generate(7));
            let b = xp_xmltree::serialize::to_string(&d.generate(7));
            assert_eq!(a, b, "{}", d.id);
        }
    }

    #[test]
    fn actor_has_huge_fanout() {
        let d = dataset("D4").unwrap();
        let s = TreeStats::compute(&d.generate(1));
        // §5.1.2: "This dataset has a huge fan-out" — nearly every node is a
        // leaf under one filmography parent.
        assert!(s.max_fanout > 1000, "fan-out {}", s.max_fanout);
        assert!(s.max_depth <= 3);
    }

    #[test]
    fn nasa_is_deep_and_narrow() {
        let d = dataset("D7").unwrap();
        let s = TreeStats::compute(&d.generate(1));
        assert!(s.max_depth >= 8, "depth {}", s.max_depth);
        // Fan-out stays far below the actor dataset's.
        assert!(s.max_fanout < s.node_count / 4, "fan-out {}", s.max_fanout);
    }

    #[test]
    fn shakespeare_has_play_structure() {
        let d = dataset("D8").unwrap();
        let s = TreeStats::compute(&d.generate(3));
        assert_eq!(s.tag_histogram["ACT"], 5);
        assert!(s.tag_histogram.contains_key("LINE"));
        assert_eq!(s.max_depth, 4);
    }

    #[test]
    fn dataset_lookup() {
        assert_eq!(dataset("D5").unwrap().topic, "Car");
        assert!(dataset("D10").is_none());
    }

    #[test]
    fn sizes_are_increasing_like_table1() {
        let sizes: Vec<usize> = DATASETS.iter().map(|d| d.max_nodes).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        assert_eq!(sizes, vec![41, 125, 340, 1110, 2495, 2686, 4834, 6636, 10052]);
    }
}
