//! Parametric tree builders: perfect trees for the analytic size model
//! (Figures 4–5), chains, and seeded random trees for property tests and the
//! update experiments (Figures 16–17 use "10 XML files whose size ranges from
//! 1000 to 10,000 nodes").

use xp_testkit::rng::StdRng;
use xp_testkit::rng::{RngExt, SeedableRng};
use xp_xmltree::{NodeId, XmlTree};

/// A perfect tree with fan-out `fanout` and depth `depth` (root at level 0):
/// exactly `Σ_{i=0..depth} fanout^i` element nodes — the worst case of the
/// paper's size formula (3).
///
/// # Panics
/// Panics if `fanout == 0` and `depth > 0`.
pub fn perfect_tree(fanout: usize, depth: usize) -> XmlTree {
    assert!(fanout > 0 || depth == 0, "a perfect tree of positive depth needs fan-out >= 1");
    let mut tree = XmlTree::new("n0");
    let mut frontier = vec![tree.root()];
    for level in 1..=depth {
        let tag = format!("n{level}");
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for parent in frontier {
            for _ in 0..fanout {
                next.push(tree.append_element(parent, tag.as_str()));
            }
        }
        frontier = next;
    }
    tree
}

/// Number of nodes in a perfect tree: `Σ_{i=0..depth} fanout^i`, saturating.
pub fn perfect_tree_size(fanout: u64, depth: u32) -> u64 {
    let mut total: u64 = 0;
    let mut level = 1u64;
    for _ in 0..=depth {
        total = total.saturating_add(level);
        level = level.saturating_mul(fanout);
    }
    total
}

/// A single root-to-leaf chain of `depth + 1` elements.
pub fn chain(depth: usize) -> XmlTree {
    let mut tree = XmlTree::new("c0");
    let mut at = tree.root();
    for level in 1..=depth {
        at = tree.append_element(at, format!("c{level}"));
    }
    tree
}

/// Parameters for [`random_tree`].
#[derive(Debug, Clone)]
pub struct RandomTreeParams {
    /// Total element count (including the root).
    pub nodes: usize,
    /// Hard ceiling on depth; new nodes at the ceiling are retargeted upward.
    pub max_depth: usize,
    /// Upper bound (inclusive) on children per node.
    pub max_fanout: usize,
    /// Number of distinct tag names to draw from.
    pub tag_variety: usize,
}

impl Default for RandomTreeParams {
    fn default() -> Self {
        RandomTreeParams { nodes: 1000, max_depth: 8, max_fanout: 40, tag_variety: 12 }
    }
}

/// A seeded random ordered tree with `params.nodes` elements.
///
/// Shape model: each new node picks an attachment point uniformly among the
/// nodes that still have fan-out and depth budget, which yields the
/// wide-and-shallow profile real XML exhibits (the paper cites \[13\]: 99 % of
/// 200 000 web documents have fewer than 8 levels, with fan-out up to 10 000).
pub fn random_tree(seed: u64, params: &RandomTreeParams) -> XmlTree {
    assert!(params.nodes >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = XmlTree::new("t0");
    // (node, depth, children_so_far) for nodes that can still take children.
    let mut open: Vec<(NodeId, usize, usize)> = vec![(tree.root(), 0, 0)];
    let mut made = 1usize;
    while made < params.nodes && !open.is_empty() {
        let slot = rng.random_range(0..open.len());
        let (parent, depth, _) = open[slot];
        let tag = format!("t{}", rng.random_range(0..params.tag_variety.max(1)));
        let child = tree.append_element(parent, tag);
        made += 1;
        open[slot].2 += 1;
        if open[slot].2 >= params.max_fanout {
            open.swap_remove(slot);
        }
        if depth + 1 < params.max_depth {
            open.push((child, depth + 1, 0));
        }
    }
    tree
}

/// The ten update-experiment documents of §5.3: sizes 1000, 2000, …, 10000.
pub fn update_experiment_docs(seed: u64) -> Vec<XmlTree> {
    (1..=10)
        .map(|k| {
            random_tree(
                seed.wrapping_add(k as u64),
                &RandomTreeParams { nodes: 1000 * k, max_depth: 8, max_fanout: 25, tag_variety: 10 },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::TreeStats;

    #[test]
    fn perfect_tree_shape() {
        let t = perfect_tree(3, 2);
        let s = TreeStats::compute(&t);
        assert_eq!(s.node_count, 13);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.max_fanout, 3);
        assert_eq!(s.leaf_count, 9);
    }

    #[test]
    fn perfect_tree_degenerate() {
        let t = perfect_tree(5, 0);
        assert_eq!(TreeStats::compute(&t).node_count, 1);
        let t1 = perfect_tree(1, 4);
        let s1 = TreeStats::compute(&t1);
        assert_eq!(s1.node_count, 5);
        assert_eq!(s1.max_depth, 4);
    }

    #[test]
    fn perfect_tree_size_formula_matches_construction() {
        for (f, d) in [(2u64, 3u32), (3, 2), (15, 2), (1, 10)] {
            let t = perfect_tree(f as usize, d as usize);
            assert_eq!(
                TreeStats::compute(&t).node_count as u64,
                perfect_tree_size(f, d),
                "F={f} D={d}"
            );
        }
        // Saturation instead of overflow for the analytic plots.
        assert_eq!(perfect_tree_size(10_000, 50), u64::MAX);
    }

    #[test]
    fn chain_is_a_path() {
        let s = TreeStats::compute(&chain(9));
        assert_eq!(s.node_count, 10);
        assert_eq!(s.max_depth, 9);
        assert_eq!(s.max_fanout, 1);
        assert_eq!(s.leaf_count, 1);
    }

    #[test]
    fn random_tree_hits_node_count_and_respects_limits() {
        let params = RandomTreeParams { nodes: 2000, max_depth: 6, max_fanout: 30, tag_variety: 8 };
        let t = random_tree(42, &params);
        let s = TreeStats::compute(&t);
        assert_eq!(s.node_count, 2000);
        assert!(s.max_depth <= 6);
        assert!(s.max_fanout <= 30);
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let params = RandomTreeParams::default();
        let a = xp_xmltree::serialize::to_string(&random_tree(7, &params));
        let b = xp_xmltree::serialize::to_string(&random_tree(7, &params));
        let c = xp_xmltree::serialize::to_string(&random_tree(8, &params));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn update_docs_have_the_experiment_sizes() {
        let docs = update_experiment_docs(1);
        let sizes: Vec<usize> = docs.iter().map(|d| TreeStats::compute(d).node_count).collect();
        assert_eq!(sizes, (1..=10).map(|k| k * 1000).collect::<Vec<_>>());
    }
}
