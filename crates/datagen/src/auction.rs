//! An XMark-flavored auction-site generator.
//!
//! XMark ("site" documents with regions, categories, people, and auctions)
//! is the other workload XML-labeling papers of the era benchmarked
//! against; we generate a structurally faithful miniature so examples and
//! stress tests have a second realistic corpus beside the Shakespeare
//! plays: mixed depth (to 6), mixed fan-out, cross-referencing attributes
//! (`person` / `itemref`), and a long flat `people` list.

use crate::CountingBuilder;
use xp_testkit::rng::StdRng;
use xp_testkit::rng::{RngExt, SeedableRng};
use xp_xmltree::XmlTree;

/// Scale knobs for one site document.
#[derive(Debug, Clone)]
pub struct AuctionParams {
    /// Registered people (flat list; XMark's biggest fan-out).
    pub people: usize,
    /// Items per region (two regions are generated).
    pub items_per_region: usize,
    /// Open auctions (each with a small bidder history).
    pub open_auctions: usize,
    /// Closed auctions.
    pub closed_auctions: usize,
}

impl AuctionParams {
    /// Roughly 1 000 elements.
    pub fn small() -> Self {
        AuctionParams { people: 40, items_per_region: 20, open_auctions: 30, closed_auctions: 15 }
    }

    /// Roughly 10 000 elements.
    pub fn medium() -> Self {
        AuctionParams {
            people: 400,
            items_per_region: 200,
            open_auctions: 300,
            closed_auctions: 150,
        }
    }
}

const CITIES: &[&str] = &["Singapore", "Boston", "Kyoto", "Berlin", "Lagos", "Quito"];
const WORDS: &[&str] = &["vintage", "rare", "mint", "boxed", "signed", "restored", "original"];

/// Generates one `site` document.
pub fn generate_site(seed: u64, params: &AuctionParams) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("site");
    let site = b.tree.root();

    // regions/(africa|asia)/item*/(location, name, description/text)
    let regions = b.child(site, "regions");
    for region in ["africa", "asia"] {
        let r = b.child(regions, region);
        for i in 0..params.items_per_region {
            let item = b.tree.create_element_with_attrs(
                "item",
                vec![("id".into(), format!("item{region}{i}"))],
            );
            b.elements += 1;
            b.tree.append_child(r, item);
            b.leaf_with_text(item, "location", CITIES[rng.random_range(0..CITIES.len())]);
            b.leaf_with_text(item, "name", WORDS[rng.random_range(0..WORDS.len())]);
            let descr = b.child(item, "description");
            b.leaf_with_text(descr, "text", "as described");
        }
    }

    // categories/category*/(name)
    let categories = b.child(site, "categories");
    for i in 0..8 {
        let cat = b.child(categories, "category");
        b.leaf_with_text(cat, "name", &format!("category {i}"));
    }

    // people/person*/(name, emailaddress, address/(city, country))
    let people = b.child(site, "people");
    for i in 0..params.people {
        let person = b
            .tree
            .create_element_with_attrs("person", vec![("id".into(), format!("person{i}"))]);
        b.elements += 1;
        b.tree.append_child(people, person);
        b.leaf_with_text(person, "name", &format!("Person {i}"));
        b.leaf_with_text(person, "emailaddress", &format!("p{i}@example.org"));
        if rng.random_range(0..3) > 0 {
            let addr = b.child(person, "address");
            b.leaf_with_text(addr, "city", CITIES[rng.random_range(0..CITIES.len())]);
            b.leaf_with_text(addr, "country", "XK");
        }
    }

    // open_auctions/open_auction*/(initial, bidder*/(date, increase), itemref)
    let opens = b.child(site, "open_auctions");
    for i in 0..params.open_auctions {
        let auction = b
            .tree
            .create_element_with_attrs("open_auction", vec![("id".into(), format!("open{i}"))]);
        b.elements += 1;
        b.tree.append_child(opens, auction);
        b.leaf_with_text(auction, "initial", &format!("{}", rng.random_range(5..500)));
        for _ in 0..rng.random_range(0..4) {
            let bidder = b.child(auction, "bidder");
            b.leaf_with_text(bidder, "date", "07/06/2026");
            b.leaf_with_text(bidder, "increase", &format!("{}", rng.random_range(1..50)));
        }
        let itemref = b.tree.create_element_with_attrs(
            "itemref",
            vec![("item".into(), format!("itemasia{}", rng.random_range(0..params.items_per_region.max(1))))],
        );
        b.elements += 1;
        b.tree.append_child(auction, itemref);
    }

    // closed_auctions/closed_auction*/(price, buyer)
    let closeds = b.child(site, "closed_auctions");
    for _ in 0..params.closed_auctions {
        let auction = b.child(closeds, "closed_auction");
        b.leaf_with_text(auction, "price", &format!("{}", rng.random_range(10..900)));
        let buyer = b.tree.create_element_with_attrs(
            "buyer",
            vec![("person".into(), format!("person{}", rng.random_range(0..params.people.max(1))))],
        );
        b.elements += 1;
        b.tree.append_child(auction, buyer);
    }

    b.tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::TreeStats;

    #[test]
    fn structure_has_the_xmark_sections() {
        let t = generate_site(1, &AuctionParams::small());
        let s = TreeStats::compute(&t);
        for tag in [
            "site", "regions", "africa", "asia", "item", "categories", "people", "person",
            "open_auctions", "open_auction", "closed_auctions", "closed_auction", "bidder",
        ] {
            assert!(s.tag_histogram.contains_key(tag), "missing {tag}");
        }
        assert_eq!(s.tag_histogram["item"], 40);
        assert_eq!(s.tag_histogram["person"], 40);
    }

    #[test]
    fn scales_roughly_as_advertised() {
        let small = TreeStats::compute(&generate_site(2, &AuctionParams::small())).node_count;
        let medium = TreeStats::compute(&generate_site(2, &AuctionParams::medium())).node_count;
        assert!((500..2500).contains(&small), "small = {small}");
        assert!((5000..25000).contains(&medium), "medium = {medium}");
        assert!(medium > small * 5);
    }

    #[test]
    fn cross_references_point_at_real_ids() {
        let t = generate_site(3, &AuctionParams::small());
        let ids: std::collections::HashSet<&str> =
            t.elements().filter_map(|n| t.attr(n, "id")).collect();
        for n in t.elements() {
            if let Some(target) = t.attr(n, "person").or_else(|| t.attr(n, "item")) {
                assert!(ids.contains(target), "dangling reference {target}");
            }
        }
    }

    #[test]
    fn depth_is_xmark_like() {
        let s = TreeStats::compute(&generate_site(4, &AuctionParams::small()));
        assert!((4..=6).contains(&s.max_depth), "depth {}", s.max_depth);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = xp_xmltree::serialize::to_string(&generate_site(9, &AuctionParams::small()));
        let b = xp_xmltree::serialize::to_string(&generate_site(9, &AuctionParams::small()));
        assert_eq!(a, b);
    }
}
