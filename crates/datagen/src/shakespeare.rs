//! A parametric Shakespeare-play generator.
//!
//! The paper's query experiments (§5.2) run nine XPath queries over the
//! Shakespeare plays "replicated 5 times", and the order-sensitive update
//! experiment (§5.4) inserts new `ACT` elements between the acts of Hamlet.
//! The queries only touch the element structure
//! `PLAY / ACT / SCENE / SPEECH / LINE` plus `PERSONA` (see Table 2), so a
//! generator reproducing that structure with realistic cardinalities stands
//! in faithfully for the Bosak corpus.

use crate::CountingBuilder;
use xp_testkit::rng::StdRng;
use xp_testkit::rng::{RngExt, SeedableRng};
use xp_xmltree::XmlTree;

/// Cardinality knobs for one generated play.
#[derive(Debug, Clone)]
pub struct PlayParams {
    /// Number of `ACT` children (Hamlet has 5).
    pub acts: usize,
    /// Scenes per act, inclusive range.
    pub scenes_per_act: (usize, usize),
    /// Speeches per scene, inclusive range.
    pub speeches_per_scene: (usize, usize),
    /// Lines per speech, inclusive range.
    pub lines_per_speech: (usize, usize),
    /// Entries in the dramatis personae.
    pub personae: usize,
}

impl PlayParams {
    /// Cardinalities that land a single play near Hamlet's size
    /// (≈ 6000 element nodes, the largest play in the corpus; Table 1 lists
    /// the Shakespeare dataset max at 6636 nodes).
    pub fn hamlet_like() -> Self {
        PlayParams {
            acts: 5,
            scenes_per_act: (4, 6),
            speeches_per_scene: (25, 45),
            lines_per_speech: (3, 6),
            personae: 26,
        }
    }

    /// A small play for fast tests.
    pub fn miniature() -> Self {
        PlayParams {
            acts: 3,
            scenes_per_act: (1, 2),
            speeches_per_scene: (2, 4),
            lines_per_speech: (1, 2),
            personae: 4,
        }
    }
}

const SPEAKERS: &[&str] = &[
    "HAMLET", "CLAUDIUS", "GERTRUDE", "POLONIUS", "OPHELIA", "LAERTES", "HORATIO", "GHOST",
    "ROSENCRANTZ", "GUILDENSTERN", "FORTINBRAS", "OSRIC", "MARCELLUS", "BERNARDO", "FRANCISCO",
    "REYNALDO", "VOLTIMAND", "CORNELIUS", "PLAYER KING", "PLAYER QUEEN", "LUCIANUS",
    "FIRST CLOWN", "SECOND CLOWN", "PRIEST", "CAPTAIN", "MESSENGER",
];

const LINE_WORDS: &[&str] = &[
    "the", "and", "to", "of", "that", "is", "my", "in", "you", "it", "his", "not", "this", "with",
    "but", "for", "your", "me", "lord", "as", "be", "he", "what", "king", "him", "so", "have",
    "will", "do", "no", "we", "are", "on", "all", "our", "shall", "if", "good", "come", "thou",
];

fn pick(rng: &mut StdRng, range: (usize, usize)) -> usize {
    rng.random_range(range.0..=range.1)
}

fn fake_line(rng: &mut StdRng) -> String {
    let words = rng.random_range(4..=9);
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(LINE_WORDS[rng.random_range(0..LINE_WORDS.len())]);
    }
    out
}

/// Generates one play. Structure (upper-case tags, as in the Bosak corpus):
///
/// ```text
/// PLAY
/// ├── TITLE
/// ├── PERSONAE ── TITLE, PERSONA*
/// └── ACT*  ── TITLE, SCENE* ── TITLE, SPEECH* ── SPEAKER, LINE*
/// ```
pub fn generate_play(title: &str, seed: u64, params: &PlayParams) -> XmlTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CountingBuilder::new("PLAY");
    let play = b.tree.root();
    b.leaf_with_text(play, "TITLE", title);

    let personae = b.child(play, "PERSONAE");
    b.leaf_with_text(personae, "TITLE", "Dramatis Personae");
    for i in 0..params.personae {
        let name = SPEAKERS[i % SPEAKERS.len()];
        b.leaf_with_text(personae, "PERSONA", name);
    }

    for act_no in 1..=params.acts {
        let act = b.child(play, "ACT");
        b.leaf_with_text(act, "TITLE", &format!("ACT {act_no}"));
        for scene_no in 1..=pick(&mut rng, params.scenes_per_act) {
            let scene = b.child(act, "SCENE");
            b.leaf_with_text(scene, "TITLE", &format!("SCENE {scene_no}"));
            for _ in 0..pick(&mut rng, params.speeches_per_scene) {
                let speech = b.child(scene, "SPEECH");
                let who = SPEAKERS[rng.random_range(0..SPEAKERS.len())];
                b.leaf_with_text(speech, "SPEAKER", who);
                for _ in 0..pick(&mut rng, params.lines_per_speech) {
                    let line = fake_line(&mut rng);
                    b.leaf_with_text(speech, "LINE", &line);
                }
            }
        }
    }
    b.tree
}

/// A corpus of generated plays under one root — the "replicate the
/// Shakespeare dataset 5 times" workload of §5.2.
#[derive(Debug)]
pub struct ShakespeareCorpus {
    /// One document holding every replica under a `CORPUS` root.
    pub tree: XmlTree,
    /// Number of plays generated.
    pub plays: usize,
}

impl ShakespeareCorpus {
    /// Generates `replicas` Hamlet-sized plays under a single root.
    pub fn generate(replicas: usize, seed: u64) -> Self {
        Self::generate_with(replicas, seed, &PlayParams::hamlet_like())
    }

    /// Generates `replicas` plays with explicit cardinalities.
    pub fn generate_with(replicas: usize, seed: u64, params: &PlayParams) -> Self {
        let mut corpus = XmlTree::new("CORPUS");
        let root = corpus.root();
        for i in 0..replicas {
            let play = generate_play(&format!("Hamlet (copy {})", i + 1), seed.wrapping_add(i as u64), params);
            graft(&mut corpus, root, &play, play.root());
        }
        ShakespeareCorpus { tree: corpus, plays: replicas }
    }
}

/// Deep-copies the subtree of `src` rooted at `src_node` under `dst_parent`.
pub fn graft(
    dst: &mut XmlTree,
    dst_parent: xp_xmltree::NodeId,
    src: &XmlTree,
    src_node: xp_xmltree::NodeId,
) -> xp_xmltree::NodeId {
    let copy = match src.kind(src_node) {
        xp_xmltree::NodeKind::Element { tag, attrs } => {
            dst.create_element_with_attrs(tag.clone(), attrs.clone())
        }
        xp_xmltree::NodeKind::Text(t) => dst.create_text(t.clone()),
    };
    dst.append_child(dst_parent, copy);
    for child in src.children(src_node).collect::<Vec<_>>() {
        graft(dst, copy, src, child);
    }
    copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::TreeStats;

    #[test]
    fn play_structure_has_the_query_tags() {
        let t = generate_play("Hamlet", 11, &PlayParams::hamlet_like());
        let s = TreeStats::compute(&t);
        for tag in ["PLAY", "ACT", "SCENE", "SPEECH", "LINE", "PERSONA", "SPEAKER", "TITLE"] {
            assert!(s.tag_histogram.contains_key(tag), "missing {tag}");
        }
        assert_eq!(s.tag_histogram["ACT"], 5);
        assert_eq!(s.tag_histogram["PERSONA"], 26);
    }

    #[test]
    fn hamlet_like_lands_near_hamlet_size() {
        let t = generate_play("Hamlet", 11, &PlayParams::hamlet_like());
        let n = TreeStats::compute(&t).node_count;
        assert!((3500..=9000).contains(&n), "play has {n} elements");
    }

    #[test]
    fn depth_matches_the_real_corpus() {
        // PLAY(0)/ACT(1)/SCENE(2)/SPEECH(3)/LINE(4).
        let t = generate_play("x", 3, &PlayParams::miniature());
        assert_eq!(TreeStats::compute(&t).max_depth, 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_play("x", 5, &PlayParams::miniature());
        let b = generate_play("x", 5, &PlayParams::miniature());
        assert_eq!(xp_xmltree::serialize::to_string(&a), xp_xmltree::serialize::to_string(&b));
    }

    #[test]
    fn corpus_replicates_plays() {
        let c = ShakespeareCorpus::generate_with(5, 1, &PlayParams::miniature());
        let root = c.tree.root();
        assert_eq!(c.tree.element_children(root).count(), 5);
        let s = TreeStats::compute(&c.tree);
        assert_eq!(s.tag_histogram["PLAY"], 5);
        assert_eq!(s.tag_histogram["ACT"], 15);
    }

    #[test]
    fn graft_copies_attributes_and_text() {
        let src = xp_xmltree::parse::parse(r#"<a x="1"><b>hi</b></a>"#).unwrap();
        let mut dst = XmlTree::new("root");
        let root = dst.root();
        let copied = graft(&mut dst, root, &src, src.root());
        assert_eq!(dst.attr(copied, "x"), Some("1"));
        let b = dst.first_child(copied).unwrap();
        let txt = dst.first_child(b).unwrap();
        assert_eq!(dst.text(txt), Some("hi"));
    }
}
