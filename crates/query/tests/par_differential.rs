//! Thread-count differentials: every parallelized stage of the pipeline —
//! labeling, `ScTable::build`, `LabelTable::build`, and all nine query
//! axes — must produce byte-identical output at `XP_THREADS ∈ {1, 2, 8}`,
//! on clean runs and under every armed fault site.
//!
//! The contract under test is the one DESIGN.md §9 states: parallelism is
//! an execution detail, never an observable. Anything a caller can extract
//! from a build — label values, document orders, row layouts, query
//! answers, even the *error* a programmed fault surfaces as — must not
//! depend on the worker count.

use std::collections::BTreeSet;
use xp_prime::{OrderedPrimeDoc, PrimeLabel};
use xp_query::engine::Path;
use xp_query::evaluators::{Evaluator, IntervalEvaluator, PrimeEvaluator};
use xp_query::queries::TEST_QUERIES;
use xp_query::relstore::LabelTable;
use xp_testkit::fault;
use xp_testkit::propcheck::{u64s, usizes};
use xp_testkit::{prop_assert, propcheck};
use xp_xmltree::{parse, NodeId, XmlTree};

/// Everything observable about a prime build of `tree`: node enumeration
/// order, every label, every document order, and the full relational
/// projection of the label table. Byte-identical fingerprints mean
/// byte-identical builds.
type Fingerprint = (
    Vec<NodeId>,
    Vec<PrimeLabel>,
    Vec<u64>,
    Vec<(u32, Option<NodeId>, Option<String>)>,
);

fn prime_fingerprint(tree: &XmlTree, chunk_capacity: usize) -> Fingerprint {
    #[allow(clippy::unwrap_used)]
    let doc = OrderedPrimeDoc::build(tree, chunk_capacity).unwrap();
    let labels = doc.labels();
    let nodes: Vec<NodeId> = labels.nodes().to_vec();
    let labs: Vec<PrimeLabel> = nodes.iter().map(|&n| labels.label(n).clone()).collect();
    let orders: Vec<u64> = nodes.iter().map(|&n| doc.order_of(n)).collect();
    let table = LabelTable::build(tree, labels);
    let rows = table.rows().iter().map(|r| (r.tag, r.parent, r.text.clone())).collect();
    (nodes, labs, orders, rows)
}

propcheck! {
    #![config(cases = 12)]

    /// Labeling, the SC table behind `order_of`, and the label table must
    /// be record-for-record identical at every thread count on random
    /// document shapes.
    #[test]
    fn builds_are_byte_identical_across_thread_counts(
        seed in u64s(0..1_000_000),
        nodes in usizes(30..220),
        cap in usizes(2..9),
    ) {
        let tree = xp_datagen::builders::random_tree(
            seed,
            &xp_datagen::builders::RandomTreeParams {
                nodes,
                max_depth: 7,
                max_fanout: 6,
                tag_variety: 5,
            },
        );
        let reference = xp_par::with_threads(1, || prime_fingerprint(&tree, cap));
        for threads in [2, 8] {
            let got = xp_par::with_threads(threads, || prime_fingerprint(&tree, cap));
            prop_assert!(
                got == reference,
                "prime build diverged at {} threads (seed {}, {} nodes)",
                threads, seed, nodes
            );
        }
    }
}

/// All nine Table 2 queries return the identical node vectors (not just
/// counts) at every thread count, for both the prime evaluator (order
/// oracle = SC table) and the interval evaluator on a corpus big enough to
/// engage the partitioned structural join.
#[test]
fn nine_query_axes_are_thread_invariant() {
    let small = xp_datagen::shakespeare::ShakespeareCorpus::generate_with(
        2,
        7,
        &xp_datagen::shakespeare::PlayParams::miniature(),
    )
    .tree;
    let big = xp_datagen::shakespeare::generate_play(
        "x",
        3,
        &xp_datagen::shakespeare::PlayParams::hamlet_like(),
    );

    let answers = |threads: usize| -> Vec<Vec<NodeId>> {
        xp_par::with_threads(threads, || {
            let prime = PrimeEvaluator::build(&small, 5);
            let interval = IntervalEvaluator::build(&big);
            let mut out = Vec::new();
            for q in &TEST_QUERIES {
                out.push(prime.eval_str(q.path));
                out.push(interval.eval_str(q.path));
            }
            out
        })
    };

    let reference = answers(1);
    assert!(reference.iter().any(|r| !r.is_empty()), "queries did real work");
    for threads in [2, 8] {
        assert_eq!(answers(threads), reference, "answers diverged at {threads} threads");
    }
}

/// A 20-item flat list, as in `fault_injection.rs`: small enough to build
/// under any fault, structured enough that inserts touch several SC
/// records.
fn list_src() -> String {
    let mut s = String::from("<list>");
    for _ in 0..20 {
        s.push_str("<item/>");
    }
    s.push_str("</list>");
    s
}

/// Drives parse → ordered build → insert → insert-parent → delete → query
/// and records every stage outcome (success shape or exact error text) plus
/// the final order assignment. Under an armed fault the interesting
/// property is that the fault fires at the same operation and leaves the
/// same state regardless of thread count; the trace captures both.
fn pipeline_trace() -> Vec<String> {
    let mut trace = Vec::new();
    let src = list_src();
    let mut tree = match parse(&src) {
        Ok(t) => t,
        Err(e) => {
            trace.push(format!("parse: {e}"));
            return trace;
        }
    };
    let mut doc = match OrderedPrimeDoc::build(&tree, 5) {
        Ok(d) => d,
        Err(e) => {
            trace.push(format!("build: {e}"));
            return trace;
        }
    };
    trace.push("built".to_string());

    let anchor = match tree.element_children(tree.root()).nth(1) {
        Some(n) => n,
        None => {
            trace.push("no anchor".to_string());
            return trace;
        }
    };
    match doc.insert_sibling_before(&mut tree, anchor, "item") {
        Ok(rep) => trace.push(format!("insert: order {}", doc.order_of(rep.node))),
        Err(e) => trace.push(format!("insert: {e}")),
    }
    match doc.insert_parent(&mut tree, anchor, "wrap") {
        Ok(rep) => trace.push(format!("wrap: order {}", doc.order_of(rep.node))),
        Err(e) => trace.push(format!("wrap: {e}")),
    }
    if let Some(victim) = tree.last_child(tree.root()) {
        match doc.delete(&mut tree, victim) {
            Ok(n) => trace.push(format!("delete: {n} relabeled")),
            Err(e) => trace.push(format!("delete: {e}")),
        }
    }

    // Orders of every surviving element, normalized by tag.
    let orders: BTreeSet<(String, u64)> = tree
        .elements()
        .filter_map(|n| {
            let tag = tree.tag(n)?.to_string();
            doc.try_order_of(n).ok().map(|o| (tag, o))
        })
        .collect();
    trace.push(format!("orders: {orders:?}"));

    match PrimeEvaluator::try_build(&tree, 5) {
        Ok(ev) => match Path::parse("//list/item") {
            Ok(path) => match ev.try_eval(&path) {
                Ok(nodes) => trace.push(format!("query: {} rows", nodes.len())),
                Err(e) => trace.push(format!("query: {e}")),
            },
            Err(e) => trace.push(format!("path: {e}")),
        },
        Err(e) => trace.push(format!("evaluator: {e}")),
    }
    trace
}

/// Under each armed fault site, the whole pipeline must behave identically
/// at every thread count: same stages succeed, the same stage fails with
/// the same error, and the surviving document carries the same orders.
/// Fault hit-counters are per thread, which is exactly why the parallel
/// paths that contain (or call through) fault points fall back to
/// sequential execution while a spec is armed — this test is the proof.
#[test]
fn fault_outcomes_are_thread_invariant() {
    let sites = [
        "parse.read:2",
        "bignum.mul:3",
        "sc.insert:1",
        "sc.insert.record:2",
        "sc.relabel:1",
        "sc.remove:1",
        "query.join:1",
    ];
    for spec in sites {
        let run = |threads: usize| {
            fault::arm(spec);
            let trace = xp_par::with_threads(threads, pipeline_trace);
            fault::reset();
            trace
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "{spec} diverged at {threads} threads");
        }
    }
    // Sanity: the unfaulted pipeline is also thread-invariant and reaches
    // the query stage.
    let clean = xp_par::with_threads(1, pipeline_trace);
    assert!(clean.iter().any(|s| s.starts_with("query:")), "clean run reached the query");
    for threads in [2, 8] {
        assert_eq!(xp_par::with_threads(threads, pipeline_trace), clean);
    }
}
