//! Differential property test: the stack-join batch evaluator must return
//! exactly what the naive per-context evaluator returns, on arbitrary trees
//! and every axis.

use xp_baselines::interval::IntervalScheme;
use xp_labelkit::Scheme;
use xp_query::engine::{eval_path_with, OrderOracle, Path};
use xp_query::relstore::LabelTable;
use xp_testkit::propcheck::{index, vec_of, Gen};
use xp_testkit::{prop_assert_eq, propcheck};
use xp_xmltree::{NodeId, XmlTree};

fn tree_strategy(max_nodes: usize) -> Gen<XmlTree> {
    vec_of(index(), 0..max_nodes).map(|attach| {
        let mut tree = XmlTree::new("t0");
        let mut nodes = vec![tree.root()];
        for (i, idx) in attach.into_iter().enumerate() {
            let parent = nodes[idx.index(nodes.len())];
            let child = tree.append_element(parent, format!("t{}", i % 4));
            nodes.push(child);
        }
        tree
    })
}

struct IntervalOracle<'a>(&'a LabelTable<xp_baselines::IntervalLabel>);

impl OrderOracle for IntervalOracle<'_> {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.label(node).order
    }
}

const PATHS: &[&str] = &[
    "//t0",
    "//t1",
    "/t0//t2",
    "//t1/t2",
    "//t0/following::t1",
    "//t2/preceding::t0",
    "//t1/following-sibling::t2",
    "//t2/preceding-sibling::t1",
    "//t3/parent::*",
    "//t3/ancestor::t0",
    "//t1/ancestor-or-self::*",
    "//*/t1",
    "//t0//t1//t2",
    "//t2/following::*",
    "//t0/preceding::*",
];

propcheck! {
    #![config(cases = 256)]

    #[test]
    fn batch_join_equals_naive_per_context(tree in tree_strategy(70)) {
        let doc = IntervalScheme::dense().label(&tree);
        let table = LabelTable::build(&tree, &doc);
        let oracle = IntervalOracle(&table);
        for path_str in PATHS {
            let path = Path::parse(path_str).unwrap();
            let fast = eval_path_with(&table, &oracle, &path, true);
            let slow = eval_path_with(&table, &oracle, &path, false);
            prop_assert_eq!(&fast, &slow, "{}", path_str);
        }
    }

    #[test]
    fn batch_join_equals_naive_with_positions_mixed_in(tree in tree_strategy(50)) {
        // Positional steps force the per-context fallback mid-path; the
        // batch steps around them must still agree.
        let doc = IntervalScheme::dense().label(&tree);
        let table = LabelTable::build(&tree, &doc);
        let oracle = IntervalOracle(&table);
        for path_str in ["//t0[2]/t1", "//t1/t2[1]/following::t3", "//t0[1]//t1//t2"] {
            let path = Path::parse(path_str).unwrap();
            let fast = eval_path_with(&table, &oracle, &path, true);
            let slow = eval_path_with(&table, &oracle, &path, false);
            prop_assert_eq!(&fast, &slow, "{}", path_str);
        }
    }
}
