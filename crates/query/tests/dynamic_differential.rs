//! Cross-scheme dynamic differential property test: random mutation
//! sequences run through [`LabeledStore`] for every scheme, and after each
//! mutation the incrementally-patched [`LabelTable`] must answer queries on
//! all nine axes exactly like a table rebuilt from a from-scratch
//! relabeling of the mutated tree — the oracle that cannot be wrong about
//! what the labels should say.
//!
//! The final `dynamic_env_matrix` test is the CI hook: with
//! `XP_FAULT=<site>:<n>` armed, the same mutation pipeline must never
//! panic, and whatever state survives must still satisfy the structural
//! label contract.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xp_baselines::{
    DeweyScheme, FloatIntervalScheme, IntervalScheme, Prefix1Scheme, Prefix2Scheme,
};
use xp_labelkit::{DynamicScheme, InsertPos, LabelOps, LabeledStore, RelabelReport};
use xp_prime::DynamicPrime;
use xp_query::engine::{eval_path, OrderOracle, Path};
use xp_query::relstore::LabelTable;
use xp_testkit::propcheck::{usizes, vec_of, Gen};
use xp_testkit::{fault, prop_assert, propcheck};
use xp_xmltree::{parse, NodeId, XmlTree};

/// Random tree over tags `t0..t3` (root `t0`), like the join tests use.
fn tree_strategy(max_nodes: usize) -> Gen<XmlTree> {
    vec_of(usizes(0..1 << 16), 0..max_nodes).map(|attach| {
        let mut tree = XmlTree::new("t0");
        let mut nodes = vec![tree.root()];
        for (i, seed) in attach.into_iter().enumerate() {
            let parent = nodes[seed % nodes.len()];
            let child = tree.append_element(parent, format!("t{}", i % 4));
            nodes.push(child);
        }
        tree
    })
}

/// One query per axis the engine supports: child, descendant, parent,
/// ancestor, ancestor-or-self, following, preceding, following-sibling,
/// preceding-sibling — plus a positional step, which exercises the order
/// oracle.
const PATHS: &[&str] = &[
    "//t0/t1",
    "/t0//t2",
    "//t2/parent::*",
    "//t3/ancestor::t1",
    "//t1/ancestor-or-self::*",
    "//t0/following::t1",
    "//t2/preceding::t1",
    "//t1/following-sibling::t2",
    "//t2/preceding-sibling::t1",
    "//t1[2]",
];

/// Rank oracle from the tree's own document order.
struct TreeOrderOracle(HashMap<NodeId, u64>);

impl TreeOrderOracle {
    fn of(tree: &XmlTree) -> Self {
        TreeOrderOracle(tree.elements().enumerate().map(|(i, n)| (n, i as u64)).collect())
    }
}

impl OrderOracle for TreeOrderOracle {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.get(&node).copied().unwrap_or(u64::MAX)
    }
}

/// Picks the `pick`-th non-root element, if the document has one.
fn non_root(tree: &XmlTree, pick: usize) -> Option<NodeId> {
    let n = tree.elements().count();
    if n < 2 {
        return None;
    }
    tree.elements().nth(1 + pick % (n - 1))
}

/// Applies one seed-derived mutation through the store. Structural
/// rejections the driver can provoke on purpose (moving into the own
/// subtree) are skipped; everything else must succeed.
fn apply_random_op<S: DynamicScheme>(
    store: &mut LabeledStore<S>,
    seed: usize,
) -> Result<Option<RelabelReport>, String> {
    let n = store.tree().elements().count();
    let pick = seed / 8;
    let report = match seed % 8 {
        0 | 1 => match non_root(store.tree(), pick) {
            Some(anchor) => store.insert_before(anchor, "t1"),
            None => return Ok(None),
        },
        2 => {
            let frag = parse("<t1><t2/><t3/></t1>").map_err(|e| e.to_string())?;
            let pos = match non_root(store.tree(), pick) {
                Some(anchor) if pick % 2 == 0 => InsertPos::Before(anchor),
                _ => {
                    let parent = store.tree().elements().nth(pick % n).unwrap_or_else(|| {
                        store.tree().root()
                    });
                    InsertPos::LastChildOf(parent)
                }
            };
            store.insert_subtree(pos, &frag)
        }
        3 => match non_root(store.tree(), pick) {
            Some(target) => store.insert_parent(target, "t2"),
            None => return Ok(None),
        },
        4 | 5 => match (n >= 3).then(|| non_root(store.tree(), pick)).flatten() {
            Some(target) => store.delete(target),
            None => return Ok(None),
        },
        _ => {
            let (Some(target), Some(dest)) =
                (non_root(store.tree(), pick), non_root(store.tree(), pick / 3))
            else {
                return Ok(None);
            };
            let pos = if pick % 2 == 0 {
                InsertPos::Before(dest)
            } else {
                InsertPos::LastChildOf(dest)
            };
            match store.move_subtree(target, pos) {
                Err(xp_labelkit::DynamicError::MoveIntoSelf { .. }) => return Ok(None),
                other => other,
            }
        }
    };
    report.map(Some).map_err(|e| e.to_string())
}

/// Runs `ops` through one scheme's store, patching a `LabelTable`
/// incrementally, and diffs query answers against the from-scratch oracle
/// after every mutation. Returns the first divergence as an error.
fn check_scheme<S: DynamicScheme>(
    scheme: S,
    tree: &XmlTree,
    ops: &[usize],
) -> Result<(), String> {
    let name = scheme.name().to_string();
    let mut store =
        LabeledStore::build(scheme, tree.clone()).map_err(|e| format!("{name}: build: {e}"))?;
    let mut table = LabelTable::build(store.tree(), store.doc());

    for (step, &seed) in ops.iter().enumerate() {
        let ctx = |what: &str| format!("{name}, step {step} (seed {seed}): {what}");
        // Apply through the dynamic API and patch the table with the report.
        let report = match apply_random_op(&mut store, seed) {
            Ok(Some(report)) => report,
            Ok(None) => continue,
            Err(e) => return Err(ctx(&format!("mutation failed: {e}"))),
        };
        table.apply_report(store.tree(), store.doc(), &report);

        // Document order must match the tree's preorder for every scheme.
        let doc_order: Vec<NodeId> = store.tree().elements().collect();
        if store.ordered_nodes() != doc_order {
            return Err(ctx("ordered_nodes diverged from document order"));
        }

        // Oracle: a from-scratch relabeling of the mutated tree.
        let fresh = store.scheme().label(store.tree());
        let oracle_table = LabelTable::build(store.tree(), &fresh);
        let ranks = TreeOrderOracle::of(store.tree());
        for path_str in PATHS {
            let path = Path::parse(path_str).map_err(|e| ctx(&e.to_string()))?;
            let patched = eval_path(&table, &ranks, &path)
                .map_err(|e| ctx(&format!("{path_str}: {e}")))?;
            let expected = eval_path(&oracle_table, &ranks, &path)
                .map_err(|e| ctx(&format!("{path_str} (oracle): {e}")))?;
            if patched != expected {
                return Err(ctx(&format!(
                    "{path_str}: patched {patched:?} vs oracle {expected:?}"
                )));
            }
        }
    }

    // The named oracle API must agree that nothing more needs fixing:
    // re-deriving every label from scratch and diffing against the store's
    // current doc may only report differences the scheme is allowed to
    // have (gap-consuming schemes keep non-canonical labels), but after
    // applying it the store must still answer identically.
    let snapshot: Vec<NodeId> = store.ordered_nodes();
    store.relabel_from_scratch().map_err(|e| format!("{name}: relabel_from_scratch: {e}"))?;
    if store.ordered_nodes() != snapshot {
        return Err(format!("{name}: relabel_from_scratch changed document order"));
    }
    Ok(())
}

propcheck! {
    #![config(cases = 40)]

    /// Every scheme, same random tree and mutation script: incremental
    /// stores + patched tables answer all nine axes like the oracle.
    #[test]
    fn all_schemes_agree_with_relabel_oracle(
        tree in tree_strategy(24),
        ops in vec_of(usizes(0..1 << 12), 1..7),
    ) {
        let outcomes = [
            check_scheme(DynamicPrime::new(3), &tree, &ops),
            check_scheme(IntervalScheme::dense(), &tree, &ops),
            check_scheme(IntervalScheme::with_gap(8), &tree, &ops),
            check_scheme(FloatIntervalScheme, &tree, &ops),
            check_scheme(Prefix1Scheme, &tree, &ops),
            check_scheme(Prefix2Scheme, &tree, &ops),
            check_scheme(DeweyScheme, &tree, &ops),
        ];
        for outcome in outcomes {
            prop_assert!(outcome.is_ok(), "{}", outcome.err().unwrap_or_default());
        }
    }
}

/// Structural contract every surviving store must satisfy, faulted or not:
/// label-based ancestor answers equal tree structure for every pair.
fn assert_labels_match_structure<S: DynamicScheme>(store: &LabeledStore<S>) {
    let nodes: Vec<NodeId> = store.tree().elements().collect();
    for &x in &nodes {
        for &y in &nodes {
            assert_eq!(
                store.doc().label(x).is_ancestor_of(store.doc().label(y)),
                store.tree().is_ancestor(x, y),
                "ancestor({x},{y}) disagrees with the tree"
            );
        }
    }
}

/// CI matrix entry point: with `XP_FAULT=<site>:<trigger>` armed, drive the
/// dynamic store through the whole mutation repertoire and assert nothing
/// panics; failed mutations must leave the store's labels consistent with
/// its tree. Without `XP_FAULT` this is a no-op (the propcheck test above
/// covers unarmed behavior).
#[test]
fn dynamic_env_matrix() {
    if std::env::var("XP_FAULT").is_err() {
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let Ok(tree) = parse("<t0><t1><t2/><t3/></t1><t2/><t1><t3/></t1></t0>") else {
            return;
        };
        let Ok(mut store) = LabeledStore::build(DynamicPrime::new(2), tree) else {
            return;
        };
        for seed in [0usize, 9, 2, 18, 3, 12, 6, 27, 35] {
            let _ = apply_random_op(&mut store, seed);
            assert_labels_match_structure(&store);
        }
    }));
    fault::reset();
    assert!(outcome.is_ok(), "dynamic pipeline panicked under XP_FAULT");
}
