//! Per-site fault-injection regressions: every `faultpoint!` compiled into
//! the pipeline is armed with an nth-hit trigger, the failure must surface
//! as the crate's typed error (never a panic), and the store must stay
//! queryable afterwards — rolled back or recovered, with answers matching a
//! never-faulted oracle.
//!
//! The final `env_matrix` test is the CI hook: `scripts/ci.sh` runs it once
//! per site with `XP_FAULT=<site>:1`, driving the whole pipeline under
//! `catch_unwind` to prove no armed site can panic it.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xp_prime::ordered::OrderedPrimeDoc;
use xp_prime::sc::{ScError, ScTable};
use xp_prime::Error;
use xp_query::engine::{eval_path, OrderOracle, Path, QueryError};
use xp_query::evaluators::{Evaluator, PrimeEvaluator};
use xp_query::relstore::LabelTable;
use xp_testkit::fault;
use xp_testkit::propcheck::{u64s, usizes, vec_of};
use xp_testkit::{prop_assert, propcheck};
use xp_xmltree::{parse, NodeId, ParseErrorKind, XmlTree};

/// A flat 20-item list: with `chunk_capacity = 5` the SC table has four
/// records, so a single insertion can touch several records — room for a
/// fault to land mid-update, after some records changed but not all.
fn list_src() -> String {
    let mut s = String::from("<list>");
    for _ in 0..20 {
        s.push_str("<item/>");
    }
    s.push_str("</list>");
    s
}

fn build(src: &str) -> (XmlTree, OrderedPrimeDoc) {
    let tree = parse(src).unwrap();
    let doc = OrderedPrimeDoc::build(&tree, 5).unwrap();
    (tree, doc)
}

/// Order oracle backed by the document's own SC table.
struct DocOracle<'a>(&'a OrderedPrimeDoc);

impl OrderOracle for DocOracle<'_> {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.order_of(node)
    }
}

/// A query answer normalized for cross-document comparison: node ids differ
/// between a faulted document (whose arena also allocated the aborted
/// node) and the oracle, so results are compared as `(tag, order)` sets.
fn answer_keys(tree: &XmlTree, doc: &OrderedPrimeDoc, query: &str) -> BTreeSet<(String, u64)> {
    let table = LabelTable::build(tree, doc.labels());
    let path = Path::parse(query).unwrap();
    let nodes = eval_path(&table, &DocOracle(doc), &path).unwrap();
    nodes
        .into_iter()
        .map(|n| (tree.tag(n).unwrap().to_string(), doc.order_of(n)))
        .collect()
}

#[test]
fn parse_read_fault_surfaces_as_typed_parse_error() {
    fault::arm("parse.read:3");
    let err = parse(&list_src()).unwrap_err();
    fault::reset();
    assert!(
        matches!(err.kind, ParseErrorKind::FaultInjected("parse.read")),
        "got {err}"
    );
    assert!(parse(&list_src()).is_ok(), "disarmed parse succeeds");
}

#[test]
fn bignum_mul_fault_fails_the_build_with_a_typed_error() {
    let tree = parse(&list_src()).unwrap();
    fault::arm("bignum.mul:4");
    let err = OrderedPrimeDoc::build(&tree, 5).unwrap_err();
    fault::reset();
    assert_eq!(err, Error::Sc(ScError::FaultInjected("bignum.mul")), "got {err}");
    assert!(OrderedPrimeDoc::build(&tree, 5).is_ok(), "disarmed build succeeds");
}

#[test]
fn sc_insert_fault_leaves_every_existing_order_intact() {
    let (mut tree, mut doc) = build(&list_src());
    let originals: Vec<NodeId> = tree.elements().collect();
    let before: Vec<u64> = originals.iter().map(|&n| doc.order_of(n)).collect();

    let anchor = tree.last_child(tree.root()).unwrap();
    fault::arm("sc.insert:1");
    let err = doc.insert_sibling_before(&mut tree, anchor, "item").unwrap_err();
    fault::reset();

    assert_eq!(err, Error::Sc(ScError::FaultInjected("sc.insert")), "got {err}");
    assert!(!doc.sc_table().needs_recovery(), "fault fired before any record changed");
    for (&n, &o) in originals.iter().zip(&before) {
        assert_eq!(doc.order_of(n), o, "order of {n} drifted");
    }

    // The aborted insert left a labeled-but-orderless node in the tree;
    // delete it and retry — the store was never corrupted.
    let orphan = tree.elements().find(|n| !originals.contains(n)).unwrap();
    doc.delete(&mut tree, orphan).unwrap();
    doc.insert_sibling_before(&mut tree, anchor, "item").unwrap();
    doc.verify_order_consistency(&tree);
}

#[test]
fn sc_insert_record_fault_mid_update_rolls_back_and_matches_oracle() {
    // Two identical documents: arena node ids are deterministic, so the
    // faulted document and the never-faulted oracle agree node-for-node.
    let src = list_src();
    let (mut tree, mut doc) = build(&src);
    let (mut otree, mut oracle) = build(&src);
    let originals: Vec<NodeId> = tree.elements().collect();
    assert_eq!(originals, otree.elements().collect::<Vec<_>>());

    // Insert near the front so the update must re-solve several records,
    // and fault the SECOND record re-solve: the first record's change is
    // journaled and must be rolled back.
    let anchor = tree.element_children(tree.root()).nth(1).unwrap();
    fault::arm("sc.insert.record:2");
    let err = doc.insert_sibling_before(&mut tree, anchor, "item").unwrap_err();
    fault::reset();
    assert_eq!(err, Error::Sc(ScError::FaultInjected("sc.insert.record")), "got {err}");
    assert!(!doc.sc_table().needs_recovery(), "mutation entry already rolled back");

    // Differential check #1: every pre-existing node answers exactly as the
    // untouched oracle does.
    for &n in &originals {
        assert_eq!(doc.try_order_of(n).unwrap(), oracle.order_of(n), "order of {n} diverged");
    }

    // Drop the aborted node, then replay the identical insertion on both
    // documents — recovery must leave the store able to continue.
    let orphan = tree.elements().find(|n| !originals.contains(n)).unwrap();
    doc.delete(&mut tree, orphan).unwrap();
    let report = doc.insert_sibling_before(&mut tree, anchor, "item").unwrap();
    let oreport = oracle.insert_sibling_before(&mut otree, anchor, "item").unwrap();
    assert_eq!(doc.order_of(report.node), oracle.order_of(oreport.node));
    for &n in &originals {
        assert_eq!(doc.order_of(n), oracle.order_of(n), "post-replay order of {n} diverged");
    }
    doc.verify_order_consistency(&tree);

    // Differential check #2: query answers through the relational engine
    // match the oracle's for both structural and order-sensitive paths.
    for query in ["//item", "/list/item", "//item/following-sibling::item"] {
        assert_eq!(
            answer_keys(&tree, &doc, query),
            answer_keys(&otree, &oracle, query),
            "{query} diverged after recovery"
        );
    }
}

#[test]
fn sc_remove_fault_keeps_the_remaining_nodes_queryable() {
    let (mut tree, mut doc) = build(&list_src());
    let originals: Vec<NodeId> = tree.elements().collect();
    let victim = tree.element_children(tree.root()).nth(3).unwrap();
    let survivors: Vec<(NodeId, u64)> = originals
        .iter()
        .filter(|&&n| n != victim)
        .map(|&n| (n, doc.order_of(n)))
        .collect();

    fault::arm("sc.remove:1");
    let err = doc.delete(&mut tree, victim).unwrap_err();
    fault::reset();
    assert_eq!(err, Error::Sc(ScError::FaultInjected("sc.remove")), "got {err}");
    assert!(!doc.sc_table().needs_recovery(), "delete's error path recovers the table");
    for &(n, o) in &survivors {
        assert_eq!(doc.try_order_of(n).unwrap(), o, "order of {n} drifted");
    }
}

#[test]
fn sc_relabel_fault_rolls_the_table_back() {
    let items: Vec<(u64, u64)> = [2u64, 3, 5, 7, 11, 13]
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64 + 1))
        .collect();
    let mut table = ScTable::build(3, &items).unwrap();

    fault::arm("sc.relabel:1");
    let err = table.replace_self_label(5, 17).unwrap_err();
    fault::reset();
    assert_eq!(err, ScError::FaultInjected("sc.relabel"), "got {err}");
    table.recover();
    for &(m, o) in &items {
        assert_eq!(table.order_of(m), Some(o), "member {m} lost its order");
    }
    assert_eq!(table.order_of(17), None, "aborted relabel left no trace");
}

#[test]
fn query_join_fault_surfaces_as_a_typed_query_error() {
    let tree = parse(&list_src()).unwrap();
    let ev = PrimeEvaluator::try_build(&tree, 5).unwrap();
    // Two steps so evaluation reaches the structural join (a single-step
    // path is answered by the tag scan alone).
    let path = Path::parse("//list/item").unwrap();

    fault::arm("query.join:1");
    let err = ev.try_eval(&path).unwrap_err();
    fault::reset();
    assert_eq!(err, QueryError::FaultInjected("query.join"), "got {err}");
    assert_eq!(ev.try_eval(&path).unwrap().len(), 20, "disarmed query succeeds");
}

/// First point of divergence between two SC tables, or `None` when they are
/// indistinguishable record-for-record: same members, cached order columns,
/// SC values, modulus products, CRT bases, and locator assignments. This is
/// deliberately stronger than answer equality — the incremental maintenance
/// paths (delta shifts, basis re-targeting) must land on byte-identical
/// state, not merely equivalent answers.
fn table_mismatch(a: &ScTable, b: &ScTable) -> Option<String> {
    if a.record_count() != b.record_count() {
        return Some(format!("{} records vs {}", a.record_count(), b.record_count()));
    }
    for (i, (ra, rb)) in a.records().iter().zip(b.records()).enumerate() {
        if ra.members() != rb.members() {
            return Some(format!("record {i}: members {:?} vs {:?}", ra.members(), rb.members()));
        }
        if ra.cached_orders() != rb.cached_orders() {
            return Some(format!(
                "record {i}: orders {:?} vs {:?}",
                ra.cached_orders(),
                rb.cached_orders()
            ));
        }
        if ra.sc() != rb.sc() {
            return Some(format!("record {i}: SC {} vs {}", ra.sc(), rb.sc()));
        }
        if ra.product() != rb.product() {
            return Some(format!("record {i}: product {} vs {}", ra.product(), rb.product()));
        }
        if ra.basis() != rb.basis() {
            return Some(format!("record {i}: CRT bases differ"));
        }
        if ra.max_self_label() != rb.max_self_label() {
            return Some(format!("record {i}: max keys differ"));
        }
    }
    for r in a.records() {
        for &m in r.members() {
            if a.locate(m) != b.locate(m) {
                return Some(format!("locator for {m}: {:?} vs {:?}", a.locate(m), b.locate(m)));
            }
        }
    }
    None
}

propcheck! {
    #![config(cases = 64)]

    /// A table grown one `insert` at a time must be record-for-record equal
    /// to `ScTable::build` over the final item set: the incremental path
    /// (cached orders, delta SC updates, basis re-targeting, `crt::extend`)
    /// may not drift from batch construction in any column.
    #[test]
    fn grown_table_equals_batch_built_table(
        cap in usizes(1..8),
        base in usizes(0..24),
        insert_seeds in vec_of(u64s(0..1_000_000), 1..12),
    ) {
        // Primes from the 21st on: every label exceeds 73, far above any
        // order this scenario can reach (≤ 35), so no insert can overflow.
        let pool = xp_primes::first_primes(60);
        let labels = &pool[20..];
        let base_items: Vec<(u64, u64)> =
            labels[..base].iter().enumerate().map(|(i, &p)| (p, i as u64 + 1)).collect();
        let mut grown = ScTable::build(cap, &base_items).unwrap();

        // doc_order holds labels by document position; an insert at
        // position p gives the new node order p+1 and shifts the rest.
        let mut doc_order: Vec<u64> = labels[..base].to_vec();
        let mut arrival: Vec<u64> = doc_order.clone();
        for (k, &seed) in insert_seeds.iter().enumerate() {
            let label = labels[base + k];
            let pos = (seed as usize) % (doc_order.len() + 1);
            grown.insert(label, pos as u64 + 1).unwrap();
            doc_order.insert(pos, label);
            arrival.push(label);
        }

        // Batch oracle: same arrival order (insert always appends to the
        // newest record, mirroring build's chunking), final shifted orders.
        let built_items: Vec<(u64, u64)> = arrival
            .iter()
            .map(|&l| {
                let pos = doc_order.iter().position(|&x| x == l).unwrap();
                (l, pos as u64 + 1)
            })
            .collect();
        let built = ScTable::build(cap, &built_items).unwrap();

        let mismatch = table_mismatch(&grown, &built);
        prop_assert!(mismatch.is_none(), "grown vs built: {}", mismatch.unwrap_or_default());
        let columns = grown.check_cached_columns();
        prop_assert!(columns.is_ok(), "{}", columns.err().unwrap_or_default());
    }

    /// A fault injected mid-insert must roll the table back to a state
    /// indistinguishable from the pre-insert snapshot — including the
    /// cached order columns and CRT bases the journal carries — and leave
    /// the table able to replay the identical insert.
    #[test]
    fn recovery_restores_cached_columns_and_bases(
        cap in usizes(1..6),
        base in usizes(4..20),
        seed in u64s(0..1_000_000),
        trigger in usizes(1..4),
    ) {
        let pool = xp_primes::first_primes(40);
        let labels = &pool[12..];
        let base_items: Vec<(u64, u64)> =
            labels[..base].iter().enumerate().map(|(i, &p)| (p, i as u64 + 1)).collect();
        let mut table = ScTable::build(cap, &base_items).unwrap();
        let snapshot = table.clone();

        let label = labels[base];
        let pos = (seed as usize) % (base + 1);
        let order = pos as u64 + 1;
        fault::arm(&format!("sc.insert.record:{trigger}"));
        let outcome = table.insert(label, order);
        fault::reset();
        match outcome {
            Err(ScError::FaultInjected("sc.insert.record")) => {
                prop_assert!(table.needs_recovery(), "failed insert leaves the journal open");
                prop_assert!(table.recover());
                let mismatch = table_mismatch(&table, &snapshot);
                prop_assert!(
                    mismatch.is_none(),
                    "rollback drifted from the snapshot: {}",
                    mismatch.unwrap_or_default()
                );
            }
            // The insert touched fewer records than the trigger count, so
            // the fault never fired and the mutation simply succeeded.
            Ok(_) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
        // Either way the table must be consistent and accept the insert.
        if table.order_of(label).is_none() {
            table.insert(label, order).unwrap();
        }
        let columns = table.check_cached_columns();
        prop_assert!(columns.is_ok(), "{}", columns.err().unwrap_or_default());
    }
}

/// CI matrix entry point: with `XP_FAULT=<site>:<trigger>` in the
/// environment, drives parse → label → ordered build → insert → delete →
/// query and asserts nothing panics — injected failures must surface as
/// typed errors at whatever stage they land. Without `XP_FAULT` the test is
/// a no-op (the per-site tests above cover the unarmed behavior).
#[test]
fn env_matrix() {
    if std::env::var("XP_FAULT").is_err() {
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let src = list_src();
        let Ok(mut tree) = parse(&src) else { return };
        let Ok(mut doc) = OrderedPrimeDoc::build(&tree, 5) else { return };
        let anchor = tree.element_children(tree.root()).nth(1).unwrap();
        let _ = doc.insert_sibling_before(&mut tree, anchor, "item");
        let victim = tree.last_child(tree.root()).unwrap();
        let _ = doc.delete(&mut tree, victim);
        if let Ok(ev) = PrimeEvaluator::try_build(&tree, 5) {
            let _ = ev.try_eval(&Path::parse("//list/item").unwrap());
        }
    }));
    assert!(outcome.is_ok(), "pipeline panicked under XP_FAULT");
}
