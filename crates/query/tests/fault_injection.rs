//! Per-site fault-injection regressions: every `faultpoint!` compiled into
//! the pipeline is armed with an nth-hit trigger, the failure must surface
//! as the crate's typed error (never a panic), and the store must stay
//! queryable afterwards — rolled back or recovered, with answers matching a
//! never-faulted oracle.
//!
//! The final `env_matrix` test is the CI hook: `scripts/ci.sh` runs it once
//! per site with `XP_FAULT=<site>:1`, driving the whole pipeline under
//! `catch_unwind` to prove no armed site can panic it.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xp_prime::ordered::OrderedPrimeDoc;
use xp_prime::sc::{ScError, ScTable};
use xp_prime::Error;
use xp_query::engine::{eval_path, OrderOracle, Path, QueryError};
use xp_query::evaluators::{Evaluator, PrimeEvaluator};
use xp_query::relstore::LabelTable;
use xp_testkit::fault;
use xp_xmltree::{parse, NodeId, ParseErrorKind, XmlTree};

/// A flat 20-item list: with `chunk_capacity = 5` the SC table has four
/// records, so a single insertion can touch several records — room for a
/// fault to land mid-update, after some records changed but not all.
fn list_src() -> String {
    let mut s = String::from("<list>");
    for _ in 0..20 {
        s.push_str("<item/>");
    }
    s.push_str("</list>");
    s
}

fn build(src: &str) -> (XmlTree, OrderedPrimeDoc) {
    let tree = parse(src).unwrap();
    let doc = OrderedPrimeDoc::build(&tree, 5).unwrap();
    (tree, doc)
}

/// Order oracle backed by the document's own SC table.
struct DocOracle<'a>(&'a OrderedPrimeDoc);

impl OrderOracle for DocOracle<'_> {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.order_of(node)
    }
}

/// A query answer normalized for cross-document comparison: node ids differ
/// between a faulted document (whose arena also allocated the aborted
/// node) and the oracle, so results are compared as `(tag, order)` sets.
fn answer_keys(tree: &XmlTree, doc: &OrderedPrimeDoc, query: &str) -> BTreeSet<(String, u64)> {
    let table = LabelTable::build(tree, doc.labels());
    let path = Path::parse(query).unwrap();
    let nodes = eval_path(&table, &DocOracle(doc), &path).unwrap();
    nodes
        .into_iter()
        .map(|n| (tree.tag(n).unwrap().to_string(), doc.order_of(n)))
        .collect()
}

#[test]
fn parse_read_fault_surfaces_as_typed_parse_error() {
    fault::arm("parse.read:3");
    let err = parse(&list_src()).unwrap_err();
    fault::reset();
    assert!(
        matches!(err.kind, ParseErrorKind::FaultInjected("parse.read")),
        "got {err}"
    );
    assert!(parse(&list_src()).is_ok(), "disarmed parse succeeds");
}

#[test]
fn bignum_mul_fault_fails_the_build_with_a_typed_error() {
    let tree = parse(&list_src()).unwrap();
    fault::arm("bignum.mul:4");
    let err = OrderedPrimeDoc::build(&tree, 5).unwrap_err();
    fault::reset();
    assert_eq!(err, Error::Sc(ScError::FaultInjected("bignum.mul")), "got {err}");
    assert!(OrderedPrimeDoc::build(&tree, 5).is_ok(), "disarmed build succeeds");
}

#[test]
fn sc_insert_fault_leaves_every_existing_order_intact() {
    let (mut tree, mut doc) = build(&list_src());
    let originals: Vec<NodeId> = tree.elements().collect();
    let before: Vec<u64> = originals.iter().map(|&n| doc.order_of(n)).collect();

    let anchor = tree.last_child(tree.root()).unwrap();
    fault::arm("sc.insert:1");
    let err = doc.insert_sibling_before(&mut tree, anchor, "item").unwrap_err();
    fault::reset();

    assert_eq!(err, Error::Sc(ScError::FaultInjected("sc.insert")), "got {err}");
    assert!(!doc.sc_table().needs_recovery(), "fault fired before any record changed");
    for (&n, &o) in originals.iter().zip(&before) {
        assert_eq!(doc.order_of(n), o, "order of {n} drifted");
    }

    // The aborted insert left a labeled-but-orderless node in the tree;
    // delete it and retry — the store was never corrupted.
    let orphan = tree.elements().find(|n| !originals.contains(n)).unwrap();
    doc.delete(&mut tree, orphan).unwrap();
    doc.insert_sibling_before(&mut tree, anchor, "item").unwrap();
    doc.verify_order_consistency(&tree);
}

#[test]
fn sc_insert_record_fault_mid_update_rolls_back_and_matches_oracle() {
    // Two identical documents: arena node ids are deterministic, so the
    // faulted document and the never-faulted oracle agree node-for-node.
    let src = list_src();
    let (mut tree, mut doc) = build(&src);
    let (mut otree, mut oracle) = build(&src);
    let originals: Vec<NodeId> = tree.elements().collect();
    assert_eq!(originals, otree.elements().collect::<Vec<_>>());

    // Insert near the front so the update must re-solve several records,
    // and fault the SECOND record re-solve: the first record's change is
    // journaled and must be rolled back.
    let anchor = tree.element_children(tree.root()).nth(1).unwrap();
    fault::arm("sc.insert.record:2");
    let err = doc.insert_sibling_before(&mut tree, anchor, "item").unwrap_err();
    fault::reset();
    assert_eq!(err, Error::Sc(ScError::FaultInjected("sc.insert.record")), "got {err}");
    assert!(!doc.sc_table().needs_recovery(), "mutation entry already rolled back");

    // Differential check #1: every pre-existing node answers exactly as the
    // untouched oracle does.
    for &n in &originals {
        assert_eq!(doc.try_order_of(n).unwrap(), oracle.order_of(n), "order of {n} diverged");
    }

    // Drop the aborted node, then replay the identical insertion on both
    // documents — recovery must leave the store able to continue.
    let orphan = tree.elements().find(|n| !originals.contains(n)).unwrap();
    doc.delete(&mut tree, orphan).unwrap();
    let report = doc.insert_sibling_before(&mut tree, anchor, "item").unwrap();
    let oreport = oracle.insert_sibling_before(&mut otree, anchor, "item").unwrap();
    assert_eq!(doc.order_of(report.node), oracle.order_of(oreport.node));
    for &n in &originals {
        assert_eq!(doc.order_of(n), oracle.order_of(n), "post-replay order of {n} diverged");
    }
    doc.verify_order_consistency(&tree);

    // Differential check #2: query answers through the relational engine
    // match the oracle's for both structural and order-sensitive paths.
    for query in ["//item", "/list/item", "//item/following-sibling::item"] {
        assert_eq!(
            answer_keys(&tree, &doc, query),
            answer_keys(&otree, &oracle, query),
            "{query} diverged after recovery"
        );
    }
}

#[test]
fn sc_remove_fault_keeps_the_remaining_nodes_queryable() {
    let (mut tree, mut doc) = build(&list_src());
    let originals: Vec<NodeId> = tree.elements().collect();
    let victim = tree.element_children(tree.root()).nth(3).unwrap();
    let survivors: Vec<(NodeId, u64)> = originals
        .iter()
        .filter(|&&n| n != victim)
        .map(|&n| (n, doc.order_of(n)))
        .collect();

    fault::arm("sc.remove:1");
    let err = doc.delete(&mut tree, victim).unwrap_err();
    fault::reset();
    assert_eq!(err, Error::Sc(ScError::FaultInjected("sc.remove")), "got {err}");
    assert!(!doc.sc_table().needs_recovery(), "delete's error path recovers the table");
    for &(n, o) in &survivors {
        assert_eq!(doc.try_order_of(n).unwrap(), o, "order of {n} drifted");
    }
}

#[test]
fn sc_relabel_fault_rolls_the_table_back() {
    let items: Vec<(u64, u64)> = [2u64, 3, 5, 7, 11, 13]
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64 + 1))
        .collect();
    let mut table = ScTable::build(3, &items).unwrap();

    fault::arm("sc.relabel:1");
    let err = table.replace_self_label(5, 17).unwrap_err();
    fault::reset();
    assert_eq!(err, ScError::FaultInjected("sc.relabel"), "got {err}");
    table.recover();
    for &(m, o) in &items {
        assert_eq!(table.order_of(m), Some(o), "member {m} lost its order");
    }
    assert_eq!(table.order_of(17), None, "aborted relabel left no trace");
}

#[test]
fn query_join_fault_surfaces_as_a_typed_query_error() {
    let tree = parse(&list_src()).unwrap();
    let ev = PrimeEvaluator::try_build(&tree, 5).unwrap();
    // Two steps so evaluation reaches the structural join (a single-step
    // path is answered by the tag scan alone).
    let path = Path::parse("//list/item").unwrap();

    fault::arm("query.join:1");
    let err = ev.try_eval(&path).unwrap_err();
    fault::reset();
    assert_eq!(err, QueryError::FaultInjected("query.join"), "got {err}");
    assert_eq!(ev.try_eval(&path).unwrap().len(), 20, "disarmed query succeeds");
}

/// CI matrix entry point: with `XP_FAULT=<site>:<trigger>` in the
/// environment, drives parse → label → ordered build → insert → delete →
/// query and asserts nothing panics — injected failures must surface as
/// typed errors at whatever stage they land. Without `XP_FAULT` the test is
/// a no-op (the per-site tests above cover the unarmed behavior).
#[test]
fn env_matrix() {
    if std::env::var("XP_FAULT").is_err() {
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let src = list_src();
        let Ok(mut tree) = parse(&src) else { return };
        let Ok(mut doc) = OrderedPrimeDoc::build(&tree, 5) else { return };
        let anchor = tree.element_children(tree.root()).nth(1).unwrap();
        let _ = doc.insert_sibling_before(&mut tree, anchor, "item");
        let victim = tree.last_child(tree.root()).unwrap();
        let _ = doc.delete(&mut tree, victim);
        if let Ok(ev) = PrimeEvaluator::try_build(&tree, 5) {
            let _ = ev.try_eval(&Path::parse("//list/item").unwrap());
        }
    }));
    assert!(outcome.is_ok(), "pipeline panicked under XP_FAULT");
}
