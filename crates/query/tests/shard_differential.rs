//! Sharded-document differential property test: random mutation scripts
//! run lockstep through a sharded prime store ([`ShardedPrime`]) and the
//! unsharded [`DynamicPrime`] oracle. After every mutation the per-shard
//! [`ShardedTables`] partitions — patched incrementally from the mutation's
//! report — compose into one table that must answer all nine query axes
//! (plus a positional step) byte-identically to a table over the unsharded
//! oracle's labels, at `XP_THREADS ∈ {1, 2, 8}`. A second property pins the
//! batch applier: `apply_batch_sharded` must leave the same tree, labels,
//! and document order as the per-mutation facade at every thread count.
//!
//! The final `shard_env_matrix` test is the CI hook: with
//! `XP_FAULT=<site>:<n>` armed, the sharded pipeline (per-op and batch,
//! which falls back to sequential per-shard application under faults) must
//! never panic, and whatever state survives must keep labels consistent
//! with the tree.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xp_labelkit::{
    apply_batch_sharded, InsertPos, LabelOps, LabeledStore, Mutation, ShardPolicy,
};
use xp_prime::{DynamicPrime, ShardedPrime};
use xp_query::engine::{eval_path, OrderOracle, Path};
use xp_query::relstore::LabelTable;
use xp_query::sharded::ShardedTables;
use xp_testkit::propcheck::{usizes, vec_of, Gen};
use xp_testkit::{fault, prop_assert, propcheck};
use xp_xmltree::{NodeId, XmlTree};

/// Random tree over tags `t0..t3` (root `t0`), like the join tests use.
fn tree_strategy(max_nodes: usize) -> Gen<XmlTree> {
    vec_of(usizes(0..1 << 16), 0..max_nodes).map(|attach| {
        let mut tree = XmlTree::new("t0");
        let mut nodes = vec![tree.root()];
        for (i, seed) in attach.into_iter().enumerate() {
            let parent = nodes[seed % nodes.len()];
            let child = tree.append_element(parent, format!("t{}", i % 4));
            nodes.push(child);
        }
        tree
    })
}

/// One query per axis the engine supports, plus a positional step.
const PATHS: &[&str] = &[
    "//t0/t1",
    "/t0//t2",
    "//t2/parent::*",
    "//t3/ancestor::t1",
    "//t1/ancestor-or-self::*",
    "//t0/following::t1",
    "//t2/preceding::t1",
    "//t1/following-sibling::t2",
    "//t2/preceding-sibling::t1",
    "//t1[2]",
];

/// Rank oracle from the tree's own document order.
struct TreeOrderOracle(HashMap<NodeId, u64>);

impl TreeOrderOracle {
    fn of(tree: &XmlTree) -> Self {
        TreeOrderOracle(tree.elements().enumerate().map(|(i, n)| (n, i as u64)).collect())
    }
}

impl OrderOracle for TreeOrderOracle {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.get(&node).copied().unwrap_or(u64::MAX)
    }
}

/// Picks the `pick`-th non-root element, if the document has one.
fn non_root(tree: &XmlTree, pick: usize) -> Option<NodeId> {
    let n = tree.elements().count();
    if n < 2 {
        return None;
    }
    tree.elements().nth(1 + pick % (n - 1))
}

/// Derives one typed mutation from a seed against the current tree, so the
/// identical `Mutation` value drives the sharded store, the unsharded
/// oracle, and the batch applier. Returns `None` when the tree is too small
/// for the drawn shape.
fn random_mutation(tree: &XmlTree, seed: usize) -> Option<Mutation> {
    let n = tree.elements().count();
    let pick = seed / 8;
    Some(match seed % 8 {
        0 | 1 => Mutation::InsertBefore { anchor: non_root(tree, pick)?, tag: "t1".into() },
        2 => {
            let pos = match non_root(tree, pick) {
                Some(anchor) if pick % 2 == 0 => InsertPos::Before(anchor),
                _ => InsertPos::LastChildOf(tree.elements().nth(pick % n)?),
            };
            Mutation::InsertSubtree { pos, xml: "<t1><t2/><t3/></t1>".into() }
        }
        3 => Mutation::InsertParent { target: non_root(tree, pick)?, tag: "t2".into() },
        4 | 5 => {
            if n < 3 {
                return None;
            }
            Mutation::Delete { target: non_root(tree, pick)? }
        }
        _ => {
            let target = non_root(tree, pick)?;
            let dest = non_root(tree, pick / 3)?;
            let pos = if pick % 2 == 0 {
                InsertPos::Before(dest)
            } else {
                InsertPos::LastChildOf(dest)
            };
            Mutation::MoveSubtree { target, pos }
        }
    })
}

/// Structural equality of two trees (tags + shape), independent of arenas.
fn signature(tree: &XmlTree) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut stack = vec![(tree.root(), 0usize)];
    while let Some((n, d)) = stack.pop() {
        out.push((d, tree.tag(n).unwrap_or("").to_string()));
        for c in tree.element_children(n).collect::<Vec<_>>().into_iter().rev() {
            stack.push((c, d + 1));
        }
    }
    out
}

/// Runs `ops` lockstep through a sharded store (cut depth `cut`) and the
/// unsharded oracle, patching the per-shard table partitions incrementally;
/// after every mutation the composed partitions must answer all paths
/// byte-identically to a table over the oracle's labels. Returns the first
/// divergence as an error.
fn check_sharded_vs_oracle(cut: usize, tree: &XmlTree, ops: &[usize]) -> Result<(), String> {
    let scheme = ShardedPrime::new(DynamicPrime::new(3), ShardPolicy::at_depth(cut));
    let mut s = LabeledStore::build(scheme, tree.clone())
        .map_err(|e| format!("sharded build: {e}"))?;
    let mut o = LabeledStore::build(DynamicPrime::new(3), tree.clone())
        .map_err(|e| format!("oracle build: {e}"))?;
    let mut tables: ShardedTables<xp_prime::PrimeLabel> = ShardedTables::build(&s);

    for (step, &seed) in ops.iter().enumerate() {
        let ctx = |what: &str| format!("cut {cut}, step {step} (seed {seed}): {what}");
        let Some(m) = random_mutation(o.tree(), seed) else { continue };
        let rs = s.apply(&m);
        let ro = o.apply(&m);
        if rs.is_ok() != ro.is_ok() {
            return Err(ctx(&format!("outcome split: {rs:?} vs {ro:?}")));
        }
        let (Ok(rs), Ok(ro)) = (rs, ro) else { continue };
        if rs.inserted != ro.inserted || rs.removed != ro.removed {
            return Err(ctx("inserted/removed diverged from the oracle"));
        }
        tables.apply_report(&s, &rs);

        // Arena lockstep and document order.
        if signature(s.tree()) != signature(o.tree()) {
            return Err(ctx("trees diverged"));
        }
        if s.ordered_nodes() != o.ordered_nodes() {
            return Err(ctx("document order diverged"));
        }

        // The incrementally-patched partitions must hold exactly what a
        // from-scratch partition build holds.
        let fresh: ShardedTables<xp_prime::PrimeLabel> = ShardedTables::build(&s);
        if fresh.partition_count() != tables.partition_count() || fresh.len() != tables.len() {
            return Err(ctx(&format!(
                "partitions drifted: patched {}p/{}r vs fresh {}p/{}r",
                tables.partition_count(),
                tables.len(),
                fresh.partition_count(),
                fresh.len()
            )));
        }
        for (sid, part) in fresh.partitions() {
            let patched = tables.partition(sid).ok_or_else(|| ctx(&format!("{sid} lost")))?;
            let mut a: Vec<NodeId> = part.rows().iter().map(|r| r.node).collect();
            let mut b: Vec<NodeId> = patched.rows().iter().map(|r| r.node).collect();
            a.sort();
            b.sort();
            if a != b {
                return Err(ctx(&format!("{sid} partition rows drifted")));
            }
        }

        // All nine axes + positional: composed partitions vs the oracle.
        let composed = tables.compose();
        let oracle_table = LabelTable::build(o.tree(), o.doc());
        let ranks = TreeOrderOracle::of(s.tree());
        for path_str in PATHS {
            let path = Path::parse(path_str).map_err(|e| ctx(&e.to_string()))?;
            let got = eval_path(&composed, &ranks, &path)
                .map_err(|e| ctx(&format!("{path_str}: {e}")))?;
            let expected = eval_path(&oracle_table, &ranks, &path)
                .map_err(|e| ctx(&format!("{path_str} (oracle): {e}")))?;
            if got != expected {
                return Err(ctx(&format!(
                    "{path_str}: sharded {got:?} vs oracle {expected:?}"
                )));
            }
        }
    }
    Ok(())
}

/// Applies each round of mutations as one batch to one sharded store and
/// one at a time to another; trees, labels, and document order must be
/// byte-identical afterwards.
fn check_batch_vs_facade(cut: usize, tree: &XmlTree, ops: &[usize]) -> Result<(), String> {
    let mk = || {
        LabeledStore::build(
            ShardedPrime::new(DynamicPrime::new(3), ShardPolicy::at_depth(cut)),
            tree.clone(),
        )
    };
    let mut batch = mk().map_err(|e| format!("build: {e}"))?;
    let mut facade = mk().map_err(|e| format!("build: {e}"))?;
    for chunk in ops.chunks(4) {
        let muts: Vec<Mutation> =
            chunk.iter().filter_map(|&seed| random_mutation(facade.tree(), seed)).collect();
        let br = apply_batch_sharded(&mut batch, &muts);
        let fr: Vec<_> = muts.iter().map(|m| facade.apply(m)).collect();
        for (k, (b, f)) in br.iter().zip(fr.iter()).enumerate() {
            if b.is_ok() != f.is_ok() {
                return Err(format!("cut {cut} op {k}: batch {b:?} vs facade {f:?}"));
            }
        }
        if signature(batch.tree()) != signature(facade.tree()) {
            return Err(format!("cut {cut}: batch tree diverged"));
        }
        for n in batch.tree().elements() {
            if batch.doc().get(n) != facade.doc().get(n) {
                return Err(format!("cut {cut}: label of {n:?} diverged"));
            }
        }
        if batch.ordered_nodes() != facade.ordered_nodes() {
            return Err(format!("cut {cut}: document order diverged"));
        }
    }
    Ok(())
}

propcheck! {
    #![config(cases = 24)]

    /// Sharded store + composed partitions answer every axis like the
    /// unsharded oracle, at every cut depth and thread count.
    #[test]
    fn sharded_answers_match_unsharded_oracle(
        tree in tree_strategy(24),
        ops in vec_of(usizes(0..1 << 12), 1..7),
    ) {
        for threads in [1usize, 2, 8] {
            for cut in [1usize, 2] {
                let outcome = xp_par::with_threads(
                    threads,
                    || check_sharded_vs_oracle(cut, &tree, &ops),
                );
                prop_assert!(
                    outcome.is_ok(),
                    "threads {}: {}",
                    threads,
                    outcome.err().unwrap_or_default()
                );
            }
        }
    }

    /// The parallel batch applier leaves the same document as the
    /// per-mutation facade, at every thread count.
    #[test]
    fn batch_apply_equals_facade(
        tree in tree_strategy(24),
        ops in vec_of(usizes(0..1 << 12), 1..9),
    ) {
        for threads in [1usize, 2, 8] {
            let outcome = xp_par::with_threads(
                threads,
                || check_batch_vs_facade(2, &tree, &ops),
            );
            prop_assert!(
                outcome.is_ok(),
                "threads {}: {}",
                threads,
                outcome.err().unwrap_or_default()
            );
        }
    }
}

/// Structural contract every surviving store must satisfy, faulted or not.
fn assert_labels_match_structure(store: &LabeledStore<ShardedPrime>) {
    let nodes: Vec<NodeId> = store.tree().elements().collect();
    for &x in &nodes {
        for &y in &nodes {
            assert_eq!(
                store.doc().label(x).is_ancestor_of(store.doc().label(y)),
                store.tree().is_ancestor(x, y),
                "ancestor({x},{y}) disagrees with the tree"
            );
        }
    }
}

/// CI matrix entry point: with `XP_FAULT=<site>:<trigger>` armed, drive the
/// sharded store through per-op mutations and a batch (which falls back to
/// sequential per-shard application under faults) and assert nothing
/// panics; failed mutations must leave labels consistent with the tree.
/// Without `XP_FAULT` this is a no-op.
#[test]
fn shard_env_matrix() {
    if std::env::var("XP_FAULT").is_err() {
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let Ok(tree) = xp_xmltree::parse(
            "<t0><t1><t2/><t3/></t1><t2/><t1><t3/><t2><t3/></t2></t1></t0>",
        ) else {
            return;
        };
        let scheme = ShardedPrime::new(DynamicPrime::new(2), ShardPolicy::at_depth(1));
        let Ok(mut store) = LabeledStore::build(scheme, tree) else {
            return;
        };
        for seed in [0usize, 9, 2, 18, 3, 12, 6, 27, 35] {
            if let Some(m) = random_mutation(store.tree(), seed) {
                let _ = store.apply(&m);
            }
            assert_labels_match_structure(&store);
        }
        let muts: Vec<Mutation> =
            [1usize, 10, 19, 4].iter().filter_map(|&s| random_mutation(store.tree(), s)).collect();
        let _ = apply_batch_sharded(&mut store, &muts);
        assert_labels_match_structure(&store);
    }));
    fault::reset();
    assert!(outcome.is_ok(), "sharded pipeline panicked under XP_FAULT");
}
