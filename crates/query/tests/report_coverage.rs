//! Report-coverage differential: every [`RelabelReport`] must *cover* the
//! real row delta of its mutation.
//!
//! The query-result cache (DESIGN.md §14) invalidates entries from the
//! tags of the nodes a report names, so an under-reporting scheme would
//! silently turn into stale cached answers: a node whose (tag, parent,
//! label) row changed but which no report list mentions is a row the cache
//! believes untouched. This test replays random mutation scripts through
//! every dynamic scheme in the workspace — the sharded composite included
//! — snapshots the full row set before and after each mutation, and
//! asserts the delta is contained in the report's membership lists:
//!
//! * a node present after but not before must be in `inserted`,
//! * a node present before but not after must be in `removed`,
//! * a surviving node whose label **or parent** changed must be in
//!   `inserted ∪ relabeled` (tags cannot change — there is no rename).
//!
//! Over-reporting (listing an untouched node) is deliberately allowed: it
//! costs cache precision, never correctness.

use std::collections::{HashMap, HashSet};
use xp_baselines::{
    DeweyScheme, FloatIntervalScheme, IntervalScheme, Prefix1Scheme, Prefix2Scheme,
};
use xp_labelkit::{
    DynamicScheme, InsertPos, LabeledStore, RelabelReport, ShardPolicy, ShardedScheme,
};
use xp_prime::DynamicPrime;
use xp_testkit::propcheck::{usizes, vec_of, Gen};
use xp_testkit::{prop_assert, propcheck};
use xp_xmltree::{parse, NodeId, XmlTree};

/// Random tree over tags `t0..t3` (root `t0`), the workspace's standard
/// differential-test shape.
fn tree_strategy(max_nodes: usize) -> Gen<XmlTree> {
    vec_of(usizes(0..1 << 16), 0..max_nodes).map(|attach| {
        let mut tree = XmlTree::new("t0");
        let mut nodes = vec![tree.root()];
        for (i, seed) in attach.into_iter().enumerate() {
            let parent = nodes[seed % nodes.len()];
            let child = tree.append_element(parent, format!("t{}", i % 4));
            nodes.push(child);
        }
        tree
    })
}

/// Picks the `pick`-th non-root element, if the document has one.
fn non_root(tree: &XmlTree, pick: usize) -> Option<NodeId> {
    let n = tree.elements().count();
    if n < 2 {
        return None;
    }
    tree.elements().nth(1 + pick % (n - 1))
}

/// Applies one seed-derived mutation (same dispatch as the dynamic
/// differential, so the two tests walk the same state space).
fn apply_random_op<S: DynamicScheme>(
    store: &mut LabeledStore<S>,
    seed: usize,
) -> Result<Option<RelabelReport>, String> {
    let n = store.tree().elements().count();
    let pick = seed / 8;
    let report = match seed % 8 {
        0 | 1 => match non_root(store.tree(), pick) {
            Some(anchor) => store.insert_before(anchor, "t1"),
            None => return Ok(None),
        },
        2 => {
            let frag = parse("<t1><t2/><t3/></t1>").map_err(|e| e.to_string())?;
            let pos = match non_root(store.tree(), pick) {
                Some(anchor) if pick % 2 == 0 => InsertPos::Before(anchor),
                _ => {
                    let parent = store
                        .tree()
                        .elements()
                        .nth(pick % n)
                        .unwrap_or_else(|| store.tree().root());
                    InsertPos::LastChildOf(parent)
                }
            };
            store.insert_subtree(pos, &frag)
        }
        3 => match non_root(store.tree(), pick) {
            Some(target) => store.insert_parent(target, "t2"),
            None => return Ok(None),
        },
        4 | 5 => match (n >= 3).then(|| non_root(store.tree(), pick)).flatten() {
            Some(target) => store.delete(target),
            None => return Ok(None),
        },
        _ => {
            let (Some(target), Some(dest)) =
                (non_root(store.tree(), pick), non_root(store.tree(), pick / 3))
            else {
                return Ok(None);
            };
            let pos = if pick % 2 == 0 {
                InsertPos::Before(dest)
            } else {
                InsertPos::LastChildOf(dest)
            };
            match store.move_subtree(target, pos) {
                Err(xp_labelkit::DynamicError::MoveIntoSelf { .. }) => return Ok(None),
                other => other,
            }
        }
    };
    report.map(Some).map_err(|e| e.to_string())
}

/// One live row: everything the relational query layer derives answers
/// from, per node.
type Row<L> = (String, Option<NodeId>, L);

fn rows<S: DynamicScheme>(store: &LabeledStore<S>) -> HashMap<NodeId, Row<S::Label>> {
    store
        .tree()
        .elements()
        .filter_map(|n| {
            let tag = store.tree().tag(n)?.to_owned();
            let label = store.doc().get(n)?.clone();
            Some((n, (tag, store.tree().parent(n), label)))
        })
        .collect()
}

/// Replays `ops` through one scheme and checks coverage after every
/// mutation. Returns the first violation as an error.
fn check_coverage<S: DynamicScheme>(
    scheme: S,
    tree: &XmlTree,
    ops: &[usize],
) -> Result<(), String> {
    let name = scheme.name().to_string();
    let mut store =
        LabeledStore::build(scheme, tree.clone()).map_err(|e| format!("{name}: build: {e}"))?;
    for (step, &seed) in ops.iter().enumerate() {
        let ctx = |what: String| format!("{name}, step {step} (seed {seed}): {what}");
        let before = rows(&store);
        let report = match apply_random_op(&mut store, seed) {
            Ok(Some(report)) => report,
            Ok(None) => continue,
            Err(e) => return Err(ctx(format!("mutation failed: {e}"))),
        };
        let after = rows(&store);

        let inserted: HashSet<NodeId> = report.inserted.iter().copied().collect();
        let relabeled: HashSet<NodeId> = report.relabeled.iter().copied().collect();
        let removed: HashSet<NodeId> = report.removed.iter().copied().collect();

        for (&node, row) in &after {
            match before.get(&node) {
                None => {
                    if !inserted.contains(&node) {
                        return Err(ctx(format!(
                            "node {node:?} appeared but the report's inserted list omits it"
                        )));
                    }
                }
                Some(old) if old != row => {
                    if !inserted.contains(&node) && !relabeled.contains(&node) {
                        return Err(ctx(format!(
                            "node {node:?} row changed ({old:?} -> {row:?}) but the report \
                             names it neither inserted nor relabeled"
                        )));
                    }
                }
                Some(_) => {}
            }
        }
        for &node in before.keys() {
            if !after.contains_key(&node) && !removed.contains(&node) {
                return Err(ctx(format!(
                    "node {node:?} vanished but the report's removed list omits it"
                )));
            }
        }
        // Light sanity on the lists themselves: the three sets are
        // documented disjoint, and inserted/removed must agree with
        // liveness. (Over-reporting in `relabeled` stays legal.)
        for &node in &inserted {
            if !after.contains_key(&node) {
                return Err(ctx(format!("report inserts {node:?}, which is not live after")));
            }
        }
        for &node in &removed {
            if after.contains_key(&node) {
                return Err(ctx(format!("report removes {node:?}, which is still live")));
            }
        }
        if inserted.intersection(&relabeled).next().is_some()
            || inserted.intersection(&removed).next().is_some()
            || relabeled.intersection(&removed).next().is_some()
        {
            return Err(ctx("report lists are not disjoint".to_owned()));
        }
    }
    Ok(())
}

propcheck! {
    #![config(cases = 40)]

    /// Every dynamic scheme, same random tree and mutation script: each
    /// report covers the true row delta of its mutation.
    #[test]
    fn reports_cover_the_row_delta(
        tree in tree_strategy(24),
        ops in vec_of(usizes(0..1 << 12), 1..7),
    ) {
        let outcomes = [
            check_coverage(DynamicPrime::new(3), &tree, &ops),
            check_coverage(IntervalScheme::dense(), &tree, &ops),
            check_coverage(IntervalScheme::with_gap(8), &tree, &ops),
            check_coverage(FloatIntervalScheme, &tree, &ops),
            check_coverage(Prefix1Scheme, &tree, &ops),
            check_coverage(Prefix2Scheme, &tree, &ops),
            check_coverage(DeweyScheme, &tree, &ops),
            check_coverage(
                ShardedScheme::new(DynamicPrime::new(3), ShardPolicy::at_depth(1)),
                &tree,
                &ops,
            ),
        ];
        for outcome in outcomes {
            prop_assert!(outcome.is_ok(), "{}", outcome.err().unwrap_or_default());
        }
    }
}
