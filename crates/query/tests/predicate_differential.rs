//! End-to-end predicate differential: the Barrett-reduced ancestor tester
//! against plain Knuth division, over the whole query pipeline.
//!
//! `PrimeLabel::ancestor_tester` answers the descendant axis and the
//! structural join with a precomputed Barrett context instead of a fresh
//! division per candidate. The contract is that this is invisible: the nine
//! Figure 15 queries must return byte-identical node sets, and every node's
//! order number (`SC mod self-label`) must agree between the word-reducer
//! and plain-division paths — at one worker thread and at eight, and with
//! the `bignum.mul` fault site armed (typed errors, never panics, never a
//! wrong answer).

use std::panic::{catch_unwind, AssertUnwindSafe};
use xp_bignum::reduce::Reducer64;
use xp_datagen::shakespeare::{PlayParams, ShakespeareCorpus};
use xp_labelkit::LabelOps;
use xp_prime::PrimeLabel;
use xp_query::engine::{eval_path, OrderOracle, Path};
use xp_query::evaluators::{Evaluator, PrimeEvaluator};
use xp_query::queries::TEST_QUERIES;
use xp_query::relstore::LabelTable;
use xp_testkit::fault;
use xp_xmltree::{NodeId, XmlTree};

/// A prime label that refuses the Barrett shortcut: every structural
/// predicate goes through `PrimeLabel::is_ancestor_of`'s full division
/// because the default `ancestor_tester` (plain delegation) is kept.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlainDivisionLabel(PrimeLabel);

impl LabelOps for PlainDivisionLabel {
    fn is_ancestor_of(&self, other: &Self) -> bool {
        self.0.is_ancestor_of(&other.0)
    }
    fn is_parent_of(&self, other: &Self) -> bool {
        self.0.is_parent_of(&other.0)
    }
    fn size_bits(&self) -> u64 {
        self.0.size_bits()
    }
    fn level_hint(&self) -> Option<usize> {
        self.0.level_hint()
    }
    // No ancestor_tester override: the default delegates per call.
}

fn corpus() -> XmlTree {
    // Two miniature plays: every tag Figure 15's queries touch, with enough
    // nesting that the structural join and both ordered axes do real work,
    // while keeping the 2 × 9 × 2-threads matrix fast.
    ShakespeareCorpus::generate_with(2, 7, &PlayParams::miniature()).tree
}

struct MapOracle(std::collections::HashMap<NodeId, u64>);

impl OrderOracle for MapOracle {
    fn rank(&self, node: NodeId) -> u64 {
        self.0[&node]
    }
}

/// Runs all nine queries through both predicate paths on `threads` workers
/// and asserts byte-identical answers.
fn assert_queries_agree(ev: &PrimeEvaluator, threads: usize) {
    let plain_table: LabelTable<PlainDivisionLabel> =
        ev.table().map_labels(|l| PlainDivisionLabel(l.clone()));
    let ranks: std::collections::HashMap<NodeId, u64> =
        ev.table().rows().iter().map(|r| (r.node, ev.ordered().order_of(r.node))).collect();
    let oracle = MapOracle(ranks);
    for q in &TEST_QUERIES {
        let path = Path::parse(q.path).unwrap();
        let (barrett, plain) = xp_par::with_threads(threads, || {
            (ev.try_eval(&path).unwrap(), eval_path(&plain_table, &oracle, &path).unwrap())
        });
        assert_eq!(barrett, plain, "{} diverged at {threads} thread(s)", q.id);
    }
}

/// Every node's order number must come out the same whether the SC residue
/// is taken by the Möller–Granlund word reducer or by plain division.
fn assert_order_numbers_agree(ev: &PrimeEvaluator) {
    let sc_table = ev.ordered().sc_table();
    for row in ev.table().rows() {
        let m = row.label.self_label_u64();
        let Some(idx) = sc_table.locate(m) else {
            continue; // the root's self-label 1 is not an SC member
        };
        let sc = sc_table.records()[idx].sc();
        let order = ev.ordered().order_of(row.node);
        assert_eq!(sc.rem_u64(m), order, "plain division disagrees for node {:?}", row.node);
        assert_eq!(Reducer64::new(m).rem(sc), order, "reducer disagrees for node {:?}", row.node);
    }
}

#[test]
fn fig15_queries_identical_under_barrett_and_plain_division() {
    let tree = corpus();
    let ev = PrimeEvaluator::build(&tree, 5);
    for threads in [1usize, 8] {
        assert_queries_agree(&ev, threads);
    }
    assert_order_numbers_agree(&ev);
}

#[test]
fn bignum_mul_fault_is_typed_on_both_predicate_paths() {
    let tree = corpus();
    // An armed bignum.mul site fires inside the budget-checked label
    // products of the ordered build, whichever multiply kernel runs: the
    // build must fail with the typed SC error on the nth hit, and succeed
    // once disarmed — then both predicate paths still agree.
    fault::arm("bignum.mul:4");
    let err = match PrimeEvaluator::try_build(&tree, 5) {
        Ok(_) => panic!("armed build unexpectedly succeeded"),
        Err(e) => e,
    };
    fault::reset();
    assert_eq!(
        err,
        xp_prime::Error::Sc(xp_prime::sc::ScError::FaultInjected("bignum.mul")),
        "got {err}"
    );
    let ev = PrimeEvaluator::try_build(&tree, 5).unwrap();
    assert_queries_agree(&ev, 1);
}

/// CI matrix entry point: with `XP_FAULT=<site>:<trigger>` armed by the
/// environment, drives build → nine queries on both predicate paths under
/// `catch_unwind` and asserts the armed site cannot panic the pipeline or
/// split the two paths' answers. A no-op without `XP_FAULT`.
#[test]
fn predicate_env_matrix() {
    if std::env::var("XP_FAULT").is_err() {
        return;
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let tree = corpus();
        let Ok(ev) = PrimeEvaluator::try_build(&tree, 5) else { return };
        let plain_table: LabelTable<PlainDivisionLabel> =
            ev.table().map_labels(|l| PlainDivisionLabel(l.clone()));
        let ranks: std::collections::HashMap<NodeId, u64> =
            ev.table().rows().iter().map(|r| (r.node, ev.ordered().order_of(r.node))).collect();
        let oracle = MapOracle(ranks);
        for q in &TEST_QUERIES {
            let path = Path::parse(q.path).unwrap();
            // A query-stage fault may fail either path (typed); when both
            // succeed they must still agree exactly.
            if let (Ok(a), Ok(b)) = (ev.try_eval(&path), eval_path(&plain_table, &oracle, &path))
            {
                assert_eq!(a, b, "{} diverged under XP_FAULT", q.id);
            }
        }
    }));
    assert!(outcome.is_ok(), "predicate pipeline panicked under XP_FAULT");
}
