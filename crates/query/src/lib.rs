//! # xp-query — a label-predicate query engine
//!
//! The paper evaluates XPath queries by translating them "into SQL using an
//! approach similar to \[15\]" and running them over a label table in an
//! RDBMS (§5.2): ancestor/descendant steps become label predicates (`mod`
//! for the prime scheme, interval containment for XISS, a prefix-test
//! user-defined function for the prefix schemes), and ordered axes compare
//! document-order numbers — for the prime scheme, derived on the fly from
//! the SC table.
//!
//! This crate is the equivalent substrate:
//!
//! * [`relstore::LabelTable`] — an in-memory columnar label table: one row
//!   per element with `(node, tag, parent, label)`, plus a tag index. The
//!   `parent` column mirrors the parent-label column such relational
//!   encodings carry for child-axis joins.
//! * [`engine`] — a small XPath subset (child/descendant axes, positional
//!   predicates, `following`, `preceding`, `following-sibling`,
//!   `preceding-sibling`) parsed into [`engine::Path`] and evaluated purely
//!   against labels + an order oracle.
//! * [`evaluators`] — one evaluator per scheme: Interval, Prefix-2, and
//!   Prime (whose order oracle *is* the SC table).
//! * [`queries`] — the nine test queries of Table 2.
//! * [`cache`] — an epoch-stamped query-result cache invalidated precisely
//!   from `RelabelReport`s (see DESIGN.md §14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Failures reachable from untrusted paths or runaway evaluation surface as
// typed `QueryError`s; the panicking conveniences that remain (`eval`,
// `eval_str`, `build`) are documented experiment-harness contracts built on
// `panic!`, not `unwrap`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod engine;
pub mod evaluators;
pub mod instrument;
pub mod join;
pub mod plan;
pub mod queries;
pub mod relstore;
pub mod sharded;
pub mod sql;

pub use cache::{CacheStats, QueryCache, TagFootprint, TouchedTags};
pub use engine::{Path, QueryError, QueryLimits};
pub use evaluators::{Evaluator, IntervalEvaluator, Prefix2Evaluator, PrimeEvaluator};
pub use relstore::LabelTable;
pub use sharded::ShardedTables;
