//! Predicate-cost instrumentation.
//!
//! Figure 15's timing argument rests on what each scheme's structural
//! predicate *costs*: native integer comparisons for interval, a multi-word
//! `mod` for prime, a byte-string UDF over long labels for prefix. Wall
//! clock on any one substrate hides that; this module measures the
//! substrate-independent quantities instead — how many ancestor tests a
//! query performs and how many label bits those tests touch — by wrapping
//! labels in a counting adapter and re-running the ordinary engine.

use crate::engine::{eval_path, OrderOracle, Path, QueryError};
use crate::relstore::LabelTable;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xp_labelkit::{AncestorTester, LabelOps};
use xp_xmltree::NodeId;

/// What a query's structural predicates cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredicateStats {
    /// Number of ancestor-test evaluations.
    pub ancestor_tests: u64,
    /// Total label bits fed into those tests (both operands) — the paper's
    /// "node labels in the prefix labeling schemes are relatively large,
    /// and may incur additional disk I/Os" made measurable.
    pub label_bits_touched: u64,
}

/// Shared counters behind one measurement run.
///
/// These used to be `thread_local!` `Cell`s, which silently dropped every
/// increment performed on an `xp-par` pool thread (the partitioned join
/// compares labels on workers) and leaked counts between tests sharing a
/// thread. One atomic pair per measurement, shared by `Arc` across every
/// label clone, makes the stats exact at any thread count and isolates
/// concurrent measurements from each other.
#[derive(Debug, Default)]
struct Counters {
    tests: AtomicU64,
    bits: AtomicU64,
}

impl Counters {
    fn record(&self, bits: u64) {
        // Relaxed suffices: the totals are read only after the pool joins,
        // which is already a synchronization point, and the counters carry
        // no ordering relationship with any other data.
        self.tests.fetch_add(1, Ordering::Relaxed);
        self.bits.fetch_add(bits, Ordering::Relaxed);
    }
}

/// A label wrapper that counts every ancestor test through it. All clones
/// made from one [`measure_predicates`] call share one counter block.
///
/// Equality ignores the counter handle — two counting labels are equal iff
/// the wrapped labels are, which is what `LabelOps: Eq` means for the
/// engine.
#[derive(Debug, Clone)]
pub struct CountingLabel<L> {
    inner: L,
    counters: Arc<Counters>,
}

impl<L: PartialEq> PartialEq for CountingLabel<L> {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl<L: Eq> Eq for CountingLabel<L> {}

impl<L: LabelOps> LabelOps for CountingLabel<L> {
    fn is_ancestor_of(&self, other: &Self) -> bool {
        self.counters.record(self.inner.size_bits() + other.inner.size_bits());
        self.inner.is_ancestor_of(&other.inner)
    }

    fn is_parent_of(&self, other: &Self) -> bool {
        self.counters.record(self.inner.size_bits() + other.inner.size_bits());
        self.inner.is_parent_of(&other.inner)
    }

    fn size_bits(&self) -> u64 {
        self.inner.size_bits()
    }

    fn level_hint(&self) -> Option<usize> {
        self.inner.level_hint()
    }

    /// Counts exactly like [`LabelOps::is_ancestor_of`] while delegating to
    /// the wrapped scheme's own (possibly precomputed) tester — the stats
    /// stay identical whether the engine tests labels directly or through a
    /// hoisted tester, and the optimized path stays under measurement.
    fn ancestor_tester(&self) -> AncestorTester<'_, Self> {
        let inner_tester = self.inner.ancestor_tester();
        Box::new(move |other: &Self| {
            self.counters.record(self.inner.size_bits() + other.inner.size_bits());
            inner_tester(&other.inner)
        })
    }
}

struct MapOracle(HashMap<NodeId, u64>);

impl OrderOracle for MapOracle {
    fn rank(&self, node: NodeId) -> u64 {
        self.0[&node]
    }
}

/// Evaluates `path` while counting predicate work. Returns the (identical)
/// result set plus the stats. Ranks are materialized up front so the order
/// oracle's own cost does not pollute the predicate counters.
pub fn measure_predicates<L: LabelOps>(
    table: &LabelTable<L>,
    oracle: &dyn OrderOracle,
    path: &Path,
) -> Result<(Vec<NodeId>, PredicateStats), QueryError> {
    let counters = Arc::new(Counters::default());
    let counting =
        table.map_labels(|l| CountingLabel { inner: l.clone(), counters: Arc::clone(&counters) });
    let ranks: HashMap<NodeId, u64> =
        table.rows().iter().map(|r| (r.node, oracle.rank(r.node))).collect();
    let result = eval_path(&counting, &MapOracle(ranks), path)?;
    let stats = PredicateStats {
        ancestor_tests: counters.tests.load(Ordering::Relaxed),
        label_bits_touched: counters.bits.load(Ordering::Relaxed),
    };
    Ok((result, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluators::{Evaluator, IntervalEvaluator, Prefix2Evaluator, PrimeEvaluator};
    use xp_xmltree::parse;

    fn play() -> xp_xmltree::XmlTree {
        parse(
            "<play><act><scene><speech><line/><line/></speech></scene></act>\
             <act><scene><speech><line/></speech></scene></act></play>",
        )
        .unwrap()
    }

    #[test]
    fn results_are_unchanged_by_instrumentation() {
        let tree = play();
        let ev = IntervalEvaluator::build(&tree);
        for q in ["//act//line", "//act/following::line", "//play//scene"] {
            let path = Path::parse(q).unwrap();
            let plain = ev.eval(&path);
            let ranks: HashMap<NodeId, u64> =
                ev.table().rows().iter().map(|r| (r.node, r.label.order)).collect();
            let (counted, stats) = measure_predicates(ev.table(), &MapOracle(ranks), &path).unwrap();
            assert_eq!(plain, counted, "{q}");
            assert!(stats.ancestor_tests > 0, "{q} did structural work");
        }
    }

    #[test]
    fn predicate_bit_traffic_orders_the_schemes() {
        // Same query, same plan, same result — the only difference between
        // schemes is how many label bits their predicates chew through.
        // Prime labels are whole path products, so they are the widest;
        // interval labels are two fixed log₂(N) numbers. (Average CKM
        // prefix labels land between the two on this corpus — the paper's
        // prefix penalty came from its DBMS UDF, not raw bit traffic; see
        // EXPERIMENTS.md.)
        let tree = xp_datagen::shakespeare::generate_play(
            "x",
            3,
            &xp_datagen::shakespeare::PlayParams::hamlet_like(),
        );
        let path = Path::parse("//SCENE//LINE").unwrap();

        let interval = IntervalEvaluator::build(&tree);
        let iv_ranks: HashMap<NodeId, u64> =
            interval.table().rows().iter().map(|r| (r.node, r.label.order)).collect();
        let (r1, s_interval) = measure_predicates(interval.table(), &MapOracle(iv_ranks), &path).unwrap();

        let prefix = Prefix2Evaluator::build(&tree);
        let px_ranks: HashMap<NodeId, u64> = {
            let mut nodes: Vec<NodeId> = prefix.table().rows().iter().map(|r| r.node).collect();
            nodes.sort_by(|&a, &b| prefix.table().label(a).bits().cmp(prefix.table().label(b).bits()));
            nodes.into_iter().enumerate().map(|(i, n)| (n, i as u64)).collect()
        };
        let (r2, s_prefix) = measure_predicates(prefix.table(), &MapOracle(px_ranks), &path).unwrap();

        let prime = PrimeEvaluator::build(&tree, 5);
        let pr_ranks: HashMap<NodeId, u64> = prime
            .table()
            .rows()
            .iter()
            .map(|r| (r.node, prime.ordered().order_of(r.node)))
            .collect();
        let (r3, s_prime) = measure_predicates(prime.table(), &MapOracle(pr_ranks), &path).unwrap();

        assert_eq!(r1.len(), r2.len());
        assert_eq!(r1.len(), r3.len());
        assert_eq!(s_interval.ancestor_tests, s_prefix.ancestor_tests, "same plan");
        assert_eq!(s_interval.ancestor_tests, s_prime.ancestor_tests, "same plan");
        assert!(
            s_prime.label_bits_touched > s_interval.label_bits_touched,
            "prime {} vs interval {}",
            s_prime.label_bits_touched,
            s_interval.label_bits_touched
        );
        assert!(
            s_prime.label_bits_touched > s_prefix.label_bits_touched,
            "prime {} vs prefix {}",
            s_prime.label_bits_touched,
            s_prefix.label_bits_touched
        );
    }

    /// The counting adapter must see every predicate evaluated on `xp-par`
    /// pool threads. The corpus is big enough that `//SCENE//LINE` goes
    /// through the partitioned join, so at 4 threads the comparisons run on
    /// workers — with the old `thread_local!` `Cell` counters their
    /// increments vanished and the stats under-counted. Chunk boundaries
    /// depend only on the target count, so the exact same comparisons
    /// happen at every thread count and the stats must match to the bit.
    #[test]
    fn counters_are_exact_on_pool_threads() {
        let tree = xp_datagen::shakespeare::generate_play(
            "x",
            3,
            &xp_datagen::shakespeare::PlayParams::hamlet_like(),
        );
        let ev = IntervalEvaluator::build(&tree);
        assert!(ev.table().scan_tag("LINE").len() > 1024, "need a partitioned join");
        let path = Path::parse("//SCENE//LINE").unwrap();
        let ranks: HashMap<NodeId, u64> =
            ev.table().rows().iter().map(|r| (r.node, r.label.order)).collect();
        let measure = |threads: usize| {
            let oracle = MapOracle(ranks.clone());
            xp_par::with_threads(threads, || {
                measure_predicates(ev.table(), &oracle, &path).unwrap()
            })
        };
        let (r1, s1) = measure(1);
        assert!(s1.ancestor_tests > 0);
        assert!(s1.label_bits_touched > 0);
        for threads in [2, 4] {
            let (r, s) = measure(threads);
            assert_eq!(r, r1, "results at {threads} threads");
            assert_eq!(s, s1, "stats at {threads} threads");
        }
    }

    #[test]
    fn prime_ordered_table_is_wide() {
        let tree = play();
        let prime = PrimeEvaluator::build(&tree, 5);
        let ranks: HashMap<NodeId, u64> = prime
            .table()
            .rows()
            .iter()
            .map(|r| (r.node, prime.ordered().order_of(r.node)))
            .collect();
        let path = Path::parse("//act//line").unwrap();
        let (_, stats) = measure_predicates(prime.table(), &MapOracle(ranks), &path).unwrap();
        assert!(stats.label_bits_touched > 0);
    }
}
