//! Per-shard [`LabelTable`] partitions over a sharded document.
//!
//! Under the shard facade ([`xp_labelkit::ShardedScheme`]) each shard owns
//! its slice of the label table, so table maintenance is `O(shard)`: a
//! mutation patches (or a relabel rebuilds) exactly the partitions of the
//! shards it touched, never the document-sized table. Cross-shard queries
//! compose the per-shard answers through the shard boundary labels — a
//! [`ShardedLabel`] answers every axis test across shards by itself, so
//! [`ShardedTables::compose`] just concatenates the partitions into the one
//! table the engine evaluates; no per-axis stitching logic is needed.

use crate::relstore::{LabelTable, PatchStats};
use std::collections::BTreeMap;
use xp_labelkit::{
    DynamicScheme, LabelOps, LabeledStore, RelabelReport, ShardId, ShardedLabel, ShardedScheme,
};
use xp_xmltree::NodeId;

/// Per-shard label-table partitions for a `LabeledStore<ShardedScheme<S>>`.
#[derive(Debug, Clone)]
pub struct ShardedTables<L: LabelOps> {
    parts: BTreeMap<ShardId, LabelTable<ShardedLabel<L>>>,
    root: NodeId,
}

impl<L: LabelOps> ShardedTables<L> {
    /// Builds one partition per live shard, each holding exactly the rows
    /// of that shard's members.
    pub fn build<S>(store: &LabeledStore<ShardedScheme<S>>) -> Self
    where
        S: DynamicScheme<Label = L> + Send + Sync,
        S::State: Send,
    {
        let mut parts = BTreeMap::new();
        for sid in store.state().live_shards() {
            parts.insert(sid, Self::partition_of(store, sid));
        }
        ShardedTables { parts, root: store.tree().root() }
    }

    fn partition_of<S>(
        store: &LabeledStore<ShardedScheme<S>>,
        sid: ShardId,
    ) -> LabelTable<ShardedLabel<L>>
    where
        S: DynamicScheme<Label = L> + Send + Sync,
        S::State: Send,
    {
        LabelTable::build_where(store.tree(), store.doc(), |n| {
            store.state().shard_of_node(n) == Some(sid)
        })
    }

    /// The partition owned by `sid`, if that shard is live.
    pub fn partition(&self, sid: ShardId) -> Option<&LabelTable<ShardedLabel<L>>> {
        self.parts.get(&sid)
    }

    /// Live partitions in ascending shard order.
    pub fn partitions(&self) -> impl Iterator<Item = (ShardId, &LabelTable<ShardedLabel<L>>)> {
        self.parts.iter().map(|(&sid, t)| (sid, t))
    }

    /// Number of live partitions.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Total rows across all partitions.
    pub fn len(&self) -> usize {
        self.parts.values().map(LabelTable::len).sum()
    }

    /// Whether no partition holds any row.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rebuilds (or drops, if the shard died) one partition from the
    /// store's current labels — `O(shard)`, the maintenance unit after
    /// [`xp_labelkit::relabel_shard`] / split / merge touched `sid`.
    pub fn rebuild_partition<S>(&mut self, store: &LabeledStore<ShardedScheme<S>>, sid: ShardId)
    where
        S: DynamicScheme<Label = L> + Send + Sync,
        S::State: Send,
    {
        if store.state().cell(sid).is_some() {
            self.parts.insert(sid, Self::partition_of(store, sid));
        } else {
            self.parts.remove(&sid);
        }
    }

    /// Routes a mutation's [`RelabelReport`] to the partitions it touches:
    /// inserted and relabeled rows go to the owning shard's partition
    /// (migrating a row whose node changed shards), removed rows leave
    /// whichever partition holds them. Work is `O(rows touched)`, spread
    /// over only the mutated shards.
    pub fn apply_report<S>(
        &mut self,
        store: &LabeledStore<ShardedScheme<S>>,
        report: &RelabelReport,
    ) -> PatchStats
    where
        S: DynamicScheme<Label = L> + Send + Sync,
        S::State: Send,
    {
        let mut per_shard: BTreeMap<ShardId, RelabelReport> = BTreeMap::new();
        for &n in &report.inserted {
            if let Some(sid) = store.state().shard_of_node(n) {
                per_shard.entry(sid).or_default().inserted.push(n);
            }
        }
        for &n in &report.relabeled {
            let Some(sid) = store.state().shard_of_node(n) else { continue };
            // A split/merge report relabels nodes into a different shard;
            // evict the stale row so the owning partition can re-add it.
            let stale: Vec<ShardId> = self
                .parts
                .iter()
                .filter(|&(&p, t)| p != sid && t.contains(n))
                .map(|(&p, _)| p)
                .collect();
            let migrated = !stale.is_empty();
            for p in stale {
                per_shard.entry(p).or_default().removed.push(n);
            }
            let sub = per_shard.entry(sid).or_default();
            if migrated || !self.parts.get(&sid).is_some_and(|t| t.contains(n)) {
                sub.inserted.push(n);
            } else {
                sub.relabeled.push(n);
            }
        }
        for &n in &report.removed {
            for (&p, t) in &self.parts {
                if t.contains(n) {
                    per_shard.entry(p).or_default().removed.push(n);
                }
            }
        }
        let mut stats = PatchStats::default();
        for (sid, sub) in per_shard {
            let part = self
                .parts
                .entry(sid)
                .or_insert_with(|| LabelTable::build_where(store.tree(), store.doc(), |_| false));
            let s = part.apply_report(store.tree(), store.doc(), &sub);
            stats.rows_added += s.rows_added;
            stats.rows_updated += s.rows_updated;
            stats.rows_removed += s.rows_removed;
        }
        self.parts.retain(|&sid, t| !t.is_empty() || store.state().cell(sid).is_some());
        stats
    }

    /// The composed table cross-shard queries evaluate against: the
    /// concatenation of every partition. The [`ShardedLabel`]s carry the
    /// boundary chains, so the engine's label predicates answer every axis
    /// across shard boundaries without further stitching.
    pub fn compose(&self) -> LabelTable<ShardedLabel<L>> {
        LabelTable::concat(self.root, self.parts.values())
    }
}
