//! Path parsing and label-driven evaluation.
//!
//! The supported grammar covers §4's three classes of order-sensitive
//! queries plus the structural axes:
//!
//! ```text
//! path      := step+
//! step      := ("/" | "//") segment
//! segment   := (axis "::")? name predicate*
//! predicate := "[" number "]" | "[" "=" quoted-string "]"
//! name      := element-name | "*"
//! axis      := "following" | "preceding"
//!            | "following-sibling" | "preceding-sibling"
//!            | "parent" | "ancestor" | "ancestor-or-self"
//!            | "child" | "descendant"
//! ```
//!
//! `/name` is the child axis, `//name` the descendant axis. A positional
//! predicate `[n]` selects the n-th matching node *per context node*, in
//! document order — exactly the paper's evaluation strategy for
//! `book/author[2]`: "retrieve all the author nodes who are descendants …
//! sorted first according to their order numbers … return the author node
//! that is in the second position".

use crate::relstore::LabelTable;
use xp_labelkit::LabelOps;
use xp_testkit::faultpoint;
use xp_xmltree::NodeId;

/// Axes the engine evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/tag` — children of the context node.
    Child,
    /// `//tag` — proper descendants of the context node.
    Descendant,
    /// Nodes after the context node in document order, minus its
    /// descendants (§4 class a).
    Following,
    /// Nodes before the context node, minus its ancestors (§4 class a).
    Preceding,
    /// Later children of the same parent (§4 class b).
    FollowingSibling,
    /// Earlier children of the same parent (§4 class b).
    PrecedingSibling,
    /// The context node's parent (one step up).
    Parent,
    /// Proper ancestors of the context node.
    Ancestor,
    /// Ancestors plus the context node itself.
    AncestorOrSelf,
}

/// One step of a parsed path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The axis to walk.
    pub axis: Axis,
    /// The element name to match (`*` = any element).
    pub tag: String,
    /// Positional predicate (1-indexed, per context node) — §4 class c.
    /// Applied *after* the value predicate, like XPath's predicate chain.
    pub position: Option<usize>,
    /// Text-value predicate `[="…"]`: the element's direct text must equal
    /// this string (the paper's `book/author[2]/"John"` query shape).
    pub value: Option<String>,
    /// Existence predicate `[tag]`: the element must have an element child
    /// with this tag (the simplest twig branch).
    pub has_child: Option<String>,
}

/// A parsed query path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The steps, applied left to right from the document root.
    pub steps: Vec<Step>,
}

/// Path syntax errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The path was empty or a step had no name.
    Empty,
    /// An unknown `axis::` prefix.
    UnknownAxis(String),
    /// A malformed `[n]` predicate.
    BadPredicate(String),
    /// Paths must start with `/` or `//`.
    MissingLeadingSlash,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Empty => write!(f, "empty path or step"),
            PathError::UnknownAxis(a) => write!(f, "unknown axis {a:?}"),
            PathError::BadPredicate(p) => write!(f, "bad positional predicate {p:?}"),
            PathError::MissingLeadingSlash => write!(f, "paths must start with '/' or '//'"),
        }
    }
}

impl std::error::Error for PathError {}

/// Evaluation-time resource budgets.
///
/// The engine charges every intermediate result row and every path step
/// against these budgets and returns a typed
/// [`QueryError::LimitExceeded`] when a query would blow through them, so
/// a hostile or runaway path cannot exhaust memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryLimits {
    /// Maximum size of any intermediate or final result set (default 2^24).
    pub max_rows: usize,
    /// Maximum number of path steps (default 256).
    pub max_steps: usize,
}

impl Default for QueryLimits {
    fn default() -> Self {
        QueryLimits { max_rows: 1 << 24, max_steps: 256 }
    }
}

/// Which [`QueryLimits`] budget a query exceeded (payload = the budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryLimit {
    /// An intermediate result grew past `max_rows`.
    Rows(usize),
    /// The path has more than `max_steps` steps.
    Steps(usize),
}

/// Evaluation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The path could not be parsed.
    Path(PathError),
    /// The path had no steps (a hand-built [`Path`] can be empty even
    /// though [`Path::parse`] rejects it).
    EmptyPath,
    /// A [`QueryLimits`] budget was exceeded.
    LimitExceeded(QueryLimit),
    /// An armed [`xp_testkit::fault`] point fired in the engine.
    FaultInjected(&'static str),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Path(e) => write!(f, "path: {e}"),
            QueryError::EmptyPath => write!(f, "path has no steps"),
            QueryError::LimitExceeded(QueryLimit::Rows(max)) => {
                write!(f, "intermediate result exceeds max_rows={max}")
            }
            QueryError::LimitExceeded(QueryLimit::Steps(max)) => {
                write!(f, "path exceeds max_steps={max}")
            }
            QueryError::FaultInjected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Path(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PathError> for QueryError {
    fn from(e: PathError) -> Self {
        QueryError::Path(e)
    }
}

impl From<xp_testkit::Injected> for QueryError {
    fn from(e: xp_testkit::Injected) -> Self {
        QueryError::FaultInjected(e.site)
    }
}

impl Path {
    /// Parses a path like `/play//act[3]/following::act`.
    pub fn parse(input: &str) -> Result<Path, PathError> {
        let input = input.trim();
        if input.is_empty() {
            return Err(PathError::Empty);
        }
        if !input.starts_with('/') {
            return Err(PathError::MissingLeadingSlash);
        }
        let mut steps = Vec::new();
        let mut rest = input;
        while !rest.is_empty() {
            let descendant = if rest.starts_with("//") {
                rest = &rest[2..];
                true
            } else if rest.starts_with('/') {
                rest = &rest[1..];
                false
            } else {
                unreachable!("loop leaves rest at a separator");
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let (seg, tail) = rest.split_at(end);
            rest = tail;
            steps.push(parse_segment(seg, descendant)?);
        }
        if steps.is_empty() {
            return Err(PathError::Empty);
        }
        Ok(Path { steps })
    }
}

fn parse_segment(seg: &str, descendant: bool) -> Result<Step, PathError> {
    let seg = seg.trim();
    if seg.is_empty() {
        return Err(PathError::Empty);
    }
    let (axis_part, rest) = match seg.find("::") {
        Some(i) => (Some(&seg[..i]), &seg[i + 2..]),
        None => (None, seg),
    };
    let axis = match axis_part.map(|a| a.to_ascii_lowercase()) {
        None => {
            if descendant {
                Axis::Descendant
            } else {
                Axis::Child
            }
        }
        Some(a) => match a.as_str() {
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            other => return Err(PathError::UnknownAxis(other.to_string())),
        },
    };
    let (name, preds) = match rest.find('[') {
        None => (rest, ""),
        Some(i) => (&rest[..i], &rest[i..]),
    };
    if name.is_empty() {
        return Err(PathError::Empty);
    }
    let mut position = None;
    let mut value = None;
    let mut has_child = None;
    let mut remaining = preds;
    while !remaining.is_empty() {
        let Some(stripped) = remaining.strip_prefix('[') else {
            return Err(PathError::BadPredicate(remaining.to_string()));
        };
        let Some(close) = stripped.find(']') else {
            return Err(PathError::BadPredicate(remaining.to_string()));
        };
        let inner = stripped[..close].trim();
        remaining = &stripped[close + 1..];
        if let Some(val) = inner.strip_prefix('=') {
            let val = val.trim();
            let unquoted = val
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .or_else(|| val.strip_prefix('\'').and_then(|v| v.strip_suffix('\'')))
                .ok_or_else(|| PathError::BadPredicate(inner.to_string()))?;
            value = Some(unquoted.to_string());
        } else if inner.chars().all(|c| c.is_ascii_digit()) && !inner.is_empty() {
            let n: usize =
                inner.parse().map_err(|_| PathError::BadPredicate(inner.to_string()))?;
            if n == 0 {
                return Err(PathError::BadPredicate(inner.to_string()));
            }
            position = Some(n);
        } else if !inner.is_empty()
            && inner.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            has_child = Some(inner.to_string());
        } else {
            return Err(PathError::BadPredicate(inner.to_string()));
        }
    }
    Ok(Step { axis, tag: name.to_string(), position, value, has_child })
}

/// Supplies document-order ranks derived from the scheme's own machinery
/// (`order` field, lexicographic label rank, or `SC mod self-label`).
pub trait OrderOracle {
    /// A rank that sorts elements in document order (root smallest).
    fn rank(&self, node: NodeId) -> u64;
}

/// Evaluates `path` against the label table, from the document root.
///
/// Every structural decision is made from labels (plus the table's
/// parent-label column for child/sibling axes) and the order oracle — the
/// tree itself is never consulted, which is the labeling-scheme contract.
///
/// Position-free steps run through the stack-based structural join
/// ([`crate::join`]); positional steps fall back to per-context selection
/// (the paper's own strategy: collect, sort by order number, index).
pub fn eval_path<L: LabelOps>(
    table: &LabelTable<L>,
    oracle: &dyn OrderOracle,
    path: &Path,
) -> Result<Vec<NodeId>, QueryError> {
    eval_path_with(table, oracle, path, true)
}

/// [`eval_path`] with an explicit choice of join strategy: `batch = false`
/// forces the naive per-context nested loops (used by the differential
/// tests and the join ablation bench).
pub fn eval_path_with<L: LabelOps>(
    table: &LabelTable<L>,
    oracle: &dyn OrderOracle,
    path: &Path,
    batch: bool,
) -> Result<Vec<NodeId>, QueryError> {
    eval_path_limited(table, oracle, path, batch, &QueryLimits::default())
}

/// [`eval_path_with`] with explicit [`QueryLimits`] budgets.
pub fn eval_path_limited<L: LabelOps>(
    table: &LabelTable<L>,
    oracle: &dyn OrderOracle,
    path: &Path,
    batch: bool,
    limits: &QueryLimits,
) -> Result<Vec<NodeId>, QueryError> {
    if path.steps.len() > limits.max_steps {
        return Err(QueryError::LimitExceeded(QueryLimit::Steps(limits.max_steps)));
    }
    // The initial context is the *document node*: `/play` selects the root
    // element itself when it is named `play`, and `//tag` selects every
    // element with that tag, the root included.
    let Some(first) = path.steps.first() else {
        return Err(QueryError::EmptyPath);
    };
    let mut ctx: Vec<NodeId> = match first.axis {
        Axis::Child => {
            let root = table.root();
            if first.tag == "*" || table.tag_name(table.row_of(root).tag) == first.tag {
                vec![root]
            } else {
                Vec::new()
            }
        }
        Axis::Descendant if first.tag == "*" => {
            table.rows().iter().map(|r| r.node).collect()
        }
        Axis::Descendant => {
            table.scan_tag(&first.tag).iter().map(|&i| table.rows()[i].node).collect()
        }
        // The document node has no siblings, ancestors, or surroundings.
        _ => Vec::new(),
    };
    if let Some(v) = &first.value {
        ctx.retain(|&n| table.row_of(n).text.as_deref() == Some(v.as_str()));
    }
    if let Some(child_tag) = &first.has_child {
        let parents = parents_with_child(table, child_tag);
        ctx.retain(|n| parents.contains(n));
    }
    ctx.sort_by_key(|&n| oracle.rank(n));
    if let Some(n) = first.position {
        ctx = match ctx.get(n - 1) {
            Some(&m) => vec![m],
            None => Vec::new(),
        };
    }
    if ctx.len() > limits.max_rows {
        return Err(QueryError::LimitExceeded(QueryLimit::Rows(limits.max_rows)));
    }
    for step in &path.steps[1..] {
        if ctx.is_empty() {
            break;
        }
        if batch && step.position.is_none() {
            ctx = select_batch(table, oracle, &ctx, step)?;
        } else {
            let mut next: Vec<NodeId> = Vec::new();
            for &c in &ctx {
                let mut matches = select(table, oracle, c, step);
                if let Some(n) = step.position {
                    matches = match matches.get(n - 1) {
                        Some(&m) => vec![m],
                        None => Vec::new(),
                    };
                }
                next.extend(matches);
            }
            // Union semantics: document order, duplicates removed.
            next.sort_by_key(|&n| oracle.rank(n));
            next.dedup();
            ctx = next;
        }
        if ctx.len() > limits.max_rows {
            return Err(QueryError::LimitExceeded(QueryLimit::Rows(limits.max_rows)));
        }
    }
    Ok(ctx)
}

/// Evaluates one position-free step for the whole context set at once,
/// using the stack-tree join for the containment axes.
fn select_batch<L: LabelOps>(
    table: &LabelTable<L>,
    oracle: &dyn OrderOracle,
    ctx: &[NodeId],
    step: &Step,
) -> Result<Vec<NodeId>, QueryError> {
    use std::collections::HashSet;

    faultpoint!("query.join")?;

    // Candidate rows (tag + value filtered), sorted by document order.
    let mut cands: Vec<(u64, NodeId, &L)> = Vec::new();
    let indices: Vec<usize> = if step.tag == "*" {
        (0..table.rows().len()).collect()
    } else {
        table.scan_tag(&step.tag).to_vec()
    };
    for idx in indices {
        let row = &table.rows()[idx];
        let value_ok = match &step.value {
            None => true,
            Some(v) => row.text.as_deref() == Some(v.as_str()),
        };
        if value_ok {
            cands.push((oracle.rank(row.node), row.node, &row.label));
        }
    }
    cands.sort_by_key(|&(r, _, _)| r);

    // Context set, sorted by document order.
    let mut ctx_ranked: Vec<(u64, NodeId, &L)> =
        ctx.iter().map(|&n| (oracle.rank(n), n, &table.row_of(n).label)).collect();
    ctx_ranked.sort_by_key(|&(r, _, _)| r);
    let ctx_ranks: Vec<u64> = ctx_ranked.iter().map(|&(r, _, _)| r).collect();

    let joined = |a: &[(u64, NodeId, &L)], t: &[(u64, NodeId, &L)]| {
        let a_view: Vec<(u64, &L)> = a.iter().map(|&(r, _, l)| (r, l)).collect();
        let t_view: Vec<(u64, &L)> = t.iter().map(|&(r, _, l)| (r, l)).collect();
        crate::join::ancestor_descendant_counts_par(&a_view, &t_view)
    };

    let keep: Vec<NodeId> = match step.axis {
        Axis::Child => {
            let ctx_set: HashSet<NodeId> = ctx.iter().copied().collect();
            cands
                .iter()
                .filter(|&&(_, n, _)| {
                    table.row_of(n).parent.is_some_and(|p| ctx_set.contains(&p) && p != n)
                })
                .map(|&(_, n, _)| n)
                .collect()
        }
        Axis::Descendant => {
            let counts = joined(&ctx_ranked, &cands);
            cands
                .iter()
                .zip(&counts.ancestors_of_target)
                .filter(|&(_, &a)| a > 0)
                .map(|(&(_, n, _), _)| n)
                .collect()
        }
        Axis::Following => {
            // Matches iff some context precedes it that is not an ancestor:
            // (#contexts before) > (#contexts that are ancestors).
            let counts = joined(&ctx_ranked, &cands);
            cands
                .iter()
                .zip(&counts.ancestors_of_target)
                .filter(|&(&(rank, _, _), &anc)| {
                    let before = ctx_ranks.partition_point(|&r| r < rank);
                    before > anc
                })
                .map(|(&(_, n, _), _)| n)
                .collect()
        }
        Axis::Preceding => {
            // Matches iff some context follows it that is not a descendant:
            // (#contexts after) > (#contexts in the candidate's subtree).
            let counts = joined(&cands, &ctx_ranked);
            cands
                .iter()
                .zip(&counts.targets_under_ancestor)
                .filter(|&(&(rank, _, _), &desc)| {
                    let after = ctx_ranks.len() - ctx_ranks.partition_point(|&r| r <= rank);
                    after > desc
                })
                .map(|(&(_, n, _), _)| n)
                .collect()
        }
        Axis::FollowingSibling => {
            let mut min_rank: std::collections::HashMap<NodeId, u64> =
                std::collections::HashMap::new();
            for &(r, n, _) in &ctx_ranked {
                if let Some(p) = table.row_of(n).parent {
                    min_rank.entry(p).and_modify(|m| *m = (*m).min(r)).or_insert(r);
                }
            }
            cands
                .iter()
                .filter(|&&(rank, n, _)| {
                    table
                        .row_of(n)
                        .parent
                        .and_then(|p| min_rank.get(&p))
                        .is_some_and(|&m| rank > m)
                })
                .map(|&(_, n, _)| n)
                .collect()
        }
        Axis::PrecedingSibling => {
            let mut max_rank: std::collections::HashMap<NodeId, u64> =
                std::collections::HashMap::new();
            for &(r, n, _) in &ctx_ranked {
                if let Some(p) = table.row_of(n).parent {
                    max_rank.entry(p).and_modify(|m| *m = (*m).max(r)).or_insert(r);
                }
            }
            cands
                .iter()
                .filter(|&&(rank, n, _)| {
                    table
                        .row_of(n)
                        .parent
                        .and_then(|p| max_rank.get(&p))
                        .is_some_and(|&m| rank < m)
                })
                .map(|&(_, n, _)| n)
                .collect()
        }
        Axis::Parent => {
            let parents: HashSet<NodeId> =
                ctx.iter().filter_map(|&n| table.row_of(n).parent).collect();
            cands.iter().filter(|&&(_, n, _)| parents.contains(&n)).map(|&(_, n, _)| n).collect()
        }
        Axis::Ancestor => {
            let counts = joined(&cands, &ctx_ranked);
            cands
                .iter()
                .zip(&counts.targets_under_ancestor)
                .filter(|&(_, &d)| d > 0)
                .map(|(&(_, n, _), _)| n)
                .collect()
        }
        Axis::AncestorOrSelf => {
            let counts = joined(&cands, &ctx_ranked);
            let ctx_set: HashSet<NodeId> = ctx.iter().copied().collect();
            cands
                .iter()
                .zip(&counts.targets_under_ancestor)
                .filter(|&(&(_, n, _), &d)| d > 0 || ctx_set.contains(&n))
                .map(|(&(_, n, _), _)| n)
                .collect()
        }
    };
    Ok(match &step.has_child {
        None => keep,
        Some(child_tag) => {
            let parents = parents_with_child(table, child_tag);
            keep.into_iter().filter(|n| parents.contains(n)).collect()
        }
    })
}

/// All nodes matching one step for a single context node, document order.
fn select<L: LabelOps>(
    table: &LabelTable<L>,
    oracle: &dyn OrderOracle,
    context: NodeId,
    step: &Step,
) -> Vec<NodeId> {
    let ctx_row = table.row_of(context);
    let ctx_rank = oracle.rank(context);
    let mut out: Vec<NodeId> = Vec::new();
    // The descendant and following axes test the *fixed* context label
    // against every candidate — exactly the shape `ancestor_tester` exists
    // for. Built once per step, so the prime scheme's Barrett context is
    // amortized across the whole candidate scan.
    let ctx_is_ancestor = matches!(step.axis, Axis::Descendant | Axis::Following)
        .then(|| ctx_row.label.ancestor_tester());
    // `*` matches every element (XPath wildcard).
    let candidates: Vec<usize> = if step.tag == "*" {
        (0..table.rows().len()).collect()
    } else {
        table.scan_tag(&step.tag).to_vec()
    };
    for idx in candidates {
        let row = &table.rows()[idx];
        if row.node == context && step.axis != Axis::AncestorOrSelf {
            continue;
        }
        let keep = match step.axis {
            Axis::Child => row.parent == Some(context),
            Axis::Descendant => {
                ctx_is_ancestor.as_ref().is_some_and(|tester| tester(&row.label))
            }
            Axis::Following => {
                oracle.rank(row.node) > ctx_rank
                    && !ctx_is_ancestor.as_ref().is_some_and(|tester| tester(&row.label))
            }
            Axis::Preceding => {
                oracle.rank(row.node) < ctx_rank && !row.label.is_ancestor_of(&ctx_row.label)
            }
            Axis::FollowingSibling => {
                row.parent == ctx_row.parent
                    && row.parent.is_some()
                    && oracle.rank(row.node) > ctx_rank
            }
            Axis::PrecedingSibling => {
                row.parent == ctx_row.parent
                    && row.parent.is_some()
                    && oracle.rank(row.node) < ctx_rank
            }
            Axis::Parent => Some(row.node) == ctx_row.parent,
            Axis::Ancestor => row.label.is_ancestor_of(&ctx_row.label),
            Axis::AncestorOrSelf => {
                row.node == context || row.label.is_ancestor_of(&ctx_row.label)
            }
        };
        let value_ok = match &step.value {
            None => true,
            Some(v) => row.text.as_deref() == Some(v.as_str()),
        };
        if keep && value_ok {
            out.push(row.node);
        }
    }
    if let Some(child_tag) = &step.has_child {
        let parents = parents_with_child(table, child_tag);
        out.retain(|n| parents.contains(n));
    }
    out.sort_by_key(|&n| oracle.rank(n));
    out
}

/// Nodes that have at least one element child with the given tag.
fn parents_with_child<L: LabelOps>(
    table: &LabelTable<L>,
    child_tag: &str,
) -> std::collections::HashSet<NodeId> {
    table
        .scan_tag(child_tag)
        .iter()
        .filter_map(|&i| table.rows()[i].parent)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_paths() {
        let p = Path::parse("/play//act/scene").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0], Step { axis: Axis::Child, tag: "play".into(), position: None, value: None, has_child: None });
        assert_eq!(p.steps[1].axis, Axis::Descendant);
        assert_eq!(p.steps[2].axis, Axis::Child);
    }

    #[test]
    fn parses_predicates_and_axes() {
        let p = Path::parse("/play//act[3]/following::act").unwrap();
        assert_eq!(p.steps[1].position, Some(3));
        assert_eq!(p.steps[2], Step { axis: Axis::Following, tag: "act".into(), position: None, value: None, has_child: None });
        let p2 = Path::parse("//speech/following-sibling::speech[2]").unwrap();
        assert_eq!(p2.steps[1].axis, Axis::FollowingSibling);
        assert_eq!(p2.steps[1].position, Some(2));
        let p3 = Path::parse("/a/preceding-sibling::b").unwrap();
        assert_eq!(p3.steps[1].axis, Axis::PrecedingSibling);
        let p4 = Path::parse("//x/Preceding::y").unwrap();
        assert_eq!(p4.steps[1].axis, Axis::Preceding, "axes are case-insensitive");
    }

    #[test]
    fn rejects_malformed_paths() {
        assert_eq!(Path::parse(""), Err(PathError::Empty));
        assert_eq!(Path::parse("play"), Err(PathError::MissingLeadingSlash));
        assert_eq!(Path::parse("/"), Err(PathError::Empty));
        assert!(matches!(Path::parse("/a/b[x!]"), Err(PathError::BadPredicate(_))));
        assert!(matches!(Path::parse("/a/b[0]"), Err(PathError::BadPredicate(_))));
        assert!(matches!(Path::parse("/a/up::b"), Err(PathError::UnknownAxis(_))));
    }

    #[test]
    fn round_trips_double_slash_segments() {
        let p = Path::parse("//line").unwrap();
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
    }

    #[test]
    fn parses_value_predicates() {
        // The paper's §4 example: book/author[2]/"John" in our syntax.
        let p = Path::parse(r#"/book/author[2][="John"]"#).unwrap();
        assert_eq!(p.steps[1].position, Some(2));
        assert_eq!(p.steps[1].value.as_deref(), Some("John"));
        // Predicate order is irrelevant; single quotes work too.
        let q = Path::parse("/book/author[='John'][2]").unwrap();
        assert_eq!(q.steps[1].position, Some(2));
        assert_eq!(q.steps[1].value.as_deref(), Some("John"));
        // Value-only predicate.
        let r = Path::parse(r#"//speaker[="HAMLET"]"#).unwrap();
        assert_eq!(r.steps[0].value.as_deref(), Some("HAMLET"));
        assert_eq!(r.steps[0].position, None);
    }

    #[test]
    fn rejects_malformed_value_predicates() {
        assert!(matches!(Path::parse("/a[=John]"), Err(PathError::BadPredicate(_))));
        assert!(matches!(Path::parse("/a[=\"x]"), Err(PathError::BadPredicate(_))));
        assert!(matches!(Path::parse("/a[2"), Err(PathError::BadPredicate(_))));
    }

    #[test]
    fn parses_wildcards() {
        let p = Path::parse("//*").unwrap();
        assert_eq!(p.steps[0].tag, "*");
        let q = Path::parse("//scene/*[2]").unwrap();
        assert_eq!(q.steps[1].tag, "*");
        assert_eq!(q.steps[1].position, Some(2));
    }
}
