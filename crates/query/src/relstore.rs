//! [`LabelTable`]: the columnar label table queries run against.

use std::collections::HashMap;
use xp_labelkit::{LabelOps, LabeledDoc};
use xp_xmltree::{NodeId, XmlTree};

/// One row of the label table.
#[derive(Debug, Clone)]
pub struct Row<L> {
    /// The element this row describes.
    pub node: NodeId,
    /// Interned tag id (see [`LabelTable::tag_name`]).
    pub tag: u32,
    /// The parent element — the relational encoding's parent-label column.
    pub parent: Option<NodeId>,
    /// Concatenated *direct* text children — the value column relational
    /// XML encodings carry, used by `[="…"]` predicates (the paper's
    /// `book/author[2]/"John"` query shape).
    pub text: Option<String>,
    /// The scheme's label.
    pub label: L,
}

/// An in-memory columnar label table with a tag index.
#[derive(Debug, Clone)]
pub struct LabelTable<L> {
    rows: Vec<Row<L>>,
    tag_names: Vec<String>,
    tag_ids: HashMap<String, u32>,
    by_tag: Vec<Vec<usize>>,
    row_of_node: HashMap<NodeId, usize>,
    root: NodeId,
}

impl<L: LabelOps> LabelTable<L> {
    /// Builds the table from a tree and its labels, rows in document order.
    pub fn build(tree: &XmlTree, labels: &LabeledDoc<L>) -> Self {
        let mut table = LabelTable {
            rows: Vec::new(),
            tag_names: Vec::new(),
            tag_ids: HashMap::new(),
            by_tag: Vec::new(),
            row_of_node: HashMap::new(),
            root: tree.root(),
        };
        for node in tree.elements() {
            // Only element nodes reach this point, and elements always
            // carry a tag; skip (rather than panic on) anything else.
            let Some(tag) = tree.tag(node) else { continue };
            let tag_id = table.intern(tag);
            let idx = table.rows.len();
            let text: String = tree
                .children(node)
                .filter_map(|c| tree.text(c))
                .collect::<Vec<_>>()
                .join("");
            table.rows.push(Row {
                node,
                tag: tag_id,
                parent: tree.parent(node),
                text: if text.is_empty() { None } else { Some(text) },
                label: labels.label(node).clone(),
            });
            table.by_tag[tag_id as usize].push(idx);
            table.row_of_node.insert(node, idx);
        }
        table
    }

    fn intern(&mut self, tag: &str) -> u32 {
        if let Some(&id) = self.tag_ids.get(tag) {
            return id;
        }
        let id = self.tag_names.len() as u32;
        self.tag_names.push(tag.to_string());
        self.tag_ids.insert(tag.to_string(), id);
        self.by_tag.push(Vec::new());
        id
    }

    /// The document root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The interned name of a tag id.
    pub fn tag_name(&self, id: u32) -> &str {
        &self.tag_names[id as usize]
    }

    /// All rows, document order.
    pub fn rows(&self) -> &[Row<L>] {
        &self.rows
    }

    /// Row indices of elements with this tag, document order at build time.
    /// Unknown tags yield an empty scan.
    pub fn scan_tag(&self, tag: &str) -> &[usize] {
        match self.tag_ids.get(tag) {
            Some(&id) => &self.by_tag[id as usize],
            None => &[],
        }
    }

    /// The row describing `node`.
    pub fn row_of(&self, node: NodeId) -> &Row<L> {
        &self.rows[self.row_of_node[&node]]
    }

    /// The label of `node`.
    pub fn label(&self, node: NodeId) -> &L {
        &self.row_of(node).label
    }

    /// Rebuilds the table with every label transformed — used by the
    /// instrumentation layer to wrap labels in counting adapters.
    pub fn map_labels<M: LabelOps>(&self, f: impl Fn(&L) -> M) -> LabelTable<M> {
        LabelTable {
            rows: self
                .rows
                .iter()
                .map(|r| Row {
                    node: r.node,
                    tag: r.tag,
                    parent: r.parent,
                    text: r.text.clone(),
                    label: f(&r.label),
                })
                .collect(),
            tag_names: self.tag_names.clone(),
            tag_ids: self.tag_ids.clone(),
            by_tag: self.by_tag.clone(),
            row_of_node: self.row_of_node.clone(),
            root: self.root,
        }
    }

    /// Total fixed-width storage footprint in bits: rows × the widest label
    /// (§5.1.2 compares "the size of fixed length labels").
    pub fn fixed_width_bits(&self) -> u64 {
        let widest = self.rows.iter().map(|r| r.label.size_bits()).max().unwrap_or(0);
        widest * self.rows.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_baselines::interval::IntervalScheme;
    use xp_labelkit::Scheme;
    use xp_xmltree::parse;

    fn table() -> (XmlTree, LabelTable<xp_baselines::IntervalLabel>) {
        let tree = parse("<play><act><scene/></act><act/></play>").unwrap();
        let doc = IntervalScheme::dense().label(&tree);
        let t = LabelTable::build(&tree, &doc);
        (tree, t)
    }

    #[test]
    fn rows_are_in_document_order() {
        let (tree, t) = table();
        assert_eq!(t.len(), 4);
        let nodes: Vec<NodeId> = tree.elements().collect();
        let row_nodes: Vec<NodeId> = t.rows().iter().map(|r| r.node).collect();
        assert_eq!(nodes, row_nodes);
    }

    #[test]
    fn tag_scan_finds_all_occurrences() {
        let (_, t) = table();
        assert_eq!(t.scan_tag("act").len(), 2);
        assert_eq!(t.scan_tag("scene").len(), 1);
        assert_eq!(t.scan_tag("play").len(), 1);
        assert!(t.scan_tag("nothing").is_empty());
    }

    #[test]
    fn parent_column_matches_tree() {
        let (tree, t) = table();
        for row in t.rows() {
            assert_eq!(row.parent, tree.parent(row.node));
        }
    }

    #[test]
    fn row_lookup_by_node() {
        let (tree, t) = table();
        let act = tree.first_child(tree.root()).unwrap();
        assert_eq!(t.row_of(act).node, act);
        assert_eq!(t.tag_name(t.row_of(act).tag), "act");
    }

    #[test]
    fn fixed_width_footprint() {
        let (_, t) = table();
        let widest = t.rows().iter().map(|r| r.label.size_bits()).max().unwrap();
        assert_eq!(t.fixed_width_bits(), widest * 4);
    }
}
