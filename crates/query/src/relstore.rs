//! [`LabelTable`]: the columnar label table queries run against.

use std::collections::HashMap;
use xp_labelkit::{LabelOps, LabeledDoc, RelabelReport};
use xp_xmltree::{NodeId, XmlTree};

/// One row of the label table.
#[derive(Debug, Clone)]
pub struct Row<L> {
    /// The element this row describes.
    pub node: NodeId,
    /// Interned tag id (see [`LabelTable::tag_name`]).
    pub tag: u32,
    /// The parent element — the relational encoding's parent-label column.
    pub parent: Option<NodeId>,
    /// Concatenated *direct* text children — the value column relational
    /// XML encodings carry, used by `[="…"]` predicates (the paper's
    /// `book/author[2]/"John"` query shape).
    pub text: Option<String>,
    /// The scheme's label.
    pub label: L,
}

/// What [`LabelTable::apply_report`] actually did — the bench smoke gate
/// asserts these stay proportional to the report, not to the table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Rows appended for inserted nodes.
    pub rows_added: usize,
    /// Rows patched in place for relabeled nodes.
    pub rows_updated: usize,
    /// Rows removed for deleted nodes.
    pub rows_removed: usize,
}

impl PatchStats {
    /// Total rows touched by the patch.
    pub fn rows_touched(&self) -> usize {
        self.rows_added + self.rows_updated + self.rows_removed
    }
}

/// An in-memory columnar label table with a tag index.
///
/// The node → row lookup is a dense vector indexed by the arena index of
/// the [`NodeId`] — arena slots are never reused, so the vector only ever
/// grows, and lookup is a bounds check away from a direct index.
#[derive(Debug, Clone)]
pub struct LabelTable<L> {
    rows: Vec<Row<L>>,
    tag_names: Vec<String>,
    tag_ids: HashMap<String, u32>,
    by_tag: Vec<Vec<usize>>,
    row_of_node: Vec<Option<usize>>,
    root: NodeId,
}

impl<L: LabelOps> LabelTable<L> {
    /// Builds the table from a tree and its labels, rows in document order.
    ///
    /// Three passes. Pass 1 (sequential) walks the elements once to intern
    /// tags — ids are assigned in first-occurrence document order, so the
    /// interning result is independent of how pass 2 is scheduled. Pass 2
    /// (parallel over the `xp-par` pool) constructs the rows: text
    /// concatenation and label clones dominate build time for big labels
    /// and are independent per node; `par_map` places each row at its input
    /// index, so `rows` comes back in document order at any thread count.
    /// Pass 3 (sequential) wires the tag buckets and the node → row map in
    /// row order, exactly as the incremental [`push_row`] path would.
    ///
    /// [`push_row`]: LabelTable::push_row
    pub fn build(tree: &XmlTree, labels: &LabeledDoc<L>) -> Self {
        let mut table = LabelTable {
            rows: Vec::new(),
            tag_names: Vec::new(),
            tag_ids: HashMap::new(),
            by_tag: Vec::new(),
            row_of_node: Vec::new(),
            root: tree.root(),
        };
        let mut nodes: Vec<(NodeId, u32)> = Vec::new();
        for node in tree.elements() {
            // Only element nodes reach this point, and elements always
            // carry a tag; skip (rather than panic on) anything else.
            let Some(tag) = tree.tag(node) else { continue };
            let tag_id = table.intern(tag);
            nodes.push((node, tag_id));
        }
        let rows: Vec<Row<L>> = xp_par::par_map(&nodes, |&(node, tag)| {
            let text: String =
                tree.children(node).filter_map(|c| tree.text(c)).collect::<Vec<_>>().join("");
            Row {
                node,
                tag,
                parent: tree.parent(node),
                text: if text.is_empty() { None } else { Some(text) },
                label: labels.label(node).clone(),
            }
        });
        for (idx, row) in rows.iter().enumerate() {
            table.by_tag[row.tag as usize].push(idx);
            table.set_row_index(row.node, idx);
        }
        table.rows = rows;
        table
    }

    /// [`LabelTable::build`] restricted to the elements `keep` admits and
    /// that carry a label — the per-shard partition constructor (see
    /// [`crate::sharded`]). Unlabeled elements are skipped rather than an
    /// error: a partition by definition sees only its own slice of the
    /// document.
    pub fn build_where(
        tree: &XmlTree,
        labels: &LabeledDoc<L>,
        keep: impl Fn(NodeId) -> bool,
    ) -> Self {
        let mut table = LabelTable {
            rows: Vec::new(),
            tag_names: Vec::new(),
            tag_ids: HashMap::new(),
            by_tag: Vec::new(),
            row_of_node: Vec::new(),
            root: tree.root(),
        };
        for node in tree.elements() {
            if !keep(node) || labels.get(node).is_none() {
                continue;
            }
            let Some(tag) = tree.tag(node) else { continue };
            table.push_row(tree, labels, node, tag);
        }
        table
    }

    /// One table over the union of several disjoint tables' rows (tags
    /// re-interned) — how per-shard partitions compose into the table
    /// cross-shard queries run against. Row order is concatenation order;
    /// the engine orders results by the document-order oracle, never by row
    /// position, so any order is correct.
    pub fn concat<'a>(root: NodeId, parts: impl IntoIterator<Item = &'a Self>) -> Self
    where
        L: 'a,
    {
        let mut out = LabelTable {
            rows: Vec::new(),
            tag_names: Vec::new(),
            tag_ids: HashMap::new(),
            by_tag: Vec::new(),
            row_of_node: Vec::new(),
            root,
        };
        for part in parts {
            for row in &part.rows {
                let tag_id = out.intern(&part.tag_names[row.tag as usize]);
                let idx = out.rows.len();
                out.rows.push(Row { tag: tag_id, ..row.clone() });
                out.by_tag[tag_id as usize].push(idx);
                out.set_row_index(row.node, idx);
            }
        }
        out
    }

    /// Whether the table holds a row for `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.row_index(node).is_some()
    }

    /// Appends a row for `node` and wires it into the tag index and the
    /// node → row map.
    fn push_row(&mut self, tree: &XmlTree, labels: &LabeledDoc<L>, node: NodeId, tag: &str) {
        let tag_id = self.intern(tag);
        let idx = self.rows.len();
        let text: String =
            tree.children(node).filter_map(|c| tree.text(c)).collect::<Vec<_>>().join("");
        self.rows.push(Row {
            node,
            tag: tag_id,
            parent: tree.parent(node),
            text: if text.is_empty() { None } else { Some(text) },
            label: labels.label(node).clone(),
        });
        self.by_tag[tag_id as usize].push(idx);
        self.set_row_index(node, idx);
    }

    fn set_row_index(&mut self, node: NodeId, idx: usize) {
        let slot = node.index();
        if slot >= self.row_of_node.len() {
            self.row_of_node.resize(slot + 1, None);
        }
        self.row_of_node[slot] = Some(idx);
    }

    fn row_index(&self, node: NodeId) -> Option<usize> {
        self.row_of_node.get(node.index()).copied().flatten()
    }

    fn intern(&mut self, tag: &str) -> u32 {
        if let Some(&id) = self.tag_ids.get(tag) {
            return id;
        }
        let id = self.tag_names.len() as u32;
        self.tag_names.push(tag.to_string());
        self.tag_ids.insert(tag.to_string(), id);
        self.by_tag.push(Vec::new());
        id
    }

    /// The document root element.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The interned name of a tag id.
    pub fn tag_name(&self, id: u32) -> &str {
        &self.tag_names[id as usize]
    }

    /// All rows, document order.
    pub fn rows(&self) -> &[Row<L>] {
        &self.rows
    }

    /// Row indices of elements with this tag, document order at build time.
    /// Unknown tags yield an empty scan.
    pub fn scan_tag(&self, tag: &str) -> &[usize] {
        match self.tag_ids.get(tag) {
            Some(&id) => &self.by_tag[id as usize],
            None => &[],
        }
    }

    /// The row describing `node`.
    ///
    /// # Panics
    ///
    /// Panics (indexing-style contract) if `node` has no row.
    pub fn row_of(&self, node: NodeId) -> &Row<L> {
        match self.row_index(node) {
            Some(idx) => &self.rows[idx],
            None => panic!("no row for node {node}"),
        }
    }

    /// The label of `node`.
    pub fn label(&self, node: NodeId) -> &L {
        &self.row_of(node).label
    }

    /// Applies a [`RelabelReport`] incrementally: removed nodes drop their
    /// rows (`swap_remove`, with tag-index fixup for the displaced row),
    /// relabeled nodes patch label and parent in place, inserted nodes
    /// append fresh rows. Work is `O(rows touched)` — the point of the
    /// dynamic API is that a cheap mutation patches a cheap number of rows
    /// instead of rebuilding the table.
    ///
    /// Row order within a tag bucket is no longer document order after a
    /// patch; the query engine orders results by the document-order oracle,
    /// not by bucket position, so scans stay correct.
    pub fn apply_report(
        &mut self,
        tree: &XmlTree,
        labels: &LabeledDoc<L>,
        report: &RelabelReport,
    ) -> PatchStats {
        let mut stats = PatchStats::default();
        for &node in &report.removed {
            let Some(idx) = self.row_index(node) else { continue };
            let row = self.rows.swap_remove(idx);
            self.row_of_node[node.index()] = None;
            let bucket = &mut self.by_tag[row.tag as usize];
            if let Some(pos) = bucket.iter().position(|&i| i == idx) {
                bucket.swap_remove(pos);
            }
            // The former last row now lives at `idx`; repoint its entries.
            if idx < self.rows.len() {
                let (moved_node, moved_tag) = (self.rows[idx].node, self.rows[idx].tag);
                let old_idx = self.rows.len();
                self.set_row_index(moved_node, idx);
                let bucket = &mut self.by_tag[moved_tag as usize];
                if let Some(pos) = bucket.iter().position(|&i| i == old_idx) {
                    bucket[pos] = idx;
                }
            }
            stats.rows_removed += 1;
        }
        for &node in &report.relabeled {
            let Some(idx) = self.row_index(node) else { continue };
            self.rows[idx].label = labels.label(node).clone();
            self.rows[idx].parent = tree.parent(node);
            stats.rows_updated += 1;
        }
        for &node in &report.inserted {
            debug_assert!(self.row_index(node).is_none(), "inserted node already has a row");
            let Some(tag) = tree.tag(node) else { continue };
            self.push_row(tree, labels, node, tag);
            stats.rows_added += 1;
        }
        stats
    }

    /// Rebuilds the table with every label transformed — used by the
    /// instrumentation layer to wrap labels in counting adapters.
    pub fn map_labels<M: LabelOps>(&self, f: impl Fn(&L) -> M) -> LabelTable<M> {
        LabelTable {
            rows: self
                .rows
                .iter()
                .map(|r| Row {
                    node: r.node,
                    tag: r.tag,
                    parent: r.parent,
                    text: r.text.clone(),
                    label: f(&r.label),
                })
                .collect(),
            tag_names: self.tag_names.clone(),
            tag_ids: self.tag_ids.clone(),
            by_tag: self.by_tag.clone(),
            row_of_node: self.row_of_node.clone(),
            root: self.root,
        }
    }

    /// Self-check used by tests: every row reachable through both indexes,
    /// no dangling entries.
    #[cfg(test)]
    fn assert_indexes_consistent(&self) {
        let live: usize = self.row_of_node.iter().flatten().count();
        assert_eq!(live, self.rows.len());
        for (idx, row) in self.rows.iter().enumerate() {
            assert_eq!(self.row_index(row.node), Some(idx));
            assert!(self.by_tag[row.tag as usize].contains(&idx));
        }
        let indexed: usize = self.by_tag.iter().map(Vec::len).sum();
        assert_eq!(indexed, self.rows.len());
    }

    /// Total fixed-width storage footprint in bits: rows × the widest label
    /// (§5.1.2 compares "the size of fixed length labels").
    pub fn fixed_width_bits(&self) -> u64 {
        let widest = self.rows.iter().map(|r| r.label.size_bits()).max().unwrap_or(0);
        widest * self.rows.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_baselines::interval::IntervalScheme;
    use xp_labelkit::Scheme;
    use xp_xmltree::parse;

    fn table() -> (XmlTree, LabelTable<xp_baselines::IntervalLabel>) {
        let tree = parse("<play><act><scene/></act><act/></play>").unwrap();
        let doc = IntervalScheme::dense().label(&tree);
        let t = LabelTable::build(&tree, &doc);
        (tree, t)
    }

    #[test]
    fn rows_are_in_document_order() {
        let (tree, t) = table();
        assert_eq!(t.len(), 4);
        let nodes: Vec<NodeId> = tree.elements().collect();
        let row_nodes: Vec<NodeId> = t.rows().iter().map(|r| r.node).collect();
        assert_eq!(nodes, row_nodes);
    }

    #[test]
    fn tag_scan_finds_all_occurrences() {
        let (_, t) = table();
        assert_eq!(t.scan_tag("act").len(), 2);
        assert_eq!(t.scan_tag("scene").len(), 1);
        assert_eq!(t.scan_tag("play").len(), 1);
        assert!(t.scan_tag("nothing").is_empty());
    }

    #[test]
    fn parent_column_matches_tree() {
        let (tree, t) = table();
        for row in t.rows() {
            assert_eq!(row.parent, tree.parent(row.node));
        }
    }

    #[test]
    fn row_lookup_by_node() {
        let (tree, t) = table();
        let act = tree.first_child(tree.root()).unwrap();
        assert_eq!(t.row_of(act).node, act);
        assert_eq!(t.tag_name(t.row_of(act).tag), "act");
    }

    #[test]
    fn apply_report_patches_incrementally() {
        use xp_labelkit::{InsertPos, LabeledStore};

        let tree = parse("<play><act><scene/></act><act/></play>").unwrap();
        let mut store = LabeledStore::build(IntervalScheme::with_gap(32), tree).unwrap();
        let mut table = LabelTable::build(store.tree(), store.doc());
        table.assert_indexes_consistent();

        // Insert: one row appended, ancestors possibly patched.
        let act2 = store.tree().last_child(store.tree().root()).unwrap();
        let rep = store.insert_before(act2, "intermission").unwrap();
        let stats = table.apply_report(store.tree(), store.doc(), &rep);
        assert_eq!(stats.rows_added, 1);
        assert_eq!(stats.rows_touched(), rep.labels_touched() + rep.removed.len());
        table.assert_indexes_consistent();
        assert_eq!(table.len(), 5);
        assert_eq!(table.scan_tag("intermission").len(), 1);

        // Delete: rows drop, displaced rows stay reachable.
        let act1 = store.tree().first_child(store.tree().root()).unwrap();
        let rep = store.delete(act1).unwrap();
        let stats = table.apply_report(store.tree(), store.doc(), &rep);
        assert_eq!(stats.rows_removed, 2, "act + scene");
        table.assert_indexes_consistent();
        assert_eq!(table.len(), 3);
        assert_eq!(table.scan_tag("act").len(), 1);
        assert_eq!(table.scan_tag("scene").len(), 0);

        // Subtree move: fresh node ids replace the old ones.
        let root = store.tree().root();
        let inter =
            store.tree().elements().find(|&n| store.tree().tag(n) == Some("intermission")).unwrap();
        let rep = store.move_subtree(inter, InsertPos::LastChildOf(root)).unwrap();
        table.apply_report(store.tree(), store.doc(), &rep);
        table.assert_indexes_consistent();
        assert_eq!(table.scan_tag("intermission").len(), 1);

        // The patched table matches a from-scratch rebuild row-for-row.
        let rebuilt = LabelTable::build(store.tree(), store.doc());
        assert_eq!(table.len(), rebuilt.len());
        for row in rebuilt.rows() {
            let patched = table.row_of(row.node);
            assert_eq!(table.tag_name(patched.tag), rebuilt.tag_name(row.tag));
            assert_eq!(patched.parent, row.parent);
            assert_eq!(patched.label, row.label);
        }
    }

    #[test]
    fn fixed_width_footprint() {
        let (_, t) = table();
        let widest = t.rows().iter().map(|r| r.label.size_bits()).max().unwrap();
        assert_eq!(t.fixed_width_bits(), widest * 4);
    }
}
