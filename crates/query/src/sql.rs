//! XPath → SQL translation, per scheme.
//!
//! §5.2: "All these queries are first transformed into SQL using an
//! approach similar to \[15\]. Operations that are used by interval-based
//! labeling scheme e.g. '>', '<', and the prime number labeling scheme e.g.
//! 'mod', '>', '<', '=' are directly supported by the DBMS. The operation
//! 'check prefix' used in the prefix labeling scheme is defined as a
//! user-defined function."
//!
//! [`to_sql`] reproduces that translation over a relational schema
//! `label_table(node_id, tag, parent_id, text, label…)`, one self-join per
//! path step. The structural predicate is the only thing that differs
//! between schemes — which is the paper's entire point:
//!
//! | scheme   | ancestor predicate                                  |
//! |----------|-----------------------------------------------------|
//! | Interval | `a.ord < d.ord AND d.ord <= a.ord + a.size`         |
//! | Prime    | `MOD(d.label, a.label) = 0 AND d.label <> a.label`  |
//! | Prefix   | `check_prefix(a.label, d.label)` (UDF)              |
//!
//! The generated SQL is text only — the in-memory engine (`crate::engine`)
//! is the executor — but it is the exact statement a DBMS deployment would
//! run, and the tests pin its shape.

use crate::engine::{Axis, Path, Step};
use std::fmt::Write;

/// The scheme whose predicates the SQL should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlScheme {
    /// XISS `(ord, size)` columns.
    Interval,
    /// A single numeric `label` column; divisibility via `MOD`.
    Prime,
    /// A byte-string `label` column; containment via a `check_prefix` UDF.
    Prefix,
}

impl SqlScheme {
    fn table(self) -> &'static str {
        match self {
            SqlScheme::Interval => "interval_labels",
            SqlScheme::Prime => "prime_labels",
            SqlScheme::Prefix => "prefix_labels",
        }
    }

    /// `a` is a proper ancestor of `d`.
    fn ancestor(self, a: &str, d: &str) -> String {
        match self {
            SqlScheme::Interval => {
                format!("{a}.ord < {d}.ord AND {d}.ord <= {a}.ord + {a}.size")
            }
            SqlScheme::Prime => {
                format!("MOD({d}.label, {a}.label) = 0 AND {d}.label <> {a}.label")
            }
            SqlScheme::Prefix => format!("check_prefix({a}.label, {d}.label) = 1"),
        }
    }

    /// `x` precedes `y` in document order.
    fn before(self, x: &str, y: &str) -> String {
        match self {
            SqlScheme::Interval => format!("{x}.ord < {y}.ord"),
            // The prime scheme derives order numbers from the SC table:
            // sc_order(self_label) = SC mod self_label (§4.1).
            SqlScheme::Prime => format!("sc_order({x}.self_label) < sc_order({y}.self_label)"),
            SqlScheme::Prefix => format!("{x}.label < {y}.label"),
        }
    }
}

/// Renders the SQL for a parsed path under a scheme.
///
/// Positional predicates translate to the paper's strategy — sort by the
/// order number and index — expressed as a window function.
pub fn to_sql(path: &Path, scheme: SqlScheme) -> String {
    let table = scheme.table();
    let mut from = Vec::new();
    let mut wheres = Vec::new();
    let mut windowed: Vec<(String, usize)> = Vec::new();

    for (i, step) in path.steps.iter().enumerate() {
        let alias = format!("t{i}");
        from.push(format!("{table} {alias}"));
        if step.tag != "*" {
            wheres.push(format!("{alias}.tag = '{}'", step.tag));
        }
        if let Some(v) = &step.value {
            wheres.push(format!("{alias}.text = '{}'", v.replace('\'', "''")));
        }
        if let Some(child_tag) = &step.has_child {
            wheres.push(format!(
                "EXISTS (SELECT 1 FROM {table} c WHERE c.parent_id = {alias}.node_id AND c.tag = '{child_tag}')"
            ));
        }
        if i == 0 {
            if step.axis == Axis::Child {
                wheres.push(format!("{alias}.parent_id IS NULL"));
            }
        } else {
            let prev = format!("t{}", i - 1);
            wheres.push(step_predicate(scheme, step, &prev, &alias));
        }
        if let Some(n) = step.position {
            windowed.push((alias.clone(), n));
        }
    }

    let last = format!("t{}", path.steps.len() - 1);
    let mut sql = String::new();
    let _ = write!(sql, "SELECT DISTINCT {last}.node_id\nFROM {}\n", from.join(", "));
    if !wheres.is_empty() {
        let _ = write!(sql, "WHERE {}", wheres.join("\n  AND "));
    }
    for (alias, n) in windowed {
        let _ = write!(
            sql,
            "\n  AND {n} = ROW_NUMBER() OVER (PARTITION BY context({alias}) ORDER BY doc_order({alias}))"
        );
    }
    sql.push(';');
    sql
}

fn step_predicate(scheme: SqlScheme, step: &Step, prev: &str, cur: &str) -> String {
    match step.axis {
        Axis::Child => format!("{cur}.parent_id = {prev}.node_id"),
        Axis::Descendant => scheme.ancestor(prev, cur),
        Axis::Following => format!(
            "{} AND NOT ({})",
            scheme.before(prev, cur),
            scheme.ancestor(prev, cur)
        ),
        Axis::Preceding => format!(
            "{} AND NOT ({})",
            scheme.before(cur, prev),
            scheme.ancestor(cur, prev)
        ),
        Axis::FollowingSibling => format!(
            "{cur}.parent_id = {prev}.parent_id AND {}",
            scheme.before(prev, cur)
        ),
        Axis::PrecedingSibling => format!(
            "{cur}.parent_id = {prev}.parent_id AND {}",
            scheme.before(cur, prev)
        ),
        Axis::Parent => format!("{prev}.parent_id = {cur}.node_id"),
        Axis::Ancestor => scheme.ancestor(cur, prev),
        Axis::AncestorOrSelf => format!(
            "({} OR {cur}.node_id = {prev}.node_id)",
            scheme.ancestor(cur, prev)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sql(path: &str, scheme: SqlScheme) -> String {
        to_sql(&Path::parse(path).unwrap(), scheme)
    }

    #[test]
    fn prime_descendant_uses_mod() {
        let q = sql("/play//act", SqlScheme::Prime);
        assert!(q.contains("MOD(t1.label, t0.label) = 0"), "{q}");
        assert!(q.contains("t0.tag = 'play'"), "{q}");
        assert!(q.contains("t1.tag = 'act'"), "{q}");
        assert!(q.contains("t0.parent_id IS NULL"), "{q}");
    }

    #[test]
    fn interval_descendant_uses_containment() {
        let q = sql("/play//act", SqlScheme::Interval);
        assert!(q.contains("t0.ord < t1.ord AND t1.ord <= t0.ord + t0.size"), "{q}");
        assert!(!q.contains("MOD"), "{q}");
    }

    #[test]
    fn prefix_descendant_uses_the_udf() {
        let q = sql("/play//act", SqlScheme::Prefix);
        assert!(q.contains("check_prefix(t0.label, t1.label) = 1"), "{q}");
    }

    #[test]
    fn following_excludes_descendants_in_every_scheme() {
        for scheme in [SqlScheme::Interval, SqlScheme::Prime, SqlScheme::Prefix] {
            let q = sql("//act/following::speech", scheme);
            assert!(q.contains("AND NOT ("), "{scheme:?}: {q}");
        }
    }

    #[test]
    fn prime_order_goes_through_the_sc_table() {
        let q = sql("//act/following::speech", SqlScheme::Prime);
        assert!(q.contains("sc_order(t0.self_label) < sc_order(t1.self_label)"), "{q}");
    }

    #[test]
    fn positions_become_window_functions() {
        let q = sql("/play//act[3]", SqlScheme::Interval);
        assert!(q.contains("3 = ROW_NUMBER() OVER"), "{q}");
    }

    #[test]
    fn value_predicates_are_escaped() {
        let path = Path {
            steps: vec![crate::engine::Step {
                axis: Axis::Descendant,
                tag: "author".into(),
                position: None,
                value: Some("O'Brien".into()),
                has_child: None,
            }],
        };
        let q = to_sql(&path, SqlScheme::Prime);
        assert!(q.contains("t0.text = 'O''Brien'"), "{q}");
    }

    #[test]
    fn existence_predicates_become_exists_subqueries() {
        let q = sql("//act[scene]", SqlScheme::Interval);
        assert!(q.contains("EXISTS (SELECT 1 FROM interval_labels c"), "{q}");
        assert!(q.contains("c.tag = 'scene'"), "{q}");
    }

    #[test]
    fn one_join_per_step() {
        let q = sql("/a//b//c/d", SqlScheme::Prime);
        assert_eq!(q.matches("prime_labels t").count(), 4, "{q}");
        assert!(q.contains("SELECT DISTINCT t3.node_id"), "{q}");
    }
}
