//! One query evaluator per labeling scheme.
//!
//! Each evaluator owns its scheme's label table plus whatever the scheme
//! uses for document order: the interval scheme reads its `order` field, the
//! prefix scheme compares labels lexicographically (we materialize the ranks
//! the RDBMS would get from `ORDER BY label`), and the prime scheme derives
//! order numbers from the SC table (`SC mod self-label`) at query time —
//! preserving the cost profile the paper measures in Figure 15.

use crate::engine::{eval_path, OrderOracle, Path, QueryError};
use crate::relstore::LabelTable;
use std::collections::HashMap;
use xp_baselines::interval::{IntervalLabel, IntervalScheme};
use xp_baselines::prefix::{Prefix2Scheme, PrefixLabel};
use xp_labelkit::Scheme;
use xp_prime::ordered::OrderedPrimeDoc;
use xp_prime::PrimeLabel;
use xp_xmltree::{NodeId, XmlTree};

/// A scheme-specific query evaluator.
pub trait Evaluator {
    /// Scheme name for experiment output.
    fn name(&self) -> &'static str;

    /// Evaluates a parsed path, returning matching nodes in document order,
    /// or a typed error when a resource budget is exceeded (or an armed
    /// fault point fires).
    fn try_eval(&self, path: &Path) -> Result<Vec<NodeId>, QueryError>;

    /// Evaluates a parsed path.
    ///
    /// # Panics
    /// Panics on evaluation failure (exceeded budgets, injected faults) —
    /// the experiment harnesses run trusted static queries. Untrusted
    /// callers (the CLI) use [`Evaluator::try_eval`].
    fn eval(&self, path: &Path) -> Vec<NodeId> {
        match self.try_eval(path) {
            Ok(nodes) => nodes,
            Err(e) => panic!("query evaluation failed: {e}"),
        }
    }

    /// Evaluates a path given as text.
    ///
    /// # Panics
    /// Panics on syntax errors and evaluation failures (experiment queries
    /// are static).
    fn eval_str(&self, path: &str) -> Vec<NodeId> {
        match Path::parse(path) {
            Ok(parsed) => self.eval(&parsed),
            Err(e) => panic!("invalid path {path:?}: {e}"),
        }
    }

    /// The fixed-width storage footprint of this evaluator's label table.
    fn fixed_width_bits(&self) -> u64;
}

// ---------------------------------------------------------------- interval

/// Interval-scheme evaluator (`order` comparisons, containment joins).
pub struct IntervalEvaluator {
    table: LabelTable<IntervalLabel>,
}

impl IntervalEvaluator {
    /// Labels `tree` densely and builds the table.
    pub fn build(tree: &XmlTree) -> Self {
        let doc = IntervalScheme::dense().label(tree);
        IntervalEvaluator { table: LabelTable::build(tree, &doc) }
    }

    /// The underlying table.
    pub fn table(&self) -> &LabelTable<IntervalLabel> {
        &self.table
    }
}

struct IntervalOracle<'a>(&'a LabelTable<IntervalLabel>);

impl OrderOracle for IntervalOracle<'_> {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.label(node).order
    }
}

impl Evaluator for IntervalEvaluator {
    fn name(&self) -> &'static str {
        "Interval"
    }

    fn try_eval(&self, path: &Path) -> Result<Vec<NodeId>, QueryError> {
        eval_path(&self.table, &IntervalOracle(&self.table), path)
    }

    fn fixed_width_bits(&self) -> u64 {
        self.table.fixed_width_bits()
    }
}

// ---------------------------------------------------------------- prefix-2

/// Prefix-2 evaluator (prefix-test "UDF" joins, lexicographic order).
pub struct Prefix2Evaluator {
    table: LabelTable<PrefixLabel>,
    ranks: HashMap<NodeId, u64>,
}

impl Prefix2Evaluator {
    /// Labels `tree` with CKM codes and builds the table.
    pub fn build(tree: &XmlTree) -> Self {
        let doc = Prefix2Scheme.label(tree);
        let table = LabelTable::build(tree, &doc);
        // The RDBMS sorts byte-comparable labels; materialize those ranks.
        let mut nodes: Vec<NodeId> = table.rows().iter().map(|r| r.node).collect();
        nodes.sort_by(|&a, &b| table.label(a).bits().cmp(table.label(b).bits()));
        let ranks = nodes.into_iter().enumerate().map(|(i, n)| (n, i as u64)).collect();
        Prefix2Evaluator { table, ranks }
    }

    /// The underlying table.
    pub fn table(&self) -> &LabelTable<PrefixLabel> {
        &self.table
    }
}

struct PrefixOracle<'a>(&'a HashMap<NodeId, u64>);

impl OrderOracle for PrefixOracle<'_> {
    fn rank(&self, node: NodeId) -> u64 {
        self.0[&node]
    }
}

impl Evaluator for Prefix2Evaluator {
    fn name(&self) -> &'static str {
        "Prefix-2"
    }

    fn try_eval(&self, path: &Path) -> Result<Vec<NodeId>, QueryError> {
        eval_path(&self.table, &PrefixOracle(&self.ranks), path)
    }

    fn fixed_width_bits(&self) -> u64 {
        self.table.fixed_width_bits()
    }
}

// ------------------------------------------------------------------- prime

/// Prime-scheme evaluator: `mod` joins, order numbers from the SC table.
pub struct PrimeEvaluator {
    table: LabelTable<PrimeLabel>,
    ordered: OrderedPrimeDoc,
}

impl PrimeEvaluator {
    /// Labels `tree`, builds the SC table with the given chunk capacity
    /// (the paper's §5.4 uses 5), and builds the label table.
    ///
    /// # Panics
    /// Panics if the SC table cannot be built (see
    /// [`PrimeEvaluator::try_build`] for the fallible form).
    pub fn build(tree: &XmlTree, chunk_capacity: usize) -> Self {
        match Self::try_build(tree, chunk_capacity) {
            Ok(ev) => ev,
            Err(e) => panic!("prime labeling failed: {e}"),
        }
    }

    /// Fallible [`PrimeEvaluator::build`].
    pub fn try_build(tree: &XmlTree, chunk_capacity: usize) -> Result<Self, xp_prime::Error> {
        let ordered = OrderedPrimeDoc::build(tree, chunk_capacity)?;
        let table = LabelTable::build(tree, ordered.labels());
        Ok(PrimeEvaluator { table, ordered })
    }

    /// The underlying table.
    pub fn table(&self) -> &LabelTable<PrimeLabel> {
        &self.table
    }

    /// The ordered document (labels + SC table).
    pub fn ordered(&self) -> &OrderedPrimeDoc {
        &self.ordered
    }
}

struct ScOracle<'a>(&'a OrderedPrimeDoc);

impl OrderOracle for ScOracle<'_> {
    fn rank(&self, node: NodeId) -> u64 {
        self.0.order_of(node)
    }
}

impl Evaluator for PrimeEvaluator {
    fn name(&self) -> &'static str {
        "Prime"
    }

    fn try_eval(&self, path: &Path) -> Result<Vec<NodeId>, QueryError> {
        eval_path(&self.table, &ScOracle(&self.ordered), path)
    }

    fn fixed_width_bits(&self) -> u64 {
        self.table.fixed_width_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::parse;

    fn play() -> XmlTree {
        parse(
            "<play><title/>\
             <act><title/><scene><speech><line/><line/></speech>\
                  <speech><line/></speech></scene></act>\
             <act><title/><scene><speech><line/></speech></scene>\
                  <scene><speech><line/><line/><line/></speech></scene></act>\
             <act><title/></act></play>",
        )
        .unwrap()
    }

    fn evaluators(tree: &XmlTree) -> Vec<Box<dyn Evaluator>> {
        vec![
            Box::new(IntervalEvaluator::build(tree)),
            Box::new(Prefix2Evaluator::build(tree)),
            Box::new(PrimeEvaluator::build(tree, 5)),
        ]
    }

    #[test]
    fn all_schemes_agree_on_every_axis() {
        let tree = play();
        let evs = evaluators(&tree);
        for path in [
            "/play/act",
            "/play//line",
            "//scene/speech",
            "/play//act[2]//line",
            "/play/act[1]/following::act",
            "/play//scene[2]/preceding::speech",
            "//act/following-sibling::act",
            "//act[3]/preceding-sibling::act[1]",
            "//speech/following-sibling::speech",
            "//line[2]",
        ] {
            let results: Vec<Vec<NodeId>> = evs.iter().map(|e| e.eval_str(path)).collect();
            assert_eq!(results[0], results[1], "{path}: Interval vs Prefix-2");
            assert_eq!(results[0], results[2], "{path}: Interval vs Prime");
        }
    }

    #[test]
    fn descendant_counts_match_the_tree() {
        let tree = play();
        for ev in evaluators(&tree) {
            assert_eq!(ev.eval_str("/play//line").len(), 7, "{}", ev.name());
            assert_eq!(ev.eval_str("/play//act").len(), 3, "{}", ev.name());
            assert_eq!(ev.eval_str("/play//speech").len(), 4, "{}", ev.name());
            assert_eq!(ev.eval_str("//title").len(), 4, "{}", ev.name());
        }
    }

    #[test]
    fn positional_predicate_selects_per_context() {
        let tree = play();
        for ev in evaluators(&tree) {
            // 2nd line within each speech: speeches have 2, 1, 1, 3 lines.
            assert_eq!(ev.eval_str("//speech/line[2]").len(), 2, "{}", ev.name());
            // 4th act does not exist.
            assert!(ev.eval_str("/play/act[4]").is_empty(), "{}", ev.name());
        }
    }

    #[test]
    fn following_excludes_descendants() {
        let tree = play();
        for ev in evaluators(&tree) {
            // From act[1]: its own lines are NOT "following"; act 2's are.
            let lines = ev.eval_str("/play/act[1]/following::line");
            assert_eq!(lines.len(), 4, "{}", ev.name());
        }
    }

    #[test]
    fn preceding_excludes_ancestors() {
        let tree = play();
        for ev in evaluators(&tree) {
            // From the last act: preceding acts are 1 and 2, but the play
            // (its ancestor) is excluded from preceding::play.
            assert_eq!(ev.eval_str("//act[3]/preceding::act").len(), 2, "{}", ev.name());
            assert!(ev.eval_str("//act[3]/preceding::play").is_empty(), "{}", ev.name());
        }
    }

    #[test]
    fn results_are_in_document_order_without_duplicates() {
        let tree = play();
        let prime = PrimeEvaluator::build(&tree, 5);
        // Multiple contexts (all 4 speeches) share following lines: dedup.
        let lines = prime.eval_str("//speech[1]/following::line");
        let mut sorted = lines.clone();
        sorted.sort_by_key(|&n| prime.ordered().order_of(n));
        sorted.dedup();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn unknown_tag_yields_empty() {
        let tree = play();
        for ev in evaluators(&tree) {
            assert!(ev.eval_str("//nothing").is_empty());
        }
    }

    #[test]
    fn wildcard_matches_everything() {
        let tree = play();
        let total = tree.elements().count();
        for ev in evaluators(&tree) {
            assert_eq!(ev.eval_str("//*").len(), total, "{}", ev.name());
            // All children of all scenes, whatever their tag.
            let under_scene = ev.eval_str("//scene/*").len();
            assert_eq!(under_scene, ev.eval_str("//scene/title").len() + ev.eval_str("//scene/speech").len());
        }
    }

    #[test]
    fn upward_axes_agree_across_schemes() {
        let tree = play();
        let evs = evaluators(&tree);
        for path in [
            "//line/parent::speech",
            "//line/ancestor::act",
            "//line/ancestor::*",
            "//line[1]/ancestor-or-self::*",
            "//speech/parent::*",
        ] {
            let results: Vec<Vec<NodeId>> = evs.iter().map(|e| e.eval_str(path)).collect();
            assert_eq!(results[0], results[1], "{path}");
            assert_eq!(results[0], results[2], "{path}");
            assert!(!results[0].is_empty(), "{path} found nothing");
        }
    }

    #[test]
    fn ancestor_or_self_includes_the_context() {
        let tree = play();
        let ev = PrimeEvaluator::build(&tree, 5);
        // From each act: itself + play = 2 nodes on the or-self chain
        // matching *; "ancestor::act" from an act is empty (acts don't nest).
        assert!(ev.eval_str("//act[1]/ancestor::act").is_empty());
        let chain = ev.eval_str("//act[1]/ancestor-or-self::*");
        assert_eq!(chain.len(), 2, "play + the act itself");
    }

    #[test]
    fn value_predicates_select_by_text() {
        let tree = xp_xmltree::parse::parse(
            r#"<book><author>Mary</author><author>Tom</author><author>John</author>
               <editor>John</editor></book>"#,
        )
        .unwrap();
        for ev in [
            Box::new(IntervalEvaluator::build(&tree)) as Box<dyn Evaluator>,
            Box::new(Prefix2Evaluator::build(&tree)),
            Box::new(PrimeEvaluator::build(&tree, 5)),
        ] {
            // §4's query: books whose author is "John".
            let johns = ev.eval_str(r#"/book/author[="John"]"#);
            assert_eq!(johns.len(), 1, "{}", ev.name());
            assert_eq!(tree.tag(johns[0]), Some("author"));
            // Value + position compose: the 1st John-valued author.
            assert_eq!(ev.eval_str(r#"//author[="John"][1]"#).len(), 1);
            // Value that only the editor has, on the author axis: empty.
            assert!(ev.eval_str(r#"/book/author[="nobody"]"#).is_empty());
        }
    }

    #[test]
    fn existence_predicates_filter_by_child_tag() {
        let tree = play();
        for ev in evaluators(&tree) {
            // Scenes that actually contain a speech (all of them here).
            let with_speech = ev.eval_str("//scene[speech]").len();
            assert_eq!(with_speech, ev.eval_str("//scene").len(), "{}", ev.name());
            // Acts that directly contain a scene: acts 1 and 2 but not 3.
            assert_eq!(ev.eval_str("//act[scene]").len(), 2, "{}", ev.name());
            // Nothing has a <nothing> child.
            assert!(ev.eval_str("//act[nothing]").is_empty(), "{}", ev.name());
            // Composition with position: the 2nd scene-bearing act.
            assert_eq!(ev.eval_str("//act[scene][2]").len(), 1, "{}", ev.name());
        }
    }

    #[test]
    fn parent_of_root_is_empty() {
        let tree = play();
        for ev in evaluators(&tree) {
            assert!(ev.eval_str("/play/parent::*").is_empty(), "{}", ev.name());
        }
    }
}
