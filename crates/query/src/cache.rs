//! An epoch-stamped query-result cache with precise relabel invalidation.
//!
//! The paper's core claim is that prime labels confine relabeling cost to
//! the SC table: a mutation renumbers *order*, not labels, outside the
//! touched region. That locality is exactly what makes a query cache
//! worthwhile — a cached result can survive a mutation if (and only if)
//! the mutation provably touched nothing the query looked at. This module
//! supplies that cache for the server's epoch-stamped snapshots:
//!
//! * [`TagFootprint`] — the set of element tags a parsed [`Path`] can read:
//!   every `step.tag` plus every `[tag]` has-child predicate. A `*`
//!   wildcard step makes the footprint universal (never survives).
//! * [`TouchedTags`] — the set of tags a mutation batch touched, built from
//!   [`RelabelReport`]s (tentpole invariant: the report's
//!   inserted/relabeled/removed lists must cover every changed row — see
//!   the `report_coverage` differential) or, shard-granularly, from the
//!   tag vocabulary of dirtied [`crate::ShardedTables`] partitions.
//! * [`QueryCache`] — path text → node list, stamped with the epoch range
//!   over which the entry is valid. The single writer calls
//!   [`QueryCache::advance`] with the batch's touched tags *before*
//!   publishing the new snapshot; only entries whose footprint intersects
//!   the touched set are dropped, so unchanged regions keep serving cached
//!   rows across mutations (per-label invalidation, not per-epoch flush).
//!
//! # Soundness
//!
//! A hit requires `entry.valid_from <= reader_epoch <= cache epoch`. Within
//! that range the entry is exact because a path's result is a function of
//! (a) the tag-filtered row sets of its footprint tags, (b) those rows'
//! parent/label columns, (c) their text values, and (d) their relative
//! document order — and every mutation that can change any of (a)–(d) for a
//! tag appears in the touched set: inserts and relabels by the report's
//! lists, deletes by the removed list (subtrees are removed whole, so no
//! surviving row's parent changes), moves by their delete+insert halves
//! (fresh node ids on re-insert), and text is immutable for a live node.
//! Pairwise order of untouched nodes is invariant under all five mutations.
//! Any uncertainty (a failed multi-step mutation, a wildcard path) is
//! handled conservatively: [`TouchedTags::mark_unknown`] flushes everything,
//! wildcard paths are never cached as surviving.

use crate::engine::Path;
use std::collections::{HashMap, HashSet};
use xp_labelkit::dynamic::RelabelReport;
use xp_xmltree::{NodeId, XmlTree};

/// The element tags a parsed path can read: its step tags and has-child
/// predicate tags. `wildcard` paths (`*` steps) read every tag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TagFootprint {
    /// `true` iff some step matches any element (`*`).
    pub wildcard: bool,
    /// The named tags the path filters on.
    pub tags: HashSet<String>,
}

impl TagFootprint {
    /// The footprint of `path`: every step tag (wildcards flip the
    /// `wildcard` bit instead) and every `[tag]` existence predicate.
    pub fn of_path(path: &Path) -> TagFootprint {
        let mut fp = TagFootprint::default();
        for step in &path.steps {
            if step.tag == "*" {
                fp.wildcard = true;
            } else {
                fp.tags.insert(step.tag.clone());
            }
            if let Some(child) = &step.has_child {
                if child == "*" {
                    fp.wildcard = true;
                } else {
                    fp.tags.insert(child.clone());
                }
            }
        }
        fp
    }

    /// `true` iff a result with this footprint is unaffected by a mutation
    /// that touched exactly `touched`.
    pub fn survives(&self, touched: &TouchedTags) -> bool {
        if touched.unknown || self.wildcard {
            return false;
        }
        self.tags.is_disjoint(&touched.tags)
    }
}

/// The set of element tags a mutation batch touched, or `unknown` when the
/// batch's effect could not be attributed precisely (conservative flush).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchedTags {
    /// `true` iff attribution failed and every cached entry must go.
    pub unknown: bool,
    /// Tags of every inserted, relabeled, or removed node.
    pub tags: HashSet<String>,
}

impl TouchedTags {
    /// An empty touched-set (a batch that changed nothing).
    pub fn new() -> TouchedTags {
        TouchedTags::default()
    }

    /// Records that attribution failed; [`TagFootprint::survives`] is then
    /// `false` for every footprint.
    pub fn mark_unknown(&mut self) {
        self.unknown = true;
    }

    /// Adds one touched tag.
    pub fn add(&mut self, tag: &str) {
        if !self.unknown {
            self.tags.insert(tag.to_string());
        }
    }

    /// Folds a mutation's [`RelabelReport`] in, resolving node ids to tags
    /// against the *post-apply* tree. Removed nodes resolve too: `detach`
    /// only unlinks a subtree, the arena slot keeps its element tag. A node
    /// id the tree cannot resolve marks the set unknown (never silently
    /// under-invalidate).
    pub fn add_report(&mut self, report: &RelabelReport, tree: &XmlTree) {
        if self.unknown {
            return;
        }
        let all = report
            .inserted
            .iter()
            .chain(report.relabeled.iter())
            .chain(report.removed.iter());
        for &node in all {
            match tree.tag(node) {
                Some(tag) => {
                    self.tags.insert(tag.to_string());
                }
                None => {
                    self.unknown = true;
                    return;
                }
            }
        }
    }

    /// `true` iff nothing was touched and attribution succeeded.
    pub fn is_empty(&self) -> bool {
        !self.unknown && self.tags.is_empty()
    }
}

/// Hit/miss/invalidation counters, mirrored into `ServerStats` by the
/// server front-end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to cold evaluation.
    pub misses: u64,
    /// Entries dropped by precise invalidation (plus conservative flushes).
    pub invalidated: u64,
}

struct CacheEntry {
    nodes: Vec<NodeId>,
    /// First epoch at which this result is known valid (the epoch it was
    /// computed against). Valid through the cache's current epoch, because
    /// [`QueryCache::advance`] drops it the moment a mutation intersects
    /// its footprint.
    valid_from: u64,
    footprint: TagFootprint,
}

/// A per-document query-result cache stamped with the writer's epoch
/// counter.
///
/// Single-writer discipline: the epoch loop calls [`QueryCache::advance`]
/// with each batch's [`TouchedTags`] *before* swapping the published
/// snapshot pointer, so by the time a reader can hold epoch `E+1`, every
/// entry the batch could have stalled is gone. Readers at an older epoch
/// `E` remain safe: an entry surviving `advance` is valid at both `E` and
/// `E+1` (its footprint is disjoint from the mutation), and an entry
/// inserted at `E+1` has `valid_from = E+1 > E` and misses for them.
pub struct QueryCache {
    epoch: u64,
    entries: HashMap<String, CacheEntry>,
    capacity: usize,
    stats: CacheStats,
}

/// Default maximum number of cached query results per document.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

impl QueryCache {
    /// An empty cache holding at most `capacity` entries, starting at
    /// epoch `epoch` (the epoch of the currently published snapshot).
    pub fn new(capacity: usize, epoch: u64) -> QueryCache {
        QueryCache { epoch, entries: HashMap::new(), capacity: capacity.max(1), stats: CacheStats::default() }
    }

    /// The epoch the cache was last advanced to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Running hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `path_text` for a reader holding a snapshot stamped
    /// `reader_epoch`. Returns the cached node list on a hit; counts a miss
    /// (and returns `None`) when the entry is absent or was computed
    /// against a newer epoch than the reader's snapshot.
    pub fn lookup(&mut self, path_text: &str, reader_epoch: u64) -> Option<Vec<NodeId>> {
        match self.entries.get(path_text) {
            Some(e) if e.valid_from <= reader_epoch && reader_epoch <= self.epoch => {
                self.stats.hits += 1;
                Some(e.nodes.clone())
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Caches a cold-evaluated result. `computed_epoch` is the epoch of the
    /// snapshot the result was evaluated against; the insert is dropped if
    /// the writer has advanced past it in the meantime (the result may
    /// already be stale) or if the cache is full and `path_text` is new.
    pub fn insert(
        &mut self,
        path_text: &str,
        path: &Path,
        computed_epoch: u64,
        nodes: Vec<NodeId>,
    ) {
        if computed_epoch != self.epoch {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(path_text) {
            return;
        }
        let footprint = TagFootprint::of_path(path);
        self.entries.insert(
            path_text.to_string(),
            CacheEntry { nodes, valid_from: computed_epoch, footprint },
        );
    }

    /// Advances the cache to `new_epoch`, dropping exactly the entries
    /// whose footprint intersects `touched` (all of them when `touched` is
    /// unknown). Returns the number of entries invalidated. Must be called
    /// by the writer before the `new_epoch` snapshot becomes visible.
    pub fn advance(&mut self, new_epoch: u64, touched: &TouchedTags) -> u64 {
        let before = self.entries.len();
        if touched.unknown {
            self.entries.clear();
        } else if !touched.tags.is_empty() {
            self.entries.retain(|_, e| e.footprint.survives(touched));
        }
        let dropped = (before - self.entries.len()) as u64;
        self.stats.invalidated += dropped;
        self.epoch = new_epoch;
        dropped
    }

    /// Drops everything and advances to `new_epoch` — the conservative
    /// fallback for batches whose effects cannot be attributed.
    pub fn flush(&mut self, new_epoch: u64) -> u64 {
        let mut unknown = TouchedTags::new();
        unknown.mark_unknown();
        self.advance(new_epoch, &unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(text: &str) -> Path {
        match Path::parse(text) {
            Ok(p) => p,
            Err(e) => panic!("bad test path {text:?}: {e}"),
        }
    }

    fn touched(tags: &[&str]) -> TouchedTags {
        let mut t = TouchedTags::new();
        for tag in tags {
            t.add(tag);
        }
        t
    }

    fn nodes(tree: &XmlTree, n: usize) -> Vec<NodeId> {
        tree.elements().take(n).collect()
    }

    #[test]
    fn footprint_collects_step_and_predicate_tags() {
        let fp = TagFootprint::of_path(&path("/play//act[scene]/title"));
        assert!(!fp.wildcard);
        for tag in ["play", "act", "scene", "title"] {
            assert!(fp.tags.contains(tag), "missing {tag}");
        }
        assert_eq!(fp.tags.len(), 4);
    }

    #[test]
    fn wildcard_paths_never_survive() {
        let fp = TagFootprint::of_path(&path("/play//*"));
        assert!(fp.wildcard);
        assert!(!fp.survives(&touched(&[])));
    }

    #[test]
    fn disjoint_mutations_keep_entries() {
        let tree = XmlTree::new("play");
        let mut cache = QueryCache::new(8, 0);
        cache.insert("//act", &path("//act"), 0, nodes(&tree, 1));
        cache.insert("//speech", &path("//speech"), 0, nodes(&tree, 1));
        // A mutation touching only <line> elements invalidates neither.
        assert_eq!(cache.advance(1, &touched(&["line"])), 0);
        assert!(cache.lookup("//act", 1).is_some());
        assert!(cache.lookup("//speech", 1).is_some());
        // Touching <act> drops exactly the act entry.
        assert_eq!(cache.advance(2, &touched(&["act"])), 1);
        assert!(cache.lookup("//act", 2).is_none());
        assert!(cache.lookup("//speech", 2).is_some());
    }

    #[test]
    fn unknown_touched_set_flushes_everything() {
        let tree = XmlTree::new("r");
        let mut cache = QueryCache::new(8, 0);
        cache.insert("//a", &path("//a"), 0, nodes(&tree, 1));
        cache.insert("//b", &path("//b"), 0, nodes(&tree, 1));
        let mut t = TouchedTags::new();
        t.mark_unknown();
        assert_eq!(cache.advance(1, &t), 2);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn old_readers_never_see_results_from_the_future() {
        let tree = XmlTree::new("r");
        let mut cache = QueryCache::new(8, 0);
        cache.advance(1, &TouchedTags::new());
        // Result computed at epoch 1; a reader still holding epoch 0 must
        // miss (its snapshot predates the cached computation).
        cache.insert("//a", &path("//a"), 1, nodes(&tree, 1));
        assert!(cache.lookup("//a", 0).is_none());
        assert!(cache.lookup("//a", 1).is_some());
    }

    #[test]
    fn stale_computations_are_not_inserted() {
        let tree = XmlTree::new("r");
        let mut cache = QueryCache::new(8, 0);
        // Reader evaluated against epoch 0, but the writer advanced first.
        cache.advance(1, &TouchedTags::new());
        cache.insert("//a", &path("//a"), 0, nodes(&tree, 1));
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bounds_the_entry_count() {
        let tree = XmlTree::new("r");
        let mut cache = QueryCache::new(2, 0);
        cache.insert("//a", &path("//a"), 0, nodes(&tree, 1));
        cache.insert("//b", &path("//b"), 0, nodes(&tree, 1));
        cache.insert("//c", &path("//c"), 0, nodes(&tree, 1));
        assert_eq!(cache.len(), 2);
        // Overwriting a resident key is always allowed.
        cache.insert("//a", &path("//a"), 0, Vec::new());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn report_tags_resolve_against_the_post_apply_tree() {
        let mut tree = XmlTree::new("play");
        let act = tree.append_element(tree.root(), "act");
        let scene = tree.append_element(act, "scene");
        tree.detach(scene); // removed subtrees keep their arena tags
        let report = RelabelReport {
            inserted: vec![act],
            relabeled: vec![],
            removed: vec![scene],
            side_updates: 0,
        };
        let mut t = TouchedTags::new();
        t.add_report(&report, &tree);
        assert!(!t.unknown);
        assert!(t.tags.contains("act") && t.tags.contains("scene"));
        assert_eq!(t.tags.len(), 2);
    }

    #[test]
    fn hit_and_miss_counters_accumulate() {
        let tree = XmlTree::new("r");
        let mut cache = QueryCache::new(8, 0);
        assert!(cache.lookup("//a", 0).is_none());
        cache.insert("//a", &path("//a"), 0, nodes(&tree, 1));
        assert!(cache.lookup("//a", 0).is_some());
        assert!(cache.lookup("//a", 0).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }
}
