//! Query plans: what the engine will actually do for a path, with
//! cardinality estimates — `EXPLAIN` for the label-table engine.

use crate::engine::{Axis, Path};
use crate::relstore::LabelTable;
use std::fmt::Write;
use xp_labelkit::LabelOps;

/// How a step will be evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Position-free step over the whole context set: one stack-tree
    /// structural join (or hash lookup for child/sibling/parent axes).
    BatchJoin,
    /// Positional step: per-context selection, sort by order number, index
    /// (the paper's own evaluation strategy).
    PerContext,
}

/// The plan for one step.
#[derive(Debug, Clone)]
pub struct StepPlan {
    /// Rendered step (axis + tag + predicates).
    pub description: String,
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Rows the tag scan will produce (before structural predicates).
    pub scan_rows: usize,
}

/// A whole-path plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// One entry per step.
    pub steps: Vec<StepPlan>,
}

impl Plan {
    /// Builds the plan for `path` over `table`.
    pub fn of<L: LabelOps>(table: &LabelTable<L>, path: &Path) -> Plan {
        let steps = path
            .steps
            .iter()
            .map(|step| {
                let scan_rows = if step.tag == "*" {
                    table.len()
                } else {
                    table.scan_tag(&step.tag).len()
                };
                let axis = match step.axis {
                    Axis::Child => "child",
                    Axis::Descendant => "descendant",
                    Axis::Following => "following",
                    Axis::Preceding => "preceding",
                    Axis::FollowingSibling => "following-sibling",
                    Axis::PrecedingSibling => "preceding-sibling",
                    Axis::Parent => "parent",
                    Axis::Ancestor => "ancestor",
                    Axis::AncestorOrSelf => "ancestor-or-self",
                };
                let mut description = format!("{axis}::{}", step.tag);
                if let Some(v) = &step.value {
                    let _ = write!(description, "[=\"{v}\"]");
                }
                if let Some(c) = &step.has_child {
                    let _ = write!(description, "[{c}]");
                }
                if let Some(n) = step.position {
                    let _ = write!(description, "[{n}]");
                }
                StepPlan {
                    description,
                    strategy: if step.position.is_some() {
                        Strategy::PerContext
                    } else {
                        Strategy::BatchJoin
                    },
                    scan_rows,
                }
            })
            .collect();
        Plan { steps }
    }

    /// Renders the plan as indented text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            let strategy = match step.strategy {
                Strategy::BatchJoin => "stack-tree join",
                Strategy::PerContext => "per-context sort+index",
            };
            let _ = writeln!(
                out,
                "{:indent$}{}. {}  [{} rows scanned, {strategy}]",
                "",
                i + 1,
                step.description,
                step.scan_rows,
                indent = i * 2,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_baselines::interval::IntervalScheme;
    use xp_labelkit::Scheme;
    use xp_xmltree::parse;

    fn plan_for(src: &str, path: &str) -> Plan {
        let tree = parse(src).unwrap();
        let doc = IntervalScheme::dense().label(&tree);
        let table = LabelTable::build(&tree, &doc);
        Plan::of(&table, &Path::parse(path).unwrap())
    }

    #[test]
    fn strategies_follow_positions() {
        let p = plan_for("<a><b/><b/><c/></a>", "/a/b[2]/following::c");
        assert_eq!(p.steps[0].strategy, Strategy::BatchJoin);
        assert_eq!(p.steps[1].strategy, Strategy::PerContext);
        assert_eq!(p.steps[2].strategy, Strategy::BatchJoin);
    }

    #[test]
    fn scan_estimates_use_the_tag_index() {
        let p = plan_for("<a><b/><b/><c/></a>", "//b/following::c");
        assert_eq!(p.steps[0].scan_rows, 2);
        assert_eq!(p.steps[1].scan_rows, 1);
        let w = plan_for("<a><b/><b/><c/></a>", "//*");
        assert_eq!(w.steps[0].scan_rows, 4);
    }

    #[test]
    fn render_is_readable() {
        let p = plan_for("<a><b/></a>", "/a/b[1]");
        let text = p.render();
        assert!(text.contains("1. child::a"));
        assert!(text.contains("2. child::b[1]"));
        assert!(text.contains("per-context sort+index"));
    }

    #[test]
    fn predicates_appear_in_descriptions() {
        let tree = parse("<a><b>x</b></a>").unwrap();
        let doc = IntervalScheme::dense().label(&tree);
        let table = LabelTable::build(&tree, &doc);
        let p = Plan::of(&table, &Path::parse(r#"//b[="x"][1]"#).unwrap());
        assert!(p.steps[0].description.contains("[=\"x\"]"));
        assert!(p.steps[0].description.contains("[1]"));
        let q = Plan::of(&table, &Path::parse("//a[b]").unwrap());
        assert!(q.steps[0].description.contains("[b]"));
    }
}
