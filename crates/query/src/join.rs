//! Stack-based structural joins.
//!
//! The paper's §1 frames query evaluation around "containment joins and
//! structural joins whereby the pattern tree is composed by matching
//! ancestor and descendant pairs". The naive way to match an ancestor set
//! `A` against a candidate set `D` is the O(|A|·|D|) nested loop; the
//! classic stack-tree join does it in one merged pass over both sets in
//! document order, exploiting two facts:
//!
//! * an ancestor always precedes its descendants in document order, and
//! * the `A`-elements that are ancestors of the current node form a nested
//!   chain — a stack.
//!
//! [`ancestor_descendant_counts`] is the single primitive: one pass that
//! reports, for every target, how many `A`-elements are its proper
//! ancestors, and for every `A`-element, how many targets lie in its
//! subtree. Every position-free axis of the engine reduces to it.

use xp_labelkit::LabelOps;

/// One element of a join input: `(document-order rank, label)`.
pub type Ranked<'a, L> = (u64, &'a L);

/// Output of [`ancestor_descendant_counts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinCounts {
    /// For each target (in the order given): the number of `ancestors`
    /// elements that are proper ancestors of it.
    pub ancestors_of_target: Vec<usize>,
    /// For each ancestor (in the order given): the number of targets that
    /// are proper descendants of it.
    pub targets_under_ancestor: Vec<usize>,
}

/// The stack-tree join. Both inputs must be sorted by rank (strictly
/// increasing); ranks must come from one common document order, and a rank
/// may appear in both lists (a node joined with itself is never its own
/// ancestor).
///
/// Runs in `O(|A| + Σ_t chain-depth(t))` after the inputs are sorted.
///
/// # Panics
/// Panics (debug assertion) if an input is not strictly increasing in rank.
pub fn ancestor_descendant_counts<L: LabelOps>(
    ancestors: &[Ranked<'_, L>],
    targets: &[Ranked<'_, L>],
) -> JoinCounts {
    debug_assert!(ancestors.windows(2).all(|w| w[0].0 < w[1].0), "ancestors unsorted");
    debug_assert!(targets.windows(2).all(|w| w[0].0 < w[1].0), "targets unsorted");

    let mut ancestors_of_target = vec![0usize; targets.len()];
    let mut targets_under_ancestor = vec![0usize; ancestors.len()];
    // Stack of indices into `ancestors`, always a nested ancestor chain.
    let mut stack: Vec<usize> = Vec::new();
    let mut next_a = 0usize;

    for (t_idx, &(t_rank, t_label)) in targets.iter().enumerate() {
        // Consume every ancestor that starts before this target.
        while next_a < ancestors.len() && ancestors[next_a].0 < t_rank {
            let (_, a_label) = ancestors[next_a];
            // Maintain the chain invariant: pop everything that does not
            // enclose the incoming element.
            while let Some(&top) = stack.last() {
                if ancestors[top].1.is_ancestor_of(a_label) {
                    break;
                }
                stack.pop();
            }
            stack.push(next_a);
            next_a += 1;
        }
        // Pop chain elements whose subtrees ended before this target.
        while let Some(&top) = stack.last() {
            if ancestors[top].1.is_ancestor_of(t_label) {
                break;
            }
            stack.pop();
        }
        // Everything remaining on the stack is an ancestor of the target.
        ancestors_of_target[t_idx] = stack.len();
        for &a_idx in &stack {
            targets_under_ancestor[a_idx] += 1;
        }
    }
    JoinCounts { ancestors_of_target, targets_under_ancestor }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_baselines::interval::{IntervalLabel, IntervalScheme};
    use xp_labelkit::Scheme;
    use xp_xmltree::{parse, NodeId, XmlTree};

    fn ranked<'a>(
        tree: &XmlTree,
        doc: &'a xp_labelkit::LabeledDoc<IntervalLabel>,
        nodes: &[NodeId],
    ) -> Vec<(u64, &'a IntervalLabel)> {
        let mut v: Vec<(u64, &IntervalLabel)> =
            nodes.iter().map(|&n| (doc.label(n).order, doc.label(n))).collect();
        let _ = tree;
        v.sort_by_key(|&(r, _)| r);
        v
    }

    /// Brute-force reference.
    fn naive<L: LabelOps>(ancestors: &[Ranked<'_, L>], targets: &[Ranked<'_, L>]) -> JoinCounts {
        let ancestors_of_target = targets
            .iter()
            .map(|(_, t)| ancestors.iter().filter(|(_, a)| a.is_ancestor_of(t)).count())
            .collect();
        let targets_under_ancestor = ancestors
            .iter()
            .map(|(_, a)| targets.iter().filter(|(_, t)| a.is_ancestor_of(t)).count())
            .collect();
        JoinCounts { ancestors_of_target, targets_under_ancestor }
    }

    fn check(tree: &XmlTree, a_nodes: &[NodeId], t_nodes: &[NodeId]) {
        let doc = IntervalScheme::dense().label(tree);
        let a = ranked(tree, &doc, a_nodes);
        let t = ranked(tree, &doc, t_nodes);
        assert_eq!(ancestor_descendant_counts(&a, &t), naive(&a, &t));
    }

    #[test]
    fn matches_naive_on_a_small_tree() {
        let tree = parse("<a><b><c/><d/></b><e><f><g/></f></e><h/></a>").unwrap();
        let all: Vec<NodeId> = tree.elements().collect();
        check(&tree, &all, &all);
        check(&tree, &all[..3], &all[3..]);
        check(&tree, &all[4..], &all[..4]);
        check(&tree, &[], &all);
        check(&tree, &all, &[]);
    }

    #[test]
    fn matches_naive_on_random_trees() {
        for seed in 0..8 {
            let tree = xp_datagen::builders::random_tree(
                seed,
                &xp_datagen::builders::RandomTreeParams {
                    nodes: 150,
                    max_depth: 8,
                    max_fanout: 6,
                    tag_variety: 4,
                },
            );
            let all: Vec<NodeId> = tree.elements().collect();
            let evens: Vec<NodeId> = all.iter().copied().step_by(2).collect();
            let thirds: Vec<NodeId> = all.iter().copied().step_by(3).collect();
            check(&tree, &evens, &thirds);
            check(&tree, &thirds, &evens);
            check(&tree, &all, &evens);
        }
    }

    #[test]
    fn self_pairs_are_not_ancestors() {
        let tree = parse("<a><b/></a>").unwrap();
        let all: Vec<NodeId> = tree.elements().collect();
        let doc = IntervalScheme::dense().label(&tree);
        let both = ranked(&tree, &doc, &all);
        let counts = ancestor_descendant_counts(&both, &both);
        // a has no ancestors in the set; b has one (a). a covers b only.
        assert_eq!(counts.ancestors_of_target, vec![0, 1]);
        assert_eq!(counts.targets_under_ancestor, vec![1, 0]);
    }

    #[test]
    fn deep_chain_counts_full_depth() {
        let tree = xp_datagen::builders::chain(30);
        let all: Vec<NodeId> = tree.elements().collect();
        let doc = IntervalScheme::dense().label(&tree);
        let both = ranked(&tree, &doc, &all);
        let counts = ancestor_descendant_counts(&both, &both);
        // The i-th node (0-based) has exactly i ancestors above it.
        assert_eq!(counts.ancestors_of_target, (0..=30).collect::<Vec<_>>());
        // And covers the 30 - i nodes below.
        assert_eq!(counts.targets_under_ancestor, (0..=30).rev().collect::<Vec<_>>());
    }
}
