//! Stack-based structural joins.
//!
//! The paper's §1 frames query evaluation around "containment joins and
//! structural joins whereby the pattern tree is composed by matching
//! ancestor and descendant pairs". The naive way to match an ancestor set
//! `A` against a candidate set `D` is the O(|A|·|D|) nested loop; the
//! classic stack-tree join does it in one merged pass over both sets in
//! document order, exploiting two facts:
//!
//! * an ancestor always precedes its descendants in document order, and
//! * the `A`-elements that are ancestors of the current node form a nested
//!   chain — a stack.
//!
//! [`ancestor_descendant_counts`] is the single primitive: one pass that
//! reports, for every target, how many `A`-elements are its proper
//! ancestors, and for every `A`-element, how many targets lie in its
//! subtree. Every position-free axis of the engine reduces to it.

use xp_labelkit::{AncestorTester, LabelOps};

/// One element of a join input: `(document-order rank, label)`.
pub type Ranked<'a, L> = (u64, &'a L);

/// Tests `ancestors[idx]` against `target` through a per-ancestor memoized
/// [`AncestorTester`]: the stack-tree join probes each stacked ancestor many
/// times (once per incoming element while it sits on the chain), so the
/// per-ancestor setup — the prime scheme's Barrett context — is paid at most
/// once per join input element. Never-stacked ancestors pay nothing.
fn test_ancestor<'a, L: LabelOps>(
    testers: &mut [Option<AncestorTester<'a, L>>],
    ancestors: &[Ranked<'a, L>],
    idx: usize,
    target: &L,
) -> bool {
    testers[idx].get_or_insert_with(|| ancestors[idx].1.ancestor_tester())(target)
}

/// Output of [`ancestor_descendant_counts`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinCounts {
    /// For each target (in the order given): the number of `ancestors`
    /// elements that are proper ancestors of it.
    pub ancestors_of_target: Vec<usize>,
    /// For each ancestor (in the order given): the number of targets that
    /// are proper descendants of it.
    pub targets_under_ancestor: Vec<usize>,
}

/// The stack-tree join. Both inputs must be sorted by rank (strictly
/// increasing); ranks must come from one common document order, and a rank
/// may appear in both lists (a node joined with itself is never its own
/// ancestor).
///
/// Runs in `O(|A| + Σ_t chain-depth(t))` after the inputs are sorted.
///
/// # Panics
/// Panics (debug assertion) if an input is not strictly increasing in rank.
pub fn ancestor_descendant_counts<L: LabelOps>(
    ancestors: &[Ranked<'_, L>],
    targets: &[Ranked<'_, L>],
) -> JoinCounts {
    debug_assert!(ancestors.windows(2).all(|w| w[0].0 < w[1].0), "ancestors unsorted");
    debug_assert!(targets.windows(2).all(|w| w[0].0 < w[1].0), "targets unsorted");

    let mut ancestors_of_target = vec![0usize; targets.len()];
    let mut targets_under_ancestor = vec![0usize; ancestors.len()];
    // Lazily-built fixed-ancestor predicates, one slot per ancestor (see
    // [`test_ancestor`]).
    let mut testers: Vec<Option<AncestorTester<'_, L>>> =
        (0..ancestors.len()).map(|_| None).collect();
    // Stack of indices into `ancestors`, always a nested ancestor chain.
    let mut stack: Vec<usize> = Vec::new();
    let mut next_a = 0usize;

    for (t_idx, &(t_rank, t_label)) in targets.iter().enumerate() {
        // Consume every ancestor that starts before this target.
        while next_a < ancestors.len() && ancestors[next_a].0 < t_rank {
            let (_, a_label) = ancestors[next_a];
            // Maintain the chain invariant: pop everything that does not
            // enclose the incoming element.
            while let Some(&top) = stack.last() {
                if test_ancestor(&mut testers, ancestors, top, a_label) {
                    break;
                }
                stack.pop();
            }
            stack.push(next_a);
            next_a += 1;
        }
        // Pop chain elements whose subtrees ended before this target.
        while let Some(&top) = stack.last() {
            if test_ancestor(&mut testers, ancestors, top, t_label) {
                break;
            }
            stack.pop();
        }
        // Everything remaining on the stack is an ancestor of the target.
        ancestors_of_target[t_idx] = stack.len();
        for &a_idx in &stack {
            targets_under_ancestor[a_idx] += 1;
        }
    }
    JoinCounts { ancestors_of_target, targets_under_ancestor }
}

/// Fixed partition width (in targets) for [`ancestor_descendant_counts_par`].
///
/// This is a *determinism* constant, not a tuning knob: chunk boundaries —
/// and therefore the exact sequence of label comparisons, which the
/// instrumentation layer counts — depend only on the target count, never on
/// the thread count. `par_chunks` runs the same chunks sequentially when the
/// pool has one thread, so `XP_THREADS=1` and `XP_THREADS=8` perform
/// byte-for-byte the same comparisons.
const PAR_TARGET_CHUNK: usize = 1024;

/// Partitioned [`ancestor_descendant_counts`]: the targets are split into
/// fixed-width chunks and each chunk is joined against the *full* ancestor
/// list on the `xp-par` pool.
///
/// The stack-tree join is exact on any subset of targets (it only requires
/// sorted inputs), so each chunk's `ancestors_of_target` slice is final and
/// the merged result is the chunks concatenated in order; an ancestor's
/// subtree may span several chunks, so `targets_under_ancestor` is the
/// element-wise sum. Each chunk re-scans the ancestors it needs (`O(|A|)`
/// extra per chunk), which is why small target sets stay on the sequential
/// path.
///
/// Falls back to the sequential join when fault injection is armed: the
/// fault sites count operations per thread, so a partitioned pass would
/// fire a programmed fault at a different operation than the sequential
/// pass and the differential tests could no longer compare thread counts.
pub fn ancestor_descendant_counts_par<L: LabelOps>(
    ancestors: &[Ranked<'_, L>],
    targets: &[Ranked<'_, L>],
) -> JoinCounts {
    if targets.len() <= PAR_TARGET_CHUNK || xp_testkit::fault::active() {
        return ancestor_descendant_counts(ancestors, targets);
    }
    let partial = xp_par::par_chunks(targets, PAR_TARGET_CHUNK, |chunk| {
        ancestor_descendant_counts(ancestors, chunk)
    });
    let mut merged = JoinCounts {
        ancestors_of_target: Vec::with_capacity(targets.len()),
        targets_under_ancestor: vec![0usize; ancestors.len()],
    };
    for part in partial {
        merged.ancestors_of_target.extend(part.ancestors_of_target);
        for (total, n) in merged.targets_under_ancestor.iter_mut().zip(part.targets_under_ancestor)
        {
            *total += n;
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_baselines::interval::{IntervalLabel, IntervalScheme};
    use xp_labelkit::Scheme;
    use xp_xmltree::{parse, NodeId, XmlTree};

    fn ranked<'a>(
        tree: &XmlTree,
        doc: &'a xp_labelkit::LabeledDoc<IntervalLabel>,
        nodes: &[NodeId],
    ) -> Vec<(u64, &'a IntervalLabel)> {
        let mut v: Vec<(u64, &IntervalLabel)> =
            nodes.iter().map(|&n| (doc.label(n).order, doc.label(n))).collect();
        let _ = tree;
        v.sort_by_key(|&(r, _)| r);
        v
    }

    /// Brute-force reference.
    fn naive<L: LabelOps>(ancestors: &[Ranked<'_, L>], targets: &[Ranked<'_, L>]) -> JoinCounts {
        let ancestors_of_target = targets
            .iter()
            .map(|(_, t)| ancestors.iter().filter(|(_, a)| a.is_ancestor_of(t)).count())
            .collect();
        let targets_under_ancestor = ancestors
            .iter()
            .map(|(_, a)| targets.iter().filter(|(_, t)| a.is_ancestor_of(t)).count())
            .collect();
        JoinCounts { ancestors_of_target, targets_under_ancestor }
    }

    fn check(tree: &XmlTree, a_nodes: &[NodeId], t_nodes: &[NodeId]) {
        let doc = IntervalScheme::dense().label(tree);
        let a = ranked(tree, &doc, a_nodes);
        let t = ranked(tree, &doc, t_nodes);
        assert_eq!(ancestor_descendant_counts(&a, &t), naive(&a, &t));
    }

    #[test]
    fn matches_naive_on_a_small_tree() {
        let tree = parse("<a><b><c/><d/></b><e><f><g/></f></e><h/></a>").unwrap();
        let all: Vec<NodeId> = tree.elements().collect();
        check(&tree, &all, &all);
        check(&tree, &all[..3], &all[3..]);
        check(&tree, &all[4..], &all[..4]);
        check(&tree, &[], &all);
        check(&tree, &all, &[]);
    }

    #[test]
    fn matches_naive_on_random_trees() {
        for seed in 0..8 {
            let tree = xp_datagen::builders::random_tree(
                seed,
                &xp_datagen::builders::RandomTreeParams {
                    nodes: 150,
                    max_depth: 8,
                    max_fanout: 6,
                    tag_variety: 4,
                },
            );
            let all: Vec<NodeId> = tree.elements().collect();
            let evens: Vec<NodeId> = all.iter().copied().step_by(2).collect();
            let thirds: Vec<NodeId> = all.iter().copied().step_by(3).collect();
            check(&tree, &evens, &thirds);
            check(&tree, &thirds, &evens);
            check(&tree, &all, &evens);
        }
    }

    #[test]
    fn self_pairs_are_not_ancestors() {
        let tree = parse("<a><b/></a>").unwrap();
        let all: Vec<NodeId> = tree.elements().collect();
        let doc = IntervalScheme::dense().label(&tree);
        let both = ranked(&tree, &doc, &all);
        let counts = ancestor_descendant_counts(&both, &both);
        // a has no ancestors in the set; b has one (a). a covers b only.
        assert_eq!(counts.ancestors_of_target, vec![0, 1]);
        assert_eq!(counts.targets_under_ancestor, vec![1, 0]);
    }

    /// The partitioned join must agree with the sequential join exactly, at
    /// any thread count, on a target set large enough to span several
    /// chunks (and on the small sets that stay on the sequential path).
    #[test]
    fn partitioned_join_matches_sequential_at_any_thread_count() {
        let tree = xp_datagen::builders::random_tree(
            7,
            &xp_datagen::builders::RandomTreeParams {
                nodes: 3000,
                max_depth: 10,
                max_fanout: 8,
                tag_variety: 5,
            },
        );
        let all: Vec<NodeId> = tree.elements().collect();
        assert!(all.len() > 2 * PAR_TARGET_CHUNK, "need several chunks");
        let doc = IntervalScheme::dense().label(&tree);
        let evens: Vec<NodeId> = all.iter().copied().step_by(2).collect();
        let a = ranked(&tree, &doc, &evens);
        let t = ranked(&tree, &doc, &all);
        let reference = ancestor_descendant_counts(&a, &t);
        for threads in [1, 2, 8] {
            let par = xp_par::with_threads(threads, || ancestor_descendant_counts_par(&a, &t));
            assert_eq!(par, reference, "threads={threads}");
            let small =
                xp_par::with_threads(threads, || ancestor_descendant_counts_par(&a, &t[..50]));
            assert_eq!(small, ancestor_descendant_counts(&a, &t[..50]), "threads={threads}");
        }
    }

    #[test]
    fn deep_chain_counts_full_depth() {
        let tree = xp_datagen::builders::chain(30);
        let all: Vec<NodeId> = tree.elements().collect();
        let doc = IntervalScheme::dense().label(&tree);
        let both = ranked(&tree, &doc, &all);
        let counts = ancestor_descendant_counts(&both, &both);
        // The i-th node (0-based) has exactly i ancestors above it.
        assert_eq!(counts.ancestors_of_target, (0..=30).collect::<Vec<_>>());
        // And covers the 30 - i nodes below.
        assert_eq!(counts.targets_under_ancestor, (0..=30).rev().collect::<Vec<_>>());
    }
}
