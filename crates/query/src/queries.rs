//! The nine test queries of Table 2.
//!
//! Two of the paper's printed paths cannot return rows on the standard
//! play structure (`PERSONA` lives under `PERSONAE`, not under `ACT`; an
//! `ACT`'s following *siblings* are `ACT`s, not `SPEECH`es), so Q3 and Q7
//! are normalized to the evidently intended targets; the deviations are
//! recorded here and in EXPERIMENTS.md. Leading context steps (`/act[5]`,
//! `/speech[4]`) are anchored under `/PLAY` the way the corpus is rooted.

use crate::evaluators::Evaluator;

/// One Table 2 query.
#[derive(Debug, Clone, Copy)]
pub struct TestQuery {
    /// "Q1" … "Q9".
    pub id: &'static str,
    /// The paper's printed path.
    pub paper_path: &'static str,
    /// The path we execute (uppercase tags, normalized; see module docs).
    pub path: &'static str,
}

/// All nine queries, in Table 2 order.
pub const TEST_QUERIES: [TestQuery; 9] = [
    TestQuery { id: "Q1", paper_path: "/play//act[4]", path: "//PLAY//ACT[4]" },
    TestQuery {
        id: "Q2",
        paper_path: "/play//act[3]//Following::act",
        path: "//PLAY//ACT[3]/following::ACT",
    },
    TestQuery { id: "Q3", paper_path: "/play//act//persona", path: "//PLAY//PERSONA" },
    TestQuery {
        id: "Q4",
        paper_path: "/act[5]//Following::speech",
        path: "//PLAY//ACT[5]/following::SPEECH",
    },
    TestQuery {
        id: "Q5",
        paper_path: "/speech[4]//Preceding::line",
        path: "//PLAY//SCENE//SPEECH[4]/preceding::LINE",
    },
    TestQuery { id: "Q6", paper_path: "/play//act[3]//line", path: "//PLAY//ACT[3]//LINE" },
    TestQuery {
        id: "Q7",
        paper_path: "/act//Following-Sibling::speech[3]",
        path: "//PLAY//SPEECH/following-sibling::SPEECH[3]",
    },
    TestQuery { id: "Q8", paper_path: "/play//speech", path: "//PLAY//SPEECH" },
    TestQuery { id: "Q9", paper_path: "/play//line", path: "//PLAY//LINE" },
];

/// Runs all nine queries on one evaluator, returning `(id, result count)`.
pub fn run_all(ev: &dyn Evaluator) -> Vec<(&'static str, usize)> {
    TEST_QUERIES.iter().map(|q| (q.id, ev.eval_str(q.path).len())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluators::{IntervalEvaluator, Prefix2Evaluator, PrimeEvaluator};
    use xp_datagen::shakespeare::{PlayParams, ShakespeareCorpus};

    fn small_corpus() -> xp_xmltree::XmlTree {
        ShakespeareCorpus::generate_with(2, 7, &PlayParams::miniature()).tree
    }

    #[test]
    fn queries_parse() {
        for q in &TEST_QUERIES {
            crate::engine::Path::parse(q.path).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }

    #[test]
    fn all_schemes_return_identical_counts() {
        let tree = small_corpus();
        let interval = run_all(&IntervalEvaluator::build(&tree));
        let prefix = run_all(&Prefix2Evaluator::build(&tree));
        let prime = run_all(&PrimeEvaluator::build(&tree, 5));
        assert_eq!(interval, prefix);
        assert_eq!(interval, prime);
    }

    #[test]
    fn cardinalities_are_ordered_like_table2() {
        // Table 2's counts grow from Q1 (hundreds) to Q9 (the full line
        // set); on any play corpus Q8 < Q9 and Q1 <= Q8 must hold.
        let tree = small_corpus();
        let counts: std::collections::HashMap<&str, usize> =
            run_all(&PrimeEvaluator::build(&tree, 5)).into_iter().collect();
        assert!(counts["Q9"] > counts["Q8"], "lines outnumber speeches");
        assert!(counts["Q8"] > counts["Q1"], "speeches outnumber 4th acts");
        assert!(counts["Q3"] > 0, "personae exist");
        assert!(counts["Q6"] > 0, "act 3 has lines");
    }

    #[test]
    fn q2_and_q4_only_see_later_material() {
        let tree = small_corpus();
        let ev = PrimeEvaluator::build(&tree, 5);
        // A 3-act play: following an act[3] context there are no ACTs within
        // the same play, but the second replica's acts follow the first
        // replica's context (document order is global) — so the count equals
        // the acts of later plays.
        let q2 = ev.eval_str(TEST_QUERIES[1].path).len();
        assert_eq!(q2, 3, "acts of the later replica");
    }
}
