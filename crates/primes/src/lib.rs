//! # xp-primes — prime generation and testing
//!
//! The prime-number labeling scheme consumes primes in bulk: every non-leaf
//! node of an XML tree receives a globally unique prime self-label, assigned
//! in increasing order during a depth-first traversal (Figure 7 of the
//! paper), and a reserved pool of the *smallest* primes is set aside for the
//! top tree levels (optimization Opt1).
//!
//! This crate provides the machinery:
//!
//! * [`sieve::Sieve`] — classic sieve of Eratosthenes over a fixed bound.
//! * [`sieve::SegmentedSieve`] — windowed sieving for unbounded streams.
//! * [`iter::PrimeIterator`] — an unbounded iterator over primes, the
//!   `getPrime()` of the paper's `PrimeLabel` algorithm.
//! * [`miller_rabin::is_prime`] — deterministic Miller–Rabin for all `u64`.
//! * [`estimate`] — π(n) bounds and the paper's `n·log₂(n)` n-th-prime
//!   estimate used in Figure 3.
//! * [`pool::PrimePool`] — a stateful allocator that hands out each prime at
//!   most once, with a reserved low-prime pool (`getReservedPrime()`), a
//!   general pool (`getPrime()`), and an odd-only mode for Opt2.
//!
//! ```
//! use xp_primes::iter::PrimeIterator;
//!
//! let first: Vec<u64> = PrimeIterator::new().take(6).collect();
//! assert_eq!(first, [2, 3, 5, 7, 11, 13]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod factor;
pub mod iter;
pub mod miller_rabin;
pub mod pool;
pub mod sieve;

pub use factor::{factorize, prime_factors};
pub use iter::PrimeIterator;
pub use miller_rabin::is_prime;
pub use pool::PrimePool;
pub use sieve::Sieve;

/// Returns the n-th prime (1-indexed: `nth_prime(1) == 2`).
///
/// # Panics
/// Panics if `n == 0`.
pub fn nth_prime(n: u64) -> u64 {
    assert!(n > 0, "primes are 1-indexed");
    PrimeIterator::new()
        .nth(n as usize - 1)
        .expect("prime iterator is unbounded")
}

/// Returns the first `n` primes.
pub fn first_primes(n: usize) -> Vec<u64> {
    PrimeIterator::new().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_prime_known_values() {
        assert_eq!(nth_prime(1), 2);
        assert_eq!(nth_prime(2), 3);
        assert_eq!(nth_prime(25), 97);
        assert_eq!(nth_prime(100), 541);
        assert_eq!(nth_prime(1000), 7919);
        // The 10000th prime closes Figure 3's x-axis.
        assert_eq!(nth_prime(10_000), 104_729);
    }

    #[test]
    #[should_panic(expected = "1-indexed")]
    fn nth_prime_zero_panics() {
        nth_prime(0);
    }

    #[test]
    fn first_primes_prefix() {
        assert_eq!(first_primes(0), Vec::<u64>::new());
        assert_eq!(first_primes(8), [2, 3, 5, 7, 11, 13, 17, 19]);
    }
}
