//! [`PrimeIterator`]: an unbounded, allocation-amortized stream of primes —
//! the paper's `getPrime()` function.

use crate::sieve::SegmentedSieve;

/// Unbounded iterator over the primes 2, 3, 5, 7, …
///
/// Internally pulls windows from a [`SegmentedSieve`], so iterating far into
/// the sequence stays O(window) in memory.
#[derive(Debug, Clone)]
pub struct PrimeIterator {
    sieve: SegmentedSieve,
    buf: std::vec::IntoIter<u64>,
}

impl PrimeIterator {
    /// Starts the stream at 2.
    pub fn new() -> Self {
        PrimeIterator { sieve: SegmentedSieve::new(), buf: Vec::new().into_iter() }
    }

    /// Starts the stream at the first prime `>= from`.
    pub fn starting_at(from: u64) -> Self {
        let mut it = Self::new();
        // Fast-forward whole segments: cheap because segments are sieved lazily.
        while let Some(&last) = {
            it.refill_if_empty();
            it.buf.as_slice().last()
        } {
            if last >= from {
                break;
            }
            it.buf = Vec::new().into_iter();
        }
        let remaining: Vec<u64> = it.buf.as_slice().iter().copied().filter(|&p| p >= from).collect();
        it.buf = remaining.into_iter();
        it
    }

    fn refill_if_empty(&mut self) {
        while self.buf.as_slice().is_empty() && !self.sieve.is_exhausted() {
            self.buf = self.sieve.next_segment().into_iter();
        }
    }

    /// Takes the next `n` primes in one call, pulling several sieve windows
    /// at a time so the sieving can run on the `xp_par` pool. The returned
    /// primes — and the stream position afterwards — are identical to `n`
    /// successive [`next`](Iterator::next) calls at any thread count;
    /// surplus primes from the last batch stay buffered.
    pub fn take_many(&mut self, n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            if self.buf.as_slice().is_empty() {
                let k = xp_par::threads().clamp(1, 64);
                let batch = self.sieve.next_segments(k);
                if batch.is_empty() && self.sieve.is_exhausted() {
                    break; // the u64 primes have genuinely run out
                }
                self.buf = batch.into_iter();
                continue;
            }
            let take = (n - out.len()).min(self.buf.as_slice().len());
            out.extend(self.buf.by_ref().take(take));
        }
        out
    }
}

impl Default for PrimeIterator {
    fn default() -> Self {
        Self::new()
    }
}

impl Iterator for PrimeIterator {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.refill_if_empty();
        self.buf.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miller_rabin::is_prime;

    #[test]
    fn first_primes_are_correct() {
        let got: Vec<u64> = PrimeIterator::new().take(10).collect();
        assert_eq!(got, [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn stream_is_strictly_increasing_and_prime() {
        let mut prev = 0;
        for p in PrimeIterator::new().take(5_000) {
            assert!(p > prev);
            assert!(is_prime(p));
            prev = p;
        }
    }

    #[test]
    fn crosses_segment_boundaries() {
        // Enough primes to consume several 2^16-wide segments.
        let nth_20000 = PrimeIterator::new().nth(19_999).unwrap();
        assert_eq!(nth_20000, 224_737);
    }

    #[test]
    fn take_many_matches_single_steps() {
        for threads in [1, 4] {
            let bulk = xp_par::with_threads(threads, || {
                let mut it = PrimeIterator::new();
                let mut head = it.take_many(1000);
                head.extend(it.take_many(500)); // continues from the buffer
                head.push(it.next().unwrap()); // and interleaves with next()
                head
            });
            let stepped: Vec<u64> = PrimeIterator::new().take(1501).collect();
            assert_eq!(bulk, stepped, "threads={threads}");
        }
    }

    #[test]
    fn starting_at_lands_on_first_prime_geq() {
        assert_eq!(PrimeIterator::starting_at(0).next(), Some(2));
        assert_eq!(PrimeIterator::starting_at(14).next(), Some(17));
        assert_eq!(PrimeIterator::starting_at(17).next(), Some(17));
        let mut it = PrimeIterator::starting_at(100_000);
        assert_eq!(it.next(), Some(100_003));
        assert_eq!(it.next(), Some(100_019));
    }
}
