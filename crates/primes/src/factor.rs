//! Integer factorization for `u64`: trial division for small factors plus
//! Brent's variant of Pollard's rho for the rest.
//!
//! A top-down prime label *is* its ancestor path — the multiset of
//! self-labels along the root chain. Factorization makes that decodable:
//! `xp-prime::path` peels a label back into the self-labels it was built
//! from, which is how a labeled node's ancestry can be reconstructed with
//! no tree access at all.

use crate::miller_rabin::is_prime;

/// `a * b mod m` without overflow.
#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// One non-trivial factor of composite `n` (Brent's cycle-finding variant
/// of Pollard's rho). Returns `None` when this seed's polynomial fails;
/// callers retry with another seed.
fn pollard_brent(n: u64, seed: u64) -> Option<u64> {
    let c = 1 + seed % (n - 1);
    let f = |x: u64| (mul_mod(x, x, n) + c) % n;
    let mut anchor = seed % n;
    let mut y = anchor;
    let mut window = 1u64;
    let mut total = 0u64;
    loop {
        // Walk one doubling window from the anchor.
        for _ in 0..window {
            y = f(y);
            total += 1;
            let d = gcd(anchor.abs_diff(y), n);
            if d == n {
                return None; // degenerate polynomial for this n
            }
            if d > 1 {
                return Some(d);
            }
            if total > 1 << 24 {
                return None; // give up; the caller tries another seed
            }
        }
        anchor = y;
        window *= 2;
    }
}

/// Prime factorization of `n` as `(prime, exponent)` pairs in increasing
/// prime order. `factorize(0)` and `factorize(1)` return empty.
///
/// ```
/// assert_eq!(xp_primes::factorize(360), vec![(2, 3), (3, 2), (5, 1)]);
/// ```
pub fn factorize(n: u64) -> Vec<(u64, u32)> {
    let mut factors: Vec<u64> = Vec::new();
    let mut n = n;
    if n < 2 {
        return Vec::new();
    }
    // Strip small primes by trial division (covers most label factors).
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
        while n % p == 0 {
            factors.push(p);
            n /= p;
        }
    }
    // Recurse on the remainder with rho.
    let mut pending = vec![n];
    while let Some(m) = pending.pop() {
        if m == 1 {
            continue;
        }
        if is_prime(m) {
            factors.push(m);
            continue;
        }
        // Try successive seeds: rho can fail for unlucky polynomials.
        let mut split = None;
        for seed in 2..64 {
            if let Some(d) = pollard_brent(m, seed) {
                split = Some(d);
                break;
            }
        }
        let d = split.expect("some seed splits every 64-bit composite in practice");
        pending.push(d);
        pending.push(m / d);
    }
    factors.sort_unstable();
    let mut out: Vec<(u64, u32)> = Vec::new();
    for f in factors {
        match out.last_mut() {
            Some((p, e)) if *p == f => *e += 1,
            _ => out.push((f, 1)),
        }
    }
    out
}

/// The distinct prime factors of `n`, increasing.
pub fn prime_factors(n: u64) -> Vec<u64> {
    factorize(n).into_iter().map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recompose(factors: &[(u64, u32)]) -> u64 {
        factors.iter().fold(1u64, |acc, &(p, e)| acc * p.pow(e))
    }

    #[test]
    fn trivial_inputs() {
        assert!(factorize(0).is_empty());
        assert!(factorize(1).is_empty());
        assert_eq!(factorize(2), vec![(2, 1)]);
        assert_eq!(factorize(97), vec![(97, 1)]);
    }

    #[test]
    fn small_composites() {
        assert_eq!(factorize(12), vec![(2, 2), (3, 1)]);
        assert_eq!(factorize(360), vec![(2, 3), (3, 2), (5, 1)]);
        assert_eq!(factorize(1 << 40), vec![(2, 40)]);
        assert_eq!(factorize(3 * 5 * 7 * 11 * 13), vec![(3, 1), (5, 1), (7, 1), (11, 1), (13, 1)]);
    }

    #[test]
    fn large_semiprimes_split() {
        // Products of two large primes — the case trial division can't do.
        let p = 2_147_483_647u64; // 2^31 - 1
        let q = 2_147_483_629u64;
        assert_eq!(factorize(p * q), vec![(q, 1), (p, 1)]);
        let a = 1_000_000_007u64;
        let b = 1_000_000_009u64;
        assert_eq!(factorize(a * b), vec![(a, 1), (b, 1)]);
    }

    #[test]
    fn prime_squares_and_powers() {
        let p = 65_537u64;
        assert_eq!(factorize(p * p), vec![(p, 2)]);
        assert_eq!(factorize(p * p * p), vec![(p, 3)]);
    }

    #[test]
    fn round_trips_against_recomposition() {
        for n in (1u64..2000).chain([
            u32::MAX as u64,
            u32::MAX as u64 + 2,
            999_999_999_999_999_989, // prime
            614_889_782_588_491_410, // primorial(15): product of first 15 primes
        ]) {
            let f = factorize(n);
            if n >= 2 {
                assert_eq!(recompose(&f), n, "n={n}");
                for &(p, _) in &f {
                    assert!(is_prime(p), "{p} not prime (n={n})");
                }
            }
        }
    }

    #[test]
    fn label_like_products() {
        // A realistic top-down label: product of distinct path primes.
        let path = [3u64, 59, 227, 1499, 7919];
        let label: u64 = path.iter().product();
        assert_eq!(prime_factors(label), path.to_vec());
    }
}
