//! Sieve of Eratosthenes (bounded) and a segmented variant for streaming.

/// A bounded sieve of Eratosthenes over `[0, limit]`.
///
/// Memory: one bit per odd number. Construction is O(n log log n).
#[derive(Debug, Clone)]
pub struct Sieve {
    limit: u64,
    /// `odd_composite[i]` covers the odd number `2i + 1`; index 0 (the number
    /// 1) is marked composite by construction.
    odd_composite: Vec<bool>,
}

impl Sieve {
    /// Sieves all primes up to and including `limit`.
    pub fn new(limit: u64) -> Self {
        let half = (limit / 2 + 1) as usize;
        let mut odd_composite = vec![false; half];
        if !odd_composite.is_empty() {
            odd_composite[0] = true; // the number 1
        }
        let mut i = 1usize; // the odd number 3
        while (2 * i + 1) * (2 * i + 1) <= limit as usize {
            if !odd_composite[i] {
                let p = 2 * i + 1;
                // Start at p², stepping 2p through odd multiples only.
                let mut m = (p * p - 1) / 2;
                while m < half {
                    odd_composite[m] = true;
                    m += p;
                }
            }
            i += 1;
        }
        Sieve { limit, odd_composite }
    }

    /// The sieving bound.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// `true` iff `n` is prime. `n` must be within the sieved bound.
    ///
    /// # Panics
    /// Panics if `n > limit`.
    pub fn is_prime(&self, n: u64) -> bool {
        assert!(n <= self.limit, "{n} exceeds sieve limit {}", self.limit);
        match n {
            0 | 1 => false,
            2 => true,
            n if n % 2 == 0 => false,
            n => !self.odd_composite[(n / 2) as usize],
        }
    }

    /// Iterates over all sieved primes in increasing order.
    pub fn primes(&self) -> impl Iterator<Item = u64> + '_ {
        let two = if self.limit >= 2 { Some(2u64) } else { None };
        two.into_iter().chain(
            self.odd_composite
                .iter()
                .enumerate()
                .filter(|(_, &c)| !c)
                .map(|(i, _)| 2 * i as u64 + 1)
                .filter(move |&p| p <= self.limit),
        )
    }

    /// π(n) restricted to the sieve: the number of primes `<= n`.
    ///
    /// # Panics
    /// Panics if `n > limit`.
    pub fn prime_count(&self, n: u64) -> usize {
        assert!(n <= self.limit, "{n} exceeds sieve limit {}", self.limit);
        self.primes().take_while(|&p| p <= n).count()
    }
}

/// A segmented sieve: produces primes window by window without materializing
/// a bit per integer up to the high-water mark. Backs [`crate::PrimeIterator`].
#[derive(Debug, Clone)]
pub struct SegmentedSieve {
    /// Primes up to the square root of the current frontier.
    base: Vec<u64>,
    /// Next unsieved number (inclusive).
    frontier: u64,
    segment_len: u64,
}

impl SegmentedSieve {
    /// Default window width: fits in L1/L2 comfortably.
    pub const DEFAULT_SEGMENT: u64 = 1 << 16;

    /// Creates a segmented sieve starting at 2.
    pub fn new() -> Self {
        SegmentedSieve { base: Vec::new(), frontier: 2, segment_len: Self::DEFAULT_SEGMENT }
    }

    /// Creates a segmented sieve with a custom window width (min 2).
    pub fn with_segment_len(segment_len: u64) -> Self {
        SegmentedSieve { base: Vec::new(), frontier: 2, segment_len: segment_len.max(2) }
    }

    /// Sieves the next window and returns its primes in increasing order.
    pub fn next_segment(&mut self) -> Vec<u64> {
        let lo = self.frontier;
        let hi = lo.saturating_add(self.segment_len); // exclusive
        self.frontier = hi;

        // Extend the base primes to cover sqrt(hi).
        let need = hi.isqrt() + 1;
        if self.base.last().copied().unwrap_or(0) < need {
            let sieve = Sieve::new(need);
            self.base = sieve.primes().collect();
        }

        let mut composite = vec![false; (hi - lo) as usize];
        for &p in &self.base {
            if p * p >= hi {
                break;
            }
            let mut start = p * p;
            if start < lo {
                start = lo.div_ceil(p) * p;
            }
            let mut m = start;
            while m < hi {
                composite[(m - lo) as usize] = true;
                m += p;
            }
        }
        composite
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| lo + i as u64)
            .filter(|&n| n >= 2)
            .collect()
    }
}

impl Default for SegmentedSieve {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let s = Sieve::new(50);
        let primes: Vec<u64> = s.primes().collect();
        assert_eq!(primes, [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]);
    }

    #[test]
    fn degenerate_limits() {
        assert_eq!(Sieve::new(0).primes().count(), 0);
        assert_eq!(Sieve::new(1).primes().count(), 0);
        assert_eq!(Sieve::new(2).primes().collect::<Vec<_>>(), [2]);
        assert_eq!(Sieve::new(3).primes().collect::<Vec<_>>(), [2, 3]);
    }

    #[test]
    fn is_prime_agrees_with_enumeration() {
        let s = Sieve::new(1000);
        let set: std::collections::HashSet<u64> = s.primes().collect();
        for n in 0..=1000 {
            assert_eq!(s.is_prime(n), set.contains(&n), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds sieve limit")]
    fn out_of_range_is_prime_panics() {
        Sieve::new(10).is_prime(11);
    }

    #[test]
    fn prime_count_pi_values() {
        let s = Sieve::new(100_000);
        assert_eq!(s.prime_count(10), 4);
        assert_eq!(s.prime_count(100), 25);
        assert_eq!(s.prime_count(1000), 168);
        assert_eq!(s.prime_count(10_000), 1229);
        assert_eq!(s.prime_count(100_000), 9592);
    }

    #[test]
    fn segmented_matches_bounded() {
        let bounded: Vec<u64> = Sieve::new(300_000).primes().collect();
        let mut seg = SegmentedSieve::with_segment_len(10_000);
        let mut streamed = Vec::new();
        while streamed.len() < bounded.len() {
            streamed.extend(seg.next_segment());
        }
        assert_eq!(&streamed[..bounded.len()], &bounded[..]);
    }

    #[test]
    fn segmented_tiny_window() {
        let mut seg = SegmentedSieve::with_segment_len(2);
        let mut got = Vec::new();
        for _ in 0..20 {
            got.extend(seg.next_segment());
        }
        assert_eq!(&got[..8], &[2, 3, 5, 7, 11, 13, 17, 19]);
    }
}
