//! Sieve of Eratosthenes (bounded) and a segmented variant for streaming.

/// A bounded sieve of Eratosthenes over `[0, limit]`.
///
/// Memory: one bit per odd number. Construction is O(n log log n).
#[derive(Debug, Clone)]
pub struct Sieve {
    limit: u64,
    /// `odd_composite[i]` covers the odd number `2i + 1`; index 0 (the number
    /// 1) is marked composite by construction.
    odd_composite: Vec<bool>,
}

impl Sieve {
    /// Sieves all primes up to and including `limit`.
    pub fn new(limit: u64) -> Self {
        let half = (limit / 2 + 1) as usize;
        let mut odd_composite = vec![false; half];
        if !odd_composite.is_empty() {
            odd_composite[0] = true; // the number 1
        }
        let mut i = 1usize; // the odd number 3
        while (2 * i + 1) * (2 * i + 1) <= limit as usize {
            if !odd_composite[i] {
                let p = 2 * i + 1;
                // Start at p², stepping 2p through odd multiples only.
                let mut m = (p * p - 1) / 2;
                while m < half {
                    odd_composite[m] = true;
                    m += p;
                }
            }
            i += 1;
        }
        Sieve { limit, odd_composite }
    }

    /// The sieving bound.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// `true` iff `n` is prime. `n` must be within the sieved bound.
    ///
    /// # Panics
    /// Panics if `n > limit`.
    pub fn is_prime(&self, n: u64) -> bool {
        assert!(n <= self.limit, "{n} exceeds sieve limit {}", self.limit);
        match n {
            0 | 1 => false,
            2 => true,
            n if n % 2 == 0 => false,
            n => !self.odd_composite[(n / 2) as usize],
        }
    }

    /// Iterates over all sieved primes in increasing order.
    pub fn primes(&self) -> impl Iterator<Item = u64> + '_ {
        let two = if self.limit >= 2 { Some(2u64) } else { None };
        two.into_iter().chain(
            self.odd_composite
                .iter()
                .enumerate()
                .filter(|(_, &c)| !c)
                .map(|(i, _)| 2 * i as u64 + 1)
                .filter(move |&p| p <= self.limit),
        )
    }

    /// π(n) restricted to the sieve: the number of primes `<= n`.
    ///
    /// # Panics
    /// Panics if `n > limit`.
    pub fn prime_count(&self, n: u64) -> usize {
        assert!(n <= self.limit, "{n} exceeds sieve limit {}", self.limit);
        self.primes().take_while(|&p| p <= n).count()
    }
}

/// Sieves one window `[lo, hi]` (both inclusive) against a sorted slice of
/// base primes, returning the surviving numbers in increasing order.
///
/// A number `n` in the window is excluded iff some base prime `p` divides
/// it with `n >= p²` — i.e. multiples of each base prime are marked starting
/// at its square, so base primes that fall inside the window survive. When
/// `base` contains every prime `<= isqrt(hi)`, the survivors `>= 2` are
/// exactly the primes in the window.
///
/// All arithmetic is overflow-checked: windows with `hi` at `u64::MAX` and
/// base primes above `2³²` (whose squares exceed `u64::MAX`) are handled —
/// a stride or square that would wrap simply falls outside the window.
///
/// # Panics
/// Panics if the window is wider than the address space (`hi - lo` must fit
/// in `usize`); practical windows are a few KiB to MiB.
pub fn sieve_window(base: &[u64], lo: u64, hi: u64) -> Vec<u64> {
    if hi < lo {
        return Vec::new();
    }
    let width = usize::try_from(hi - lo).unwrap_or_else(|_| {
        panic!("window [{lo}, {hi}] is wider than the address space")
    });
    let mut composite = vec![false; width + 1];
    for &p in base {
        // `base` is sorted, so once p² clears the window (or overflows u64,
        // which implies it clears any window) every later prime does too.
        let Some(sq) = p.checked_mul(p) else { break };
        if sq > hi {
            break;
        }
        // First marked multiple: p² itself, or the first multiple of p at or
        // above `lo`. The rounding `ceil(lo / p) · p` can exceed u64::MAX
        // when `lo` sits within p of the top — then nothing to mark.
        let start = if sq >= lo {
            sq
        } else {
            match lo.div_ceil(p).checked_mul(p) {
                Some(s) => s,
                None => continue,
            }
        };
        let mut m = start;
        while m <= hi {
            composite[(m - lo) as usize] = true;
            match m.checked_add(p) {
                Some(next) => m = next,
                None => break, // the next stride would wrap past u64::MAX
            }
        }
    }
    composite
        .iter()
        .enumerate()
        .filter(|(_, &c)| !c)
        .map(|(i, _)| lo + i as u64)
        .filter(|&n| n >= 2)
        .collect()
}

/// A segmented sieve: produces primes window by window without materializing
/// a bit per integer up to the high-water mark. Backs [`crate::PrimeIterator`].
#[derive(Debug, Clone)]
pub struct SegmentedSieve {
    /// Primes up to `base_limit`, grown append-only as the frontier advances.
    base: Vec<u64>,
    /// The base is complete through this bound: every prime `<= base_limit`
    /// is in `base`.
    base_limit: u64,
    /// Next unsieved number (inclusive).
    frontier: u64,
    segment_len: u64,
    /// Set once the frontier has passed `u64::MAX`; every later window is
    /// empty (rather than re-sieving a saturated frontier forever).
    exhausted: bool,
}

impl SegmentedSieve {
    /// Default window width: fits in L1/L2 comfortably.
    pub const DEFAULT_SEGMENT: u64 = 1 << 16;

    /// Creates a segmented sieve starting at 2.
    pub fn new() -> Self {
        Self::with_segment_len(Self::DEFAULT_SEGMENT)
    }

    /// Creates a segmented sieve with a custom window width (min 2).
    pub fn with_segment_len(segment_len: u64) -> Self {
        SegmentedSieve {
            base: Vec::new(),
            base_limit: 0,
            frontier: 2,
            segment_len: segment_len.max(2),
            exhausted: false,
        }
    }

    /// `true` once the sieve has emitted every window up to `u64::MAX`;
    /// all subsequent [`next_segment`](Self::next_segment) calls return
    /// empty vectors.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// The base primes accumulated so far (complete through the square root
    /// of the highest window sieved). Exposed so tests can assert the base
    /// is only ever appended to, never rebuilt.
    pub fn base(&self) -> &[u64] {
        &self.base
    }

    /// Extends the base so it contains every prime `<= need`, by sieving
    /// only the new range `(base_limit, need]` against the existing base —
    /// never rebuilding from scratch. Each round can certify primality up
    /// to `base_limit²`, so very large jumps take a few doubling rounds.
    fn ensure_base(&mut self, need: u64) {
        if need <= self.base_limit {
            return;
        }
        if self.base.is_empty() {
            let sieve = Sieve::new(need);
            self.base = sieve.primes().collect();
            self.base_limit = need;
            return;
        }
        while self.base_limit < need {
            let reach = self.base_limit.saturating_mul(self.base_limit);
            let next = need.min(reach);
            let fresh = sieve_window(&self.base, self.base_limit + 1, next);
            self.base.extend(fresh);
            self.base_limit = next;
        }
    }

    /// Computes the bounds of the next window without sieving it: returns
    /// `(lo, hi)` inclusive and advances the frontier, flipping
    /// `exhausted` when the window reaches `u64::MAX`.
    fn advance_window(&mut self) -> Option<(u64, u64)> {
        if self.exhausted {
            return None;
        }
        let lo = self.frontier;
        let hi = lo.saturating_add(self.segment_len - 1);
        match hi.checked_add(1) {
            Some(next) => self.frontier = next,
            None => self.exhausted = true,
        }
        Some((lo, hi))
    }

    /// Sieves the next window and returns its primes in increasing order.
    /// Returns an empty vector once the sieve is [exhausted](Self::is_exhausted).
    pub fn next_segment(&mut self) -> Vec<u64> {
        let Some((lo, hi)) = self.advance_window() else {
            return Vec::new();
        };
        self.ensure_base(hi.isqrt());
        sieve_window(&self.base, lo, hi)
    }

    /// Sieves the next `k` windows — concurrently when the ambient
    /// `xp_par` thread budget allows — and returns their primes merged in
    /// increasing order. The result is byte-identical to concatenating `k`
    /// successive [`next_segment`](Self::next_segment) calls at any thread
    /// count: window bounds and the base extension are computed up front,
    /// and each window is a pure function of `(base, lo, hi)`.
    pub fn next_segments(&mut self, k: usize) -> Vec<u64> {
        let mut windows = Vec::with_capacity(k);
        while windows.len() < k {
            match self.advance_window() {
                Some(w) => windows.push(w),
                None => break,
            }
        }
        let Some(&(_, max_hi)) = windows.last() else {
            return Vec::new();
        };
        self.ensure_base(max_hi.isqrt());
        let base = &self.base;
        let per_window: Vec<Vec<u64>> =
            xp_par::par_map(&windows, |&(lo, hi)| sieve_window(base, lo, hi));
        per_window.into_iter().flatten().collect()
    }

    #[cfg(test)]
    /// Test-only: a sieve positioned at an arbitrary frontier with a
    /// synthetic, already-"complete" base — lets regression tests exercise
    /// windows near `u64::MAX` without materializing the 2³²-entry base a
    /// real walk to that frontier would need.
    fn with_synthetic_base(frontier: u64, segment_len: u64, base: Vec<u64>) -> Self {
        SegmentedSieve {
            base,
            base_limit: u64::MAX,
            frontier,
            segment_len: segment_len.max(2),
            exhausted: false,
        }
    }
}

impl Default for SegmentedSieve {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let s = Sieve::new(50);
        let primes: Vec<u64> = s.primes().collect();
        assert_eq!(primes, [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]);
    }

    #[test]
    fn degenerate_limits() {
        assert_eq!(Sieve::new(0).primes().count(), 0);
        assert_eq!(Sieve::new(1).primes().count(), 0);
        assert_eq!(Sieve::new(2).primes().collect::<Vec<_>>(), [2]);
        assert_eq!(Sieve::new(3).primes().collect::<Vec<_>>(), [2, 3]);
    }

    #[test]
    fn is_prime_agrees_with_enumeration() {
        let s = Sieve::new(1000);
        let set: std::collections::HashSet<u64> = s.primes().collect();
        for n in 0..=1000 {
            assert_eq!(s.is_prime(n), set.contains(&n), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds sieve limit")]
    fn out_of_range_is_prime_panics() {
        Sieve::new(10).is_prime(11);
    }

    #[test]
    fn prime_count_pi_values() {
        let s = Sieve::new(100_000);
        assert_eq!(s.prime_count(10), 4);
        assert_eq!(s.prime_count(100), 25);
        assert_eq!(s.prime_count(1000), 168);
        assert_eq!(s.prime_count(10_000), 1229);
        assert_eq!(s.prime_count(100_000), 9592);
    }

    #[test]
    fn segmented_matches_bounded() {
        let bounded: Vec<u64> = Sieve::new(300_000).primes().collect();
        let mut seg = SegmentedSieve::with_segment_len(10_000);
        let mut streamed = Vec::new();
        while streamed.len() < bounded.len() {
            streamed.extend(seg.next_segment());
        }
        assert_eq!(&streamed[..bounded.len()], &bounded[..]);
    }

    #[test]
    fn segmented_tiny_window() {
        let mut seg = SegmentedSieve::with_segment_len(2);
        let mut got = Vec::new();
        for _ in 0..20 {
            got.extend(seg.next_segment());
        }
        assert_eq!(&got[..8], &[2, 3, 5, 7, 11, 13, 17, 19]);
    }

    /// The exclusion rule of [`sieve_window`] by trial division: `n` is out
    /// iff some base prime divides it with `n >= p²`.
    fn trial_oracle(base: &[u64], lo: u64, hi: u64) -> Vec<u64> {
        (lo..=hi)
            .filter(|&n| n >= 2)
            .filter(|&n| {
                !base.iter().any(|&p| {
                    n % p == 0 && p.checked_mul(p).map_or(false, |sq| n >= sq)
                })
            })
            .collect()
    }

    #[test]
    fn window_at_top_of_u64_terminates_and_is_correct() {
        // Regression: `m += p` and `ceil(lo/p)·p` both used to wrap in u64
        // near the top of the range (debug builds panic, release corrupts
        // the marking index). Checked arithmetic must terminate cleanly.
        let base = [2u64, 3, 5, 7, 11, 13];
        let lo = u64::MAX - 1000;
        let hi = u64::MAX;
        assert_eq!(sieve_window(&base, lo, hi), trial_oracle(&base, lo, hi));
    }

    #[test]
    fn base_primes_above_2_32_do_not_overflow() {
        // 4_294_967_311 is the first prime above 2³²; its square exceeds
        // u64::MAX, so `p * p` used to wrap. The checked square must treat
        // it as "past any window" and stop there (base is sorted).
        let big = 4_294_967_311u64;
        let base = [2u64, 3, 5, big];
        // A window containing multiples of `big`: none may be marked by it
        // (their cofactor is < big, so a smaller factor covers them), and
        // nothing may panic.
        let lo = big * 2 - 10;
        let hi = big * 2 + 10;
        assert_eq!(sieve_window(&base, lo, hi), trial_oracle(&base, lo, hi));
        // And directly at the top of the range.
        assert_eq!(
            sieve_window(&base, u64::MAX - 50, u64::MAX),
            trial_oracle(&base, u64::MAX - 50, u64::MAX)
        );
    }

    #[test]
    fn windows_near_top_of_range_terminate() {
        // Regression: the exclusive-`hi` frontier used to saturate at
        // u64::MAX and re-sieve an empty window forever. The sieve must
        // emit the final (possibly short) window once, then report
        // exhaustion with empty results.
        let base = vec![2u64, 3, 5, 7];
        let mut seg = SegmentedSieve::with_synthetic_base(u64::MAX - 100, 64, base);
        let w1 = seg.next_segment();
        assert!(!seg.is_exhausted());
        assert!(!w1.is_empty());
        let w2 = seg.next_segment(); // reaches u64::MAX: short final window
        assert!(seg.is_exhausted());
        assert!(!w2.is_empty());
        let mut all = w1;
        all.extend(w2);
        assert_eq!(all, trial_oracle(&[2, 3, 5, 7], u64::MAX - 100, u64::MAX));
        for _ in 0..3 {
            assert!(seg.next_segment().is_empty());
            assert!(seg.is_exhausted());
        }
    }

    #[test]
    fn exhaustion_with_window_ending_exactly_at_max() {
        // frontier + segment_len lands exactly on u64::MAX inclusive.
        let mut seg = SegmentedSieve::with_synthetic_base(u64::MAX - 63, 64, vec![2, 3]);
        let w = seg.next_segment();
        assert!(seg.is_exhausted());
        assert_eq!(w, trial_oracle(&[2, 3], u64::MAX - 63, u64::MAX));
        assert!(seg.next_segment().is_empty());
    }

    #[test]
    fn base_is_only_ever_appended_to() {
        // Regression: every base growth used to rebuild the full prime list
        // via `Sieve::new`. The incremental path must strictly append.
        let mut seg = SegmentedSieve::with_segment_len(1000);
        let mut prev: Vec<u64> = Vec::new();
        let mut streamed = Vec::new();
        for _ in 0..300 {
            streamed.extend(seg.next_segment());
            let cur = seg.base();
            assert!(cur.len() >= prev.len(), "base shrank: {} -> {}", prev.len(), cur.len());
            assert_eq!(&cur[..prev.len()], &prev[..], "base was rewritten, not appended");
            prev = cur.to_vec();
        }
        // The incrementally-extended base is still correct: it matches a
        // bounded sieve over the same range, and the stream is unchanged.
        let bounded: Vec<u64> = Sieve::new(*prev.last().unwrap()).primes().collect();
        assert_eq!(prev, bounded);
        let expected: Vec<u64> = Sieve::new(299_999).primes().collect();
        assert_eq!(&streamed[..expected.len()], &expected[..]);
    }

    #[test]
    fn ensure_base_survives_large_jump() {
        // A first window far from 2 forces the base to grow through several
        // doubling rounds in one call.
        let mut seg = SegmentedSieve::with_segment_len(1 << 14);
        seg.frontier = 1 << 40;
        let w = seg.next_segment();
        assert!(!w.is_empty());
        for &p in w.iter().take(16) {
            assert!(crate::miller_rabin::is_prime(p), "{p} is not prime");
        }
        // Base must cover isqrt of the window top, ~2^20 (the largest prime
        // at or below it is 1048573).
        assert!(seg.base().last().copied().unwrap_or(0) >= (1 << 20) - 16);
    }

    #[test]
    fn next_segments_matches_sequential_at_any_thread_count() {
        for threads in [1, 2, 8] {
            let mut par = SegmentedSieve::with_segment_len(5_000);
            let mut seq = par.clone();
            // First batch crosses several base growths; second batch starts
            // from a warm frontier.
            for k in [7usize, 5] {
                let expected: Vec<u64> = (0..k).flat_map(|_| seq.next_segment()).collect();
                let got = xp_par::with_threads(threads, || par.next_segments(k));
                assert_eq!(got, expected, "threads={threads} k={k}");
            }
            assert_eq!(par.frontier, seq.frontier);
            assert_eq!(par.base(), seq.base());
        }
    }

    #[test]
    fn next_segments_zero_and_past_exhaustion() {
        let mut seg = SegmentedSieve::with_segment_len(100);
        assert!(seg.next_segments(0).is_empty());
        let mut top = SegmentedSieve::with_synthetic_base(u64::MAX - 10, 4, vec![2, 3]);
        // 3 windows of width 4 pass u64::MAX: the batch stops at the top.
        let got = top.next_segments(5);
        assert!(top.is_exhausted());
        assert_eq!(got, trial_oracle(&[2, 3], u64::MAX - 10, u64::MAX));
        assert!(top.next_segments(3).is_empty());
    }
}
