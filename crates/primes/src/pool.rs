//! [`PrimePool`]: the stateful prime allocator behind algorithm `PrimeLabel`
//! (Figure 7 of the paper).
//!
//! The algorithm calls three functions:
//!
//! * `getReservedPrime()` — a prime from a reserved set of the *smallest*
//!   primes, kept for the top levels of the tree (Opt1): labels near the
//!   root are inherited by every descendant, so small factors there shrink
//!   the whole document's labels.
//! * `getPrime()` — the next smallest prime not yet handed out.
//! * `getPower2(n)` — `2^n` for the n-th leaf child (Opt2), which is why the
//!   general pool can be asked to skip the prime 2 (odd-only mode): under
//!   Opt2, oddness of a label identifies internal nodes (Property 3).
//!
//! Each prime is handed out **at most once** across both pools — that is the
//! invariant that makes top-down labels collision-free.

use crate::PrimeIterator;

/// Stateful allocator of unique primes with an optional reserved low pool.
#[derive(Debug, Clone)]
pub struct PrimePool {
    /// Reserved smallest primes, consumed front to back by `reserved()`.
    reserved: Vec<u64>,
    /// Position of the next unconsumed reserved prime.
    reserved_next: usize,
    /// Stream for the general pool, positioned after the reserved primes.
    general: PrimeIterator,
    /// Skip the prime 2 entirely (Opt2 keeps internal labels odd).
    odd_only: bool,
    handed_out: u64,
}

impl PrimePool {
    /// A pool with `reserve` small primes set aside and, when `odd_only` is
    /// set, the prime 2 excluded from both pools.
    pub fn new(reserve: usize, odd_only: bool) -> Self {
        let mut stream = PrimeIterator::new();
        if odd_only {
            stream.next(); // discard 2
        }
        let reserved: Vec<u64> = stream.by_ref().take(reserve).collect();
        PrimePool { reserved, reserved_next: 0, general: stream, odd_only, handed_out: 0 }
    }

    /// A pool with no reservation and 2 included — the unoptimized scheme.
    pub fn unreserved() -> Self {
        Self::new(0, false)
    }

    /// `true` iff the prime 2 is excluded (Opt2 mode).
    pub fn is_odd_only(&self) -> bool {
        self.odd_only
    }

    /// Number of primes handed out so far (both pools).
    pub fn handed_out(&self) -> u64 {
        self.handed_out
    }

    /// `getReservedPrime()`: the next reserved small prime, falling back to
    /// the general pool when the reservation is exhausted.
    pub fn reserved(&mut self) -> u64 {
        if self.reserved_next < self.reserved.len() {
            let p = self.reserved[self.reserved_next];
            self.reserved_next += 1;
            self.handed_out += 1;
            p
        } else {
            self.general_prime()
        }
    }

    /// `getPrime()`: the next smallest prime not yet handed out from the
    /// general pool (never touches the unconsumed reservation).
    pub fn general_prime(&mut self) -> u64 {
        self.handed_out += 1;
        self.general.next().expect("prime stream is unbounded")
    }

    /// Draws the next `n` general-pool primes in one call — the bulk form
    /// of [`general_prime`](Self::general_prime), identical to `n` single
    /// draws but sieved in batches (and in parallel under `xp_par`). The
    /// parallel labeling path uses this to pre-allocate per-subtree prime
    /// ranges so assignment order stays deterministic.
    pub fn take_general(&mut self, n: usize) -> Vec<u64> {
        let primes = self.general.take_many(n);
        self.handed_out += primes.len() as u64;
        primes
    }

    /// Remaining reserved primes (for diagnostics and tests).
    pub fn reserved_remaining(&self) -> &[u64] {
        &self.reserved[self.reserved_next..]
    }
}

/// `getPower2(n)`: the self-label of the n-th leaf child under Opt2.
///
/// # Panics
/// Panics if `n == 0` (leaf positions are 1-indexed) or `n > 63`; the
/// labeling layer switches leaves beyond a threshold back to primes, exactly
/// as §3.2 prescribes ("when the size of a label in a leaf node reaches some
/// pre-determined threshold, we can use other prime numbers instead").
pub fn power_of_two_label(n: u32) -> u64 {
    assert!(n >= 1, "leaf positions are 1-indexed");
    assert!(n <= 63, "2^{n} exceeds the leaf-label threshold; use a prime");
    1u64 << n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_then_general_are_disjoint_and_increasing() {
        let mut pool = PrimePool::new(4, false);
        let r: Vec<u64> = (0..4).map(|_| pool.reserved()).collect();
        assert_eq!(r, [2, 3, 5, 7]);
        let g: Vec<u64> = (0..4).map(|_| pool.general_prime()).collect();
        assert_eq!(g, [11, 13, 17, 19]);
        assert_eq!(pool.handed_out(), 8);
    }

    #[test]
    fn odd_only_skips_two() {
        let mut pool = PrimePool::new(3, true);
        assert_eq!(pool.reserved(), 3);
        assert_eq!(pool.reserved(), 5);
        assert_eq!(pool.general_prime(), 11); // 7 still sits in the reservation
        assert_eq!(pool.reserved(), 7);
    }

    #[test]
    fn exhausted_reservation_falls_back() {
        let mut pool = PrimePool::new(1, false);
        assert_eq!(pool.reserved(), 2);
        assert_eq!(pool.reserved(), 3); // falls through to the general pool
        assert_eq!(pool.general_prime(), 5);
    }

    #[test]
    fn general_never_consumes_reservation() {
        let mut pool = PrimePool::new(2, false);
        assert_eq!(pool.general_prime(), 5);
        assert_eq!(pool.reserved_remaining(), &[2, 3]);
        assert_eq!(pool.reserved(), 2);
    }

    #[test]
    fn no_prime_is_ever_repeated() {
        let mut pool = PrimePool::new(5, true);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let p = if i % 3 == 0 { pool.reserved() } else { pool.general_prime() };
            assert!(seen.insert(p), "prime {p} handed out twice");
        }
    }

    #[test]
    fn power_of_two_labels() {
        assert_eq!(power_of_two_label(1), 2);
        assert_eq!(power_of_two_label(2), 4);
        assert_eq!(power_of_two_label(10), 1024);
        assert_eq!(power_of_two_label(63), 1 << 63);
    }

    #[test]
    #[should_panic(expected = "1-indexed")]
    fn power_of_two_zero_panics() {
        power_of_two_label(0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn power_of_two_overflow_panics() {
        power_of_two_label(64);
    }
}
