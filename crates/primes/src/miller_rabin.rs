//! Deterministic Miller–Rabin primality testing for `u64`.
//!
//! With the witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} the test
//! is *deterministic* for every `n < 3.3 × 10²⁴`, which covers all of `u64`
//! (Sorenson & Webster 2015). Used to validate incoming self-labels when a
//! labeled document is loaded from an untrusted source, and by the ablation
//! bench comparing sieve-fed and test-fed label allocation.

/// The 12 witnesses that make Miller–Rabin deterministic for all `u64`.
const WITNESSES: [u64; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// `a * b mod m` without overflow.
#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `a^e mod m` by square-and-multiply.
#[inline]
fn pow_mod(mut a: u64, mut e: u64, m: u64) -> u64 {
    let mut acc = 1u64;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            acc = mul_mod(acc, a, m);
        }
        a = mul_mod(a, a, m);
        e >>= 1;
    }
    acc
}

/// Deterministic primality test for any `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n % p == 0 {
            return false;
        }
    }
    // n - 1 = d * 2^r with d odd.
    let r = (n - 1).trailing_zeros();
    let d = (n - 1) >> r;
    'witness: for &a in &WITNESSES {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The smallest prime strictly greater than `n`, or `None` on `u64` overflow.
pub fn next_prime(n: u64) -> Option<u64> {
    let mut candidate = match n {
        0 | 1 => return Some(2),
        2 => return Some(3),
        n => n.checked_add(1 + (n % 2))?, // next odd number after n
    };
    loop {
        if is_prime(candidate) {
            return Some(candidate);
        }
        candidate = candidate.checked_add(2)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sieve::Sieve;

    #[test]
    fn agrees_with_sieve_up_to_100k() {
        let sieve = Sieve::new(100_000);
        for n in 0..=100_000u64 {
            assert_eq!(is_prime(n), sieve.is_prime(n), "n={n}");
        }
    }

    #[test]
    fn known_large_primes() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1 (Mersenne)
        assert!(is_prime(4_294_967_311)); // smallest prime > 2^32
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
        assert!(!is_prime(18_446_744_073_709_551_615)); // u64::MAX = 3·5·17·257·641·65537·6700417
    }

    #[test]
    fn strong_pseudoprimes_are_rejected() {
        // Carmichael numbers and classic base-2 strong pseudoprimes.
        for n in [561u64, 1105, 1729, 2047, 3215031751, 3825123056546413051] {
            assert!(!is_prime(n), "n={n} is composite");
        }
    }

    #[test]
    fn perfect_squares_of_primes_are_composite() {
        for p in [3u64, 5, 101, 65537, 2_147_483_647] {
            assert!(!is_prime(p * p));
        }
    }

    #[test]
    fn next_prime_walks_the_sequence() {
        assert_eq!(next_prime(0), Some(2));
        assert_eq!(next_prime(2), Some(3));
        assert_eq!(next_prime(3), Some(5));
        assert_eq!(next_prime(7919), Some(7927));
        assert_eq!(next_prime(2_147_483_646), Some(2_147_483_647));
        assert_eq!(next_prime(18_446_744_073_709_551_557), None);
    }
}
