//! Analytic estimates used by the paper's size model (§3.1, Figure 3).
//!
//! The paper approximates the n-th prime as `n·log₂(n)` (its `log` is base 2
//! throughout) and the bit length of the n-th prime as `log₂(n·log₂(n))`.
//! These estimates drive the maximum-label-size formula (3) that Figures 4
//! and 5 plot, and Figure 3 compares them against the actual primes.

/// The paper's estimate of the n-th prime: `n · log₂(n)` (1-indexed).
///
/// For n = 1 the estimate degenerates to 0; we clamp to 2 (the first prime)
/// so downstream bit-length math stays meaningful.
pub fn nth_prime_estimate(n: u64) -> f64 {
    if n <= 1 {
        return 2.0;
    }
    let nf = n as f64;
    nf * nf.log2()
}

/// Bit length of the paper's n-th prime estimate — `⌊log₂(n·log₂(n))⌋ + 1`,
/// the number of bits the estimated value actually occupies (minimum 2, the
/// bits of "2").
///
/// `⌈log₂ x⌉` is **not** a bit count: it under-counts by one whenever `x` is
/// an exact power of two (`⌈log₂ 8⌉ = 3`, but 8 = `1000₂` takes 4 bits), and
/// only coincides with `⌊log₂ x⌋ + 1` elsewhere. The floor-plus-one form
/// matches [`bits_of`] on actual primes, so Figure 3's estimate-vs-actual
/// comparison is apples to apples.
pub fn nth_prime_estimate_bits(n: u64) -> u64 {
    ((nth_prime_estimate(n).log2().floor() as u64) + 1).max(2)
}

/// Bit length of an actual value (`⌊log₂ v⌋ + 1`); by convention
/// `bits_of(0) = 1`, the one bit needed to write "0".
pub fn bits_of(v: u64) -> u64 {
    match v {
        0 => 1,
        _ => 64 - v.leading_zeros() as u64,
    }
}

/// Prime-counting estimate from the paper: `π(n) ≈ n / log₂(n)`.
pub fn prime_count_estimate(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    nf / nf.log2()
}

/// A rigorous upper bound on the n-th prime (Rosser–Schoenfeld):
/// `p_n < n (ln n + ln ln n)` for `n >= 6`. Used to size bounded sieves
/// that must contain at least `n` primes.
pub fn nth_prime_upper_bound(n: u64) -> u64 {
    if n < 6 {
        return 13; // covers p_1..p_5 = 2,3,5,7,11
    }
    let nf = n as f64;
    let ln = nf.ln();
    (nf * (ln + ln.ln())).ceil() as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nth_prime;

    #[test]
    fn estimate_is_clamped_for_small_n() {
        assert_eq!(nth_prime_estimate(0), 2.0);
        assert_eq!(nth_prime_estimate(1), 2.0);
        assert!(nth_prime_estimate(2) > 1.9);
    }

    #[test]
    fn bits_of_known_values() {
        assert_eq!(bits_of(0), 1);
        assert_eq!(bits_of(1), 1);
        assert_eq!(bits_of(2), 2);
        assert_eq!(bits_of(255), 8);
        assert_eq!(bits_of(256), 9);
        assert_eq!(bits_of(104_729), 17);
    }

    #[test]
    fn estimate_bits_is_a_true_bit_count() {
        // The estimate's bit length must equal bits_of(round(estimate)) —
        // in particular at power-of-two estimates, where ceil(log2) lies.
        for n in [1u64, 2, 3, 4, 10, 64, 100, 1000, 4096, 10_000] {
            let est = nth_prime_estimate(n);
            assert_eq!(
                nth_prime_estimate_bits(n),
                bits_of(est as u64).max(2),
                "n={n}, estimate {est}"
            );
        }
    }

    #[test]
    fn estimate_bits_track_actual_bits_closely() {
        // Figure 3's claim: the error ratio of the *bit length* is small.
        for n in [10u64, 100, 1000, 5000, 10_000] {
            let actual = bits_of(nth_prime(n));
            let est = nth_prime_estimate_bits(n);
            assert!(
                est.abs_diff(actual) <= 2,
                "n={n}: actual {actual} bits vs estimate {est} bits"
            );
        }
    }

    #[test]
    fn upper_bound_really_bounds() {
        for n in [1u64, 5, 6, 10, 100, 1000, 10_000] {
            assert!(nth_prime_upper_bound(n) >= nth_prime(n), "n={n}");
        }
    }

    #[test]
    fn prime_count_estimate_magnitude() {
        // π(10^5) = 9592; n/log2(n) ≈ 6020 — same order, paper's coarse bound.
        let est = prime_count_estimate(100_000);
        assert!(est > 3000.0 && est < 9592.0);
        assert_eq!(prime_count_estimate(1), 0.0);
    }
}
