//! Deterministic fault injection: named fault points compiled into library
//! code, armed per thread.
//!
//! Production code marks failure-prone spots with [`faultpoint!`]:
//!
//! ```ignore
//! xp_testkit::faultpoint!("sc.insert")?;
//! ```
//!
//! A fault point is inert (one thread-local lookup) unless armed. Arming
//! happens two ways:
//!
//! * **Environment**: `XP_FAULT=<site>:<trigger>[,<site>:<trigger>...]`,
//!   parsed lazily the first time a thread passes any fault point. A trigger
//!   is either `<n>` (fire exactly on the n-th hit of that site, once) or
//!   `p=<prob>` (fire each hit with probability `prob`, drawn from a PRNG
//!   seeded by `XP_FAULT_SEED`, default `0xF417`). Example:
//!   `XP_FAULT=sc.insert.record:2` fires the second time the SC table
//!   re-solves a record.
//! * **Programmatic**: [`arm`] installs a spec string for the current
//!   thread (replacing any environment configuration), [`reset`] disarms
//!   everything. Tests use this so parallel test threads never see each
//!   other's faults.
//!
//! Firing returns [`Injected`]; each pipeline crate converts it into its own
//! typed error so the failure surfaces exactly like a real one would.

use crate::rng::{RngExt, SeedableRng, StdRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// The error produced when an armed fault point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injected {
    /// Name of the site that fired.
    pub site: &'static str,
    /// The injected failure mode (see [`FaultMode`]).
    pub mode: FaultMode,
}

impl fmt::Display for Injected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} ({})", self.site, self.mode)
    }
}

impl std::error::Error for Injected {}

/// *How* an armed site fails, the third spec component:
/// `<site>:<trigger>[:<mode>]`.
///
/// Plain in-memory sites only ever observe [`FaultMode::Error`]; the I/O
/// sites of the persistence layer interpret the richer modes — a torn write
/// leaves a partial frame on disk before erroring, a short read truncates
/// what recovery sees, and abort kills the process mid-write like a real
/// `kill -9`. Sites that don't understand a mode treat it as `Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Return a typed error, leaving no partial effects (the classic mode).
    #[default]
    Error,
    /// I/O write sites: persist a prefix of the intended bytes, then error.
    Torn,
    /// I/O read sites: deliver fewer bytes than were asked for.
    Short,
    /// I/O write sites: persist a prefix of the intended bytes, then
    /// `std::process::abort()` — a hard kill with no unwinding.
    Abort,
}

impl fmt::Display for FaultMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultMode::Error => "error",
            FaultMode::Torn => "torn",
            FaultMode::Short => "short",
            FaultMode::Abort => "abort",
        })
    }
}

impl FaultMode {
    fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "error" => Some(FaultMode::Error),
            "torn" => Some(FaultMode::Torn),
            "short" => Some(FaultMode::Short),
            "abort" => Some(FaultMode::Abort),
            _ => None,
        }
    }
}

/// When an armed site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Fire exactly on the n-th hit (1-based), once.
    Nth(u64),
    /// Fire each hit with this probability.
    Prob(f64),
}

#[derive(Debug)]
struct SiteState {
    trigger: Trigger,
    mode: FaultMode,
    hits: u64,
    fired: bool,
}

#[derive(Debug)]
struct ThreadFaults {
    sites: HashMap<String, SiteState>,
    rng: StdRng,
}

thread_local! {
    /// `None` = environment not yet consulted on this thread.
    static FAULTS: RefCell<Option<ThreadFaults>> = const { RefCell::new(None) };
}

const DEFAULT_SEED: u64 = 0xF417;

fn parse_spec(spec: &str, seed: u64) -> Result<ThreadFaults, String> {
    let mut sites = HashMap::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let Some((head, tail)) = entry.rsplit_once(':') else {
            return Err(format!("fault spec `{entry}` is missing `:<trigger>`"));
        };
        // `<site>:<trigger>` or `<site>:<trigger>:<mode>` — the mode word
        // never parses as a trigger, so peel it off the tail first.
        let (site, trigger, mode) = if let Some(mode) = FaultMode::parse(tail) {
            let Some((site, trigger)) = head.rsplit_once(':') else {
                return Err(format!("fault spec `{entry}` is missing `:<trigger>` before mode"));
            };
            (site, trigger, mode)
        } else {
            (head, tail, FaultMode::Error)
        };
        let trigger = if let Some(p) = trigger.strip_prefix("p=") {
            match p.parse::<f64>() {
                Ok(p) if (0.0..=1.0).contains(&p) => Trigger::Prob(p),
                _ => return Err(format!("fault spec `{entry}`: bad probability `{p}`")),
            }
        } else {
            match trigger.parse::<u64>() {
                Ok(n) if n >= 1 => Trigger::Nth(n),
                _ => return Err(format!("fault spec `{entry}`: bad hit count `{trigger}`")),
            }
        };
        sites.insert(site.to_string(), SiteState { trigger, mode, hits: 0, fired: false });
    }
    Ok(ThreadFaults { sites, rng: StdRng::seed_from_u64(seed) })
}

fn env_seed() -> u64 {
    std::env::var("XP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn from_env() -> ThreadFaults {
    let empty = ThreadFaults { sites: HashMap::new(), rng: StdRng::seed_from_u64(DEFAULT_SEED) };
    match std::env::var("XP_FAULT") {
        Ok(spec) => match parse_spec(&spec, env_seed()) {
            Ok(f) => f,
            Err(msg) => {
                eprintln!("warning: ignoring XP_FAULT: {msg}");
                empty
            }
        },
        Err(_) => empty,
    }
}

/// Arms the current thread from a spec string (`XP_FAULT` syntax), replacing
/// any previous configuration — including the environment's. Panics on a
/// malformed spec: this is test tooling, and a silently ignored typo would
/// make a fault test vacuously pass.
pub fn arm(spec: &str) {
    match parse_spec(spec, env_seed()) {
        Ok(f) => FAULTS.with(|cell| *cell.borrow_mut() = Some(f)),
        Err(msg) => panic!("fault::arm: {msg}"),
    }
}

/// Disarms every fault point on the current thread. The environment is NOT
/// re-read afterwards: the thread stays clean.
pub fn reset() {
    FAULTS.with(|cell| {
        *cell.borrow_mut() = Some(ThreadFaults {
            sites: HashMap::new(),
            rng: StdRng::seed_from_u64(DEFAULT_SEED),
        });
    });
}

/// `true` iff any fault site is armed on the current thread (consulting the
/// environment on first call, exactly like a fault point would).
///
/// Parallel code paths use this as a sequential-fallback guard: fault state
/// is per-thread (hit counters, PRNG), so an `Nth`-triggered site would lose
/// its deterministic firing order if its hits were spread across pool
/// threads. When faults are armed, parallel regions run sequentially on the
/// calling thread so injection behaves exactly as in the sequential scheme.
pub fn active() -> bool {
    FAULTS.with(|cell| {
        let mut slot = cell.borrow_mut();
        let faults = slot.get_or_insert_with(from_env);
        !faults.sites.is_empty()
    })
}

/// How many times `site` has been passed on this thread since it was armed.
/// Returns 0 for unarmed sites.
pub fn hits(site: &str) -> u64 {
    FAULTS.with(|cell| {
        cell.borrow()
            .as_ref()
            .and_then(|f| f.sites.get(site))
            .map(|s| s.hits)
            .unwrap_or(0)
    })
}

/// The guts of [`faultpoint!`]: count a hit of `site` and decide whether it
/// fires. Inert sites cost one thread-local lookup and a hash miss.
pub fn check(site: &'static str) -> Result<(), Injected> {
    FAULTS.with(|cell| {
        let mut slot = cell.borrow_mut();
        let faults = slot.get_or_insert_with(from_env);
        let Some(state) = faults.sites.get_mut(site) else {
            return Ok(());
        };
        state.hits += 1;
        let fire = match state.trigger {
            Trigger::Nth(n) => {
                if !state.fired && state.hits == n {
                    state.fired = true;
                    true
                } else {
                    false
                }
            }
            Trigger::Prob(p) => faults.rng.random_bool(p),
        };
        if fire {
            Err(Injected { site, mode: state.mode })
        } else {
            Ok(())
        }
    })
}

/// Marks a named fault point. Expands to a `Result<(), Injected>` so the
/// caller chooses how the injected failure enters its own error type —
/// usually just `faultpoint!("site")?` behind a `From<Injected>` impl.
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        $crate::fault::check($site)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_inert() {
        reset();
        for _ in 0..100 {
            assert_eq!(check("never.armed"), Ok(()));
        }
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        arm("t.nth:3");
        assert_eq!(check("t.nth"), Ok(()));
        assert_eq!(check("t.nth"), Ok(()));
        assert_eq!(check("t.nth"), Err(Injected { site: "t.nth", mode: FaultMode::Error }));
        for _ in 0..10 {
            assert_eq!(check("t.nth"), Ok(()), "nth fires once");
        }
        assert_eq!(hits("t.nth"), 13);
        reset();
    }

    #[test]
    fn prob_trigger_fires_deterministically_per_seed() {
        arm("t.p:p=0.5");
        let a: Vec<bool> = (0..64).map(|_| check("t.p").is_err()).collect();
        arm("t.p:p=0.5");
        let b: Vec<bool> = (0..64).map(|_| check("t.p").is_err()).collect();
        assert_eq!(a, b, "same seed, same coin flips");
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
        reset();
    }

    #[test]
    fn prob_bounds() {
        arm("t.never:p=0.0,t.always:p=1.0");
        for _ in 0..32 {
            assert_eq!(check("t.never"), Ok(()));
            assert!(check("t.always").is_err());
        }
        reset();
    }

    #[test]
    fn multiple_sites_in_one_spec() {
        arm("a:1, b:2");
        assert!(check("a").is_err());
        assert_eq!(check("b"), Ok(()));
        assert!(check("b").is_err());
        assert_eq!(check("c"), Ok(()));
        reset();
    }

    #[test]
    #[should_panic(expected = "fault::arm")]
    fn malformed_spec_panics() {
        arm("no-trigger");
    }

    #[test]
    fn mode_suffix_parses_and_propagates() {
        arm("io.write:1:torn");
        assert_eq!(
            check("io.write"),
            Err(Injected { site: "io.write", mode: FaultMode::Torn })
        );
        arm("io.read:2:short, io.sync:1:abort, plain:1");
        assert_eq!(check("io.read"), Ok(()));
        assert_eq!(check("io.read"), Err(Injected { site: "io.read", mode: FaultMode::Short }));
        assert_eq!(check("io.sync"), Err(Injected { site: "io.sync", mode: FaultMode::Abort }));
        assert_eq!(check("plain"), Err(Injected { site: "plain", mode: FaultMode::Error }));
        reset();
    }

    #[test]
    #[should_panic(expected = "fault::arm")]
    fn mode_without_trigger_panics() {
        arm("site:torn");
    }

    #[test]
    fn reset_disarms() {
        arm("t.r:1");
        reset();
        assert_eq!(check("t.r"), Ok(()));
    }

    #[test]
    fn active_reflects_armed_state() {
        reset();
        assert!(!active());
        arm("t.active:5");
        assert!(active());
        reset();
        assert!(!active());
    }

    #[test]
    fn macro_expands_to_check() {
        arm("t.m:1");
        let r: Result<(), Injected> = crate::faultpoint!("t.m");
        assert!(r.is_err());
        reset();
    }
}
