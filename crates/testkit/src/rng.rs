//! Seeded pseudo-random number generation: SplitMix64 seeding feeding a
//! xoshiro256** core.
//!
//! This is the workspace's only randomness source. It exists so dataset
//! generation and property tests are byte-for-byte deterministic per seed on
//! every platform, with no external crate in the dependency graph. The API
//! deliberately mirrors the subset of `rand` the workspace used
//! ([`StdRng`], [`SeedableRng::seed_from_u64`], [`RngExt::random_range`]), so
//! call sites migrate by swapping the `use` line.
//!
//! xoshiro256** is Blackman & Vigna's all-purpose 256-bit generator; the
//! SplitMix64 stage expands a 64-bit seed into the four state words exactly
//! as the reference implementation recommends (it also guarantees a non-zero
//! state, which xoshiro requires).

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: the seed-expansion generator (public because it is also
/// a fine tiny standalone PRNG for hashing-style uses).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256** generator. The workspace-standard RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

/// The workspace's default RNG — alias kept so call sites read like the
/// `rand` code they replaced.
pub type StdRng = Xoshiro256;

/// Seeding interface (mirrors `rand::SeedableRng`'s `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // SplitMix64 never yields four zeros from any seed, but keep the
        // invariant explicit: an all-zero state would lock xoshiro at zero.
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256 { s }
    }
}

impl Xoshiro256 {
    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32 random bits (upper half of [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A uniform `u64` in `[0, span)` by multiply-rejection (unbiased).
    /// `span == 0` means the full 2^64 range.
    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.next_u64();
        }
        // Lemire's method: widen-multiply, reject the biased low zone.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Types that can be drawn uniformly from a range. Implemented for the
/// primitive integer types.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps into a common signed 128-bit space (order-preserving).
    fn to_i128(self) -> i128;
    /// Maps back from the common space.
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 { self as i128 }
            #[inline]
            fn from_i128(v: i128) -> Self { v as $t }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`RngExt::random_range`]: `lo..hi` and `lo..=hi`.
pub trait SampleRange<T> {
    /// Inclusive `(lo, hi)` bounds; panics on an empty range.
    fn inclusive_bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn inclusive_bounds(self) -> (T, T) {
        assert!(self.start < self.end, "random_range: empty range");
        (self.start, T::from_i128(self.end.to_i128() - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn inclusive_bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty range");
        (lo, hi)
    }
}

/// Convenience drawing methods (mirrors the `rand` extension-trait idiom).
pub trait RngExt {
    /// Raw 64 random bits.
    fn raw_u64(&mut self) -> u64;

    /// A uniform draw from `range` (`lo..hi` or `lo..=hi`), unbiased.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// `rand`-compatible alias for [`Self::random_range`].
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.random_range(range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 random bits → uniform in [0, 1).
        let unit = (self.raw_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }
}

impl RngExt for Xoshiro256 {
    #[inline]
    fn raw_u64(&mut self) -> u64 {
        self.next_u64()
    }

    #[inline]
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.inclusive_bounds();
        let (lo_w, hi_w) = (lo.to_i128(), hi.to_i128());
        // Span fits in u64 unless the range covers the full 64-bit domain.
        let span = (hi_w - lo_w + 1) as u128;
        let draw = if span > u64::MAX as u128 {
            self.next_u64() // full-width range: every value is in bounds
        } else {
            self.below(span as u64)
        };
        T::from_i128(lo_w + draw as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 0, per the public reference C code.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: u64 = rng.random_range(0..=u64::MAX);
            let _ = u; // full-width draw must not panic
        }
    }

    #[test]
    fn small_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_and_bool_behave() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let picks: Vec<u8> = (0..100).map(|_| *rng.choose(&[1u8, 2, 3]).unwrap()).collect();
        assert!(picks.contains(&1) && picks.contains(&2) && picks.contains(&3));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "{heads} heads");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
