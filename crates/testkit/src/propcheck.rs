//! `propcheck` — a minimal property-testing framework (the workspace's
//! in-tree `proptest` replacement).
//!
//! # Model
//!
//! A [`Gen<T>`] draws a value from a [`Source`] — a stream of `u64`s. While
//! exploring, the stream comes from the seeded workspace PRNG and every draw
//! is *recorded*. When a case fails, shrinking operates on the recorded draw
//! buffer (truncate to a prefix, zero entries, halve entries) and *replays*
//! generation from the mutated buffer; a mutated buffer always regenerates
//! *some* valid value (an exhausted buffer yields zeros), so shrinking works
//! through every combinator — including [`Gen::map`] — for free.
//!
//! # Environment variables
//!
//! | Variable | Effect |
//! |---|---|
//! | `PROPCHECK_CASES` | overrides the per-test case count |
//! | `PROPCHECK_SEED`  | overrides the base seed (decimal or `0x…` hex) |
//!
//! Runs are deterministic: the default seed is derived from the test's name,
//! so CI failures reproduce locally with no extra flags. On failure the
//! report prints the seed, the case index, and the shrunk arguments.
//!
//! # Writing tests
//!
//! ```ignore
//! propcheck! {
//!     #![config(cases = 256)]
//!     #[test]
//!     fn addition_commutes(a in u64s(0..1000), b in u64s(0..1000)) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use crate::rng::{SeedableRng, StdRng};
use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Source: the recorded / replayed draw stream
// ---------------------------------------------------------------------------

/// The draw stream generators consume. Either records fresh randomness or
/// replays a (possibly mutated, possibly truncated) earlier recording.
pub struct Source {
    rng: Option<StdRng>,
    draws: Vec<u64>,
    pos: usize,
}

impl Source {
    /// A recording source backed by a fresh PRNG.
    pub fn recording(rng: StdRng) -> Self {
        Source { rng: Some(rng), draws: Vec::new(), pos: 0 }
    }

    /// A replaying source over a fixed buffer; reads past the end yield 0.
    pub fn replaying(draws: Vec<u64>) -> Self {
        Source { rng: None, draws, pos: 0 }
    }

    /// Next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        if self.pos < self.draws.len() {
            let v = self.draws[self.pos];
            self.pos += 1;
            return v;
        }
        match &mut self.rng {
            Some(rng) => {
                let v = rng.next_u64();
                self.draws.push(v);
                self.pos += 1;
                v
            }
            None => 0, // exhausted replay: degenerate to the simplest value
        }
    }

    /// A draw mapped into `[0, span)` (`span > 0`). Plain modulo: the slight
    /// bias is irrelevant for test-case generation and keeps replay total.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }

    fn recorded(&self) -> &[u64] {
        &self.draws[..self.pos.min(self.draws.len())]
    }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A reusable value generator: a pure function of the draw stream.
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a draw function.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Draws one value.
    pub fn generate(&self, source: &mut Source) -> T {
        (self.f)(source)
    }

    /// Applies `f` to every generated value. Shrinking passes through
    /// unchanged because it operates on the underlying draw stream.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |s| f(self.generate(s)))
    }
}

/// A constant generator.
pub fn constant<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

macro_rules! int_gens {
    ($($fname:ident => $t:ty),* $(,)?) => {$(
        /// Uniform draws from the given range (`lo..hi` or `lo..=hi`).
        pub fn $fname(range: impl crate::rng::SampleRange<$t> + Clone + 'static) -> Gen<$t> {
            Gen::new(move |s| {
                use crate::rng::SampleUniform;
                let (lo, hi) = range.clone().inclusive_bounds();
                let (lo_w, hi_w) = (lo.to_i128(), hi.to_i128());
                let span = (hi_w - lo_w + 1) as u128;
                let draw = if span > u64::MAX as u128 {
                    s.next_u64()
                } else {
                    s.below(span as u64)
                };
                <$t as SampleUniform>::from_i128(lo_w + draw as i128)
            })
        }
    )*};
}

int_gens! {
    u8s => u8,
    u16s => u16,
    u32s => u32,
    u64s => u64,
    usizes => usize,
    i32s => i32,
    i64s => i64,
}

/// Uniform booleans.
pub fn bools() -> Gen<bool> {
    Gen::new(|s| s.below(2) == 1)
}

/// A deferred index into a collection whose length is only known inside the
/// test body (the `proptest` `sample::Index` idiom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(pub u64);

impl Index {
    /// Maps the index into `[0, len)`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

/// Generates deferred indices.
pub fn index() -> Gen<Index> {
    Gen::new(|s| Index(s.next_u64()))
}

/// Vectors of `elem` with a length drawn from `len` (`lo..hi`).
pub fn vec_of<T: 'static>(
    elem: Gen<T>,
    len: impl crate::rng::SampleRange<usize> + Clone + 'static,
) -> Gen<Vec<T>> {
    let len_gen = usizes(len);
    Gen::new(move |s| {
        let n = len_gen.generate(s);
        (0..n).map(|_| elem.generate(s)).collect()
    })
}

/// Picks one of the given generators uniformly per case (the `prop_oneof!`
/// idiom).
pub fn one_of<T: 'static>(choices: Vec<Gen<T>>) -> Gen<T> {
    assert!(!choices.is_empty(), "one_of needs at least one generator");
    Gen::new(move |s| {
        let pick = s.below(choices.len() as u64) as usize;
        choices[pick].generate(s)
    })
}

/// Strings built from the characters of `charset`, with length in `len`.
pub fn string_from(
    charset: &str,
    len: impl crate::rng::SampleRange<usize> + Clone + 'static,
) -> Gen<String> {
    let chars: Vec<char> = charset.chars().collect();
    assert!(!chars.is_empty(), "string_from needs a non-empty charset");
    let len_gen = usizes(len);
    Gen::new(move |s| {
        let n = len_gen.generate(s);
        (0..n).map(|_| chars[s.below(chars.len() as u64) as usize]).collect()
    })
}

/// Printable-ASCII strings (`[ -~]`), length in `len`.
pub fn ascii_printable(
    len: impl crate::rng::SampleRange<usize> + Clone + 'static,
) -> Gen<String> {
    let len_gen = usizes(len);
    Gen::new(move |s| {
        let n = len_gen.generate(s);
        (0..n).map(|_| (0x20 + s.below(0x5F) as u8) as char).collect()
    })
}

/// Arbitrary strings mixing ASCII, multi-byte, and control characters —
/// the stand-in for `proptest`'s `.{0,n}` regex strategy.
pub fn any_string(
    len: impl crate::rng::SampleRange<usize> + Clone + 'static,
) -> Gen<String> {
    let len_gen = usizes(len);
    Gen::new(move |s| {
        let n = len_gen.generate(s);
        (0..n)
            .map(|_| match s.below(8) {
                // Weight toward printable ASCII; sprinkle the rest.
                0..=4 => (0x20 + s.below(0x5F) as u8) as char,
                5 => char::from_u32(s.below(0x20) as u32).unwrap(), // controls
                6 => char::from_u32(0xA0 + s.below(0x500) as u32).unwrap_or('¤'),
                _ => char::from_u32(0x1F300 + s.below(0x100) as u32).unwrap_or('🌀'),
            })
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// `prop_assume!` failed: the inputs were invalid, not the code.
    Reject,
    /// `prop_assert!` (or a panic) failed.
    Fail(String),
}

impl CaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }
}

/// Per-test configuration; see the module docs for the env overrides.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
    /// Give up after this many consecutive `prop_assume!` rejections.
    pub max_rejects: u32,
    /// Cap on shrink replays after a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_rejects: 4096, max_shrink_iters: 4096 }
    }
}

impl Config {
    /// Sets the case count (still overridable via `PROPCHECK_CASES`).
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("PROPCHECK_CASES") {
            Ok(v) => v.trim().parse().unwrap_or_else(|_| {
                panic!("PROPCHECK_CASES={v:?} is not a number")
            }),
            Err(_) => self.cases,
        }
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// FNV-1a, used to derive a stable per-test default seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

thread_local! {
    static IN_PROPCHECK: Cell<bool> = const { Cell::new(false) };
    static LAST_PANIC: RefCell<Option<String>> = const { RefCell::new(None) };
    static LAST_ARGS: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Records the rendered arguments of the case in flight so they survive a
/// panicking body (used by the `propcheck!` macro; not part of the API).
#[doc(hidden)]
pub fn note_args(desc: &str) {
    LAST_ARGS.with(|slot| *slot.borrow_mut() = Some(desc.to_string()));
}

/// Installs (once per process) a panic hook that stays quiet while propcheck
/// is exercising a case on this thread, so shrinking does not spam stderr.
/// Panics from anything else pass through to the previous hook.
fn install_quiet_hook() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_PROPCHECK.with(|f| f.get()) {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic (non-string payload)".to_string());
                let located = match info.location() {
                    Some(loc) => format!("{msg} (at {}:{})", loc.file(), loc.line()),
                    None => msg,
                };
                LAST_PANIC.with(|slot| *slot.borrow_mut() = Some(located));
            } else {
                prev(info);
            }
        }));
    });
}

/// One executed case: the rendered argument values plus the body's outcome.
pub struct CaseRun {
    /// `name = value` rendering of the generated arguments.
    pub desc: String,
    /// Outcome of the body.
    pub result: Result<(), CaseError>,
}

fn run_one(case: &dyn Fn(&mut Source) -> CaseRun, source: &mut Source) -> CaseRun {
    install_quiet_hook();
    IN_PROPCHECK.with(|f| f.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| case(source)));
    IN_PROPCHECK.with(|f| f.set(false));
    match outcome {
        Ok(run) => run,
        Err(_) => {
            let msg = LAST_PANIC
                .with(|slot| slot.borrow_mut().take())
                .unwrap_or_else(|| "panicked".to_string());
            let desc = LAST_ARGS
                .with(|slot| slot.borrow_mut().take())
                .unwrap_or_else(|| "<args unavailable: generation itself panicked>".into());
            CaseRun { desc, result: Err(CaseError::fail(msg)) }
        }
    }
}

/// Shrink the recorded draw buffer: each candidate is replayed through the
/// same generators; candidates that still fail become the new witness.
fn shrink(
    case: &dyn Fn(&mut Source) -> CaseRun,
    mut draws: Vec<u64>,
    budget: u32,
) -> (Vec<u64>, u32) {
    let mut spent = 0u32;
    let still_fails = |candidate: &[u64], spent: &mut u32| -> bool {
        *spent += 1;
        let mut src = Source::replaying(candidate.to_vec());
        matches!(run_one(case, &mut src).result, Err(CaseError::Fail(_)))
    };
    'outer: loop {
        if spent >= budget {
            break;
        }
        // Pass 1: drop whole suffixes (halving the length).
        let mut len = draws.len() / 2;
        while len < draws.len() {
            if still_fails(&draws[..len], &mut spent) {
                draws.truncate(len);
                continue 'outer;
            }
            if spent >= budget {
                break 'outer;
            }
            len += (draws.len() - len).div_ceil(2);
        }
        // Pass 2: simplify single draws (zero, then halve).
        for i in 0..draws.len() {
            let original = draws[i];
            for replacement in [0, original / 2] {
                if replacement == original {
                    continue;
                }
                draws[i] = replacement;
                if still_fails(&draws, &mut spent) {
                    continue 'outer;
                }
                draws[i] = original;
                if spent >= budget {
                    break 'outer;
                }
            }
        }
        break; // fixpoint: nothing simpler still fails
    }
    (draws, spent)
}

/// Runs `case` under the config. Panics with a full report on failure.
/// `test_name` should be `concat!(module_path!(), "::", stringify!(name))`.
pub fn run(test_name: &str, config: Config, case: impl Fn(&mut Source) -> CaseRun) {
    let cases = config.effective_cases();
    let base_seed = match std::env::var("PROPCHECK_SEED") {
        Ok(v) => parse_seed(&v)
            .unwrap_or_else(|| panic!("PROPCHECK_SEED={v:?} is not a decimal or 0x-hex u64")),
        Err(_) => fnv1a(test_name.as_bytes()),
    };

    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut attempt = 0u64;
    while passed < cases {
        let case_seed = base_seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let mut source = Source::recording(StdRng::seed_from_u64(case_seed));
        let run = run_one(&case, &mut source);
        match run.result {
            Ok(()) => {
                passed += 1;
                rejects = 0;
            }
            Err(CaseError::Reject) => {
                rejects += 1;
                if rejects > config.max_rejects {
                    panic!(
                        "propcheck: test `{test_name}` rejected {rejects} cases in a row \
                         (prop_assume! too strict?) after {passed} passes"
                    );
                }
            }
            Err(CaseError::Fail(first_msg)) => {
                let recorded = source.recorded().to_vec();
                let (minimal, shrink_runs) = shrink(&case, recorded, config.max_shrink_iters);
                let mut replay = Source::replaying(minimal.clone());
                let final_run = run_one(&case, &mut replay);
                let (final_desc, final_msg) = match final_run.result {
                    Err(CaseError::Fail(m)) => (final_run.desc, m),
                    // Shrinking only keeps failing candidates, so the last
                    // replay must fail; fall back to the original witness.
                    _ => (run.desc, first_msg),
                };
                panic!(
                    "propcheck: test `{test_name}` failed after {passed} passing case(s)\n\
                     seed: {base_seed:#018X} (case seed {case_seed:#018X}); \
                     rerun with PROPCHECK_SEED={base_seed:#X}\n\
                     minimal failing input (after {shrink_runs} shrink runs):\n  {final_desc}\n\
                     assertion: {final_msg}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts inside a `propcheck!` body; failures are shrunk and reported with
/// the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::propcheck::CaseError::fail(
                concat!("prop_assert!(", stringify!($cond), ") failed"),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::propcheck::CaseError::fail(format!(
                concat!("prop_assert!(", stringify!($cond), ") failed: {}"),
                format!($($fmt)+),
            )));
        }
    };
}

/// Equality assertion inside a `propcheck!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::propcheck::CaseError::fail(format!(
                "prop_assert_eq! failed\n  left:  {l:?}\n  right: {r:?}",
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::propcheck::CaseError::fail(format!(
                "prop_assert_eq! failed ({})\n  left:  {l:?}\n  right: {r:?}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// Inequality assertion inside a `propcheck!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::propcheck::CaseError::fail(format!(
                "prop_assert_ne! failed: both sides are {l:?}",
            )));
        }
    }};
}

/// Discards the current case when its inputs are invalid (does not count
/// toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::propcheck::CaseError::Reject);
        }
    };
}

/// Declares property tests. Mirrors the `proptest!` surface the workspace
/// used: an optional `#![config(cases = N)]` header, then `#[test]` functions
/// whose arguments are drawn from generators with `name in gen`.
#[macro_export]
macro_rules! propcheck {
    ( @cfg ($cases:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::propcheck::Config::default().with_cases($cases);
                $crate::propcheck::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    config,
                    |__propcheck_source| {
                        $(let $arg = ($gen).generate(__propcheck_source);)+
                        let desc = [
                            $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+
                        ].join("\n  ");
                        $crate::propcheck::note_args(&desc);
                        let result = (|| -> ::std::result::Result<(), $crate::propcheck::CaseError> {
                            $body
                            Ok(())
                        })();
                        $crate::propcheck::CaseRun { desc, result }
                    },
                );
            }
        )*
    };
    ( #![config(cases = $cases:expr)] $($rest:tt)* ) => {
        $crate::propcheck! { @cfg ($cases) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::propcheck! { @cfg (256u32) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    propcheck! {
        #![config(cases = 64)]
        #[test]
        fn addition_commutes(a in u64s(0..1000), b in u64s(0..1000)) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in vec_of(u8s(0..=255), 0..10)) {
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn assume_discards_invalid_inputs(d in u64s(0..100)) {
            prop_assume!(d != 0);
            prop_assert!(100 % d == 100 % d);
        }

        #[test]
        fn strings_honor_charsets(s in string_from("ab", 0..20)) {
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn failures_shrink_and_report_seed() {
        let result = std::panic::catch_unwind(|| {
            run("propcheck::selftest::shrinks", Config::default().with_cases(200), |src| {
                let v = vec_of(u64s(0..1000), 0..50).generate(src);
                let desc = format!("v = {v:?}");
                let failed = v.iter().sum::<u64>() > 500;
                let result = if failed {
                    Err(CaseError::fail("sum too large"))
                } else {
                    Ok(())
                };
                CaseRun { desc, result }
            });
        });
        let msg = match result {
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
            Ok(()) => panic!("expected the property to fail"),
        };
        assert!(msg.contains("PROPCHECK_SEED="), "missing seed hint: {msg}");
        assert!(msg.contains("minimal failing input"), "{msg}");
        // The shrunk witness should be near the boundary: a handful of
        // values, not the original ~25-element vector.
        let witness_line = msg.lines().find(|l| l.trim_start().starts_with("v = ")).unwrap();
        let elems = witness_line.matches(',').count() + 1;
        assert!(elems <= 6, "poorly shrunk witness: {witness_line}");
    }

    #[test]
    fn replay_is_deterministic() {
        let gen = vec_of(u64s(0..100), 0..20);
        let mut rec = Source::recording(StdRng::seed_from_u64(99));
        let first = gen.generate(&mut rec);
        let draws = rec.recorded().to_vec();
        let mut rep = Source::replaying(draws);
        assert_eq!(first, gen.generate(&mut rep));
    }

    #[test]
    fn panics_in_bodies_are_reported_not_propagated() {
        let result = std::panic::catch_unwind(|| {
            run("propcheck::selftest::panics", Config::default().with_cases(10), |src| {
                let v = u64s(0..10).generate(src);
                let desc = format!("v = {v}");
                if v >= 1 {
                    panic!("boom {v}");
                }
                CaseRun { desc, result: Ok(()) }
            });
        });
        let msg = match result {
            Err(payload) => *payload.downcast::<String>().expect("string panic"),
            Ok(()) => panic!("expected failure"),
        };
        assert!(msg.contains("boom"), "panic message lost: {msg}");
    }

    #[test]
    fn index_defers_to_runtime_length() {
        let mut src = Source::recording(StdRng::seed_from_u64(4));
        for _ in 0..100 {
            let i = index().generate(&mut src);
            assert!(i.index(7) < 7);
            assert_eq!(i.index(1), 0);
        }
    }
}
