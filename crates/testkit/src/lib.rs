//! # xp-testkit — zero-dependency test & bench infrastructure
//!
//! The workspace builds hermetically: no crates.io dependency may appear in
//! the graph (see DESIGN.md, "Hermetic builds"). This crate supplies, from
//! scratch, the four pieces of infrastructure the repo previously pulled from
//! external crates:
//!
//! * [`rng`] — seeded SplitMix64 → xoshiro256** PRNG (replaced `rand`).
//!   Dataset generation is byte-for-byte deterministic per seed.
//! * [`propcheck`] — a minimal property-testing framework (replaced
//!   `proptest`): generator combinators, draw-stream shrinking, seed
//!   reporting, `PROPCHECK_CASES` / `PROPCHECK_SEED` env overrides.
//! * [`bench`] — a wall-clock bench harness (replaced `criterion`):
//!   warmup + calibrated samples, min/median/p95, JSON into `results/`.
//! * [`refint`] — a schoolbook reference big-integer (replaced `num-bigint`
//!   as the differential-test oracle for `xp-bignum`).
//! * [`kernel_oracle`] — the differential layer over [`refint`]: propcheck
//!   generators biased to multiply-kernel crossover sizes and carry-heavy
//!   limb patterns, plus a runner that pins any limb-level kernel against
//!   the oracle.
//!
//! It also hosts the workspace's fault-injection facility:
//!
//! * [`fault`] — named [`faultpoint!`] sites compiled into the pipeline
//!   crates, armed deterministically via `XP_FAULT=<site>:<nth|p=prob>` or
//!   programmatically per thread (see DESIGN.md, "Robustness").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod fault;
pub mod kernel_oracle;
pub mod propcheck;
pub mod refint;
pub mod rng;

pub use fault::{FaultMode, Injected};
pub use propcheck::{Config, Gen, Index, Source};
pub use refint::RefUint;
pub use rng::{RngExt, SeedableRng, StdRng};
