//! A deliberately naive schoolbook big unsigned integer — the differential
//! oracle that replaced `num-bigint` in `crates/bignum/tests/differential.rs`.
//!
//! Everything here is the obvious O(n²) textbook algorithm over base-2³²
//! limbs: no Karatsuba, no Barrett, no clever normalization. That is the
//! point — `xp-bignum` is the optimized implementation under test, and an
//! oracle only earns trust by being too simple to share its bugs.

use std::cmp::Ordering;
use std::fmt;

/// Schoolbook arbitrary-precision unsigned integer.
///
/// Invariant: little-endian base-2³² limbs with no trailing zero limb
/// (so zero is the empty vector).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RefUint {
    limbs: Vec<u32>,
}

impl RefUint {
    /// Zero.
    pub fn zero() -> Self {
        RefUint { limbs: Vec::new() }
    }

    /// Parses big-endian bytes (the `num-bigint` constructor the
    /// differential tests used). Bytes group into base-2³² limbs directly —
    /// a representation change, not arithmetic, so a linear constructor
    /// keeps the oracle naive where it counts.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 4 + 1);
        for chunk in bytes.rchunks(4) {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
        }
        RefUint::trim(limbs)
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Bit length (0 for zero) — mirrors `num-bigint`'s `bits()`.
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 32 + (32 - top.leading_zeros() as u64),
        }
    }

    fn trim(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        RefUint { limbs }
    }

    fn cmp_mag(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            if a != b {
                return a.cmp(b);
            }
        }
        Ordering::Equal
    }

    /// Schoolbook addition.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let sum = limb as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        RefUint::trim(out)
    }

    /// Schoolbook subtraction; panics on underflow (like `num-bigint`).
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self.cmp_mag(other) != Ordering::Less, "RefUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - *other.limbs.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        RefUint::trim(out)
    }

    /// Schoolbook O(n·m) multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return RefUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u64 * b as u64 + out[i + j] as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        RefUint::trim(out)
    }

    fn shl_bits(&self, k: u64) -> Self {
        if self.is_zero() {
            return RefUint::zero();
        }
        let limb_shift = (k / 32) as usize;
        let bit_shift = (k % 32) as u32;
        let mut out = vec![0u32; limb_shift];
        let mut carry = 0u32;
        for &l in &self.limbs {
            if bit_shift == 0 {
                out.push(l);
            } else {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
        }
        if bit_shift != 0 && carry != 0 {
            out.push(carry);
        }
        RefUint::trim(out)
    }

    fn shr_bits(&self, k: u64) -> Self {
        let limb_shift = (k / 32) as usize;
        if limb_shift >= self.limbs.len() {
            return RefUint::zero();
        }
        let bit_shift = (k % 32) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let mut v = src[i] >> bit_shift;
            if bit_shift != 0 {
                if let Some(&next) = src.get(i + 1) {
                    v |= next << (32 - bit_shift);
                }
            }
            out.push(v);
        }
        RefUint::trim(out)
    }

    /// Binary long division: shift-and-subtract, one quotient bit at a time.
    /// Panics on division by zero.
    pub fn divrem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "RefUint division by zero");
        if self.cmp_mag(divisor) == Ordering::Less {
            return (RefUint::zero(), self.clone());
        }
        let shift = self.bits() - divisor.bits();
        let mut remainder = self.clone();
        let mut quotient = RefUint::zero();
        for k in (0..=shift).rev() {
            let candidate = divisor.shl_bits(k);
            if remainder.cmp_mag(&candidate) != Ordering::Less {
                remainder = remainder.sub(&candidate);
                quotient = quotient.add(&RefUint::from(1u64).shl_bits(k));
            }
        }
        (quotient, remainder)
    }

    /// Modular exponentiation by square-and-multiply with full reductions.
    pub fn modpow(&self, exponent: &Self, modulus: &Self) -> Self {
        assert!(!modulus.is_zero(), "RefUint modpow with zero modulus");
        let one = RefUint::from(1u64);
        if modulus == &one {
            return RefUint::zero();
        }
        let mut result = one;
        let mut base = self.divrem(modulus).1;
        for bit in 0..exponent.bits() {
            if exponent.shr_bits(bit).limbs.first().map_or(0, |&l| l & 1) == 1 {
                result = result.mul(&base).divrem(modulus).1;
            }
            base = base.mul(&base).divrem(modulus).1;
        }
        result
    }
}

impl From<u64> for RefUint {
    fn from(v: u64) -> Self {
        RefUint::trim(vec![v as u32, (v >> 32) as u32])
    }
}

impl PartialOrd for RefUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RefUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_mag(other)
    }
}

impl RefUint {
    /// Lowercase hex rendering — linear in the limb count, unlike the
    /// decimal [`fmt::Display`], so differential runners can compare large
    /// values without an O(n²) conversion dominating the test budget.
    pub fn to_hex(&self) -> String {
        match self.limbs.split_last() {
            None => "0".to_string(),
            Some((top, rest)) => {
                let mut out = format!("{top:x}");
                for limb in rest.iter().rev() {
                    out.push_str(&format!("{limb:08x}"));
                }
                out
            }
        }
    }
}

impl fmt::Display for RefUint {
    /// Decimal rendering by repeated division by 10⁹ (naive but exact).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        const CHUNK: u64 = 1_000_000_000;
        let mut chunks = Vec::new();
        let mut limbs = self.limbs.clone();
        while !limbs.is_empty() {
            // Divide the limb vector by 10⁹ in place, collecting the remainder.
            let mut rem = 0u64;
            for l in limbs.iter_mut().rev() {
                let cur = (rem << 32) | *l as u64;
                *l = (cur / CHUNK) as u32;
                rem = cur % CHUNK;
            }
            while limbs.last() == Some(&0) {
                limbs.pop();
            }
            chunks.push(rem);
        }
        let mut out = chunks.pop().unwrap().to_string();
        for c in chunks.iter().rev() {
            out.push_str(&format!("{c:09}"));
        }
        f.write_str(&out)
    }
}

macro_rules! forward_binop {
    ($trait_:ident, $method:ident, $imp:ident) => {
        impl std::ops::$trait_ for RefUint {
            type Output = RefUint;
            fn $method(self, rhs: RefUint) -> RefUint {
                RefUint::$imp(&self, &rhs)
            }
        }
        impl std::ops::$trait_ for &RefUint {
            type Output = RefUint;
            fn $method(self, rhs: &RefUint) -> RefUint {
                RefUint::$imp(self, rhs)
            }
        }
    };
}

forward_binop!(Add, add, add);
forward_binop!(Sub, sub, sub);
forward_binop!(Mul, mul, mul);

impl std::ops::Div for &RefUint {
    type Output = RefUint;
    fn div(self, rhs: &RefUint) -> RefUint {
        self.divrem(rhs).0
    }
}

impl std::ops::Rem for &RefUint {
    type Output = RefUint;
    fn rem(self, rhs: &RefUint) -> RefUint {
        self.divrem(rhs).1
    }
}

impl std::ops::Shl<u64> for RefUint {
    type Output = RefUint;
    fn shl(self, k: u64) -> RefUint {
        self.shl_bits(k)
    }
}

impl std::ops::Shr<u64> for RefUint {
    type Output = RefUint;
    fn shr(self, k: u64) -> RefUint {
        self.shr_bits(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: u64) -> RefUint {
        RefUint::from(v)
    }

    #[test]
    fn to_hex_matches_formatting() {
        for v in [0u64, 1, 0xf, 0x10, 0xdead_beef, u64::MAX] {
            assert_eq!(r(v).to_hex(), format!("{v:x}"));
        }
        // Crosses the base-2³² limb boundary: inner limbs must zero-pad.
        let wide = r(u64::MAX).mul(&r(0x1_0000_0001));
        assert_eq!(wide.to_hex(), format!("{:x}", u64::MAX as u128 * 0x1_0000_0001));
    }

    #[test]
    fn u64_round_trip_and_display() {
        for v in [0u64, 1, 9, 10, 999_999_999, 1_000_000_000, u64::MAX] {
            assert_eq!(r(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn bytes_be_matches_u64() {
        assert_eq!(RefUint::from_bytes_be(&[0x01, 0x00]), r(256));
        assert_eq!(RefUint::from_bytes_be(&[]), RefUint::zero());
        assert_eq!(RefUint::from_bytes_be(&[0, 0, 0, 7]), r(7));
        let big = RefUint::from_bytes_be(&[0xFF; 8]);
        assert_eq!(big, r(u64::MAX));
    }

    #[test]
    fn arithmetic_matches_u128() {
        let cases = [
            (0u128, 0u128),
            (1, 1),
            (u64::MAX as u128, 2),
            (u64::MAX as u128, u64::MAX as u128),
            (123_456_789_012_345, 987_654_321),
        ];
        let from128 = |v: u128| {
            RefUint::from((v >> 64) as u64)
                .shl_bits(64)
                .add(&RefUint::from(v as u64))
        };
        for (a, b) in cases {
            assert_eq!(from128(a).add(&from128(b)).to_string(), (a + b).to_string());
            assert_eq!(from128(a).mul(&from128(b)).to_string(), (a * b).to_string());
            if a >= b {
                assert_eq!(from128(a).sub(&from128(b)).to_string(), (a - b).to_string());
            }
            if b != 0 {
                let (q, rem) = from128(a).divrem(&from128(b));
                assert_eq!(q.to_string(), (a / b).to_string());
                assert_eq!(rem.to_string(), (a % b).to_string());
            }
        }
    }

    #[test]
    fn division_reconstructs() {
        let a = RefUint::from_bytes_be(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67, 0x89]);
        let b = RefUint::from_bytes_be(&[0x0F, 0xFF, 0x07]);
        let (q, rem) = a.divrem(&b);
        assert!(rem < b);
        assert_eq!(q.mul(&b).add(&rem), a);
    }

    #[test]
    fn shifts_match_u128() {
        let v = 0x0123_4567_89AB_CDEFu64;
        for k in [0u64, 1, 7, 31, 32, 33, 63] {
            assert_eq!(r(v).shl_bits(k).to_string(), ((v as u128) << k).to_string());
            assert_eq!(r(v).shr_bits(k).to_string(), (v >> k).to_string());
        }
        assert_eq!(r(5).shr_bits(100), RefUint::zero());
    }

    #[test]
    fn bits_counts_correctly() {
        assert_eq!(RefUint::zero().bits(), 0);
        assert_eq!(r(1).bits(), 1);
        assert_eq!(r(255).bits(), 8);
        assert_eq!(r(256).bits(), 9);
        assert_eq!(r(1).shl_bits(100).bits(), 101);
    }

    #[test]
    fn modpow_matches_naive() {
        let naive = |b: u64, e: u64, m: u64| -> u64 {
            let mut acc = 1u128;
            for _ in 0..e {
                acc = acc * b as u128 % m as u128;
            }
            acc as u64
        };
        for (b, e, m) in [(2u64, 10u64, 1000u64), (7, 128, 13), (0, 5, 9), (5, 0, 9), (123, 77, 4_294_967_291)] {
            assert_eq!(
                r(b).modpow(&r(e), &r(m)).to_string(),
                naive(b, e, m).to_string(),
                "{b}^{e} mod {m}"
            );
        }
    }
}
