//! Kernel-oracle layer: [`RefUint`]-backed differential testing for
//! arithmetic kernels.
//!
//! `xp-bignum` grows multiply kernels (schoolbook / Karatsuba / Toom-3) and
//! reduction contexts (Barrett / Montgomery) whose bugs hide in exactly two
//! places: the *crossover sizes* where the dispatch switches kernels, and
//! the *carry chains* that only dense limb patterns exercise. This module
//! supplies propcheck generators biased toward both — limb counts straddling
//! the dispatch thresholds, all-ones limbs, and values one step from
//! `u64::MAX` — plus a differential runner that compares any limb-level
//! binary kernel against the deliberately naive [`RefUint`] oracle (which
//! shares no algorithmic structure with `xp-bignum`).
//!
//! The crate cannot depend on `xp-bignum` (the dependency points the other
//! way), so everything here speaks little-endian `u64` limb slices; the
//! kernel under test converts on its side of the boundary. See
//! `crates/bignum/tests/kernel_differential.rs` for the consuming suite and
//! DESIGN.md §10 for the layer's place in the kernel workflow.

use crate::propcheck::{self, constant, one_of, u64s, usizes, CaseError, CaseRun, Config, Gen};
use crate::refint::RefUint;

/// Builds the oracle integer from little-endian `u64` limbs — the exact
/// in-memory layout of `xp_bignum::UBig`. Trailing zero limbs are fine (the
/// oracle normalizes), so generators don't need to maintain the no-trailing-
/// zero invariant the production type enforces.
pub fn ref_from_limbs(limbs: &[u64]) -> RefUint {
    let mut bytes = Vec::with_capacity(limbs.len() * 8);
    for &limb in limbs.iter().rev() {
        bytes.extend_from_slice(&limb.to_be_bytes());
    }
    RefUint::from_bytes_be(&bytes)
}

/// Limb values biased toward carry-propagation hazards: all-ones, values a
/// step or two below `u64::MAX`, the sign-bit boundary, and tiny values that
/// create zero runs — with enough uniform draws mixed in to keep coverage
/// broad.
pub fn carry_heavy_limbs() -> Gen<u64> {
    one_of(vec![
        constant(u64::MAX),
        constant(u64::MAX - 1),
        constant(1u64 << 63),
        constant((1u64 << 63) - 1),
        constant(0u64),
        constant(1u64),
        u64s(u64::MAX - 16..=u64::MAX),
        u64s(0..=u64::MAX),
        u64s(0..=u64::MAX),
    ])
}

/// Limb counts pinned to the interesting sizes: for every dispatch
/// threshold `t`, lengths in `[t−2, t+2]` (where the kernel switch happens)
/// and around `2t` (the first recursion level that re-crosses it), plus
/// small lengths `0..8` for the degenerate splits.
pub fn straddling_lens(thresholds: Vec<usize>) -> Gen<usize> {
    let mut choices: Vec<Gen<usize>> = vec![usizes(0..8usize)];
    for &t in &thresholds {
        choices.push(usizes(t.saturating_sub(2)..=t + 2));
        choices.push(usizes((2 * t).saturating_sub(2)..=2 * t + 2));
    }
    one_of(choices)
}

/// Operand generator for multiply/reduce kernels: carry-heavy limbs at
/// threshold-straddling lengths, with occasional solid all-ones and
/// near-`u64::MAX` runs (the worst case for every carry chain at once).
pub fn kernel_operand(thresholds: Vec<usize>) -> Gen<Vec<u64>> {
    let lens = straddling_lens(thresholds);
    let limb = carry_heavy_limbs();
    Gen::new(move |s| {
        let n = lens.generate(s);
        match s.below(4) {
            // Solid all-ones run: (B^n − 1), the maximal-carry operand.
            0 => vec![u64::MAX; n],
            // Near-max run with a single perturbed limb.
            1 => {
                let mut v = vec![u64::MAX; n];
                if n > 0 {
                    let at = s.below(n as u64) as usize;
                    v[at] = s.next_u64();
                }
                v
            }
            // Mixed carry-heavy limbs.
            _ => (0..n).map(|_| limb.generate(s)).collect(),
        }
    })
}

/// Differentially checks a binary limb-level kernel against the oracle.
///
/// Draws `cases` operand pairs from [`kernel_operand`] (biased to
/// `thresholds`), computes `oracle(a, b)` on [`RefUint`] and `ours(a, b)` in
/// the kernel under test (returned as a lowercase hex string so this module
/// never sees the production type, and so the comparison stays linear in
/// the operand size), and fails — with propcheck's shrinking and seed
/// reporting — on the first mismatch.
///
/// `name` should identify the kernel uniquely (it seeds the PRNG), e.g.
/// `"kernel_differential::mul_toom3"`.
pub fn check_binary_kernel(
    name: &str,
    cases: u32,
    thresholds: Vec<usize>,
    oracle: impl Fn(&RefUint, &RefUint) -> RefUint,
    ours: impl Fn(&[u64], &[u64]) -> String,
) {
    let operand = kernel_operand(thresholds);
    propcheck::run(name, Config::default().with_cases(cases), move |src| {
        let a = operand.generate(src);
        let b = operand.generate(src);
        let desc = format!("a = {a:x?}\n  b = {b:x?}");
        propcheck::note_args(&desc);
        let want = oracle(&ref_from_limbs(&a), &ref_from_limbs(&b)).to_hex();
        let got = ours(&a, &b);
        let result = if got == want {
            Ok(())
        } else {
            Err(CaseError::fail(format!(
                "kernel disagrees with oracle\n  ours:   {got}\n  oracle: {want}"
            )))
        };
        CaseRun { desc, result }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};

    #[test]
    fn ref_from_limbs_matches_manual_value() {
        assert!(ref_from_limbs(&[]).is_zero());
        assert_eq!(ref_from_limbs(&[7]).to_string(), "7");
        // [low, high] = high·2⁶⁴ + low.
        assert_eq!(
            ref_from_limbs(&[3, 2]).to_string(),
            (2u128 * (1u128 << 64) + 3).to_string()
        );
        // Trailing zero limbs normalize away.
        assert_eq!(ref_from_limbs(&[5, 0, 0]).to_string(), "5");
    }

    #[test]
    fn straddling_lens_hit_every_threshold_window() {
        let gen = straddling_lens(vec![32, 96]);
        let mut src = crate::propcheck::Source::recording(StdRng::seed_from_u64(11));
        let mut near32 = false;
        let mut near96 = false;
        let mut near192 = false;
        for _ in 0..2000 {
            let n = gen.generate(&mut src);
            near32 |= (30..=34).contains(&n);
            near96 |= (94..=98).contains(&n);
            near192 |= (190..=194).contains(&n);
        }
        assert!(near32 && near96 && near192, "windows missed: {near32} {near96} {near192}");
    }

    #[test]
    fn kernel_operand_produces_all_ones_runs() {
        let gen = kernel_operand(vec![8]);
        let mut src = crate::propcheck::Source::recording(StdRng::seed_from_u64(5));
        let mut saw_all_ones = false;
        for _ in 0..500 {
            let v = gen.generate(&mut src);
            saw_all_ones |= v.len() >= 4 && v.iter().all(|&l| l == u64::MAX);
        }
        assert!(saw_all_ones, "all-ones bias missing");
    }

    #[test]
    fn check_binary_kernel_accepts_a_correct_kernel() {
        check_binary_kernel(
            "kernel_oracle::selftest::add",
            64,
            vec![4],
            |a, b| a.add(b),
            |a, b| ref_from_limbs(a).add(&ref_from_limbs(b)).to_hex(),
        );
    }

    #[test]
    fn check_binary_kernel_catches_an_off_by_one() {
        let outcome = std::panic::catch_unwind(|| {
            check_binary_kernel(
                "kernel_oracle::selftest::broken",
                64,
                vec![4],
                |a, b| a.add(b),
                // A "kernel" that drops the carry... by adding one instead.
                |a, b| {
                    ref_from_limbs(a)
                        .add(&ref_from_limbs(b))
                        .add(&RefUint::from(1u64))
                        .to_hex()
                },
            );
        });
        assert!(outcome.is_err(), "broken kernel must be flagged");
    }
}
