//! A lightweight wall-clock benchmark harness (the workspace's in-tree
//! `criterion` replacement).
//!
//! Each benchmark is measured as `samples` timed runs after a warmup; a run
//! executes the routine enough times to fill a minimum measurement window so
//! sub-microsecond routines are still resolvable. The harness prints an
//! aligned table (min / median / p95 / mean per iteration) and writes
//! `results/bench_<group>.json` next to the CSV files the figure binaries
//! emit.
//!
//! Environment overrides: `XP_BENCH_SAMPLES` (sample count),
//! `XP_BENCH_MIN_WINDOW_MS` (per-sample measurement window).

use std::fmt::Write as _;
use std::fs;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark id, e.g. `"interval/D6"`.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Routine invocations per sample.
    pub iters_per_sample: u64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
}

/// A named group of benchmarks; mirrors the `criterion` group idiom.
pub struct Harness {
    group: String,
    samples: usize,
    min_window: Duration,
    results: Vec<BenchStats>,
}

fn env_usize(var: &str) -> Option<usize> {
    std::env::var(var).ok()?.trim().parse().ok()
}

impl Harness {
    /// Creates a group. `group` becomes the JSON file stem
    /// (`results/bench_<group>.json`).
    pub fn new(group: &str) -> Self {
        Harness {
            group: group.to_string(),
            samples: env_usize("XP_BENCH_SAMPLES").unwrap_or(20),
            min_window: Duration::from_millis(
                env_usize("XP_BENCH_MIN_WINDOW_MS").unwrap_or(20) as u64,
            ),
            results: Vec::new(),
        }
    }

    /// Sets the sample count (`XP_BENCH_SAMPLES` still wins).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if env_usize("XP_BENCH_SAMPLES").is_none() {
            self.samples = n.max(2);
        }
        self
    }

    /// Benchmarks `routine` (its return value is black-boxed so the work
    /// cannot be optimized away).
    pub fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        // Warmup + calibration: how many iterations fill the window?
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_window || iters >= 1 << 30 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            // Aim directly for the window with 2x headroom.
            let needed = self.min_window.as_nanos() as f64
                / (elapsed.as_nanos().max(1) as f64 / iters as f64);
            iters = (needed as u64 * 2).clamp(iters * 2, 1 << 30);
        };
        let _ = per_iter;

        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.push_stats(name, iters, per_iter_ns);
    }

    /// Benchmarks `routine` on a fresh `setup()` input per invocation; only
    /// the routine is timed (the `criterion::iter_batched` idiom, for
    /// routines that consume or mutate their input).
    pub fn bench_batched<S, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        // Untimed warmup.
        for _ in 0..2 {
            black_box(routine(setup()));
        }
        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            per_iter_ns.push(start.elapsed().as_nanos() as f64);
        }
        self.push_stats(name, 1, per_iter_ns);
    }

    fn push_stats(&mut self, name: &str, iters: u64, mut per_iter_ns: Vec<f64>) {
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = per_iter_ns.len();
        let stats = BenchStats {
            name: name.to_string(),
            samples: n,
            iters_per_sample: iters,
            min_ns: per_iter_ns[0],
            median_ns: median_of_sorted(&per_iter_ns),
            p95_ns: per_iter_ns[(n * 95 / 100).min(n - 1)],
            mean_ns: per_iter_ns.iter().sum::<f64>() / n as f64,
        };
        println!(
            "{:<40} min {:>12}  median {:>12}  p95 {:>12}  ({} samples × {} iters)",
            format!("{}/{}", self.group, stats.name),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push(stats);
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }

    /// Renders the group as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"group\": {},", json_string(&self.group));
        let _ = writeln!(out, "  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"samples\": {}, \"iters_per_sample\": {}, \
                 \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \"mean_ns\": {:.1}}}{comma}",
                json_string(&r.name),
                r.samples,
                r.iters_per_sample,
                r.min_ns,
                r.median_ns,
                r.p95_ns,
                r.mean_ns,
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = write!(out, "}}");
        out
    }

    /// Writes `results/bench_<group>.json` (best effort, like the CSV
    /// reports) and prints where it went.
    pub fn finish(&mut self) {
        let dir = results_dir();
        if fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("bench_{}.json", self.group));
            if fs::write(&path, self.to_json()).is_ok() {
                println!("[written results/bench_{}.json]", self.group);
            }
        }
    }
}

/// Median of an ascending-sorted sample: the middle element for odd `n`, the
/// average of the two middle elements for even `n`. Taking `sorted[n/2]`
/// alone would bias even-sized samples toward the slower half.
fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// `<workspace>/results`, anchored at this crate's manifest.
fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Harness {
        let mut h = Harness::new("selftest");
        h.samples = 3;
        h.min_window = Duration::from_micros(200);
        h
    }

    #[test]
    fn bench_measures_and_records() {
        let mut h = tiny();
        h.bench("sum", || (0..100u64).sum::<u64>());
        assert_eq!(h.results().len(), 1);
        let r = &h.results()[0];
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn bench_batched_times_routine_only() {
        let mut h = tiny();
        h.bench_batched(
            "consume_vec",
            || vec![1u64; 1000],
            |v| v.into_iter().sum::<u64>(),
        );
        assert_eq!(h.results()[0].iters_per_sample, 1);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut h = tiny();
        h.bench("a\"quoted\"", || 1u64 + 1);
        let json = h.to_json();
        assert!(json.contains("\"group\": \"selftest\""));
        assert!(json.contains("a\\\"quoted\\\""));
        assert!(json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_controls() {
        assert_eq!(json_string("x\n\t\u{1}"), "\"x\\n\\t\\u0001\"");
    }

    #[test]
    fn median_averages_the_middle_pair_for_even_n() {
        assert_eq!(median_of_sorted(&[1.0]), 1.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 10.0]), 2.0);
        // Even n: [1, 2, 4, 100] → (2 + 4) / 2, not the upper element 4.
        assert_eq!(median_of_sorted(&[1.0, 2.0, 4.0, 100.0]), 3.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]), 3.5);
    }
}
