//! Decimal and hexadecimal I/O for [`UBig`].

use crate::{ParseBigError, UBig};
use std::fmt;
use std::str::FromStr;

/// Largest power of ten fitting in a `u64`: used to chunk decimal conversion.
const DEC_CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
const DEC_CHUNK_DIGITS: usize = 19;

impl UBig {
    /// Formats the value in decimal.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_u64(DEC_CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = String::with_capacity(chunks.len() * DEC_CHUNK_DIGITS);
        let mut iter = chunks.iter().rev();
        // Most significant chunk prints without leading zeros (the zero
        // case returned above, so a chunk always exists).
        let Some(first) = iter.next() else { return "0".to_string() };
        out.push_str(&first.to_string());
        for chunk in iter {
            out.push_str(&format!("{chunk:019}"));
        }
        out
    }

    /// Parses a decimal string (ASCII digits only, `_` separators allowed).
    pub fn from_decimal(s: &str) -> Result<UBig, ParseBigError> {
        let mut acc = UBig::zero();
        let mut seen = false;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseBigError::InvalidDigit(c))?;
            acc.mul_u64_assign(10);
            acc.add_assign_ref(&UBig::from(d as u64));
            seen = true;
        }
        if seen {
            Ok(acc)
        } else {
            Err(ParseBigError::Empty)
        }
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal())
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig({})", self.to_decimal())
    }
}

impl fmt::LowerHex for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = String::new();
        let mut iter = self.limbs.iter().rev();
        // The zero case returned above, so a limb always exists.
        let Some(first) = iter.next() else { return f.pad_integral(true, "0x", "0") };
        s.push_str(&format!("{first:x}"));
        for limb in iter {
            s.push_str(&format!("{limb:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl FromStr for UBig {
    type Err = ParseBigError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        UBig::from_decimal(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_small() {
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!(UBig::from(42u64).to_string(), "42");
        assert_eq!("42".parse::<UBig>().unwrap(), UBig::from(42u64));
    }

    #[test]
    fn multi_chunk_round_trip() {
        let s = "123456789012345678901234567890123456789012345678901234567890";
        let v: UBig = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn chunk_boundary_values() {
        for s in ["9999999999999999999", "10000000000000000000", "10000000000000000001"] {
            assert_eq!(s.parse::<UBig>().unwrap().to_string(), s);
        }
    }

    #[test]
    fn interior_zero_chunks_are_padded() {
        // 10^40 has a full zero middle chunk when split into 10^19 pieces.
        let v = UBig::from(10u64).pow(40);
        assert_eq!(v.to_string(), format!("1{}", "0".repeat(40)));
    }

    #[test]
    fn underscore_separators() {
        assert_eq!("1_000_000".parse::<UBig>().unwrap(), UBig::from(1_000_000u64));
    }

    #[test]
    fn parse_errors() {
        assert_eq!("".parse::<UBig>(), Err(ParseBigError::Empty));
        assert_eq!("_".parse::<UBig>(), Err(ParseBigError::Empty));
        assert_eq!("12a4".parse::<UBig>(), Err(ParseBigError::InvalidDigit('a')));
        assert_eq!("-5".parse::<UBig>(), Err(ParseBigError::InvalidDigit('-')));
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", UBig::zero()), "0");
        assert_eq!(format!("{:x}", UBig::from(0xdeadbeefu64)), "deadbeef");
        let two_limb = UBig::from((1u128 << 64) + 0xf);
        assert_eq!(format!("{:x}", two_limb), "1000000000000000f");
        assert_eq!(format!("{:#x}", UBig::from(255u64)), "0xff");
    }

    #[test]
    fn debug_contains_decimal() {
        assert_eq!(format!("{:?}", UBig::from(7u64)), "UBig(7)");
    }
}
