//! Balanced product trees: the batch kernel for `Π fᵢ` over many machine
//! words.
//!
//! Sequentially folding `k` word-sized factors into an accumulator costs
//! `O(k)` multiplications *by the full-width accumulator* — `O(k²)` limb
//! operations once the product outgrows a word. A balanced tree multiplies
//! operands of equal size at every level, so the total is `O(M(B) log k)`
//! for a `B`-bit result, and the big multiplications near the root go
//! through the Karatsuba layer that a skewed accumulator never reaches.
//! `ScTable::build` and the SC basis constructor batch their chunk products
//! through here.

use crate::checked::{mul_u64_within, mul_within, BudgetError};
use crate::UBig;

/// Factors per leaf of the balanced tree, set from the measured Karatsuba
/// crossover: a u64 factor contributes at most one limb, so folding this
/// many words into one accumulator with the word carry loop stays entirely
/// below the crossover where tree-shaping starts to pay. The pairwise
/// combines above the leaves then meet the Karatsuba and Toom-3 layers at
/// operand widths the `bench_bignum_kernels` ladder measured as wins,
/// instead of spending an allocation per tree node on multiplies the
/// schoolbook kernel handles in a single pass.
const LEAF_FACTORS: usize = crate::mul::KARATSUBA_THRESHOLD;

/// Folds a sub-crossover chunk into one accumulator via the word loop.
fn leaf_product(factors: &[u64]) -> UBig {
    let mut acc = match factors.first() {
        Some(&f) => UBig::from(f),
        None => return UBig::one(),
    };
    for &f in &factors[1..] {
        acc.mul_u64_assign(f);
    }
    acc
}

/// Product of `factors` by balanced pairwise multiplication over
/// word-folded leaves of [`LEAF_FACTORS`] factors.
///
/// An empty slice yields 1 (the multiplicative identity), matching the
/// accumulator idiom it replaces.
pub fn product(factors: &[u64]) -> UBig {
    match factors.len() {
        0 => UBig::one(),
        1 => UBig::from(factors[0]),
        2 => UBig::from(factors[0] as u128 * factors[1] as u128),
        n if n <= LEAF_FACTORS => leaf_product(factors),
        n => {
            let (lo, hi) = factors.split_at(n / 2);
            product(lo) * product(hi)
        }
    }
}

/// Factor count below which [`product_par`] doesn't bother spawning: the
/// whole product fits in a few hundred limb operations, far below the cost
/// of a thread handoff.
const PAR_THRESHOLD: usize = 64;

/// [`product`] with the tree levels evaluated on the `xp_par` pool.
///
/// Leaf chunks multiply concurrently, then each pairwise combine level runs
/// as a parallel map over adjacent pairs. Exact integer multiplication is
/// associative, so the result is the same `UBig` — canonical representation,
/// byte-identical — as [`product`] at any thread count; under an ambient
/// budget of 1 thread this *is* [`product`].
pub fn product_par(factors: &[u64]) -> UBig {
    let threads = xp_par::threads();
    if threads <= 1 || factors.len() < PAR_THRESHOLD {
        return product(factors);
    }
    // Leaf level: near-equal chunks, a few per worker so stragglers even out.
    let chunk = factors.len().div_ceil(threads * 4).max(2);
    let mut level: Vec<UBig> = xp_par::par_chunks(factors, chunk, product);
    // Combine level by level; the top levels hold the Karatsuba-sized
    // multiplications, and each level's pairs are independent.
    while level.len() > 1 {
        level = xp_par::par_map_indexed(level.len().div_ceil(2), |i| {
            match level.get(2 * i + 1) {
                Some(b) => level[2 * i].clone() * b.clone(),
                None => level[2 * i].clone(),
            }
        });
    }
    level.pop().unwrap_or_else(UBig::one)
}

/// Budgeted [`product`]: refuses — before multiplying anything — if the
/// result could exceed `max_bits` bits, using the conservative bound
/// `Σ bit_len(fᵢ)` (an overshoot of at most `k-1` bits). Each internal
/// multiplication then runs through [`mul_within`], so the `bignum.mul`
/// fault point and the per-step ceiling apply exactly as they do on the
/// sequential path this replaces.
pub fn product_within(factors: &[u64], max_bits: u64) -> Result<UBig, BudgetError> {
    let bits: u64 = factors.iter().map(|&f| UBig::from(f).bit_len().max(1)).sum();
    if bits > max_bits {
        return Err(BudgetError::BitsExceeded { bits, max_bits });
    }
    product_within_unchecked(factors, max_bits)
}

fn product_within_unchecked(factors: &[u64], max_bits: u64) -> Result<UBig, BudgetError> {
    match factors.len() {
        0 => Ok(UBig::one()),
        1 => Ok(UBig::from(factors[0])),
        n if n <= LEAF_FACTORS => {
            // Same leaf fold as `product`, with every step under the
            // budget check and the `bignum.mul` fault point.
            let mut acc = UBig::from(factors[0]);
            for &f in &factors[1..] {
                acc = mul_u64_within(&acc, f, max_bits)?;
            }
            Ok(acc)
        }
        n => {
            let (lo, hi) = factors.split_at(n / 2);
            let lo = product_within_unchecked(lo, max_bits)?;
            let hi = product_within_unchecked(hi, max_bits)?;
            mul_within(&lo, &hi, max_bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sequential(factors: &[u64]) -> UBig {
        let mut acc = UBig::one();
        for &f in factors {
            acc = acc * UBig::from(f);
        }
        acc
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(product(&[]), UBig::one());
        assert_eq!(product(&[42]), UBig::from(42u64));
    }

    #[test]
    fn matches_sequential_fold() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];
        for k in 0..=primes.len() {
            assert_eq!(product(&primes[..k]), sequential(&primes[..k]), "k={k}");
        }
    }

    #[test]
    fn zero_factor_zeroes_the_product() {
        assert!(product(&[3, 0, 7]).is_zero());
    }

    #[test]
    fn large_batch_matches_sequential() {
        let factors: Vec<u64> = (0..500).map(|i| 0x9e37_79b9u64.wrapping_mul(i + 1) | 1).collect();
        assert_eq!(product(&factors), sequential(&factors));
    }

    #[test]
    fn leaf_boundary_matches_sequential() {
        let factors: Vec<u64> =
            (0..200).map(|i| 0x9e37_79b9u64.wrapping_mul(i + 1) | 1).collect();
        for k in
            [LEAF_FACTORS - 1, LEAF_FACTORS, LEAF_FACTORS + 1, 2 * LEAF_FACTORS, 2 * LEAF_FACTORS + 1]
        {
            let expect = sequential(&factors[..k]);
            assert_eq!(product(&factors[..k]), expect, "k={k}");
            assert_eq!(product_within(&factors[..k], u64::MAX).unwrap(), expect, "k={k}");
        }
    }

    #[test]
    fn parallel_product_is_byte_identical() {
        let factors: Vec<u64> = (0..700).map(|i| 0x9e37_79b9u64.wrapping_mul(i + 1) | 1).collect();
        let expected = product(&factors);
        for threads in [1, 2, 8] {
            for k in [0, 1, 2, 63, 64, 65, 700] {
                let got = xp_par::with_threads(threads, || product_par(&factors[..k]));
                assert_eq!(got, product(&factors[..k]), "threads={threads} k={k}");
            }
            assert_eq!(xp_par::with_threads(threads, || product_par(&factors)), expected);
        }
    }

    #[test]
    fn budgeted_matches_unbudgeted() {
        let primes = [101u64, 103, 107, 109, 113];
        assert_eq!(product_within(&primes, 64).unwrap(), product(&primes));
    }

    #[test]
    fn budget_refuses_upfront() {
        // Five 7-bit factors: the Σ-bits bound is 35.
        let primes = [101u64, 103, 107, 109, 113];
        let err = product_within(&primes, 30).unwrap_err();
        assert!(matches!(err, BudgetError::BitsExceeded { max_bits: 30, .. }), "{err:?}");
    }

    #[test]
    fn fault_point_propagates() {
        use xp_testkit::fault;
        fault::arm("bignum.mul:1");
        let err = product_within(&[3, 5, 7], 64).unwrap_err();
        fault::reset();
        assert_eq!(err, BudgetError::FaultInjected("bignum.mul"));
    }
}
