//! Byte-level (de)serialization of [`UBig`]: little-endian magnitude bytes
//! with no leading-zero padding — the on-disk form label stores use.

use crate::UBig;

impl UBig {
    /// Little-endian magnitude bytes, minimal length (empty for zero).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &limb in &self.limbs {
            out.extend_from_slice(&limb.to_le_bytes());
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Parses little-endian magnitude bytes (inverse of
    /// [`UBig::to_le_bytes`]; trailing zero bytes are tolerated).
    pub fn from_le_bytes(bytes: &[u8]) -> UBig {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(buf));
        }
        UBig::from_limbs(limbs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty() {
        assert!(UBig::zero().to_le_bytes().is_empty());
        assert_eq!(UBig::from_le_bytes(&[]), UBig::zero());
        assert_eq!(UBig::from_le_bytes(&[0, 0, 0]), UBig::zero());
    }

    #[test]
    fn round_trips_values_of_every_width() {
        for v in [1u128, 255, 256, 0xdead_beef, u64::MAX as u128, u64::MAX as u128 + 1, u128::MAX]
        {
            let u = UBig::from(v);
            assert_eq!(UBig::from_le_bytes(&u.to_le_bytes()), u, "{v}");
        }
        let big = UBig::from(3u64).pow(500);
        assert_eq!(UBig::from_le_bytes(&big.to_le_bytes()), big);
    }

    #[test]
    fn encoding_is_minimal() {
        assert_eq!(UBig::from(1u64).to_le_bytes(), vec![1]);
        assert_eq!(UBig::from(256u64).to_le_bytes(), vec![0, 1]);
        assert_eq!(UBig::from(0x0102_0304u64).to_le_bytes(), vec![4, 3, 2, 1]);
    }

    #[test]
    fn byte_length_matches_bit_length() {
        for v in [1u64, 127, 128, 65535, 65536] {
            let u = UBig::from(v);
            assert_eq!(u.to_le_bytes().len() as u64, u.bit_len().div_ceil(8));
        }
    }
}
