//! Number-theoretic kernels: gcd, extended gcd, modular inverse, and modular
//! exponentiation.
//!
//! These are the primitives behind §4 of the paper: the Chinese Remainder
//! Theorem solver that folds document order into a simultaneous-congruence
//! (SC) value needs modular inverses (or, in the paper's Euler-totient
//! formulation, modular powers) of the cofactors `C / mᵢ`.

use crate::{IBig, UBig};

/// Greatest common divisor by the Euclidean algorithm.
///
/// `gcd(0, b) = b` and `gcd(a, 0) = a`.
pub fn gcd(a: &UBig, b: &UBig) -> UBig {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple; `lcm(0, x) = 0`.
pub fn lcm(a: &UBig, b: &UBig) -> UBig {
    if a.is_zero() || b.is_zero() {
        return UBig::zero();
    }
    let g = gcd(a, b);
    a / &g * b
}

/// `true` iff `gcd(a, b) == 1`.
///
/// Theorem 1 of the paper requires the CRT moduli (the nodes' self-labels) to
/// be pairwise relatively prime; [`crate::UBig`] self-labels are checked with
/// this predicate before an SC value is formed.
pub fn coprime(a: &UBig, b: &UBig) -> bool {
    gcd(a, b).is_one()
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn extended_gcd(a: &UBig, b: &UBig) -> (UBig, IBig, IBig) {
    // Invariants: old_r = a*old_s + b*old_t, r = a*s + b*t.
    let mut old_r = IBig::from(a.clone());
    let mut r = IBig::from(b.clone());
    let mut old_s = IBig::one();
    let mut s = IBig::zero();
    let mut old_t = IBig::zero();
    let mut t = IBig::one();

    while !r.is_zero() {
        let (q, rem) = old_r.magnitude().divrem(r.magnitude());
        // Signs: both old_r and r stay non-negative throughout when inputs
        // are non-negative, so plain magnitude division is exact here.
        let q = IBig::from(q);
        old_r = IBig::from(rem);
        std::mem::swap(&mut old_r, &mut r);
        // old_r (pre-swap r) stays; recompute coefficient rows.
        let new_s = &old_s - &(&q * &s);
        old_s = std::mem::replace(&mut s, new_s);
        let new_t = &old_t - &(&q * &t);
        old_t = std::mem::replace(&mut t, new_t);
    }
    (old_r.into_magnitude(), old_s, old_t)
}

/// Modular inverse: the unique `x` in `[0, m)` with `a*x ≡ 1 (mod m)`, or
/// `None` when `gcd(a, m) != 1`.
pub fn mod_inverse(a: &UBig, m: &UBig) -> Option<UBig> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let a_red = a % m;
    let (g, x, _) = extended_gcd(&a_red, m);
    if g.is_one() {
        Some(x.rem_euclid(m))
    } else {
        None
    }
}

/// Machine-word modular inverse: the unique `x` in `[0, m)` with
/// `a*x ≡ 1 (mod m)`, or `None` when `gcd(a, m) != 1`.
///
/// The SC basis constructor inverts cofactor residues modulo word-sized
/// self-labels on every record rebuild; doing the extended Euclid in `i128`
/// avoids round-tripping through heap-allocated [`UBig`]s.
pub fn mod_inverse_u64(a: u64, m: u64) -> Option<u64> {
    if m <= 1 {
        return None;
    }
    let (mut old_r, mut r) = ((a % m) as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        old_r -= q * r;
        std::mem::swap(&mut old_r, &mut r);
        old_s -= q * s;
        std::mem::swap(&mut old_s, &mut s);
    }
    if old_r != 1 {
        return None;
    }
    Some(old_s.rem_euclid(m as i128) as u64)
}

/// Modular exponentiation `base^exp mod m`.
///
/// Odd moduli (every CRT modulus in the paper's Euler-totient formulation —
/// self-labels are odd primes) go through Montgomery arithmetic
/// ([`crate::reduce::Montgomery`]), which replaces the per-step division of
/// square-and-multiply with REDC folds; even moduli fall back to
/// [`mod_pow_plain`]. Both paths return identical values — the differential
/// suite pins them against each other and the oracle.
///
/// # Panics
/// Panics if `m` is zero.
pub fn mod_pow(base: &UBig, exp: &UBig, m: &UBig) -> UBig {
    assert!(!m.is_zero(), "modulo by zero");
    match crate::reduce::Montgomery::new(m) {
        Some(ctx) => ctx.pow(base, exp),
        None => mod_pow_plain(base, exp, m),
    }
}

/// Modular exponentiation by square-and-multiply with a full reduction per
/// step — the division-based baseline `mod_pow` dispatches away from for odd
/// moduli. Kept public so the kernel bench and differential tests can
/// compare the two paths.
///
/// # Panics
/// Panics if `m` is zero.
pub fn mod_pow_plain(base: &UBig, exp: &UBig, m: &UBig) -> UBig {
    assert!(!m.is_zero(), "modulo by zero");
    if m.is_one() {
        return UBig::zero();
    }
    let mut result = UBig::one();
    let mut base = base % m;
    let bits = exp.bit_len();
    for i in 0..bits {
        if exp.bit(i) {
            result = &result * &base % m;
        }
        if i + 1 < bits {
            base = base.square() % m;
        }
    }
    result
}

/// Euler's totient φ(n) by trial-division factorization.
///
/// Used by the paper's alternative CRT formulation
/// `x = Σ (C/mᵢ)^φ(mᵢ) · nᵢ mod C` — exposed here so the ablation bench can
/// compare it against the extended-gcd solver. Intended for machine-word
/// sized inputs (self-labels are small primes); the cost is O(√n).
pub fn euler_phi_u64(n: u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let mut n = n;
    let mut result = n;
    let mut p = 2u64;
    while p * p <= n {
        if n % p == 0 {
            while n % p == 0 {
                n /= p;
            }
            result -= result / p;
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        result -= result / n;
    }
    result
}

/// Solves the two-congruence system `x ≡ r1 (mod m1)`, `x ≡ r2 (mod m2)` for
/// coprime moduli; returns the unique solution in `[0, m1*m2)`, or `None` if
/// the moduli are not coprime.
pub fn crt_pair(r1: &UBig, m1: &UBig, r2: &UBig, m2: &UBig) -> Option<UBig> {
    // Canonicalize residues, then x = r1 + m1*t with
    // t ≡ (r2 - r1) · m1^{-1} (mod m2), giving x in [0, m1*m2).
    let r1 = r1 % m1;
    let r2 = r2 % m2;
    let inv = mod_inverse(m1, m2)?;
    let diff = (IBig::from(r2) - IBig::from(r1.clone())).rem_euclid(m2);
    let t = &diff * &inv % m2;
    Some(&r1 + &(m1 * &t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> UBig {
        UBig::from(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(&u(12), &u(18)), u(6));
        assert_eq!(gcd(&u(17), &u(13)), u(1));
        assert_eq!(gcd(&u(0), &u(5)), u(5));
        assert_eq!(gcd(&u(5), &u(0)), u(5));
        assert_eq!(gcd(&u(0), &u(0)), u(0));
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(&u(4), &u(6)), u(12));
        assert_eq!(lcm(&u(7), &u(13)), u(91));
        assert_eq!(lcm(&u(0), &u(9)), u(0));
    }

    #[test]
    fn coprime_primes() {
        assert!(coprime(&u(35), &u(12)));
        assert!(!coprime(&u(35), &u(15)));
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        for (a, b) in [(240u64, 46u64), (17, 13), (12, 18), (1, 1), (100, 0)] {
            let (g, x, y) = extended_gcd(&u(a), &u(b));
            let lhs = &(&IBig::from(u(a)) * &x) + &(&IBig::from(u(b)) * &y);
            assert_eq!(lhs, IBig::from(g.clone()), "bezout for ({a},{b})");
            assert_eq!(g, gcd(&u(a), &u(b)));
        }
    }

    #[test]
    fn mod_inverse_round_trips() {
        for (a, m) in [(3u64, 7u64), (10, 17), (2, 1_000_003), (65537, 4294967311)] {
            let inv = mod_inverse(&u(a), &u(m)).unwrap();
            assert_eq!((&u(a) * &inv) % u(m), u(1), "inverse of {a} mod {m}");
        }
        assert_eq!(mod_inverse(&u(6), &u(9)), None); // gcd 3
        assert_eq!(mod_inverse(&u(5), &u(1)), None); // trivial modulus
        assert_eq!(mod_inverse(&u(5), &u(0)), None);
    }

    #[test]
    fn mod_inverse_u64_agrees_with_bignum_inverse() {
        for (a, m) in [(3u64, 7u64), (10, 17), (2, 1_000_003), (65537, 4294967311), (0, 5), (6, 9)] {
            let fast = mod_inverse_u64(a, m);
            let slow = mod_inverse(&u(a), &u(m)).map(|x| x.to_u64().unwrap());
            assert_eq!(fast, slow, "inverse of {a} mod {m}");
            if let Some(x) = fast {
                assert_eq!((a as u128 * x as u128 % m as u128) as u64, 1);
            }
        }
        assert_eq!(mod_inverse_u64(5, 1), None);
        assert_eq!(mod_inverse_u64(5, 0), None);
    }

    #[test]
    fn mod_pow_matches_naive() {
        for (b, e, m) in [(3u64, 13u64, 17u64), (7, 0, 11), (2, 64, 1_000_000_007), (10, 19, 19)] {
            let mut naive = 1u128;
            for _ in 0..e {
                naive = naive * b as u128 % m as u128;
            }
            assert_eq!(mod_pow(&u(b), &u(e), &u(m)).to_u64(), Some(naive as u64), "{b}^{e} mod {m}");
        }
        assert_eq!(mod_pow(&u(5), &u(100), &u(1)), u(0));
    }

    #[test]
    fn mod_pow_dispatch_matches_plain_for_all_moduli() {
        // Odd moduli take the Montgomery path, even ones the plain path;
        // both must agree with the division-based baseline bit for bit.
        let base = UBig::from(0xfedc_ba98_7654_3210u64);
        for m in [2u64, 3, 4, 17, 1 << 20, (1 << 20) + 1, 4294967311, u64::MAX] {
            for e in [0u64, 1, 2, 63, 64, 65, 1017] {
                assert_eq!(
                    mod_pow(&base, &u(e), &u(m)),
                    mod_pow_plain(&base, &u(e), &u(m)),
                    "base^{e} mod {m}"
                );
            }
        }
    }

    #[test]
    fn fermat_little_theorem_via_mod_pow() {
        // a^(p-1) ≡ 1 mod p — also the heart of the Euler-totient CRT form.
        for p in [7u64, 13, 101, 10007] {
            assert_eq!(mod_pow(&u(3), &u(p - 1), &u(p)), u(1));
        }
    }

    #[test]
    fn euler_phi_values() {
        assert_eq!(euler_phi_u64(1), 1);
        assert_eq!(euler_phi_u64(2), 1);
        assert_eq!(euler_phi_u64(9), 6);
        assert_eq!(euler_phi_u64(10), 4);
        assert_eq!(euler_phi_u64(97), 96); // prime
        assert_eq!(euler_phi_u64(360), 96);
        assert_eq!(euler_phi_u64(0), 0);
    }

    #[test]
    fn crt_pair_paper_example() {
        // §4.2: x ≡ 7 (mod 13), x ≡ 3 (mod 17) — the updated-SC example.
        let x = crt_pair(&u(7), &u(13), &u(3), &u(17)).unwrap();
        assert_eq!(&x % u(13), u(7));
        assert_eq!(&x % u(17), u(3));
        assert!(x < u(13 * 17));
    }

    #[test]
    fn crt_pair_rejects_common_factor() {
        assert_eq!(crt_pair(&u(1), &u(6), &u(2), &u(9)), None);
    }

    #[test]
    fn crt_pair_handles_r1_larger_than_m1() {
        let x = crt_pair(&u(58), &u(3), &u(2), &u(4)).unwrap();
        assert_eq!(&x % u(3), u(1));
        assert_eq!(&x % u(4), u(2));
    }
}
