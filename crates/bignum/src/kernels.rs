//! Forced multiply-kernel entry points and the crossover thresholds.
//!
//! Production multiplication (`&a * &b`) dispatches on the *shorter*
//! operand's limb count: schoolbook below [`KARATSUBA_THRESHOLD`], Karatsuba
//! below [`TOOM3_THRESHOLD`], Toom-3 above. These wrappers force a single
//! kernel regardless of operand size so the tuning bench
//! (`bench_bignum_kernels`) can measure each kernel across the whole size
//! range and the kernel-oracle differential tests
//! (`crates/bignum/tests/kernel_differential.rs`) can pin every kernel at and
//! around both crossovers. See DESIGN.md §10.

use crate::UBig;

/// Limb count (of the shorter operand) below which schoolbook wins.
pub const KARATSUBA_THRESHOLD: usize = crate::mul::KARATSUBA_THRESHOLD;

/// Limb count (of the shorter operand) below which Karatsuba wins over
/// Toom-3; tuned with `bench_bignum_kernels` (see DESIGN.md §10).
pub const TOOM3_THRESHOLD: usize = crate::mul::TOOM3_THRESHOLD;

/// The production dispatch: schoolbook → Karatsuba → Toom-3 by size.
/// Identical to `&a * &b`; provided so bench/test call sites name the
/// dispatch explicitly.
pub fn mul_auto(a: &UBig, b: &UBig) -> UBig {
    a * b
}

/// Schoolbook (quadratic) multiplication at any size.
pub fn mul_schoolbook(a: &UBig, b: &UBig) -> UBig {
    UBig::mul_schoolbook(a.limbs(), b.limbs())
}

/// Karatsuba with schoolbook base case, never promoting to Toom-3 — the
/// baseline the Toom-3 crossover is tuned against.
pub fn mul_karatsuba(a: &UBig, b: &UBig) -> UBig {
    UBig::mul_karatsuba_only(a.limbs(), b.limbs())
}

/// Toom-3 at the top level regardless of size (sub-products still recurse
/// through the production dispatch).
pub fn mul_toom3(a: &UBig, b: &UBig) -> UBig {
    UBig::mul_toom3(a.limbs(), b.limbs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_ordered() {
        assert!(0 < KARATSUBA_THRESHOLD);
        assert!(KARATSUBA_THRESHOLD < TOOM3_THRESHOLD);
    }

    #[test]
    fn forced_kernels_agree_on_a_mixed_size() {
        let a = UBig::from_limbs((0..150u64).map(|i| i.wrapping_mul(0x1234_5678_9abc_def1)).collect());
        let b = UBig::from_limbs((0..40u64).map(|i| !i.wrapping_mul(0x0fed_cba9_8765_4321)).collect());
        let want = mul_schoolbook(&a, &b);
        assert_eq!(mul_auto(&a, &b), want);
        assert_eq!(mul_karatsuba(&a, &b), want);
        assert_eq!(mul_toom3(&a, &b), want);
    }
}
