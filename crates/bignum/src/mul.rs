//! Multiplication: schoolbook kernel with Karatsuba and Toom-3 layers above
//! tuned limb thresholds. Bottom-up prime labels of large documents are
//! products of thousands of primes, so the subquadratic path genuinely
//! matters; see [`crate::kernels`] for the forced-kernel entry points used by
//! the tuning bench and the kernel-oracle differential tests.

use crate::UBig;
use std::ops::{Mul, MulAssign};

/// Below this many limbs per operand, schoolbook beats Karatsuba's overhead.
/// Tuned with `bench_bignum_kernels` (see DESIGN.md §10): schoolbook's tight
/// carry loop wins below ~48 limbs, the two kernels sit within noise of each
/// other across the 48–96 limb band, and Karatsuba wins cleanly from 96
/// limbs (6144 bits) up.
pub(crate) const KARATSUBA_THRESHOLD: usize = 64;

/// Below this many limbs per operand, Karatsuba beats Toom-3's extra
/// evaluation/interpolation passes. Tuned with `bench_bignum_kernels` (see
/// DESIGN.md §10): Toom-3 loses below ~160 limbs, reaches parity in the
/// 192–224 band, and wins by ~10% from 256 limbs (2¹⁴ bits) up.
pub(crate) const TOOM3_THRESHOLD: usize = 224;

impl UBig {
    /// Multiplies by a single machine word in place.
    pub fn mul_u64_assign(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let prod = (*limb as u128) * (m as u128) + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        if carry != 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Returns `self * m` for a machine word.
    pub fn mul_u64(&self, m: u64) -> UBig {
        let mut out = self.clone();
        out.mul_u64_assign(m);
        out
    }

    /// `self * self`.
    pub fn square(&self) -> UBig {
        self * self
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, exp: u32) -> UBig {
        if exp == 0 {
            return UBig::one();
        }
        let mut base = self.clone();
        let mut acc = UBig::one();
        let mut e = exp;
        while e > 1 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            base = base.square();
            e >>= 1;
        }
        &acc * &base
    }

    fn mul_ref(a: &[u64], b: &[u64]) -> UBig {
        if a.is_empty() || b.is_empty() {
            return UBig::zero();
        }
        let short = a.len().min(b.len());
        if short < KARATSUBA_THRESHOLD {
            Self::mul_schoolbook(a, b)
        } else if short < TOOM3_THRESHOLD {
            Self::mul_karatsuba(a, b, Self::mul_ref)
        } else {
            Self::mul_toom3(a, b)
        }
    }

    /// Karatsuba-capped dispatch: schoolbook below the Karatsuba threshold,
    /// Karatsuba above it, never promoting to Toom-3. This is the baseline
    /// the Toom-3 crossover is tuned against.
    pub(crate) fn mul_karatsuba_only(a: &[u64], b: &[u64]) -> UBig {
        if a.is_empty() || b.is_empty() {
            return UBig::zero();
        }
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            Self::mul_schoolbook(a, b)
        } else {
            Self::mul_karatsuba(a, b, Self::mul_karatsuba_only)
        }
    }

    pub(crate) fn mul_schoolbook(a: &[u64], b: &[u64]) -> UBig {
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        UBig::from_limbs(out)
    }

    /// Karatsuba split at `m = max(len)/2`:
    /// `a*b = hi*hi·B²ᵐ + ((a0+a1)(b0+b1) − hi·hi − lo·lo)·Bᵐ + lo·lo`.
    ///
    /// Sub-products go through `recurse`, so the production dispatch
    /// ([`UBig::mul_ref`]) and the Karatsuba-capped baseline
    /// ([`UBig::mul_karatsuba_only`]) share one combine step.
    fn mul_karatsuba(a: &[u64], b: &[u64], recurse: fn(&[u64], &[u64]) -> UBig) -> UBig {
        let m = a.len().max(b.len()) / 2;
        let (a0, a1) = split_at_limb(a, m);
        let (b0, b1) = split_at_limb(b, m);

        let lo = recurse(a0, b0);
        let hi = recurse(a1, b1);

        let asum = UBig::from_limbs(a0.to_vec()) + UBig::from_limbs(a1.to_vec());
        let bsum = UBig::from_limbs(b0.to_vec()) + UBig::from_limbs(b1.to_vec());
        let mut mid = recurse(&asum.limbs, &bsum.limbs);
        mid.sub_assign_ref(&lo);
        mid.sub_assign_ref(&hi);

        let mut out = hi.shl_limbs(2 * m);
        out.add_assign_ref(&mid.shl_limbs(m));
        out.add_assign_ref(&lo);
        out
    }

    /// Toom-3 split at `m = ⌈max(len)/3⌉`: writes `a = a0 + a1·Bᵐ + a2·B²ᵐ`
    /// (likewise `b`), evaluates both operand polynomials at the points
    /// `{0, 1, −1, 2, ∞}`, multiplies the five evaluations pointwise (five
    /// multiplies of ~⅓ size instead of nine), and interpolates the degree-4
    /// product polynomial.
    ///
    /// Only the point `−1` can evaluate negative, so it travels as a
    /// `(magnitude, sign)` pair and interpolation stays in unsigned in-place
    /// arithmetic — every intermediate below is a non-negative combination
    /// of product coefficients. (An earlier version promoted the whole
    /// interpolation to [`IBig`] operator chains; the resulting temporaries
    /// plus four full-width `shl_limbs` recomposition adds cost more than a
    /// third of the total at the 2¹⁴-bit crossover — see DESIGN.md §10.1.)
    pub(crate) fn mul_toom3(a: &[u64], b: &[u64]) -> UBig {
        if a.is_empty() || b.is_empty() {
            return UBig::zero();
        }
        let m = a.len().max(b.len()).div_ceil(3);
        let (a0, a1, a2) = split3(a, m);
        let (b0, b1, b2) = split3(b, m);

        let (va1, vam1, aneg, va2) = eval_points(&a0, &a1, &a2);
        let (vb1, vbm1, bneg, vb2) = eval_points(&b0, &b1, &b2);

        // Pointwise products; recursion goes back through the size dispatch.
        let v0 = &a0 * &b0;
        let v1 = &va1 * &vb1;
        let vm1 = &vam1 * &vbm1; // |v(−1)|; sign below
        let vm1_neg = aneg != bneg;
        let v2 = &va2 * &vb2;
        let vinf = &a2 * &b2;

        // Interpolate c0..c4 from
        //   v(1)  = c0 + c1 + c2 + c3 + c4
        //   v(−1) = c0 − c1 + c2 − c3 + c4
        //   v(2)  = c0 + 2c1 + 4c2 + 8c3 + 16c4
        // with c0 = v(0) and c4 = v(∞) known.
        //
        // t1 = (v(1) + v(−1))/2 = c0 + c2 + c4.
        let mut t1 = v1.clone();
        if vm1_neg {
            t1.sub_assign_ref(&vm1);
        } else {
            t1.add_assign_ref(&vm1);
        }
        t1.shr_bits_assign(1);
        // t2 = (v(1) − v(−1))/2 = c1 + c3.
        let mut t2 = v1;
        if vm1_neg {
            t2.add_assign_ref(&vm1);
        } else {
            t2.sub_assign_ref(&vm1);
        }
        t2.shr_bits_assign(1);
        // c2 = t1 − c0 − c4.
        let mut c2 = t1;
        c2.sub_assign_ref(&v0);
        c2.sub_assign_ref(&vinf);
        // t3 = (v(2) − c0 − 4·c2 − 16·c4)/2 = c1 + 4c3.
        let mut t3 = v2;
        t3.sub_assign_ref(&v0);
        let mut scaled = c2.clone();
        scaled.mul_u64_assign(4);
        t3.sub_assign_ref(&scaled);
        scaled = vinf.clone();
        scaled.mul_u64_assign(16);
        t3.sub_assign_ref(&scaled);
        t3.shr_bits_assign(1);
        // c3 = (t3 − t2)/3; c1 = t2 − c3.
        t3.sub_assign_ref(&t2);
        let c3 = exact_div3(&t3);
        let mut c1 = t2;
        c1.sub_assign_ref(&c3);

        // Recompose Σ cᵢ·Bⁱᵐ directly into one product-sized buffer. Every
        // partial sum is bounded by the final product, so no carry can run
        // off the end.
        let mut out = vec![0u64; a.len() + b.len()];
        add_at(&mut out, v0.limbs(), 0);
        add_at(&mut out, c1.limbs(), m);
        add_at(&mut out, c2.limbs(), 2 * m);
        add_at(&mut out, c3.limbs(), 3 * m);
        add_at(&mut out, vinf.limbs(), 4 * m);
        UBig::from_limbs(out)
    }

    /// Multiplies by `B^k` (shifts left by whole limbs).
    pub(crate) fn shl_limbs(&self, k: usize) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let mut limbs = vec![0u64; k + self.limbs.len()];
        limbs[k..].copy_from_slice(&self.limbs);
        UBig { limbs }
    }
}

fn split_at_limb(x: &[u64], m: usize) -> (&[u64], &[u64]) {
    if x.len() <= m {
        (x, &[])
    } else {
        x.split_at(m)
    }
}

/// Splits `x` into three base-`Bᵐ` digits `(x0, x1, x2)`, low to high.
fn split3(x: &[u64], m: usize) -> (UBig, UBig, UBig) {
    let lo = &x[..x.len().min(m)];
    let mid = if x.len() > m { &x[m..x.len().min(2 * m)] } else { &[][..] };
    let hi = if x.len() > 2 * m { &x[2 * m..] } else { &[][..] };
    (
        UBig::from_limbs(lo.to_vec()),
        UBig::from_limbs(mid.to_vec()),
        UBig::from_limbs(hi.to_vec()),
    )
}

/// Evaluates `x0 + x1·t + x2·t²` at `t ∈ {1, −1, 2}`. The `−1` evaluation
/// `(x0 + x2) − x1` is the only one that can go negative; it is returned as
/// `(magnitude, is_negative)` so callers stay in unsigned arithmetic.
fn eval_points(x0: &UBig, x1: &UBig, x2: &UBig) -> (UBig, UBig, bool, UBig) {
    let mut p02 = x0.clone();
    p02.add_assign_ref(x2);
    let mut at1 = p02.clone();
    at1.add_assign_ref(x1);
    let neg = p02 < *x1;
    let atm1 = p02.abs_diff(x1);
    // x(2) = 4·x2 + 2·x1 + x0 = ((x2·2 + x1)·2) + x0.
    let mut at2 = x2.clone();
    at2.mul_u64_assign(2);
    at2.add_assign_ref(x1);
    at2.mul_u64_assign(2);
    at2.add_assign_ref(x0);
    (at1, atm1, neg, at2)
}

/// `x / 3` for a division known to be exact (Toom-3 interpolation).
fn exact_div3(x: &UBig) -> UBig {
    let (q, r) = x.divrem_u64(3);
    debug_assert_eq!(r, 0, "Toom-3 interpolation division must be exact");
    q
}

/// Adds `src` into `dst[at..]` with carry propagation. Callers guarantee the
/// running sum fits `dst` (true for Toom-3 recomposition, whose partial sums
/// are bounded by the final product), so a carry never walks off the end.
fn add_at(dst: &mut [u64], src: &[u64], at: usize) {
    let mut carry = 0u64;
    for (i, &s) in src.iter().enumerate() {
        let (v1, c1) = dst[at + i].overflowing_add(s);
        let (v2, c2) = v1.overflowing_add(carry);
        dst[at + i] = v2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut k = at + src.len();
    while carry != 0 {
        let (v, c) = dst[k].overflowing_add(carry);
        dst[k] = v;
        carry = c as u64;
        k += 1;
    }
}

impl Mul<&UBig> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        UBig::mul_ref(&self.limbs, &rhs.limbs)
    }
}

impl Mul<UBig> for UBig {
    type Output = UBig;
    fn mul(self, rhs: UBig) -> UBig {
        &self * &rhs
    }
}

impl Mul<&UBig> for UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        &self * rhs
    }
}

impl Mul<UBig> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: UBig) -> UBig {
        self * &rhs
    }
}

impl Mul<u64> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: u64) -> UBig {
        self.mul_u64(rhs)
    }
}

impl Mul<u64> for UBig {
    type Output = UBig;
    fn mul(mut self, rhs: u64) -> UBig {
        self.mul_u64_assign(rhs);
        self
    }
}

impl MulAssign<&UBig> for UBig {
    fn mul_assign(&mut self, rhs: &UBig) {
        *self = UBig::mul_ref(&self.limbs, &rhs.limbs);
    }
}

impl MulAssign<UBig> for UBig {
    fn mul_assign(&mut self, rhs: UBig) {
        *self = UBig::mul_ref(&self.limbs, &rhs.limbs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_by_zero_and_one() {
        let a = UBig::from(123456789u64);
        assert!((&a * &UBig::zero()).is_zero());
        assert_eq!(&a * &UBig::one(), a);
        assert_eq!(a.mul_u64(0), UBig::zero());
    }

    #[test]
    fn mul_u128_exact() {
        let a = UBig::from(0xdead_beef_u64);
        let b = UBig::from(0xcafe_babe_u64);
        let want = 0xdead_beef_u128 * 0xcafe_babe_u128;
        assert_eq!((&a * &b).to_u128(), Some(want));
    }

    #[test]
    fn mul_crosses_limb_boundary() {
        let a = UBig::from(u64::MAX);
        assert_eq!((&a * &a).to_u128(), Some((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Two 80-limb numbers force the Karatsuba path.
        let a_limbs: Vec<u64> = (0..80).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1)).collect();
        let b_limbs: Vec<u64> = (0..80).map(|i| 0xc2b2_ae3d_27d4_eb4fu64.wrapping_mul(i + 3)).collect();
        let a = UBig::from_limbs(a_limbs.clone());
        let b = UBig::from_limbs(b_limbs.clone());
        let fast = &a * &b;
        let slow = UBig::mul_schoolbook(&a_limbs, &b_limbs);
        assert_eq!(fast, slow);
    }

    fn pseudo_limbs(n: usize, salt: u64) -> Vec<u64> {
        (0..n as u64)
            .map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + salt).rotate_left((i % 63) as u32))
            .collect()
    }

    #[test]
    fn toom3_matches_schoolbook_at_large_sizes() {
        // Two 300-limb numbers force the Toom-3 path at the top level.
        let a_limbs = pseudo_limbs(300, 1);
        let b_limbs = pseudo_limbs(300, 7);
        let fast = UBig::from_limbs(a_limbs.clone()) * UBig::from_limbs(b_limbs.clone());
        let slow = UBig::mul_schoolbook(&a_limbs, &b_limbs);
        assert_eq!(fast, slow);
    }

    #[test]
    fn toom3_handles_odd_and_imbalanced_splits() {
        for (na, nb) in [(1usize, 1usize), (2, 5), (7, 3), (31, 97), (100, 301), (299, 300)] {
            let a_limbs = pseudo_limbs(na, 11);
            let b_limbs = pseudo_limbs(nb, 13);
            assert_eq!(
                UBig::mul_toom3(&a_limbs, &b_limbs),
                UBig::mul_schoolbook(&a_limbs, &b_limbs),
                "toom3 mismatch at {na}x{nb} limbs"
            );
        }
    }

    #[test]
    fn toom3_survives_all_ones_carries() {
        // All-ones operands maximize carry propagation through the
        // evaluation sums and the recomposition adds.
        let a_limbs = vec![u64::MAX; 200];
        let b_limbs = vec![u64::MAX; 197];
        assert_eq!(
            UBig::mul_toom3(&a_limbs, &b_limbs),
            UBig::mul_schoolbook(&a_limbs, &b_limbs)
        );
    }

    #[test]
    fn forced_kernels_agree_near_the_crossovers() {
        for n in [
            KARATSUBA_THRESHOLD - 1,
            KARATSUBA_THRESHOLD,
            KARATSUBA_THRESHOLD + 1,
            TOOM3_THRESHOLD - 1,
            TOOM3_THRESHOLD,
            TOOM3_THRESHOLD + 1,
        ] {
            let a_limbs = pseudo_limbs(n, 3);
            let b_limbs = pseudo_limbs(n, 5);
            let want = UBig::mul_schoolbook(&a_limbs, &b_limbs);
            assert_eq!(UBig::mul_karatsuba_only(&a_limbs, &b_limbs), want, "karatsuba at {n}");
            assert_eq!(UBig::mul_toom3(&a_limbs, &b_limbs), want, "toom3 at {n}");
            assert_eq!(UBig::mul_ref(&a_limbs, &b_limbs), want, "auto at {n}");
        }
    }

    #[test]
    fn toom3_zero_operands() {
        assert!(UBig::mul_toom3(&[], &[1, 2, 3]).is_zero());
        assert!(UBig::mul_toom3(&[5], &[]).is_zero());
    }

    #[test]
    fn pow_small_cases() {
        let three = UBig::from(3u64);
        assert_eq!(three.pow(0), UBig::one());
        assert_eq!(three.pow(1), three);
        assert_eq!(three.pow(5), UBig::from(243u64));
        assert_eq!(UBig::from(2u64).pow(100).to_string(), "1267650600228229401496703205376");
    }

    #[test]
    fn square_matches_mul() {
        let a = UBig::from(0x1234_5678_9abc_def0u64);
        assert_eq!(a.square(), &a * &a);
    }

    #[test]
    fn shl_limbs_shifts_by_word() {
        let a = UBig::from(5u64);
        assert_eq!(a.shl_limbs(2).limbs(), &[0, 0, 5]);
        assert!(UBig::zero().shl_limbs(3).is_zero());
    }

    #[test]
    fn product_of_first_primes() {
        // 2·3·5·7·11·13·17·19·23·29 = 6469693230 (primorial #10)
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29];
        let mut acc = UBig::one();
        for p in primes {
            acc.mul_u64_assign(p);
        }
        assert_eq!(acc.to_u64(), Some(6_469_693_230));
    }
}
