//! Multiplication: schoolbook kernel with a Karatsuba layer above a limb
//! threshold. Bottom-up prime labels of large documents are products of
//! thousands of primes, so the subquadratic path genuinely matters.

use crate::UBig;
use std::ops::{Mul, MulAssign};

/// Below this many limbs per operand, schoolbook beats Karatsuba's overhead.
const KARATSUBA_THRESHOLD: usize = 32;

impl UBig {
    /// Multiplies by a single machine word in place.
    pub fn mul_u64_assign(&mut self, m: u64) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let prod = (*limb as u128) * (m as u128) + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        if carry != 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Returns `self * m` for a machine word.
    pub fn mul_u64(&self, m: u64) -> UBig {
        let mut out = self.clone();
        out.mul_u64_assign(m);
        out
    }

    /// `self * self`.
    pub fn square(&self) -> UBig {
        self * self
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, exp: u32) -> UBig {
        if exp == 0 {
            return UBig::one();
        }
        let mut base = self.clone();
        let mut acc = UBig::one();
        let mut e = exp;
        while e > 1 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            base = base.square();
            e >>= 1;
        }
        &acc * &base
    }

    fn mul_ref(a: &[u64], b: &[u64]) -> UBig {
        if a.is_empty() || b.is_empty() {
            return UBig::zero();
        }
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            Self::mul_schoolbook(a, b)
        } else {
            Self::mul_karatsuba(a, b)
        }
    }

    fn mul_schoolbook(a: &[u64], b: &[u64]) -> UBig {
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        UBig::from_limbs(out)
    }

    /// Karatsuba split at `m = max(len)/2`:
    /// `a*b = hi*hi·B²ᵐ + ((a0+a1)(b0+b1) − hi·hi − lo·lo)·Bᵐ + lo·lo`.
    fn mul_karatsuba(a: &[u64], b: &[u64]) -> UBig {
        let m = a.len().max(b.len()) / 2;
        let (a0, a1) = split_at_limb(a, m);
        let (b0, b1) = split_at_limb(b, m);

        let lo = Self::mul_ref(a0, b0);
        let hi = Self::mul_ref(a1, b1);

        let asum = UBig::from_limbs(a0.to_vec()) + UBig::from_limbs(a1.to_vec());
        let bsum = UBig::from_limbs(b0.to_vec()) + UBig::from_limbs(b1.to_vec());
        let mut mid = Self::mul_ref(&asum.limbs, &bsum.limbs);
        mid.sub_assign_ref(&lo);
        mid.sub_assign_ref(&hi);

        let mut out = hi.shl_limbs(2 * m);
        out.add_assign_ref(&mid.shl_limbs(m));
        out.add_assign_ref(&lo);
        out
    }

    /// Multiplies by `B^k` (shifts left by whole limbs).
    pub(crate) fn shl_limbs(&self, k: usize) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let mut limbs = vec![0u64; k + self.limbs.len()];
        limbs[k..].copy_from_slice(&self.limbs);
        UBig { limbs }
    }
}

fn split_at_limb(x: &[u64], m: usize) -> (&[u64], &[u64]) {
    if x.len() <= m {
        (x, &[])
    } else {
        x.split_at(m)
    }
}

impl Mul<&UBig> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        UBig::mul_ref(&self.limbs, &rhs.limbs)
    }
}

impl Mul<UBig> for UBig {
    type Output = UBig;
    fn mul(self, rhs: UBig) -> UBig {
        &self * &rhs
    }
}

impl Mul<&UBig> for UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        &self * rhs
    }
}

impl Mul<UBig> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: UBig) -> UBig {
        self * &rhs
    }
}

impl Mul<u64> for &UBig {
    type Output = UBig;
    fn mul(self, rhs: u64) -> UBig {
        self.mul_u64(rhs)
    }
}

impl Mul<u64> for UBig {
    type Output = UBig;
    fn mul(mut self, rhs: u64) -> UBig {
        self.mul_u64_assign(rhs);
        self
    }
}

impl MulAssign<&UBig> for UBig {
    fn mul_assign(&mut self, rhs: &UBig) {
        *self = UBig::mul_ref(&self.limbs, &rhs.limbs);
    }
}

impl MulAssign<UBig> for UBig {
    fn mul_assign(&mut self, rhs: UBig) {
        *self = UBig::mul_ref(&self.limbs, &rhs.limbs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_by_zero_and_one() {
        let a = UBig::from(123456789u64);
        assert!((&a * &UBig::zero()).is_zero());
        assert_eq!(&a * &UBig::one(), a);
        assert_eq!(a.mul_u64(0), UBig::zero());
    }

    #[test]
    fn mul_u128_exact() {
        let a = UBig::from(0xdead_beef_u64);
        let b = UBig::from(0xcafe_babe_u64);
        let want = 0xdead_beef_u128 * 0xcafe_babe_u128;
        assert_eq!((&a * &b).to_u128(), Some(want));
    }

    #[test]
    fn mul_crosses_limb_boundary() {
        let a = UBig::from(u64::MAX);
        assert_eq!((&a * &a).to_u128(), Some((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Two 80-limb numbers force the Karatsuba path.
        let a_limbs: Vec<u64> = (0..80).map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1)).collect();
        let b_limbs: Vec<u64> = (0..80).map(|i| 0xc2b2_ae3d_27d4_eb4fu64.wrapping_mul(i + 3)).collect();
        let a = UBig::from_limbs(a_limbs.clone());
        let b = UBig::from_limbs(b_limbs.clone());
        let fast = &a * &b;
        let slow = UBig::mul_schoolbook(&a_limbs, &b_limbs);
        assert_eq!(fast, slow);
    }

    #[test]
    fn pow_small_cases() {
        let three = UBig::from(3u64);
        assert_eq!(three.pow(0), UBig::one());
        assert_eq!(three.pow(1), three);
        assert_eq!(three.pow(5), UBig::from(243u64));
        assert_eq!(UBig::from(2u64).pow(100).to_string(), "1267650600228229401496703205376");
    }

    #[test]
    fn square_matches_mul() {
        let a = UBig::from(0x1234_5678_9abc_def0u64);
        assert_eq!(a.square(), &a * &a);
    }

    #[test]
    fn shl_limbs_shifts_by_word() {
        let a = UBig::from(5u64);
        assert_eq!(a.shl_limbs(2).limbs(), &[0, 0, 5]);
        assert!(UBig::zero().shl_limbs(3).is_zero());
    }

    #[test]
    fn product_of_first_primes() {
        // 2·3·5·7·11·13·17·19·23·29 = 6469693230 (primorial #10)
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29];
        let mut acc = UBig::one();
        for p in primes {
            acc.mul_u64_assign(p);
        }
        assert_eq!(acc.to_u64(), Some(6_469_693_230));
    }
}
