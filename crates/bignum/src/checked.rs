//! Budgeted arithmetic: multiplication with a hard bit-length ceiling.
//!
//! Prime labels and SC products grow as products of many primes; a labeling
//! bug (or hostile input shaped to maximize path length) turns that growth
//! into unbounded allocation. [`mul_within`] is the guarded entry point the
//! labeling pipeline uses wherever a product is accumulated: it refuses —
//! with a typed error, before allocating the result — to produce a value
//! wider than the caller's budget. It also hosts the `bignum.mul` fault
//! point, so fault tests can simulate allocation failure here.

use crate::UBig;
use std::fmt;
use xp_testkit::fault::Injected;

/// A product exceeded its bit-length budget (or the `bignum.mul` fault point
/// fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// The result would have `bits` bits, more than the allowed `max_bits`.
    BitsExceeded {
        /// Upper bound on the width of the refused product.
        bits: u64,
        /// The caller's budget.
        max_bits: u64,
    },
    /// An armed fault point simulated an allocation failure.
    FaultInjected(&'static str),
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::BitsExceeded { bits, max_bits } => {
                write!(f, "product of {bits} bits exceeds the {max_bits}-bit budget")
            }
            BudgetError::FaultInjected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for BudgetError {}

impl From<Injected> for BudgetError {
    fn from(e: Injected) -> Self {
        BudgetError::FaultInjected(e.site)
    }
}

/// Multiplies `a * b` iff the result fits in `max_bits` bits.
///
/// The check uses `bit_len(a) + bit_len(b)`, an upper bound that overshoots
/// the true width by at most one bit — a budget is a ceiling, not an exact
/// accounting, so the cheap conservative test is the right one (and it runs
/// *before* the multiplication allocates anything).
///
/// The budget decision is therefore independent of which multiply kernel
/// (schoolbook, Karatsuba, or Toom-3 — see [`crate::kernels`]) the size
/// dispatch later picks: the same inputs pass or fail identically at every
/// size tier. Kernel *temporaries* are not separately budgeted — Toom-3's
/// five pointwise products and signed interpolation terms each stay within
/// a small constant factor (< 2×) of the final product's width, so a budget
/// that admits the result also bounds the kernel's peak transient
/// allocation; this invariant is pinned by
/// `budget_error_is_kernel_independent` below.
pub fn mul_within(a: &UBig, b: &UBig, max_bits: u64) -> Result<UBig, BudgetError> {
    xp_testkit::faultpoint!("bignum.mul")?;
    let bits = a.bit_len() + b.bit_len();
    if bits > max_bits {
        return Err(BudgetError::BitsExceeded { bits, max_bits });
    }
    Ok(a * b)
}

/// [`mul_within`] for a machine-word factor: same budget check and same
/// `bignum.mul` fault point, but the multiply runs through the word carry
/// loop instead of the general kernel dispatch. The balanced product tree
/// folds its sub-crossover leaf chunks through here (see
/// [`crate::prodtree`]).
pub fn mul_u64_within(a: &UBig, f: u64, max_bits: u64) -> Result<UBig, BudgetError> {
    xp_testkit::faultpoint!("bignum.mul")?;
    let bits = a.bit_len() + UBig::from(f).bit_len();
    if bits > max_bits {
        return Err(BudgetError::BitsExceeded { bits, max_bits });
    }
    Ok(a.mul_u64(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_testkit::fault;

    #[test]
    fn within_budget_multiplies() {
        let a = UBig::from(1u64 << 40);
        let b = UBig::from(1u64 << 20);
        assert_eq!(mul_within(&a, &b, 128).unwrap(), &a * &b);
    }

    #[test]
    fn over_budget_is_refused() {
        let a = UBig::from(u64::MAX);
        let b = UBig::from(u64::MAX);
        let err = mul_within(&a, &b, 64).unwrap_err();
        assert_eq!(err, BudgetError::BitsExceeded { bits: 128, max_bits: 64 });
    }

    #[test]
    fn bound_overshoots_by_at_most_one_bit() {
        // 2 * 2 = 4: true width 3, bound 4 — still inside a 4-bit budget.
        let two = UBig::from(2u64);
        assert!(mul_within(&two, &two, 4).is_ok());
        assert!(mul_within(&two, &two, 3).is_err(), "conservative refusal");
    }

    #[test]
    fn budget_error_is_kernel_independent() {
        // Operand sizes landing in the schoolbook, Karatsuba, and Toom-3
        // tiers of the size dispatch (thresholds: 32 and 96 limbs per the
        // shorter operand). At every tier the same inputs must produce the
        // same BudgetError one bit under the product width, and the same
        // product at the exact budget.
        for limbs in [4usize, 48, 160] {
            let a = UBig::from_limbs(vec![u64::MAX; limbs]);
            let b = UBig::from_limbs(vec![0xdead_beef_dead_beefu64; limbs]);
            let bits = a.bit_len() + b.bit_len();
            let err = mul_within(&a, &b, bits - 1).unwrap_err();
            assert_eq!(
                err,
                BudgetError::BitsExceeded { bits, max_bits: bits - 1 },
                "refusal differs at {limbs} limbs"
            );
            let ok = mul_within(&a, &b, bits).unwrap();
            assert_eq!(ok, crate::kernels::mul_schoolbook(&a, &b), "product differs at {limbs} limbs");
        }
    }

    #[test]
    fn fault_point_fires() {
        fault::arm("bignum.mul:1");
        let one = UBig::one();
        let err = mul_within(&one, &one, 64).unwrap_err();
        assert_eq!(err, BudgetError::FaultInjected("bignum.mul"));
        assert!(mul_within(&one, &one, 64).is_ok(), "nth fault fires once");
        fault::reset();
    }
}
