//! Budgeted arithmetic: multiplication with a hard bit-length ceiling.
//!
//! Prime labels and SC products grow as products of many primes; a labeling
//! bug (or hostile input shaped to maximize path length) turns that growth
//! into unbounded allocation. [`mul_within`] is the guarded entry point the
//! labeling pipeline uses wherever a product is accumulated: it refuses —
//! with a typed error, before allocating the result — to produce a value
//! wider than the caller's budget. It also hosts the `bignum.mul` fault
//! point, so fault tests can simulate allocation failure here.

use crate::UBig;
use std::fmt;
use xp_testkit::fault::Injected;

/// A product exceeded its bit-length budget (or the `bignum.mul` fault point
/// fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// The result would have `bits` bits, more than the allowed `max_bits`.
    BitsExceeded {
        /// Upper bound on the width of the refused product.
        bits: u64,
        /// The caller's budget.
        max_bits: u64,
    },
    /// An armed fault point simulated an allocation failure.
    FaultInjected(&'static str),
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::BitsExceeded { bits, max_bits } => {
                write!(f, "product of {bits} bits exceeds the {max_bits}-bit budget")
            }
            BudgetError::FaultInjected(site) => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for BudgetError {}

impl From<Injected> for BudgetError {
    fn from(e: Injected) -> Self {
        BudgetError::FaultInjected(e.site)
    }
}

/// Multiplies `a * b` iff the result fits in `max_bits` bits.
///
/// The check uses `bit_len(a) + bit_len(b)`, an upper bound that overshoots
/// the true width by at most one bit — a budget is a ceiling, not an exact
/// accounting, so the cheap conservative test is the right one (and it runs
/// *before* the multiplication allocates anything).
pub fn mul_within(a: &UBig, b: &UBig, max_bits: u64) -> Result<UBig, BudgetError> {
    xp_testkit::faultpoint!("bignum.mul")?;
    let bits = a.bit_len() + b.bit_len();
    if bits > max_bits {
        return Err(BudgetError::BitsExceeded { bits, max_bits });
    }
    Ok(a * b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_testkit::fault;

    #[test]
    fn within_budget_multiplies() {
        let a = UBig::from(1u64 << 40);
        let b = UBig::from(1u64 << 20);
        assert_eq!(mul_within(&a, &b, 128).unwrap(), &a * &b);
    }

    #[test]
    fn over_budget_is_refused() {
        let a = UBig::from(u64::MAX);
        let b = UBig::from(u64::MAX);
        let err = mul_within(&a, &b, 64).unwrap_err();
        assert_eq!(err, BudgetError::BitsExceeded { bits: 128, max_bits: 64 });
    }

    #[test]
    fn bound_overshoots_by_at_most_one_bit() {
        // 2 * 2 = 4: true width 3, bound 4 — still inside a 4-bit budget.
        let two = UBig::from(2u64);
        assert!(mul_within(&two, &two, 4).is_ok());
        assert!(mul_within(&two, &two, 3).is_err(), "conservative refusal");
    }

    #[test]
    fn fault_point_fires() {
        fault::arm("bignum.mul:1");
        let one = UBig::one();
        let err = mul_within(&one, &one, 64).unwrap_err();
        assert_eq!(err, BudgetError::FaultInjected("bignum.mul"));
        assert!(mul_within(&one, &one, 64).is_ok(), "nth fault fires once");
        fault::reset();
    }
}
