//! [`IBig`]: a thin signed layer (sign + magnitude) over [`UBig`].
//!
//! Only the operations needed by the extended Euclidean algorithm and the CRT
//! solvers are provided; the labeling schemes themselves never go negative.

use crate::UBig;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of an [`IBig`]. Zero is canonically [`Sign::Positive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// `>= 0`.
    Positive,
    /// `< 0`.
    Negative,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
        }
    }
}

/// An arbitrary-precision signed integer (sign + magnitude).
#[derive(Clone, PartialEq, Eq)]
pub struct IBig {
    sign: Sign,
    mag: UBig,
}

impl IBig {
    /// The value 0.
    pub fn zero() -> Self {
        IBig { sign: Sign::Positive, mag: UBig::zero() }
    }

    /// The value 1.
    pub fn one() -> Self {
        IBig { sign: Sign::Positive, mag: UBig::one() }
    }

    /// Builds from a sign and magnitude, canonicalizing `-0` to `+0`.
    pub fn from_sign_magnitude(sign: Sign, mag: UBig) -> Self {
        if mag.is_zero() {
            IBig::zero()
        } else {
            IBig { sign, mag }
        }
    }

    /// The sign (positive for zero).
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &UBig {
        &self.mag
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> UBig {
        self.mag
    }

    /// `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative && !self.mag.is_zero()
    }

    /// Least non-negative residue of `self` modulo `m` (always in `[0, m)`).
    ///
    /// This is what the CRT solver needs: Bézout coefficients from the
    /// extended Euclidean algorithm may be negative, but a congruence-system
    /// solution must be reduced into the canonical range.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn rem_euclid(&self, m: &UBig) -> UBig {
        assert!(!m.is_zero(), "modulo by zero");
        let r = &self.mag % m;
        if r.is_zero() || self.sign == Sign::Positive {
            r
        } else {
            m - &r
        }
    }
}

impl From<UBig> for IBig {
    fn from(mag: UBig) -> Self {
        IBig::from_sign_magnitude(Sign::Positive, mag)
    }
}

impl From<i64> for IBig {
    fn from(v: i64) -> Self {
        let sign = if v < 0 { Sign::Negative } else { Sign::Positive };
        IBig::from_sign_magnitude(sign, UBig::from(v.unsigned_abs()))
    }
}

impl Neg for IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        IBig::from_sign_magnitude(self.sign.flip(), self.mag)
    }
}

impl Neg for &IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        IBig::from_sign_magnitude(self.sign.flip(), self.mag.clone())
    }
}

impl Add<&IBig> for &IBig {
    type Output = IBig;
    fn add(self, rhs: &IBig) -> IBig {
        if self.sign == rhs.sign {
            return IBig::from_sign_magnitude(self.sign, &self.mag + &rhs.mag);
        }
        // Opposite signs: the result takes the sign of the larger magnitude.
        match self.mag.cmp(&rhs.mag) {
            Ordering::Equal => IBig::zero(),
            Ordering::Greater => IBig::from_sign_magnitude(self.sign, &self.mag - &rhs.mag),
            Ordering::Less => IBig::from_sign_magnitude(rhs.sign, &rhs.mag - &self.mag),
        }
    }
}

impl Sub<&IBig> for &IBig {
    type Output = IBig;
    fn sub(self, rhs: &IBig) -> IBig {
        self + &(-rhs)
    }
}

impl Mul<&IBig> for &IBig {
    type Output = IBig;
    fn mul(self, rhs: &IBig) -> IBig {
        let sign = if self.sign == rhs.sign { Sign::Positive } else { Sign::Negative };
        IBig::from_sign_magnitude(sign, &self.mag * &rhs.mag)
    }
}

macro_rules! forward_owned {
    ($trait:ident, $method:ident) => {
        impl $trait<IBig> for IBig {
            type Output = IBig;
            fn $method(self, rhs: IBig) -> IBig {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&IBig> for IBig {
            type Output = IBig;
            fn $method(self, rhs: &IBig) -> IBig {
                (&self).$method(rhs)
            }
        }
        impl $trait<IBig> for &IBig {
            type Output = IBig;
            fn $method(self, rhs: IBig) -> IBig {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned!(Add, add);
forward_owned!(Sub, sub);
forward_owned!(Mul, mul);

impl PartialOrd for IBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_negative(), other.is_negative()) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.mag.cmp(&other.mag),
            (true, true) => other.mag.cmp(&self.mag),
        }
    }
}

impl fmt::Display for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(!self.is_negative(), "", &self.mag.to_decimal())
    }
}

impl fmt::Debug for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IBig({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> IBig {
        IBig::from(v)
    }

    #[test]
    fn negative_zero_is_canonical() {
        let z = IBig::from_sign_magnitude(Sign::Negative, UBig::zero());
        assert_eq!(z, IBig::zero());
        assert!(!z.is_negative());
        assert_eq!(z.sign(), Sign::Positive);
    }

    #[test]
    fn signed_addition_table() {
        assert_eq!(i(5) + i(7), i(12));
        assert_eq!(i(5) + i(-7), i(-2));
        assert_eq!(i(-5) + i(7), i(2));
        assert_eq!(i(-5) + i(-7), i(-12));
        assert_eq!(i(5) + i(-5), IBig::zero());
    }

    #[test]
    fn signed_subtraction_and_negation() {
        assert_eq!(i(5) - i(9), i(-4));
        assert_eq!(i(-5) - i(-9), i(4));
        assert_eq!(-i(3), i(-3));
        assert_eq!(-IBig::zero(), IBig::zero());
    }

    #[test]
    fn signed_multiplication() {
        assert_eq!(i(6) * i(-7), i(-42));
        assert_eq!(i(-6) * i(-7), i(42));
        assert_eq!(i(-6) * IBig::zero(), IBig::zero());
    }

    #[test]
    fn ordering_spans_zero() {
        let mut v = [i(3), i(-10), i(0), i(7), i(-2)];
        v.sort();
        let texts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        assert_eq!(texts, ["-10", "-2", "0", "3", "7"]);
    }

    #[test]
    fn rem_euclid_is_always_in_range() {
        let m = UBig::from(7u64);
        assert_eq!(i(10).rem_euclid(&m), UBig::from(3u64));
        assert_eq!(i(-10).rem_euclid(&m), UBig::from(4u64));
        assert_eq!(i(-14).rem_euclid(&m), UBig::zero());
        assert_eq!(i(0).rem_euclid(&m), UBig::zero());
    }

    #[test]
    fn display_includes_sign() {
        assert_eq!(i(-123).to_string(), "-123");
        assert_eq!(i(123).to_string(), "123");
        assert_eq!(IBig::zero().to_string(), "0");
    }
}
