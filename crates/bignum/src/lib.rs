//! # xp-bignum — arbitrary-precision integers, from scratch
//!
//! The prime-number labeling scheme of Wu, Lee & Hsu (ICDE 2004) assigns each
//! XML node the *product* of the self-labels on its root-to-node path, and the
//! ordered variant folds document order into simultaneous-congruence (SC)
//! values that are solutions of a Chinese-Remainder system whose modulus is a
//! product of many primes. Both quantities overflow machine integers almost
//! immediately, so the whole reproduction rests on this crate.
//!
//! The crate provides:
//!
//! * [`UBig`] — an unsigned integer of unbounded size (little-endian `u64`
//!   limbs) with schoolbook + Karatsuba + Toom-3 multiplication (tuned
//!   crossovers in [`kernels`]), Knuth Algorithm D division, bit operations,
//!   and decimal/hex I/O.
//! * [`IBig`] — a signed wrapper (sign + magnitude) used by the extended
//!   Euclidean algorithm and Toom-3 interpolation.
//! * [`modular`] — gcd, extended gcd, modular inverse, and modular
//!   exponentiation, the building blocks of the CRT solvers in `xp-prime`.
//! * [`reduce`] — precomputed-divisor contexts: Barrett reduction for the
//!   repeated ancestor test, a Möller–Granlund word reducer for SC moduli,
//!   and Montgomery arithmetic for modular-exponentiation chains.
//! * [`prodtree`] — balanced product trees for batch products of machine
//!   words (SC chunk moduli, label denominators).
//!
//! The implementation is written from scratch and differentially tested
//! against `xp_testkit::refint::RefUint`, a deliberately naive schoolbook
//! oracle that shares no algorithmic structure with this crate.
//!
//! ```
//! use xp_bignum::UBig;
//!
//! let a = UBig::from(3u64) * UBig::from(5u64) * UBig::from(7u64);
//! assert_eq!(a.to_string(), "105");
//! assert!( (&a % &UBig::from(15u64)).is_zero() ); // 15 | 105: ancestor test
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Runtime failures surface as typed errors; remaining panics are
// documented contracts built on `panic!`, not `unwrap`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod bits;
mod bytes;
pub mod checked;
mod div;
mod fmt;
mod ibig;
pub mod kernels;
pub mod modular;
mod mul;
pub mod prodtree;
pub mod reduce;
mod ubig;

pub use ibig::{IBig, Sign};
pub use ubig::UBig;

/// Errors produced when parsing a [`UBig`] or [`IBig`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBigError {
    /// The input string was empty (or contained only a sign).
    Empty,
    /// The input contained a character that is not a digit of the radix.
    InvalidDigit(char),
}

impl std::fmt::Display for ParseBigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseBigError::Empty => write!(f, "cannot parse integer from empty string"),
            ParseBigError::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer literal"),
        }
    }
}

impl std::error::Error for ParseBigError {}
