//! The [`UBig`] type: representation, construction, comparison, and the
//! addition/subtraction kernels every other operation builds on.

use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An arbitrary-precision unsigned integer.
///
/// Representation: little-endian `u64` limbs with the invariant that the most
/// significant limb is non-zero (so zero is the empty limb vector). All public
/// constructors and operations preserve this normalization.
///
/// Arithmetic traits are implemented for both owned values and references, so
/// hot paths can avoid clones: `&a + &b`, `&a * &b`, `&a % &b` all work.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct UBig {
    pub(crate) limbs: Vec<u64>,
}

impl UBig {
    /// The value 0.
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Builds a `UBig` from little-endian limbs, stripping high zero limbs.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Read-only view of the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// `true` iff the lowest bit is set. Zero is even.
    ///
    /// Property 3 of the paper ("OptimizedMod") tests `odd(label(x))` to
    /// distinguish internal-node labels from power-of-two leaf labels.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// `true` iff the value is even (including zero).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (used only for reporting ratios in benches).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        acc
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Compares magnitudes; the basis of the `Ord` impl.
    pub(crate) fn cmp_magnitude(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// In-place addition kernel: `self += other`.
    pub(crate) fn add_assign_ref(&mut self, other: &UBig) {
        if other.limbs.len() > self.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, dst) in self.limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = dst.overflowing_add(rhs);
            let (s2, c2) = s1.overflowing_add(carry);
            *dst = s2;
            carry = (c1 as u64) + (c2 as u64);
            if carry == 0 && i >= other.limbs.len() {
                return; // no carry left and nothing more to add
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// In-place subtraction kernel: `self -= other`.
    ///
    /// # Panics
    /// Panics if `other > self` — `UBig` cannot go negative; use
    /// [`crate::IBig`] for signed arithmetic.
    pub(crate) fn sub_assign_ref(&mut self, other: &UBig) {
        assert!(
            Self::cmp_magnitude(&self.limbs, &other.limbs) != Ordering::Less,
            "UBig subtraction underflow"
        );
        let mut borrow = 0u64;
        for (i, dst) in self.limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = dst.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *dst = d2;
            borrow = (b1 as u64) + (b2 as u64);
            if borrow == 0 && i >= other.limbs.len() {
                break;
            }
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Checked subtraction: `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &UBig) -> Option<UBig> {
        if Self::cmp_magnitude(&self.limbs, &other.limbs) == Ordering::Less {
            None
        } else {
            let mut out = self.clone();
            out.sub_assign_ref(other);
            Some(out)
        }
    }

    /// Absolute difference `|self - other|`, never underflows.
    pub fn abs_diff(&self, other: &UBig) -> UBig {
        if self >= other {
            let mut out = self.clone();
            out.sub_assign_ref(other);
            out
        } else {
            let mut out = other.clone();
            out.sub_assign_ref(self);
            out
        }
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        if v == 0 {
            UBig::zero()
        } else {
            UBig { limbs: vec![v] }
        }
    }
}

impl From<u32> for UBig {
    fn from(v: u32) -> Self {
        UBig::from(v as u64)
    }
}

impl From<usize> for UBig {
    fn from(v: usize) -> Self {
        UBig::from(v as u64)
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        Self::cmp_magnitude(&self.limbs, &other.limbs)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $kernel:ident) => {
        impl $trait<&UBig> for &UBig {
            type Output = UBig;
            fn $method(self, rhs: &UBig) -> UBig {
                let mut out = self.clone();
                out.$kernel(rhs);
                out
            }
        }
        impl $trait<UBig> for UBig {
            type Output = UBig;
            fn $method(mut self, rhs: UBig) -> UBig {
                self.$kernel(&rhs);
                self
            }
        }
        impl $trait<&UBig> for UBig {
            type Output = UBig;
            fn $method(mut self, rhs: &UBig) -> UBig {
                self.$kernel(rhs);
                self
            }
        }
        impl $trait<UBig> for &UBig {
            type Output = UBig;
            fn $method(self, rhs: UBig) -> UBig {
                let mut out = self.clone();
                out.$kernel(&rhs);
                out
            }
        }
    };
}

forward_binop!(Add, add, add_assign_ref);
forward_binop!(Sub, sub, sub_assign_ref);

impl AddAssign<&UBig> for UBig {
    fn add_assign(&mut self, rhs: &UBig) {
        self.add_assign_ref(rhs);
    }
}

impl AddAssign<UBig> for UBig {
    fn add_assign(&mut self, rhs: UBig) {
        self.add_assign_ref(&rhs);
    }
}

impl SubAssign<&UBig> for UBig {
    fn sub_assign(&mut self, rhs: &UBig) {
        self.sub_assign_ref(rhs);
    }
}

impl SubAssign<UBig> for UBig {
    fn sub_assign(&mut self, rhs: UBig) {
        self.sub_assign_ref(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty_and_even() {
        let z = UBig::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert!(!z.is_odd());
        assert_eq!(z.to_u64(), Some(0));
    }

    #[test]
    fn from_u128_round_trips() {
        let v = 0x1234_5678_9abc_def0_1122_3344_5566_7788u128;
        assert_eq!(UBig::from(v).to_u128(), Some(v));
    }

    #[test]
    fn from_limbs_strips_trailing_zeros() {
        let v = UBig::from_limbs(vec![7, 0, 0]);
        assert_eq!(v.limbs(), &[7]);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = UBig::from(u64::MAX);
        let b = UBig::from(1u64);
        let s = &a + &b;
        assert_eq!(s.limbs(), &[0, 1]);
        assert_eq!(s.to_u128(), Some(u64::MAX as u128 + 1));
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = UBig::from(u64::MAX as u128 + 5);
        let b = UBig::from(7u64);
        assert_eq!((&a - &b).to_u128(), Some(u64::MAX as u128 - 2));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = UBig::from(1u64) - UBig::from(2u64);
    }

    #[test]
    fn checked_sub_and_abs_diff() {
        let a = UBig::from(10u64);
        let b = UBig::from(25u64);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), Some(UBig::from(15u64)));
        assert_eq!(a.abs_diff(&b), UBig::from(15u64));
        assert_eq!(b.abs_diff(&a), UBig::from(15u64));
    }

    #[test]
    fn ordering_by_magnitude() {
        let small = UBig::from(u64::MAX);
        let big = UBig::from(u64::MAX as u128 + 1);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(small.cmp(&small.clone()), Ordering::Equal);
    }

    #[test]
    fn parity() {
        assert!(UBig::from(3u64).is_odd());
        assert!(UBig::from(1u64 << 40).is_even());
    }

    #[test]
    fn to_f64_two_limbs() {
        let v = UBig::from(1u128 << 64);
        let f = v.to_f64();
        assert!((f - 1.8446744073709552e19).abs() / f < 1e-12);
    }
}
