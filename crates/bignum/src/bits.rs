//! Bit-level operations: shifts, bit length, trailing zeros, power-of-two
//! tests. The paper's size analysis (§3.1) is entirely in terms of label bit
//! lengths, and Opt2 needs fast `2^n` recognition for leaf labels.

use crate::UBig;
use std::ops::{Shl, ShlAssign, Shr, ShrAssign};

impl UBig {
    /// Number of bits in the binary representation; 0 for the value 0.
    ///
    /// This is the paper's label-size metric: a label `L` occupies
    /// `bit_len(L)` bits.
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Number of trailing zero bits; `None` for the value 0.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return Some(i as u64 * 64 + limb.trailing_zeros() as u64);
            }
        }
        None
    }

    /// `true` iff the value is exactly `2^k` for some `k >= 0`.
    ///
    /// Under Opt2 the n-th leaf child carries self-label `2^n`; the
    /// parent-child test recognizes leaf self-labels with this predicate.
    pub fn is_power_of_two(&self) -> bool {
        match self.limbs.split_last() {
            None => false,
            Some((&top, rest)) => top.is_power_of_two() && rest.iter().all(|&l| l == 0),
        }
    }

    /// Returns `2^k`.
    pub fn power_of_two(k: u64) -> UBig {
        let limb_idx = (k / 64) as usize;
        let mut limbs = vec![0u64; limb_idx + 1];
        limbs[limb_idx] = 1u64 << (k % 64);
        UBig { limbs }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: u64) -> bool {
        let limb_idx = (i / 64) as usize;
        match self.limbs.get(limb_idx) {
            None => false,
            Some(&limb) => (limb >> (i % 64)) & 1 == 1,
        }
    }

    pub(crate) fn shl_bits_assign(&mut self, k: u64) {
        if self.is_zero() || k == 0 {
            return;
        }
        let limb_shift = (k / 64) as usize;
        let bit_shift = (k % 64) as u32;
        let old = std::mem::take(&mut self.limbs);
        let mut limbs = vec![0u64; old.len() + limb_shift + 1];
        for (i, &l) in old.iter().enumerate() {
            limbs[i + limb_shift] |= l << bit_shift;
            if bit_shift != 0 {
                limbs[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        self.limbs = limbs;
        self.normalize();
    }

    pub(crate) fn shr_bits_assign(&mut self, k: u64) {
        if self.is_zero() || k == 0 {
            return;
        }
        let limb_shift = (k / 64) as usize;
        if limb_shift >= self.limbs.len() {
            self.limbs.clear();
            return;
        }
        let bit_shift = (k % 64) as u32;
        let len = self.limbs.len() - limb_shift;
        let mut limbs = vec![0u64; len];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let lo = self.limbs[i + limb_shift] >> bit_shift;
            let hi = if bit_shift != 0 {
                self.limbs.get(i + limb_shift + 1).copied().unwrap_or(0) << (64 - bit_shift)
            } else {
                0
            };
            *limb = lo | hi;
        }
        self.limbs = limbs;
        self.normalize();
    }
}

impl Shl<u64> for &UBig {
    type Output = UBig;
    fn shl(self, k: u64) -> UBig {
        let mut out = self.clone();
        out.shl_bits_assign(k);
        out
    }
}

impl Shl<u64> for UBig {
    type Output = UBig;
    fn shl(mut self, k: u64) -> UBig {
        self.shl_bits_assign(k);
        self
    }
}

impl Shr<u64> for &UBig {
    type Output = UBig;
    fn shr(self, k: u64) -> UBig {
        let mut out = self.clone();
        out.shr_bits_assign(k);
        out
    }
}

impl Shr<u64> for UBig {
    type Output = UBig;
    fn shr(mut self, k: u64) -> UBig {
        self.shr_bits_assign(k);
        self
    }
}

impl ShlAssign<u64> for UBig {
    fn shl_assign(&mut self, k: u64) {
        self.shl_bits_assign(k);
    }
}

impl ShrAssign<u64> for UBig {
    fn shr_assign(&mut self, k: u64) {
        self.shr_bits_assign(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_len_basics() {
        assert_eq!(UBig::zero().bit_len(), 0);
        assert_eq!(UBig::one().bit_len(), 1);
        assert_eq!(UBig::from(255u64).bit_len(), 8);
        assert_eq!(UBig::from(256u64).bit_len(), 9);
        assert_eq!(UBig::from(1u128 << 64).bit_len(), 65);
    }

    #[test]
    fn power_of_two_construction_and_test() {
        for k in [0u64, 1, 7, 63, 64, 65, 130] {
            let p = UBig::power_of_two(k);
            assert!(p.is_power_of_two(), "2^{k}");
            assert_eq!(p.bit_len(), k + 1);
            assert_eq!(p.trailing_zeros(), Some(k));
        }
        assert!(!UBig::zero().is_power_of_two());
        assert!(!UBig::from(6u64).is_power_of_two());
        assert!(!UBig::from((1u128 << 64) | 2).is_power_of_two());
    }

    #[test]
    fn shifts_round_trip() {
        let v = UBig::from(0xdead_beef_cafe_f00du64);
        for k in [1u64, 13, 64, 70, 129] {
            let shifted = &v << k;
            assert_eq!(&shifted >> k, v, "shift by {k}");
        }
    }

    #[test]
    fn shr_to_zero() {
        let v = UBig::from(5u64);
        assert!((v >> 3).is_zero());
    }

    #[test]
    fn bit_access() {
        let v = UBig::from(0b1010u64);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(64)); // beyond the limbs
    }

    #[test]
    fn shl_matches_mul_by_power() {
        let v = UBig::from(12345u64);
        assert_eq!(&v << 20, &v * &UBig::power_of_two(20));
    }
}
