//! Precomputed-divisor reduction contexts: a Barrett-style invariant-divisor
//! remainder for big divisors ([`Reducer`]), a Möller–Granlund word reducer
//! for `u64` divisors ([`Reducer64`]), and Montgomery arithmetic for odd
//! moduli ([`Montgomery`]).
//!
//! The ancestor test of the prime labeling scheme is `label(y) mod label(x)
//! == 0` and the ordered variant's order lookup is `SC mod self-label`; both
//! divide by the *same* divisor once per candidate node. A full
//! [`crate::UBig::divrem`] re-normalizes the divisor, allocates quotient
//! space, and software-divides a 128-bit window per quotient digit on each
//! call, so a fixed-divisor context that front-loads that work (the
//! normalization and a reciprocal) turns the per-node cost into multiplies
//! only. See DESIGN.md §10 for the Barrett-vs-Montgomery tradeoff.

use crate::UBig;

/// Invariant-divisor remainder context for a fixed multi-word divisor.
///
/// Construction normalizes the divisor (top bit set, Knuth D1) and
/// precomputes the Möller–Granlund 2-by-1 reciprocal of its top limb —
/// Barrett's idea of trading per-call division for a stored reciprocal,
/// applied per quotient digit. Each [`Reducer::rem`] then runs Knuth's D2–D7
/// recurrence quotient-free in a single scratch buffer: the reciprocal turns
/// every digit estimate into two widening multiplies (where the generic
/// [`crate::UBig::divrem`] performs a software 128-by-64 division), no
/// quotient is materialized, and the divisor is never re-normalized. The
/// predicate loop's shape — one shallow ancestor label probed by many much
/// larger descendant labels — amortizes the setup across all candidates.
///
/// A textbook Barrett fold (`mu = ⌊B²ᵏ/d⌋` with a base-`Bᵏ` Horner loop) was
/// measured 2–3× *slower* than plain division on that loop: each fold spends
/// several temporary allocations to save multiplies that the mul-sub
/// recurrence performs in place.
#[derive(Debug, Clone)]
pub struct Reducer {
    d: UBig,
    kind: Kind,
}

#[derive(Debug, Clone)]
enum Kind {
    /// Single-limb divisors stream through the word reducer.
    Word(Reducer64),
    /// `d << shift` with the top bit set, and the 2-by-1 reciprocal of its
    /// top limb; `dnorm.len() >= 2`.
    Wide { shift: u32, dnorm: Vec<u64>, v: u64 },
}

impl Reducer {
    /// Builds the context for divisor `d`.
    ///
    /// # Panics
    /// Panics if `d` is zero (same contract as [`crate::UBig::divrem`]).
    pub fn new(d: UBig) -> Reducer {
        assert!(!d.is_zero(), "division by zero");
        let limbs = d.limbs();
        let n = limbs.len();
        let kind = if n == 1 {
            Kind::Word(Reducer64::new(limbs[0]))
        } else {
            let shift = limbs[n - 1].leading_zeros();
            let mut dnorm = vec![0u64; n];
            if shift > 0 {
                for i in (1..n).rev() {
                    dnorm[i] = (limbs[i] << shift) | (limbs[i - 1] >> (64 - shift));
                }
                dnorm[0] = limbs[0] << shift;
            } else {
                dnorm.copy_from_slice(limbs);
            }
            let v = (u128::MAX / dnorm[n - 1] as u128) as u64;
            Kind::Wide { shift, dnorm, v }
        };
        Reducer { d, kind }
    }

    /// The divisor this context reduces by.
    pub fn divisor(&self) -> &UBig {
        &self.d
    }

    /// `x mod d`, reusing the precomputed normalization and reciprocal.
    pub fn rem(&self, x: &UBig) -> UBig {
        match &self.kind {
            Kind::Word(word) => UBig::from(word.rem(x)),
            Kind::Wide { shift, dnorm, v } => {
                if x < &self.d {
                    return x.clone();
                }
                let s = *shift;
                let n = dnorm.len();
                let un = rem_norm(x.limbs(), s, dnorm, *v);
                // Denormalize the remainder out of the scratch buffer (D8).
                let mut r = vec![0u64; n];
                if s > 0 {
                    for i in 0..n - 1 {
                        r[i] = (un[i] >> s) | (un[i + 1] << (64 - s));
                    }
                    r[n - 1] = un[n - 1] >> s;
                } else {
                    r.copy_from_slice(&un[..n]);
                }
                UBig::from_limbs(r)
            }
        }
    }

    /// `true` iff `x` is an exact multiple of the divisor — the labeling
    /// scheme's ancestor test with the division front-loaded. Skips the
    /// remainder denormalization: `r << shift` is zero iff `r` is.
    pub fn is_multiple_of(&self, x: &UBig) -> bool {
        match &self.kind {
            Kind::Word(word) => word.is_multiple_of(x),
            Kind::Wide { shift, dnorm, v } => {
                if x < &self.d {
                    return x.is_zero();
                }
                rem_norm(x.limbs(), *shift, dnorm, *v)[..dnorm.len()].iter().all(|&l| l == 0)
            }
        }
    }
}

/// The quotient-free core of [`Reducer::rem`]: Knuth's D2–D7 recurrence for
/// `x mod d` against the pre-normalized divisor `dn` (top bit set, `v` its
/// top limb's 2-by-1 reciprocal), for `x >= d`. Returns the scratch buffer
/// holding the *normalized* remainder `(x mod d) << s` in its low
/// `dn.len()` limbs.
fn rem_norm(x: &[u64], s: u32, dn: &[u64], v: u64) -> Vec<u64> {
    let n = dn.len();
    let d1 = dn[n - 1];
    let d0 = dn[n - 2];
    // D1 for the dividend only: shift into a buffer with one extra top limb.
    let mut un = vec![0u64; x.len() + 1];
    if s > 0 {
        un[x.len()] = x[x.len() - 1] >> (64 - s);
        for i in (1..x.len()).rev() {
            un[i] = (x[i] << s) | (x[i - 1] >> (64 - s));
        }
        un[0] = x[0] << s;
    } else {
        un[..x.len()].copy_from_slice(x);
    }

    const B: u128 = 1u128 << 64;
    for j in (0..=x.len() - n).rev() {
        // D3: estimate the quotient digit from the top two window limbs via
        // the reciprocal. The window invariant (the running remainder stays
        // below the normalized divisor) bounds the top limb by d1; on the
        // equal-top degenerate case clamp to B − 1 as Knuth does.
        let u2 = un[j + n];
        let u1 = un[j + n - 1];
        let (mut qhat, mut rhat) = if u2 >= d1 {
            (B - 1, u1 as u128 + d1 as u128)
        } else {
            let (q, r) = div2by1(u2, u1, d1, v);
            (q as u128, r as u128)
        };
        while rhat < B && qhat * d0 as u128 > (rhat << 64) + un[j + n - 2] as u128 {
            qhat -= 1;
            rhat += d1 as u128;
        }

        // D4: multiply and subtract qhat·dn from the window; the digit
        // itself is dropped — only the remainder matters.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * dn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[i + j] as i128 - (p as u64) as i128 - borrow;
            un[i + j] = t as u64;
            borrow = i128::from(t < 0);
        }
        let t = un[j + n] as i128 - carry as i128 - borrow;
        un[j + n] = t as u64;

        // D5-D6: qhat was one too large (probability ~2/B); add back.
        if t < 0 {
            let mut c = 0u128;
            for i in 0..n {
                let sum = un[i + j] as u128 + dn[i] as u128 + c;
                un[i + j] = sum as u64;
                c = sum >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(c as u64);
        }
    }
    un
}

/// Divides `⟨u1, u0⟩` (a two-word value, `u1 < d`) by the normalized divisor
/// word `d` using its precomputed reciprocal `v`: returns
/// `(quotient_word, remainder)`. Algorithm 4 of Möller & Granlund, 2011.
#[inline]
fn div2by1(u1: u64, u0: u64, d: u64, v: u64) -> (u64, u64) {
    debug_assert!(d >= 1 << 63);
    debug_assert!(u1 < d);
    // q ≈ ⟨u1,u0⟩ · (B + v) / B², computed as v·u1 + ⟨u1,u0⟩; u1 ≤ d−1
    // keeps the sum below 2¹²⁸.
    let q = (v as u128) * (u1 as u128) + (((u1 as u128) << 64) | u0 as u128);
    let q0 = q as u64;
    let mut q1 = ((q >> 64) as u64).wrapping_add(1);
    let mut r = u0.wrapping_sub(q1.wrapping_mul(d));
    if r > q0 {
        q1 = q1.wrapping_sub(1);
        r = r.wrapping_add(d);
    }
    if r >= d {
        q1 = q1.wrapping_add(1);
        r -= d;
    }
    (q1, r)
}

/// Möller–Granlund reduction context for a fixed non-zero `u64` divisor.
///
/// Precomputes the normalized divisor's 2-by-1 reciprocal
/// `v = ⌊(2¹²⁸ − 1) / d̂⌋ − 2⁶⁴` ("Improved division by invariant integers",
/// Möller & Granlund, 2011); each limb of the dividend then costs one
/// widening multiply and a couple of correction branches instead of the
/// software 128-by-64 division the generic [`crate::UBig::rem_u64`] performs
/// per limb. Used by the SC table, whose moduli are `u64` self-labels hit
/// once per member per operation.
#[derive(Debug, Clone, Copy)]
pub struct Reducer64 {
    d: u64,
    shift: u32,
    dnorm: u64,
    v: u64,
}

impl Reducer64 {
    /// Builds the context for divisor `d`.
    ///
    /// # Panics
    /// Panics if `d == 0` (same contract as [`crate::UBig::rem_u64`]).
    pub fn new(d: u64) -> Reducer64 {
        assert!(d != 0, "division by zero");
        let shift = d.leading_zeros();
        let dnorm = d << shift;
        let v = (u128::MAX / dnorm as u128) as u64;
        Reducer64 { d, shift, dnorm, v }
    }

    /// The divisor this context reduces by.
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// Divides `⟨u1, u0⟩` (a two-word value, `u1 < d̂`) by the normalized
    /// divisor: returns `(quotient_word, remainder)`.
    #[inline]
    fn div2by1(&self, u1: u64, u0: u64) -> (u64, u64) {
        div2by1(u1, u0, self.dnorm, self.v)
    }

    /// `x mod d`, streaming the limbs of `x << shift` without materializing
    /// the shifted dividend.
    pub fn rem(&self, x: &UBig) -> u64 {
        let limbs = x.limbs();
        let n = limbs.len();
        if n == 0 {
            return 0;
        }
        let s = self.shift;
        let mut r = 0u64;
        if s == 0 {
            for &limb in limbs.iter().rev() {
                r = self.div2by1(r, limb).1;
            }
            r
        } else {
            r = self.div2by1(0, limbs[n - 1] >> (64 - s)).1;
            for i in (0..n).rev() {
                let lo = if i > 0 { limbs[i - 1] >> (64 - s) } else { 0 };
                r = self.div2by1(r, (limbs[i] << s) | lo).1;
            }
            r >> s
        }
    }

    /// `(x / d, x mod d)`, same result as [`crate::UBig::divrem_u64`].
    pub fn divrem(&self, x: &UBig) -> (UBig, u64) {
        let limbs = x.limbs();
        let n = limbs.len();
        if n == 0 {
            return (UBig::zero(), 0);
        }
        let s = self.shift;
        let mut q = vec![0u64; n];
        let mut r = 0u64;
        if s == 0 {
            for i in (0..n).rev() {
                let (qi, ri) = self.div2by1(r, limbs[i]);
                q[i] = qi;
                r = ri;
            }
            (UBig::from_limbs(q), r)
        } else {
            // The shifted dividend x·2ˢ has one extra (short) top digit.
            // Dividing it by d·2ˢ digit-by-digit yields exactly the base-2⁶⁴
            // digits of ⌊x/d⌋ (the extra top quotient digit is always zero
            // since ⌊x/d⌋ fits n limbs) and remainder (x mod d)·2ˢ.
            let (qtop, ri) = self.div2by1(0, limbs[n - 1] >> (64 - s));
            debug_assert_eq!(qtop, 0);
            r = ri;
            for i in (0..n).rev() {
                let lo = if i > 0 { limbs[i - 1] >> (64 - s) } else { 0 };
                let (qi, ri) = self.div2by1(r, (limbs[i] << s) | lo);
                q[i] = qi;
                r = ri;
            }
            (UBig::from_limbs(q), r >> s)
        }
    }

    /// `true` iff `x mod d == 0`.
    pub fn is_multiple_of(&self, x: &UBig) -> bool {
        self.rem(x) == 0
    }
}

/// Montgomery arithmetic context for an odd modulus `m > 1`.
///
/// Maps operands into the residue ring scaled by `R = Bⁿ` (for `n` = modulus
/// limb count); multiplication then reduces with word-wise REDC — shifts and
/// adds only, no division at all. The transform in/out costs two extra
/// reductions, so Montgomery pays off for *chains* of multiplications
/// (modular exponentiation, the CRT inner loop) while Barrett wins for
/// one-shot remainders. See DESIGN.md §10.
#[derive(Debug, Clone)]
pub struct Montgomery {
    m: UBig,
    n: usize,
    /// `−m⁻¹ mod 2⁶⁴` (of the low limb), the REDC folding multiplier.
    minv: u64,
    /// `R² mod m`, for mapping into the Montgomery domain.
    r2: UBig,
}

impl Montgomery {
    /// Builds the context, or `None` if `m` is even or `< 2` (REDC requires
    /// `gcd(m, B) = 1`).
    pub fn new(m: &UBig) -> Option<Montgomery> {
        if !m.is_odd() || m.is_one() {
            return None;
        }
        let n = m.limbs().len();
        let m0 = m.limbs()[0];
        // Newton iteration for m0⁻¹ mod 2⁶⁴: x ← x·(2 − m0·x) doubles the
        // number of correct low bits; m0·m0 ≡ 1 (mod 8) seeds three bits,
        // five iterations reach 96 ≥ 64.
        let mut inv = m0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let r2 = &UBig::one().shl_limbs(2 * n) % m;
        Some(Montgomery { m: m.clone(), n, minv: inv.wrapping_neg(), r2 })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &UBig {
        &self.m
    }

    /// REDC: returns `t · R⁻¹ mod m` for `t < m·R`.
    fn redc(&self, t: &UBig) -> UBig {
        let n = self.n;
        let mlimbs = self.m.limbs();
        let mut tl = t.limbs().to_vec();
        tl.resize(2 * n + 1, 0);
        for i in 0..n {
            // Choose u so that limb i of (t + u·m·Bⁱ) becomes zero.
            let u = tl[i].wrapping_mul(self.minv);
            let mut carry = 0u128;
            for (j, &mj) in mlimbs.iter().enumerate() {
                let s = tl[i + j] as u128 + (u as u128) * (mj as u128) + carry;
                tl[i + j] = s as u64;
                carry = s >> 64;
            }
            let mut k = i + n;
            while carry != 0 {
                let s = tl[k] as u128 + carry;
                tl[k] = s as u64;
                carry = s >> 64;
                k += 1;
            }
        }
        // (t + Σ uᵢ·m·Bⁱ) / Bⁿ < 2m: one conditional subtraction suffices.
        let mut out = UBig::from_limbs(tl[n..].to_vec());
        if out >= self.m {
            out.sub_assign_ref(&self.m);
        }
        out
    }

    /// Maps `x` into the Montgomery domain: `x · R mod m`.
    pub fn to_mont(&self, x: &UBig) -> UBig {
        self.redc(&((x % &self.m) * &self.r2))
    }

    /// Maps back out of the Montgomery domain.
    pub fn from_mont(&self, x: &UBig) -> UBig {
        self.redc(x)
    }

    /// Montgomery product of two in-domain values.
    pub fn mul(&self, a: &UBig, b: &UBig) -> UBig {
        self.redc(&(a * b))
    }

    /// `base^exp mod m` by left-to-right binary exponentiation entirely in
    /// the Montgomery domain.
    pub fn pow(&self, base: &UBig, exp: &UBig) -> UBig {
        let base_m = self.to_mont(base);
        let mut acc = self.to_mont(&UBig::one());
        for i in (0..exp.bit_len()).rev() {
            acc = self.mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mul(&acc, &base_m);
            }
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, salt: u64) -> UBig {
        UBig::from_limbs(
            (0..n as u64)
                .map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i.wrapping_add(salt)) | 1)
                .collect(),
        )
    }

    #[test]
    fn barrett_matches_divrem_across_widths() {
        for dk in [1usize, 2, 3, 5, 8] {
            let d = pseudo(dk, 17);
            let red = Reducer::new(d.clone());
            for xk in [0usize, 1, dk, 2 * dk, 2 * dk + 1, 4 * dk + 3] {
                let x = pseudo(xk, 23);
                assert_eq!(red.rem(&x), &x % &d, "dk={dk} xk={xk}");
            }
        }
    }

    #[test]
    fn barrett_detects_exact_multiples() {
        let d = pseudo(3, 5);
        let red = Reducer::new(d.clone());
        let q = pseudo(9, 7);
        let exact = &q * &d;
        assert!(red.is_multiple_of(&exact));
        assert!(!red.is_multiple_of(&(exact + UBig::one())));
        assert!(red.is_multiple_of(&UBig::zero()));
    }

    #[test]
    fn barrett_one_divides_everything() {
        let red = Reducer::new(UBig::one());
        assert_eq!(red.rem(&pseudo(10, 3)), UBig::zero());
    }

    #[test]
    fn wide_add_back_branch_is_exercised() {
        // Same shape as div.rs's add-back case: maximal divisor top limb,
        // dividend window one short of it, so the first qhat estimate is one
        // too large and D6 must fire inside the quotient-free loop.
        let u = UBig::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let d = UBig::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let red = Reducer::new(d.clone());
        assert_eq!(red.rem(&u), &u % &d);
        assert!(!red.is_multiple_of(&u));
    }

    #[test]
    fn wide_divisor_already_normalized() {
        // Top bit set means shift = 0: no dividend shifting, no extra top
        // bits, and the degenerate equal-top qhat clamp is reachable.
        let d = UBig::from_limbs(vec![5, 1 << 63]);
        let red = Reducer::new(d.clone());
        for xk in [2usize, 3, 5, 9] {
            let x = pseudo(xk, 29);
            assert_eq!(red.rem(&x), &x % &d, "xk={xk}");
        }
        let exact = &pseudo(7, 31) * &d;
        assert!(red.is_multiple_of(&exact));
        assert!(!red.is_multiple_of(&(exact + UBig::one())));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn barrett_rejects_zero_divisor() {
        let _ = Reducer::new(UBig::zero());
    }

    #[test]
    fn reducer64_matches_rem_u64() {
        for d in [1u64, 2, 3, 97, 1 << 32, u64::MAX, u64::MAX - 1, (1 << 63) + 1] {
            let red = Reducer64::new(d);
            for xk in [0usize, 1, 2, 7, 40] {
                let x = pseudo(xk, d | 1);
                assert_eq!(red.rem(&x), x.rem_u64(d), "d={d} xk={xk}");
                let (q, r) = red.divrem(&x);
                let (qq, rr) = x.divrem_u64(d);
                assert_eq!((q, r), (qq, rr), "divrem d={d} xk={xk}");
            }
        }
    }

    #[test]
    fn reducer64_all_ones_dividend() {
        let x = UBig::from_limbs(vec![u64::MAX; 6]);
        for d in [3u64, (1 << 63) | 5, u64::MAX] {
            assert_eq!(Reducer64::new(d).rem(&x), x.rem_u64(d));
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn reducer64_rejects_zero_divisor() {
        let _ = Reducer64::new(0);
    }

    #[test]
    fn montgomery_round_trip_and_mul() {
        let m = pseudo(4, 9); // odd by construction (| 1 on limb 0)
        let ctx = Montgomery::new(&m).unwrap_or_else(|| panic!("odd modulus"));
        let a = pseudo(6, 21);
        let b = pseudo(3, 33);
        let am = ctx.to_mont(&a);
        assert_eq!(ctx.from_mont(&am), &a % &m);
        let prod = ctx.from_mont(&ctx.mul(&am, &ctx.to_mont(&b)));
        assert_eq!(prod, &(&a * &b) % &m);
    }

    #[test]
    fn montgomery_pow_matches_plain() {
        let m = pseudo(3, 41);
        let ctx = Montgomery::new(&m).unwrap_or_else(|| panic!("odd modulus"));
        let base = pseudo(4, 51);
        for e in [0u64, 1, 2, 3, 64, 1000] {
            let exp = UBig::from(e);
            assert_eq!(
                ctx.pow(&base, &exp),
                crate::modular::mod_pow_plain(&base, &exp, &m),
                "e={e}"
            );
        }
    }

    #[test]
    fn montgomery_rejects_even_and_trivial_moduli() {
        assert!(Montgomery::new(&UBig::from(10u64)).is_none());
        assert!(Montgomery::new(&UBig::one()).is_none());
        assert!(Montgomery::new(&UBig::zero()).is_none());
    }
}
