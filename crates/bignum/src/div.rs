//! Division: single-limb fast path and Knuth's Algorithm D for the general
//! case. The ancestor test of the labeling scheme is literally
//! `label(y) mod label(x) == 0`, so `divrem` is the hottest primitive in the
//! whole reproduction.

use crate::UBig;
use std::ops::{Div, DivAssign, Rem, RemAssign};

const B: u128 = 1u128 << 64;

impl UBig {
    /// Divides by a machine word, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn divrem_u64(&self, d: u64) -> (UBig, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | limb as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (UBig::from_limbs(q), rem as u64)
    }

    /// Remainder of division by a machine word.
    pub fn rem_u64(&self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u128;
        for &limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | limb as u128) % d as u128;
        }
        rem as u64
    }

    /// Returns `(self / v, self % v)`.
    ///
    /// # Panics
    /// Panics if `v` is zero.
    pub fn divrem(&self, v: &UBig) -> (UBig, UBig) {
        assert!(!v.is_zero(), "division by zero");
        if self < v {
            return (UBig::zero(), self.clone());
        }
        if v.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(v.limbs[0]);
            return (q, UBig::from(r));
        }
        let (q, r) = divrem_knuth(&self.limbs, &v.limbs);
        (UBig::from_limbs(q), UBig::from_limbs(r))
    }

    /// `true` iff `self` is an exact multiple of `d` (zero divides only zero).
    ///
    /// This is Property 2 of the paper: `x` is an ancestor of `y` in a
    /// bottom-up labeled tree iff `label(x).is_multiple_of(label(y))`, and in
    /// the top-down scheme iff `label(y).is_multiple_of(label(x))`.
    pub fn is_multiple_of(&self, d: &UBig) -> bool {
        if d.is_zero() {
            return self.is_zero();
        }
        if d.limbs.len() == 1 {
            return self.rem_u64(d.limbs[0]) == 0;
        }
        self.divrem(d).1.is_zero()
    }
}

/// Knuth TAOCP vol. 2, Algorithm 4.3.1 D, for `u / v` with `v` at least two
/// limbs and `u >= v`. Returns `(quotient, remainder)` limb vectors.
fn divrem_knuth(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = v.len();
    let m = u.len() - n;
    debug_assert!(n >= 2);

    // D1: normalize so the divisor's top limb has its high bit set.
    let s = v[n - 1].leading_zeros();
    let mut vn = vec![0u64; n];
    let mut un = vec![0u64; u.len() + 1];
    if s > 0 {
        for i in (1..n).rev() {
            vn[i] = (v[i] << s) | (v[i - 1] >> (64 - s));
        }
        vn[0] = v[0] << s;
        un[u.len()] = u[u.len() - 1] >> (64 - s);
        for i in (1..u.len()).rev() {
            un[i] = (u[i] << s) | (u[i - 1] >> (64 - s));
        }
        un[0] = u[0] << s;
    } else {
        vn.copy_from_slice(v);
        un[..u.len()].copy_from_slice(u);
    }

    let mut q = vec![0u64; m + 1];
    // D2-D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two dividend limbs.
        let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = num / vn[n - 1] as u128;
        let mut rhat = num % vn[n - 1] as u128;
        while qhat >= B || qhat * vn[n - 2] as u128 > (rhat << 64) + un[j + n - 2] as u128 {
            qhat -= 1;
            rhat += vn[n - 1] as u128;
            if rhat >= B {
                break;
            }
        }

        // D4: multiply and subtract qhat * vn from the dividend window.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[i + j] as i128 - (p as u64) as i128 - borrow;
            un[i + j] = t as u64;
            borrow = i128::from(t < 0);
        }
        let t = un[j + n] as i128 - carry as i128 - borrow;
        un[j + n] = t as u64;

        // D5-D6: qhat was one too large (probability ~2/B); add back.
        if t < 0 {
            qhat -= 1;
            let mut c = 0u128;
            for i in 0..n {
                let sum = un[i + j] as u128 + vn[i] as u128 + c;
                un[i + j] = sum as u64;
                c = sum >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(c as u64);
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let mut r = vec![0u64; n];
    if s > 0 {
        for i in 0..n - 1 {
            r[i] = (un[i] >> s) | (un[i + 1] << (64 - s));
        }
        r[n - 1] = un[n - 1] >> s;
    } else {
        r.copy_from_slice(&un[..n]);
    }
    (q, r)
}

macro_rules! forward_divrem {
    ($trait:ident, $method:ident, $idx:tt) => {
        impl $trait<&UBig> for &UBig {
            type Output = UBig;
            fn $method(self, rhs: &UBig) -> UBig {
                self.divrem(rhs).$idx
            }
        }
        impl $trait<UBig> for UBig {
            type Output = UBig;
            fn $method(self, rhs: UBig) -> UBig {
                self.divrem(&rhs).$idx
            }
        }
        impl $trait<&UBig> for UBig {
            type Output = UBig;
            fn $method(self, rhs: &UBig) -> UBig {
                self.divrem(rhs).$idx
            }
        }
        impl $trait<UBig> for &UBig {
            type Output = UBig;
            fn $method(self, rhs: UBig) -> UBig {
                self.divrem(&rhs).$idx
            }
        }
    };
}

forward_divrem!(Div, div, 0);
forward_divrem!(Rem, rem, 1);

impl DivAssign<&UBig> for UBig {
    fn div_assign(&mut self, rhs: &UBig) {
        *self = self.divrem(rhs).0;
    }
}

impl RemAssign<&UBig> for UBig {
    fn rem_assign(&mut self, rhs: &UBig) {
        *self = self.divrem(rhs).1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_u128(a: u128, b: u128) {
        let (q, r) = UBig::from(a).divrem(&UBig::from(b));
        assert_eq!(q.to_u128(), Some(a / b), "{a} / {b}");
        assert_eq!(r.to_u128(), Some(a % b), "{a} % {b}");
    }

    #[test]
    fn single_limb_division() {
        let (q, r) = UBig::from(1_000_003u64).divrem_u64(97);
        assert_eq!(q.to_u64(), Some(1_000_003 / 97));
        assert_eq!(r, 1_000_003 % 97);
    }

    #[test]
    fn rem_u64_matches_divrem() {
        let v = UBig::from(0xfedc_ba98_7654_3210_0123_4567_89ab_cdefu128);
        assert_eq!(v.rem_u64(1_000_000_007), v.divrem_u64(1_000_000_007).1);
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = UBig::from(5u64).divrem(&UBig::from(1u128 << 100));
        assert!(q.is_zero());
        assert_eq!(r.to_u64(), Some(5));
    }

    #[test]
    fn knuth_two_limb_cases() {
        check_u128(u128::MAX, (1u128 << 64) + 1);
        check_u128(u128::MAX - 3, u64::MAX as u128 + 2);
        check_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788, 0x1_0000_0000_0000_0001);
    }

    #[test]
    fn add_back_branch_is_exercised() {
        // Crafted so the initial qhat estimate is one too large: the divisor
        // has maximal top limb and the dividend window nearly matches it.
        let u = UBig::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
        let v = UBig::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.divrem(&v);
        assert_eq!(&q * &v + &r, u);
        assert!(r < v);
    }

    #[test]
    fn reconstruction_identity_many_limbs() {
        let mut a = UBig::one();
        for p in [3u64, 5, 7, 11, 13, 10007, 65537, 4294967311] {
            a *= UBig::from(p);
            a = a.square() + UBig::from(p);
        }
        let d = UBig::from_limbs(vec![0xdead_beef, 0xcafe_babe, 0x1234]);
        let (q, r) = a.divrem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r < d);
    }

    #[test]
    fn is_multiple_of_prime_products() {
        // label(y) = 2 * 5 * 11, label(x) = 2 * 5: x is an ancestor of y.
        let y = UBig::from(110u64);
        let x = UBig::from(10u64);
        assert!(y.is_multiple_of(&x));
        assert!(!x.is_multiple_of(&y));
        assert!(!y.is_multiple_of(&UBig::from(3u64)));
    }

    #[test]
    fn zero_dividend_and_divisor_edge_cases() {
        assert!(UBig::zero().is_multiple_of(&UBig::from(7u64)));
        assert!(UBig::zero().is_multiple_of(&UBig::zero()));
        assert!(!UBig::from(7u64).is_multiple_of(&UBig::zero()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = UBig::from(1u64).divrem(&UBig::zero());
    }

    #[test]
    fn exact_division_of_label_products() {
        // Simulate a 6-level top-down label and peel ancestors off one at a time.
        let path = [3u64, 7, 19, 53, 131, 311];
        let mut label = UBig::one();
        for p in path {
            label *= UBig::from(p);
        }
        let mut anc = label.clone();
        for p in path.iter().rev() {
            assert!(label.is_multiple_of(&anc));
            let (q, r) = anc.divrem(&UBig::from(*p));
            assert!(r.is_zero());
            anc = q;
        }
        assert!(anc.is_one());
    }
}
