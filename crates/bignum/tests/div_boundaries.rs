//! Boundary regressions for the Knuth Algorithm D divider in `div.rs` — the
//! normalization-shift edge cases, high-bit-set divisors, and near-`u64::MAX`
//! remainders that the Barrett/Möller–Granlund contexts in `reduce.rs` must
//! agree with bit for bit. Every case checks the reconstruction identity
//! `q·v + r == u`, the range invariant `r < v`, and cross-checks the
//! precomputed-divisor paths against the general divider.

use xp_bignum::reduce::{Reducer, Reducer64};
use xp_bignum::UBig;
use xp_testkit::propcheck::{u64s, vec_of};
use xp_testkit::{prop_assert, prop_assert_eq, prop_assume, propcheck};

/// Full agreement check for one `(u, v)` pair: Knuth divrem invariants plus
/// the Barrett context, and the word reducer when `v` is a single limb.
fn check_division(u: &UBig, v: &UBig) {
    let (q, r) = u.divrem(v);
    assert_eq!(&(&q * v) + &r, *u, "reconstruction failed for {u} / {v}");
    assert!(r < *v, "remainder out of range for {u} / {v}");
    let red = Reducer::new(v.clone());
    assert_eq!(red.rem(u), r, "Barrett disagrees for {u} mod {v}");
    assert_eq!(red.is_multiple_of(u), r.is_zero());
    if let Some(d) = v.to_u64() {
        let red64 = Reducer64::new(d);
        let (q64, r64) = red64.divrem(u);
        assert_eq!((q64, UBig::from(r64)), (q, r), "Reducer64 disagrees for {u} / {d}");
    }
}

#[test]
fn divisor_high_bit_set_means_no_normalization_shift() {
    // Top limb ≥ 2⁶³ → s = 0, the branch that skips the shift entirely.
    let v = UBig::from_limbs(vec![0x0123_4567_89ab_cdef, 0x8000_0000_0000_0000]);
    let u = UBig::from_limbs(vec![u64::MAX, u64::MAX, u64::MAX, 0x7fff_ffff_ffff_ffff]);
    check_division(&u, &v);
    // All-ones divisor: the largest normalized divisor there is.
    let v = UBig::from_limbs(vec![u64::MAX, u64::MAX]);
    check_division(&u, &v);
}

#[test]
fn divisor_top_limb_one_means_maximal_shift() {
    // Top limb 1 → s = 63, the maximal normalization shift; every limb of
    // both operands is split across two shifted limbs.
    let v = UBig::from_limbs(vec![u64::MAX, 1]);
    let u = UBig::from_limbs(vec![0, u64::MAX, u64::MAX, 1]);
    check_division(&u, &v);
    let v = UBig::from_limbs(vec![0, 0, 1]);
    check_division(&u, &v);
}

#[test]
fn remainder_one_step_from_the_divisor() {
    // Construct u = q·v + r with r = v − 1: the remainder's top limb sits
    // one below the divisor's, the boundary the correction loop guards.
    let v = UBig::from_limbs(vec![3, u64::MAX, 0x8000_0000_0000_0001]);
    let q = UBig::from_limbs(vec![u64::MAX, u64::MAX, 7]);
    let r = &v - &UBig::one();
    let u = &(&q * &v) + &r;
    let (qq, rr) = u.divrem(&v);
    assert_eq!((qq, rr), (q, r));
    check_division(&u, &v);
}

#[test]
fn remainder_limbs_near_u64_max() {
    // Remainders whose limbs are u64::MAX or one below — the values a carry
    // bug in the mul-subtract step turns into off-by-one quotients.
    let v = UBig::from_limbs(vec![0, 0, 1]); // B²
    for top in [u64::MAX, u64::MAX - 1] {
        let r = UBig::from_limbs(vec![u64::MAX, top]);
        let q = UBig::from_limbs(vec![0xdead_beef_cafe_babe, 1]);
        let u = &(&q * &v) + &r;
        assert_eq!(u.divrem(&v), (q.clone(), r.clone()));
        check_division(&u, &v);
    }
}

#[test]
fn qhat_estimate_correction_and_add_back() {
    // The classic Algorithm D stress shape: divisor top limb 0x8000…,
    // dividend window just under it, forcing qhat = B − 1 then corrections.
    let v = UBig::from_limbs(vec![1, 0x8000_0000_0000_0000]);
    let u = UBig::from_limbs(vec![0, 0, 0x8000_0000_0000_0000, 0x7fff_ffff_ffff_ffff]);
    check_division(&u, &v);
    // Equal-length operands with u just above/below v.
    let v = UBig::from_limbs(vec![5, u64::MAX, 0x8000_0000_0000_0000]);
    check_division(&(&v + &UBig::one()), &v);
    check_division(&(&v - &UBig::one()), &v);
    check_division(&v, &v);
}

#[test]
fn single_limb_divisor_boundaries() {
    let u = UBig::from_limbs(vec![u64::MAX, u64::MAX, u64::MAX - 1, u64::MAX]);
    for d in [1u64, 2, 3, (1 << 63) - 1, 1 << 63, (1 << 63) + 1, u64::MAX - 1, u64::MAX] {
        check_division(&u, &UBig::from(d));
        // Exact multiple: remainder must be exactly zero, not d.
        let exact = u.divrem_u64(d).0.mul_u64(d);
        check_division(&exact, &UBig::from(d));
    }
}

propcheck! {
    #![config(cases = 512)]

    #[test]
    fn crafted_reconstruction_round_trips(
        v_limbs in vec_of(u64s(0..=u64::MAX), 1..6),
        q_limbs in vec_of(u64s(0..=u64::MAX), 0..8),
        r_seed in u64s(0..=u64::MAX),
        high_bit in xp_testkit::propcheck::bools(),
    ) {
        // Build the answer first, then the dividend: u = q·v + r with a
        // remainder derived from r_seed reduced into range. Optionally pin
        // the divisor's high bit to hit the s = 0 path half the time.
        let mut v_limbs = v_limbs;
        if high_bit {
            let last = v_limbs.len() - 1;
            v_limbs[last] |= 1 << 63;
        }
        let v = UBig::from_limbs(v_limbs);
        prop_assume!(!v.is_zero());
        let q = UBig::from_limbs(q_limbs);
        let r = &UBig::from(r_seed) % &v;
        let u = &(&q * &v) + &r;
        let (qq, rr) = u.divrem(&v);
        prop_assert_eq!(&qq, &q);
        prop_assert_eq!(&rr, &r);
        // Barrett and (for word divisors) Möller–Granlund agree.
        let red = Reducer::new(v.clone());
        prop_assert_eq!(red.rem(&u), r);
        if let Some(d) = v.to_u64() {
            prop_assert_eq!(Reducer64::new(d).rem(&u), rr.to_u64().unwrap_or(0));
        }
    }

    #[test]
    fn remainders_one_limb_from_max_survive(
        v_top in u64s(1..=u64::MAX),
        fill in u64s(0..=u64::MAX),
        len in xp_testkit::propcheck::usizes(2..5),
    ) {
        // Divisor with arbitrary top limb (arbitrary shift s), remainder
        // v − 1 (its limbs frequently all-ones after the borrow ripples).
        let mut v_limbs = vec![u64::MAX; len];
        v_limbs[0] = fill | 1;
        v_limbs[len - 1] = v_top;
        let v = UBig::from_limbs(v_limbs);
        prop_assume!(v.limbs().len() >= 2);
        let r = &v - &UBig::one();
        let q = UBig::from_limbs(vec![fill, v_top, 1]);
        let u = &(&q * &v) + &r;
        let (qq, rr) = u.divrem(&v);
        prop_assert_eq!(qq, q);
        prop_assert_eq!(&rr, &r);
        prop_assert_eq!(Reducer::new(v).rem(&u), r);
    }
}
