//! Differential property tests: every `UBig`/`IBig` operation is checked
//! against `num-bigint` (the oracle, used only in tests) on random operands
//! spanning one to many limbs.

use num_bigint::BigUint;
use proptest::prelude::*;
use xp_bignum::{modular, UBig};

/// Random operand as raw big-endian bytes; empty means zero.
fn bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..64)
}

fn to_ubig(bytes: &[u8]) -> UBig {
    let mut acc = UBig::zero();
    for &b in bytes {
        acc = (acc << 8) + UBig::from(b as u64);
    }
    acc
}

fn to_oracle(bytes: &[u8]) -> BigUint {
    BigUint::from_bytes_be(bytes)
}

fn same(ours: &UBig, oracle: &BigUint) -> bool {
    ours.to_decimal() == oracle.to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn construction_agrees(a in bytes()) {
        prop_assert!(same(&to_ubig(&a), &to_oracle(&a)));
    }

    #[test]
    fn addition_agrees(a in bytes(), b in bytes()) {
        let ours = to_ubig(&a) + to_ubig(&b);
        let oracle = to_oracle(&a) + to_oracle(&b);
        prop_assert!(same(&ours, &oracle));
    }

    #[test]
    fn subtraction_agrees(a in bytes(), b in bytes()) {
        let (x, y) = (to_ubig(&a), to_ubig(&b));
        let (ox, oy) = (to_oracle(&a), to_oracle(&b));
        let (hi, lo, ohi, olo) = if x >= y { (x, y, ox, oy) } else { (y, x, oy, ox) };
        prop_assert!(same(&(hi - lo), &(ohi - olo)));
    }

    #[test]
    fn multiplication_agrees(a in bytes(), b in bytes()) {
        let ours = to_ubig(&a) * to_ubig(&b);
        let oracle = to_oracle(&a) * to_oracle(&b);
        prop_assert!(same(&ours, &oracle));
    }

    #[test]
    fn karatsuba_sized_multiplication_agrees(
        a in prop::collection::vec(any::<u8>(), 300..600),
        b in prop::collection::vec(any::<u8>(), 300..600),
    ) {
        let ours = to_ubig(&a) * to_ubig(&b);
        let oracle = to_oracle(&a) * to_oracle(&b);
        prop_assert!(same(&ours, &oracle));
    }

    #[test]
    fn division_agrees(a in bytes(), b in bytes()) {
        let v = to_ubig(&b);
        prop_assume!(!v.is_zero());
        let (q, r) = to_ubig(&a).divrem(&v);
        let (ov, ou) = (to_oracle(&b), to_oracle(&a));
        prop_assert!(same(&q, &(&ou / &ov)));
        prop_assert!(same(&r, &(&ou % &ov)));
    }

    #[test]
    fn division_reconstructs(a in bytes(), b in bytes()) {
        let u = to_ubig(&a);
        let v = to_ubig(&b);
        prop_assume!(!v.is_zero());
        let (q, r) = u.divrem(&v);
        prop_assert!(r < v);
        prop_assert_eq!(q * &v + r, u);
    }

    #[test]
    fn shifts_agree(a in bytes(), k in 0u64..200) {
        let ours_l = to_ubig(&a) << k;
        let oracle_l = to_oracle(&a) << k as usize;
        prop_assert!(same(&ours_l, &oracle_l));
        let ours_r = to_ubig(&a) >> k;
        let oracle_r = to_oracle(&a) >> k as usize;
        prop_assert!(same(&ours_r, &oracle_r));
    }

    #[test]
    fn bit_len_agrees(a in bytes()) {
        prop_assert_eq!(to_ubig(&a).bit_len(), to_oracle(&a).bits());
    }

    #[test]
    fn decimal_round_trip(a in bytes()) {
        let v = to_ubig(&a);
        let parsed: UBig = v.to_decimal().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn gcd_agrees_with_identities(a in bytes(), b in bytes()) {
        let (x, y) = (to_ubig(&a), to_ubig(&b));
        let g = modular::gcd(&x, &y);
        if !g.is_zero() {
            prop_assert!(x.is_multiple_of(&g));
            prop_assert!(y.is_multiple_of(&g));
        } else {
            prop_assert!(x.is_zero() && y.is_zero());
        }
        // gcd * lcm == a * b
        let l = modular::lcm(&x, &y);
        prop_assert_eq!(&g * &l, &x * &y);
    }

    #[test]
    fn mod_pow_agrees(b in bytes(), e in 0u64..500, m in 1u64..u64::MAX) {
        let base = to_ubig(&b);
        let modulus = UBig::from(m);
        let ours = modular::mod_pow(&base, &UBig::from(e), &modulus);
        let oracle = to_oracle(&b).modpow(&BigUint::from(e), &BigUint::from(m));
        prop_assert!(same(&ours, &oracle));
    }

    #[test]
    fn mod_inverse_is_inverse(a in 1u64..u64::MAX, m in 2u64..u64::MAX) {
        let (a, m) = (UBig::from(a), UBig::from(m));
        match modular::mod_inverse(&a, &m) {
            Some(inv) => {
                prop_assert!(inv < m);
                prop_assert!((&a * &inv % &m).is_one());
            }
            None => prop_assert!(!modular::gcd(&a, &m).is_one()),
        }
    }

    #[test]
    fn crt_pair_satisfies_both_congruences(
        r1 in 0u64..10_000, p1 in prop::sample::select(&[3u64, 5, 7, 11, 13, 17, 19, 23][..]),
        r2 in 0u64..10_000, p2 in prop::sample::select(&[29u64, 31, 37, 41, 43, 47, 53][..]),
    ) {
        let x = modular::crt_pair(
            &UBig::from(r1), &UBig::from(p1),
            &UBig::from(r2), &UBig::from(p2),
        ).unwrap();
        prop_assert_eq!(x.rem_u64(p1), r1 % p1);
        prop_assert_eq!(x.rem_u64(p2), r2 % p2);
        prop_assert!(x < UBig::from(p1 * p2));
    }
}
