//! Differential property tests: every `UBig`/`IBig` operation is checked
//! against `xp_testkit::RefUint` (a deliberately naive schoolbook big
//! integer, used only in tests) on random operands spanning one to many
//! limbs.

use xp_bignum::{modular, UBig};
use xp_testkit::propcheck::{constant, one_of, u64s, u8s, vec_of, Gen};
use xp_testkit::refint::RefUint;
use xp_testkit::{prop_assert, prop_assert_eq, prop_assume, propcheck};

/// Random operand as raw big-endian bytes; empty means zero.
fn bytes() -> Gen<Vec<u8>> {
    vec_of(u8s(0..=255), 0..64)
}

/// Karatsuba-sized operands (several hundred limbs).
fn big_bytes() -> Gen<Vec<u8>> {
    vec_of(u8s(0..=255), 300..600)
}

fn to_ubig(bytes: &[u8]) -> UBig {
    let mut acc = UBig::zero();
    for &b in bytes {
        acc = (acc << 8) + UBig::from(b as u64);
    }
    acc
}

fn to_oracle(bytes: &[u8]) -> RefUint {
    RefUint::from_bytes_be(bytes)
}

fn same(ours: &UBig, oracle: &RefUint) -> bool {
    ours.to_decimal() == oracle.to_string()
}

propcheck! {
    #![config(cases = 256)]

    #[test]
    fn construction_agrees(a in bytes()) {
        prop_assert!(same(&to_ubig(&a), &to_oracle(&a)));
    }

    #[test]
    fn addition_agrees(a in bytes(), b in bytes()) {
        let ours = to_ubig(&a) + to_ubig(&b);
        let oracle = to_oracle(&a) + to_oracle(&b);
        prop_assert!(same(&ours, &oracle));
    }

    #[test]
    fn subtraction_agrees(a in bytes(), b in bytes()) {
        let (x, y) = (to_ubig(&a), to_ubig(&b));
        let (ox, oy) = (to_oracle(&a), to_oracle(&b));
        let (hi, lo, ohi, olo) = if x >= y { (x, y, ox, oy) } else { (y, x, oy, ox) };
        prop_assert!(same(&(hi - lo), &(ohi - olo)));
    }

    #[test]
    fn multiplication_agrees(a in bytes(), b in bytes()) {
        let ours = to_ubig(&a) * to_ubig(&b);
        let oracle = to_oracle(&a) * to_oracle(&b);
        prop_assert!(same(&ours, &oracle));
    }

    #[test]
    fn karatsuba_sized_multiplication_agrees(a in big_bytes(), b in big_bytes()) {
        let ours = to_ubig(&a) * to_ubig(&b);
        let oracle = to_oracle(&a) * to_oracle(&b);
        prop_assert!(same(&ours, &oracle));
    }

    #[test]
    fn division_agrees(a in bytes(), b in bytes()) {
        let v = to_ubig(&b);
        prop_assume!(!v.is_zero());
        let (q, r) = to_ubig(&a).divrem(&v);
        let (ov, ou) = (to_oracle(&b), to_oracle(&a));
        prop_assert!(same(&q, &(&ou / &ov)));
        prop_assert!(same(&r, &(&ou % &ov)));
    }

    #[test]
    fn division_reconstructs(a in bytes(), b in bytes()) {
        let u = to_ubig(&a);
        let v = to_ubig(&b);
        prop_assume!(!v.is_zero());
        let (q, r) = u.divrem(&v);
        prop_assert!(r < v);
        prop_assert_eq!(q * &v + r, u);
    }

    #[test]
    fn shifts_agree(a in bytes(), k in u64s(0..200)) {
        let ours_l = to_ubig(&a) << k;
        let oracle_l = to_oracle(&a) << k;
        prop_assert!(same(&ours_l, &oracle_l));
        let ours_r = to_ubig(&a) >> k;
        let oracle_r = to_oracle(&a) >> k;
        prop_assert!(same(&ours_r, &oracle_r));
    }

    #[test]
    fn bit_len_agrees(a in bytes()) {
        prop_assert_eq!(to_ubig(&a).bit_len(), to_oracle(&a).bits());
    }

    #[test]
    fn decimal_round_trip(a in bytes()) {
        let v = to_ubig(&a);
        let parsed: UBig = v.to_decimal().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn gcd_agrees_with_identities(a in bytes(), b in bytes()) {
        let (x, y) = (to_ubig(&a), to_ubig(&b));
        let g = modular::gcd(&x, &y);
        if !g.is_zero() {
            prop_assert!(x.is_multiple_of(&g));
            prop_assert!(y.is_multiple_of(&g));
        } else {
            prop_assert!(x.is_zero() && y.is_zero());
        }
        // gcd * lcm == a * b
        let l = modular::lcm(&x, &y);
        prop_assert_eq!(&g * &l, &x * &y);
    }

    #[test]
    fn mod_pow_agrees(b in bytes(), e in u64s(0..500), m in u64s(1..u64::MAX)) {
        let base = to_ubig(&b);
        let modulus = UBig::from(m);
        let ours = modular::mod_pow(&base, &UBig::from(e), &modulus);
        let oracle = to_oracle(&b).modpow(&RefUint::from(e), &RefUint::from(m));
        prop_assert!(same(&ours, &oracle));
    }

    #[test]
    fn mod_inverse_is_inverse(a in u64s(1..u64::MAX), m in u64s(2..u64::MAX)) {
        let (a, m) = (UBig::from(a), UBig::from(m));
        match modular::mod_inverse(&a, &m) {
            Some(inv) => {
                prop_assert!(inv < m);
                prop_assert!((&a * &inv % &m).is_one());
            }
            None => prop_assert!(!modular::gcd(&a, &m).is_one()),
        }
    }

    #[test]
    fn crt_pair_satisfies_both_congruences(
        r1 in u64s(0..10_000), p1 in one_of([3u64, 5, 7, 11, 13, 17, 19, 23].map(constant).to_vec()),
        r2 in u64s(0..10_000), p2 in one_of([29u64, 31, 37, 41, 43, 47, 53].map(constant).to_vec()),
    ) {
        let x = modular::crt_pair(
            &UBig::from(r1), &UBig::from(p1),
            &UBig::from(r2), &UBig::from(p2),
        ).unwrap();
        prop_assert_eq!(x.rem_u64(p1), r1 % p1);
        prop_assert_eq!(x.rem_u64(p2), r2 % p2);
        prop_assert!(x < UBig::from(p1 * p2));
    }
}
