//! Kernel-oracle differential suite: every multiply kernel and every
//! reduction context vs the naive `RefUint` oracle, with generators pinned
//! to sizes straddling both dispatch crossovers ([`KARATSUBA_THRESHOLD`]
//! and [`TOOM3_THRESHOLD`]) and to carry-heavy limb patterns. Shrinking and seed
//! reporting come from propcheck; rerun a failure with the printed
//! `PROPCHECK_SEED`. See DESIGN.md §10.

use xp_bignum::kernels::{self, KARATSUBA_THRESHOLD, TOOM3_THRESHOLD};
use xp_bignum::modular;
use xp_bignum::reduce::{Montgomery, Reducer, Reducer64};
use xp_bignum::UBig;
use xp_testkit::kernel_oracle::{check_binary_kernel, kernel_operand, ref_from_limbs};
use xp_testkit::propcheck::{u64s, Gen};
use xp_testkit::{prop_assert, prop_assert_eq, prop_assume, propcheck, RefUint};

/// Case count per kernel (the acceptance floor is 512).
const CASES: u32 = 512;

fn thresholds() -> Vec<usize> {
    vec![KARATSUBA_THRESHOLD, TOOM3_THRESHOLD]
}

fn ubig(limbs: &[u64]) -> UBig {
    UBig::from_limbs(limbs.to_vec())
}

#[test]
fn mul_schoolbook_vs_oracle() {
    check_binary_kernel(
        "kernel_differential::mul_schoolbook",
        CASES,
        thresholds(),
        |a, b| a.mul(b),
        |a, b| format!("{:x}", kernels::mul_schoolbook(&ubig(a), &ubig(b))),
    );
}

#[test]
fn mul_karatsuba_vs_oracle() {
    check_binary_kernel(
        "kernel_differential::mul_karatsuba",
        CASES,
        thresholds(),
        |a, b| a.mul(b),
        |a, b| format!("{:x}", kernels::mul_karatsuba(&ubig(a), &ubig(b))),
    );
}

#[test]
fn mul_toom3_vs_oracle() {
    check_binary_kernel(
        "kernel_differential::mul_toom3",
        CASES,
        thresholds(),
        |a, b| a.mul(b),
        |a, b| format!("{:x}", kernels::mul_toom3(&ubig(a), &ubig(b))),
    );
}

#[test]
fn mul_auto_dispatch_vs_oracle() {
    check_binary_kernel(
        "kernel_differential::mul_auto",
        CASES,
        thresholds(),
        |a, b| a.mul(b),
        |a, b| format!("{:x}", kernels::mul_auto(&ubig(a), &ubig(b))),
    );
}

/// Divisor generator for the reduction contexts: non-zero, with limb counts
/// biased small (the predicate loop divides huge descendant labels by
/// shallow ancestor labels) but carry-heavy in content.
fn divisor_limbs() -> Gen<Vec<u64>> {
    kernel_operand(vec![1, 2, 4]).map(|mut v| {
        v.truncate(9);
        if v.iter().all(|&l| l == 0) {
            v = vec![1];
        }
        v
    })
}

propcheck! {
    #![config(cases = 512)]

    #[test]
    fn barrett_rem_vs_oracle(
        d_limbs in divisor_limbs(),
        x_limbs in kernel_operand(vec![KARATSUBA_THRESHOLD, TOOM3_THRESHOLD]),
    ) {
        let d = ubig(&d_limbs);
        let x = ubig(&x_limbs);
        let red = Reducer::new(d.clone());
        let (_, want) = ref_from_limbs(&x_limbs).divrem(&ref_from_limbs(&d_limbs));
        prop_assert_eq!(red.rem(&x).to_decimal(), want.to_string());
        // And against the production Knuth division directly.
        prop_assert_eq!(red.rem(&x), &x % &d);
    }

    #[test]
    fn barrett_flags_exact_multiples(
        d_limbs in divisor_limbs(),
        q_limbs in kernel_operand(vec![8, 32]),
    ) {
        let d = ubig(&d_limbs);
        let exact = &ubig(&q_limbs) * &d;
        let red = Reducer::new(d.clone());
        prop_assert!(red.is_multiple_of(&exact));
        prop_assert_eq!(red.is_multiple_of(&(&exact + &UBig::one())), d.is_one());
    }

    #[test]
    fn reducer64_vs_oracle(
        d in u64s(1..=u64::MAX),
        x_limbs in kernel_operand(vec![KARATSUBA_THRESHOLD, TOOM3_THRESHOLD]),
    ) {
        let x = ubig(&x_limbs);
        let red = Reducer64::new(d);
        let (oq, orr) = ref_from_limbs(&x_limbs).divrem(&RefUint::from(d));
        let (q, r) = red.divrem(&x);
        prop_assert_eq!(format!("{q:x}"), oq.to_hex());
        prop_assert_eq!(r.to_string(), orr.to_string());
        prop_assert_eq!(red.rem(&x), x.rem_u64(d));
        prop_assert_eq!((q, UBig::from(r)), {
            let (qq, rr) = x.divrem_u64(d);
            (qq, UBig::from(rr))
        });
    }

    #[test]
    fn montgomery_pow_vs_oracle(
        m_limbs in divisor_limbs(),
        base_limbs in kernel_operand(vec![4, 8]),
        exp in u64s(0..=4096),
    ) {
        // Force the modulus odd and > 1 (Montgomery's domain).
        let mut m_limbs = m_limbs;
        m_limbs[0] |= 1;
        let m = ubig(&m_limbs);
        prop_assume!(!m.is_one());
        let base = ubig(&base_limbs);
        let exp_big = UBig::from(exp);
        let ctx = match Montgomery::new(&m) {
            Some(ctx) => ctx,
            None => return Err(xp_testkit::propcheck::CaseError::fail("odd modulus rejected")),
        };
        let got = ctx.pow(&base, &exp_big);
        let want = ref_from_limbs(&base_limbs)
            .modpow(&RefUint::from(exp), &ref_from_limbs(&m_limbs));
        prop_assert_eq!(got.to_decimal(), want.to_string());
        // The plain square-and-multiply path must agree limb for limb.
        prop_assert_eq!(got, modular::mod_pow_plain(&base, &exp_big, &m));
    }

    #[test]
    fn montgomery_mul_round_trip_vs_oracle(
        m_limbs in divisor_limbs(),
        a_limbs in kernel_operand(vec![4, 8]),
        b_limbs in kernel_operand(vec![4, 8]),
    ) {
        let mut m_limbs = m_limbs;
        m_limbs[0] |= 1;
        let m = ubig(&m_limbs);
        prop_assume!(!m.is_one());
        let (a, b) = (ubig(&a_limbs), ubig(&b_limbs));
        let ctx = match Montgomery::new(&m) {
            Some(ctx) => ctx,
            None => return Err(xp_testkit::propcheck::CaseError::fail("odd modulus rejected")),
        };
        let got = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&b)));
        let (_, want) = ref_from_limbs(&a_limbs)
            .mul(&ref_from_limbs(&b_limbs))
            .divrem(&ref_from_limbs(&m_limbs));
        prop_assert_eq!(got.to_decimal(), want.to_string());
    }
}
