//! [`DynamicScheme`] implementations for the baseline schemes.
//!
//! Each baseline carries its whole state in its labels (`State = ()`), and
//! each reports its *true* relabel cost through [`RelabelReport`]:
//!
//! * **Interval** — consumes numbering gaps when the scheme was built with
//!   one ([`IntervalScheme::with_gap`]); a dense document (gap 1, the
//!   configuration the paper measures) has no room, so order-sensitive
//!   insertions relabel from scratch — exactly the Figure 16/18 cost curve.
//!   Tail appends extend ancestors' `size` fields instead (the one cheap
//!   interval update), and deletions cost nothing: a stale, too-large
//!   `size` can never produce a false positive because the vacated order
//!   numbers are never reoccupied until an insertion reuses the gap.
//! * **Float-interval (QRS)** — midpoint subdivision between the two
//!   neighbouring boundaries; when the mantissa runs out (or an append hits
//!   a child interval packed against its parent's end) it relabels from
//!   scratch, reproducing §2's criticism.
//! * **Prefix-1 / Prefix-2 / Dewey** — positional schemes: a mutation
//!   recomputes the position-derived codes of the mutated node's sibling
//!   family and recurses only into children whose label actually changed,
//!   which is precisely "relabel the following siblings and their subtrees"
//!   (§2) with unchanged prefixes skipped at zero cost.

use crate::dewey::{DeweyLabel, DeweyScheme};
use crate::floatival::{midpoint, FloatIntervalScheme, FloatLabel};
use crate::interval::{IntervalLabel, IntervalScheme};
use crate::prefix::{prefix1_self_label, CkmCodes, Prefix1Scheme, Prefix2Scheme, PrefixLabel};
use std::cmp::Ordering;
use xp_labelkit::{
    full_relabel, graft_fragment, DynamicError, DynamicScheme, InsertPos, LabelOps, LabeledDoc,
    OrderedLabel, RelabelReport, Scheme,
};
use xp_xmltree::{NodeId, XmlTree};

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

fn prev_element_sibling(tree: &XmlTree, node: NodeId) -> Option<NodeId> {
    let mut cur = tree.prev_sibling(node);
    while let Some(n) = cur {
        if tree.is_element(n) {
            return Some(n);
        }
        cur = tree.prev_sibling(n);
    }
    None
}

fn next_element_sibling(tree: &XmlTree, node: NodeId) -> Option<NodeId> {
    let mut cur = tree.next_sibling(node);
    while let Some(n) = cur {
        if tree.is_element(n) {
            return Some(n);
        }
        cur = tree.next_sibling(n);
    }
    None
}

fn last_element_child(tree: &XmlTree, node: NodeId) -> Option<NodeId> {
    tree.element_children(node).last()
}

/// Element nodes of `frag` in preorder with their depth below the fragment
/// root and their subtree element count (self included) — the shape data
/// the gap-assignment paths need.
fn frag_shape(frag: &XmlTree) -> Vec<(NodeId, u32, u64)> {
    frag.elements()
        .map(|n| {
            let depth = frag.depth(n) as u32;
            let count = frag.element_descendants(n).count() as u64;
            (n, depth, count)
        })
        .collect()
}

/// Detach + drop labels: the delete path shared by every baseline. None of
/// them relabels on deletion — interval/float ranges stay sound with the
/// vacated numbers unoccupied, and positional codes survive position gaps
/// because they are only ever recomputed (prefix-free and order-preserving
/// either way) on the next sibling-family relabel.
fn delete_dropping_labels<L: LabelOps>(
    tree: &mut XmlTree,
    doc: &mut LabeledDoc<L>,
    target: NodeId,
) -> RelabelReport {
    let subtree: Vec<NodeId> = tree.element_descendants(target).collect();
    tree.detach(target);
    for &n in &subtree {
        doc.remove(n);
    }
    RelabelReport { removed: subtree, ..Default::default() }
}

fn cmp_by_label<L: OrderedLabel>(doc: &LabeledDoc<L>, a: NodeId, b: NodeId) -> Ordering {
    doc.label(a).doc_cmp(doc.label(b))
}

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

/// The numbering gap strictly between the end of what precedes the
/// insertion point under `parent` and the anchor itself: `(lower, upper)`
/// with every existing order outside the open interval.
fn interval_gap_before(
    tree: &XmlTree,
    doc: &LabeledDoc<IntervalLabel>,
    parent: NodeId,
    anchor: NodeId,
) -> (u64, u64) {
    let lower = match prev_element_sibling(tree, anchor) {
        Some(prev) => {
            let l = doc.label(prev);
            l.order + l.size
        }
        None => doc.label(parent).order,
    };
    (lower, doc.label(anchor).order)
}

/// End of `parent`'s current content and the first order number that must
/// stay out of reach (the next node after `parent`'s subtree in document
/// order, found by climbing to the first ancestor-or-self with a following
/// sibling). `None` means `parent`'s subtree is the document tail.
fn interval_append_bounds(
    tree: &XmlTree,
    doc: &LabeledDoc<IntervalLabel>,
    parent: NodeId,
) -> (u64, Option<u64>) {
    let pred_end = match last_element_child(tree, parent) {
        Some(last) => {
            let l = doc.label(last);
            l.order + l.size
        }
        None => doc.label(parent).order,
    };
    let mut n = parent;
    let succ = loop {
        if let Some(sib) = next_element_sibling(tree, n) {
            break Some(doc.label(sib).order);
        }
        match tree.parent(n) {
            Some(p) => n = p,
            None => break None,
        }
    };
    (pred_end, succ)
}

/// Extends ancestors' `size` fields upward from `parent` until `new_end` is
/// covered, recording each grown ancestor as relabeled. Safe by
/// construction: the caller has checked `new_end` against the successor
/// order, and every ancestor already covering `new_end` terminates the
/// walk.
fn interval_grow_ancestors(
    tree: &XmlTree,
    doc: &mut LabeledDoc<IntervalLabel>,
    parent: NodeId,
    new_end: u64,
    report: &mut RelabelReport,
) {
    let mut cur = Some(parent);
    while let Some(a) = cur {
        let l = *doc.label(a);
        if l.order + l.size >= new_end {
            break;
        }
        doc.set(a, IntervalLabel { size: new_end - l.order, ..l });
        report.relabeled.push(a);
        cur = tree.parent(a);
    }
}

impl DynamicScheme for IntervalScheme {
    type State = ();

    fn init(&self, tree: &XmlTree) -> Result<(LabeledDoc<IntervalLabel>, ()), DynamicError> {
        Ok((self.label(tree), ()))
    }

    fn insert_before(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<IntervalLabel>,
        _state: &mut (),
        anchor: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        let parent = tree.parent(anchor).ok_or(DynamicError::RootTarget(anchor))?;
        let (lower, upper) = interval_gap_before(tree, doc, parent, anchor);
        let level = doc.label(anchor).level;
        let node = tree.create_element(tag);
        tree.insert_before(anchor, node);
        if upper.saturating_sub(lower) >= 2 {
            let order = lower + (upper - lower) / 2;
            doc.set(node, IntervalLabel { order, size: 0, level });
            Ok(RelabelReport::single_insert(node))
        } else {
            Ok(full_relabel(self, tree, doc))
        }
    }

    fn insert_subtree(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<IntervalLabel>,
        _state: &mut (),
        pos: InsertPos,
        fragment: &XmlTree,
    ) -> Result<RelabelReport, DynamicError> {
        let shape = frag_shape(fragment);
        let k = shape.len() as u64;
        // (base order for the fragment root, depth offset, ancestors to grow)
        let plan = match pos {
            InsertPos::Before(anchor) => {
                let parent = tree.parent(anchor).ok_or(DynamicError::RootTarget(anchor))?;
                let (lower, upper) = interval_gap_before(tree, doc, parent, anchor);
                let level = doc.label(anchor).level;
                // k orders strictly inside (lower, upper).
                (upper.saturating_sub(lower) >= k + 1).then_some((lower + 1, level, None))
            }
            InsertPos::LastChildOf(parent) => {
                let (pred_end, succ) = interval_append_bounds(tree, doc, parent);
                let level = doc.label(parent).level + 1;
                succ.map_or(true, |s| pred_end + k < s)
                    .then_some((pred_end + 1, level, Some((parent, pred_end + k))))
            }
        };
        let created = graft_fragment(tree, pos, fragment);
        match plan {
            Some((base, base_level, grow)) => {
                let mut report = RelabelReport::new();
                for (i, (&node, &(_, depth, count))) in created.iter().zip(&shape).enumerate() {
                    doc.set(
                        node,
                        IntervalLabel {
                            order: base + i as u64,
                            size: count - 1,
                            level: base_level + depth,
                        },
                    );
                    report.inserted.push(node);
                }
                if let Some((parent, new_end)) = grow {
                    interval_grow_ancestors(tree, doc, parent, new_end, &mut report);
                }
                Ok(report)
            }
            None => Ok(full_relabel(self, tree, doc)),
        }
    }

    fn insert_parent(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<IntervalLabel>,
        _state: &mut (),
        target: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        let parent = tree.parent(target).ok_or(DynamicError::RootTarget(target))?;
        let (lower, upper) = interval_gap_before(tree, doc, parent, target);
        let target_label = *doc.label(target);
        let wrapper = tree.wrap_with_parent(target, tag);
        if upper.saturating_sub(lower) >= 2 {
            // The wrapper takes an order inside the gap and spans the
            // wrapped subtree; every wrapped node descends one level, and
            // level is part of the label, so the subtree relabels — the
            // same `subtree + 1` cost the prefix schemes pay here.
            let order = lower + (upper - lower) / 2;
            doc.set(
                wrapper,
                IntervalLabel {
                    order,
                    size: target_label.order + target_label.size - order,
                    level: target_label.level,
                },
            );
            let mut report = RelabelReport::single_insert(wrapper);
            for n in tree.element_descendants(target) {
                let l = *doc.label(n);
                doc.set(n, IntervalLabel { level: l.level + 1, ..l });
                report.relabeled.push(n);
            }
            Ok(report)
        } else {
            Ok(full_relabel(self, tree, doc))
        }
    }

    fn delete(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<IntervalLabel>,
        _state: &mut (),
        target: NodeId,
    ) -> Result<RelabelReport, DynamicError> {
        Ok(delete_dropping_labels(tree, doc, target))
    }

    fn doc_cmp(
        &self,
        doc: &LabeledDoc<IntervalLabel>,
        _state: &(),
        a: NodeId,
        b: NodeId,
    ) -> Ordering {
        cmp_by_label(doc, a, b)
    }
}

// ---------------------------------------------------------------------------
// Float-interval (QRS)
// ---------------------------------------------------------------------------

/// The open float range available immediately before `anchor`.
fn float_gap_before(
    tree: &XmlTree,
    doc: &LabeledDoc<FloatLabel>,
    parent: NodeId,
    anchor: NodeId,
) -> (f64, f64) {
    let lower = match prev_element_sibling(tree, anchor) {
        Some(prev) => doc.label(prev).end,
        None => doc.label(parent).start,
    };
    (lower, doc.label(anchor).start)
}

/// The open float range available after `parent`'s last child. The initial
/// labeling packs the last child's `end` against the parent's, so this
/// range is usually empty on untouched documents — the append path then
/// relabels, which is the honest QRS cost.
fn float_append_range(
    tree: &XmlTree,
    doc: &LabeledDoc<FloatLabel>,
    parent: NodeId,
) -> (f64, f64) {
    let p = *doc.label(parent);
    let lower = match last_element_child(tree, parent) {
        Some(last) => doc.label(last).end,
        None => midpoint(p.start, p.end),
    };
    (lower, p.end)
}

/// Recursively assigns fragment labels inside `(start, end)` the same way
/// the static scheme does, failing (returning `false`) on any mantissa
/// collapse. Labels come out in fragment preorder.
fn assign_float(
    frag: &XmlTree,
    node: NodeId,
    start: f64,
    end: f64,
    level: u32,
    out: &mut Vec<FloatLabel>,
) -> bool {
    if !(start < end) {
        return false;
    }
    out.push(FloatLabel { start, end, level });
    let kids: Vec<NodeId> = frag.element_children(node).collect();
    if kids.is_empty() {
        return true;
    }
    let inner = midpoint(start, end);
    if !(start < inner && inner < end) {
        return false;
    }
    let width = (end - inner) / kids.len() as f64;
    for (i, child) in kids.into_iter().enumerate() {
        let s = inner + width * i as f64;
        let e = inner + width * (i + 1) as f64;
        if !assign_float(frag, child, s, e, level + 1, out) {
            return false;
        }
    }
    true
}

impl DynamicScheme for FloatIntervalScheme {
    type State = ();

    fn init(&self, tree: &XmlTree) -> Result<(LabeledDoc<FloatLabel>, ()), DynamicError> {
        Ok((self.label(tree), ()))
    }

    fn insert_before(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<FloatLabel>,
        _state: &mut (),
        anchor: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        let parent = tree.parent(anchor).ok_or(DynamicError::RootTarget(anchor))?;
        let (lower, upper) = float_gap_before(tree, doc, parent, anchor);
        let level = doc.label(anchor).level;
        let node = tree.create_element(tag);
        tree.insert_before(anchor, node);
        let s = midpoint(lower, upper);
        let e = midpoint(s, upper);
        if lower < s && s < e && e < upper {
            doc.set(node, FloatLabel { start: s, end: e, level });
            Ok(RelabelReport::single_insert(node))
        } else {
            // Mantissa exhausted between the neighbours — §2's failure mode.
            Ok(full_relabel(self, tree, doc))
        }
    }

    fn insert_subtree(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<FloatLabel>,
        _state: &mut (),
        pos: InsertPos,
        fragment: &XmlTree,
    ) -> Result<RelabelReport, DynamicError> {
        let (lower, upper, base_level) = match pos {
            InsertPos::Before(anchor) => {
                let parent = tree.parent(anchor).ok_or(DynamicError::RootTarget(anchor))?;
                let (lo, up) = float_gap_before(tree, doc, parent, anchor);
                (lo, up, doc.label(anchor).level)
            }
            InsertPos::LastChildOf(parent) => {
                let (lo, up) = float_append_range(tree, doc, parent);
                (lo, up, doc.label(parent).level + 1)
            }
        };
        let mut labels = Vec::new();
        let s = midpoint(lower, upper);
        let e = midpoint(s, upper);
        let fits = lower < s
            && s < e
            && e < upper
            && assign_float(fragment, fragment.root(), s, e, base_level, &mut labels);
        let created = graft_fragment(tree, pos, fragment);
        if fits {
            let mut report = RelabelReport::new();
            for (&node, label) in created.iter().zip(labels) {
                doc.set(node, label);
                report.inserted.push(node);
            }
            Ok(report)
        } else {
            Ok(full_relabel(self, tree, doc))
        }
    }

    fn insert_parent(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<FloatLabel>,
        _state: &mut (),
        target: NodeId,
        tag: &str,
    ) -> Result<RelabelReport, DynamicError> {
        let parent = tree.parent(target).ok_or(DynamicError::RootTarget(target))?;
        let (lower, upper) = float_gap_before(tree, doc, parent, target);
        let target_label = *doc.label(target);
        let wrapper = tree.wrap_with_parent(target, tag);
        let s = midpoint(lower, upper);
        if lower < s && s < upper {
            doc.set(
                wrapper,
                FloatLabel { start: s, end: target_label.end, level: target_label.level },
            );
            let mut report = RelabelReport::single_insert(wrapper);
            for n in tree.element_descendants(target) {
                let l = *doc.label(n);
                doc.set(n, FloatLabel { level: l.level + 1, ..l });
                report.relabeled.push(n);
            }
            Ok(report)
        } else {
            Ok(full_relabel(self, tree, doc))
        }
    }

    fn delete(
        &self,
        tree: &mut XmlTree,
        doc: &mut LabeledDoc<FloatLabel>,
        _state: &mut (),
        target: NodeId,
    ) -> Result<RelabelReport, DynamicError> {
        Ok(delete_dropping_labels(tree, doc, target))
    }

    fn doc_cmp(&self, doc: &LabeledDoc<FloatLabel>, _state: &(), a: NodeId, b: NodeId) -> Ordering {
        cmp_by_label(doc, a, b)
    }
}

// ---------------------------------------------------------------------------
// Positional schemes: Prefix-1, Prefix-2, Dewey
// ---------------------------------------------------------------------------

/// A scheme whose labels are derived from sibling positions along the root
/// path. One mutation machinery serves all three: recompute the mutated
/// family's codes, recurse only where a label actually changed.
trait PositionalScheme: Scheme {
    /// Labels for `n` children of a node labeled `parent`, by position.
    fn sibling_labels(&self, parent: &Self::Label, n: usize) -> Vec<Self::Label>;
}

impl PositionalScheme for Prefix1Scheme {
    fn sibling_labels(&self, parent: &PrefixLabel, n: usize) -> Vec<PrefixLabel> {
        (1..=n).map(|i| PrefixLabel::child_of(parent, &prefix1_self_label(i))).collect()
    }
}

impl PositionalScheme for Prefix2Scheme {
    fn sibling_labels(&self, parent: &PrefixLabel, n: usize) -> Vec<PrefixLabel> {
        CkmCodes::new().take(n).map(|c| PrefixLabel::child_of(parent, &c)).collect()
    }
}

impl PositionalScheme for DeweyScheme {
    fn sibling_labels(&self, parent: &DeweyLabel, n: usize) -> Vec<DeweyLabel> {
        (1..=n).map(|i| parent.child(i as u32)).collect()
    }
}

/// Recomputes the position-derived labels of `parent`'s children; children
/// whose label is unchanged are skipped (their subtrees cannot change),
/// fresh nodes are labeled and counted as inserted, changed ones recurse.
/// This is exactly `Scheme::label` restricted to the smallest subforest the
/// mutation could have affected.
fn relabel_family<S: PositionalScheme>(
    scheme: &S,
    tree: &XmlTree,
    doc: &mut LabeledDoc<S::Label>,
    parent: NodeId,
    report: &mut RelabelReport,
) {
    let parent_label = doc.label(parent).clone();
    let kids: Vec<NodeId> = tree.element_children(parent).collect();
    let labels = scheme.sibling_labels(&parent_label, kids.len());
    for (child, label) in kids.into_iter().zip(labels) {
        match doc.get(child) {
            Some(old) if *old == label => continue,
            Some(_) => report.relabeled.push(child),
            None => report.inserted.push(child),
        }
        doc.set(child, label);
        relabel_family(scheme, tree, doc, child, report);
    }
}

/// Implements [`DynamicScheme`] for a positional scheme; the three bodies
/// are identical, so one macro keeps them that way.
macro_rules! positional_dynamic_scheme {
    ($scheme:ty) => {
        impl DynamicScheme for $scheme {
            type State = ();

            fn init(
                &self,
                tree: &XmlTree,
            ) -> Result<(LabeledDoc<Self::Label>, ()), DynamicError> {
                Ok((self.label(tree), ()))
            }

            fn insert_before(
                &self,
                tree: &mut XmlTree,
                doc: &mut LabeledDoc<Self::Label>,
                _state: &mut (),
                anchor: NodeId,
                tag: &str,
            ) -> Result<RelabelReport, DynamicError> {
                let parent = tree.parent(anchor).ok_or(DynamicError::RootTarget(anchor))?;
                let node = tree.create_element(tag);
                tree.insert_before(anchor, node);
                let mut report = RelabelReport::new();
                relabel_family(self, tree, doc, parent, &mut report);
                debug_assert!(report.inserted.contains(&node));
                Ok(report)
            }

            fn insert_subtree(
                &self,
                tree: &mut XmlTree,
                doc: &mut LabeledDoc<Self::Label>,
                _state: &mut (),
                pos: InsertPos,
                fragment: &XmlTree,
            ) -> Result<RelabelReport, DynamicError> {
                let created = graft_fragment(tree, pos, fragment);
                let parent = match tree.parent(created[0]) {
                    Some(p) => p,
                    None => return Err(DynamicError::RootTarget(created[0])),
                };
                let mut report = RelabelReport::new();
                relabel_family(self, tree, doc, parent, &mut report);
                Ok(report)
            }

            fn insert_parent(
                &self,
                tree: &mut XmlTree,
                doc: &mut LabeledDoc<Self::Label>,
                _state: &mut (),
                target: NodeId,
                tag: &str,
            ) -> Result<RelabelReport, DynamicError> {
                let parent = tree.parent(target).ok_or(DynamicError::RootTarget(target))?;
                tree.wrap_with_parent(target, tag);
                // The wrapper takes the target's sibling position (hence its
                // old code); the target re-labels one level deeper, dragging
                // its subtree — followers keep their positions and codes.
                let mut report = RelabelReport::new();
                relabel_family(self, tree, doc, parent, &mut report);
                Ok(report)
            }

            fn delete(
                &self,
                tree: &mut XmlTree,
                doc: &mut LabeledDoc<Self::Label>,
                _state: &mut (),
                target: NodeId,
            ) -> Result<RelabelReport, DynamicError> {
                // Vacated positions leave code gaps; codes stay distinct and
                // ordered, so nothing relabels until the family next grows.
                Ok(delete_dropping_labels(tree, doc, target))
            }

            fn doc_cmp(
                &self,
                doc: &LabeledDoc<Self::Label>,
                _state: &(),
                a: NodeId,
                b: NodeId,
            ) -> Ordering {
                cmp_by_label(doc, a, b)
            }
        }
    };
}

positional_dynamic_scheme!(Prefix1Scheme);
positional_dynamic_scheme!(Prefix2Scheme);
positional_dynamic_scheme!(DeweyScheme);

#[cfg(test)]
mod tests {
    use super::*;
    use xp_labelkit::LabeledStore;
    use xp_xmltree::parse;

    /// Structural oracle: ancestor/order answers from the labels must match
    /// the tree, and the mirror must label exactly the attached elements.
    fn check_against_tree<S>(store: &LabeledStore<S>)
    where
        S: DynamicScheme,
    {
        let tree = store.tree();
        let nodes: Vec<NodeId> = tree.elements().collect();
        assert_eq!(store.doc().len(), nodes.len(), "one label per attached element");
        for &x in &nodes {
            for &y in &nodes {
                assert_eq!(
                    store.doc().label(x).is_ancestor_of(store.doc().label(y)),
                    tree.is_ancestor(x, y),
                    "{}: ancestor({x},{y})",
                    store.scheme().name()
                );
            }
        }
        assert_eq!(store.ordered_nodes(), nodes, "{}: document order", store.scheme().name());
    }

    /// Drives one identical mutation script through a scheme and checks the
    /// oracle after every step.
    fn exercise<S>(scheme: S)
    where
        S: DynamicScheme + Clone,
    {
        let tree = parse("<a><b><c/><d/></b><e/><f><g/></f></a>").unwrap();
        let mut store = LabeledStore::build(scheme, tree).unwrap();
        check_against_tree(&store);

        // Order-sensitive sibling insert.
        let e = store.tree().element_children(store.tree().root()).nth(1).unwrap();
        let rep = store.insert_before(e, "n").unwrap();
        assert_eq!(rep.inserted.len() + rep.relabeled.len(), rep.labels_touched());
        check_against_tree(&store);

        // Subtree insert at the front.
        let b = store.tree().first_child(store.tree().root()).unwrap();
        let frag = parse("<x><y/><z/></x>").unwrap();
        let rep = store.insert_subtree(InsertPos::Before(b), &frag).unwrap();
        assert!(rep.inserted.len() >= 3, "fragment nodes all labeled");
        check_against_tree(&store);

        // Wrap a subtree.
        let rep = store.insert_parent(b, "wrap").unwrap();
        assert_eq!(rep.inserted.len(), 1);
        check_against_tree(&store);

        // Delete it again.
        let wrapper = store.tree().parent(b).unwrap();
        let rep = store.delete(wrapper).unwrap();
        assert!(rep.removed.len() >= 4, "wrapper + b + c + d");
        check_against_tree(&store);

        // Move a subtree to the end.
        let f = store.tree().elements().find(|&n| store.tree().tag(n) == Some("f")).unwrap();
        let root = store.tree().root();
        store.move_subtree(f, InsertPos::LastChildOf(root)).unwrap();
        check_against_tree(&store);
    }

    #[test]
    fn interval_handles_the_mutation_script() {
        exercise(IntervalScheme::dense());
        exercise(IntervalScheme::with_gap(64));
    }

    #[test]
    fn floatival_handles_the_mutation_script() {
        exercise(FloatIntervalScheme);
    }

    #[test]
    fn prefix1_handles_the_mutation_script() {
        exercise(Prefix1Scheme);
    }

    #[test]
    fn prefix2_handles_the_mutation_script() {
        exercise(Prefix2Scheme);
    }

    #[test]
    fn dewey_handles_the_mutation_script() {
        exercise(DeweyScheme);
    }

    #[test]
    fn gapped_interval_absorbs_a_middle_insert_without_relabeling() {
        let tree = parse("<a><b/><c/><d/></a>").unwrap();
        let mut store = LabeledStore::build(IntervalScheme::with_gap(16), tree).unwrap();
        let c = store.tree().element_children(store.tree().root()).nth(1).unwrap();
        let rep = store.insert_before(c, "n").unwrap();
        assert_eq!(rep.labels_touched(), 1, "the gap absorbs the insert");
        assert!(rep.relabeled.is_empty());
        check_against_tree(&store);
    }

    #[test]
    fn dense_interval_relabels_on_a_middle_insert() {
        let tree = parse("<a><b/><c/><d/></a>").unwrap();
        let mut store = LabeledStore::build(IntervalScheme::dense(), tree).unwrap();
        let c = store.tree().element_children(store.tree().root()).nth(1).unwrap();
        let rep = store.insert_before(c, "n").unwrap();
        // Static accounting: c and d shift, a's size grows, plus the new node.
        assert_eq!(rep.inserted.len(), 1);
        assert_eq!(rep.relabeled.len(), 3);
        check_against_tree(&store);
    }

    #[test]
    fn dense_interval_tail_append_only_grows_ancestors() {
        let tree = parse("<a><b><c/></b></a>").unwrap();
        let mut store = LabeledStore::build(IntervalScheme::dense(), tree).unwrap();
        let c = store.tree().elements().find(|&n| store.tree().tag(n) == Some("c")).unwrap();
        let rep = store.insert_subtree(InsertPos::LastChildOf(c), &parse("<z/>").unwrap()).unwrap();
        assert_eq!(rep.inserted.len(), 1);
        assert_eq!(rep.relabeled.len(), 3, "a, b, c sizes grow");
        check_against_tree(&store);
    }

    #[test]
    fn float_insert_before_consumes_no_relabels_until_exhaustion() {
        let tree = parse("<a><b/><c/></a>").unwrap();
        let mut store = LabeledStore::build(FloatIntervalScheme, tree).unwrap();
        // Siblings are packed contiguously, so the only float gap is the one
        // before the first child; each insert there burns ~2 mantissa bits.
        let b = store.tree().first_child(store.tree().root()).unwrap();
        let mut free_inserts = 0usize;
        for _ in 0..200 {
            let rep = store.insert_before(b, "n").unwrap();
            if rep.relabeled.is_empty() {
                free_inserts += 1;
            } else {
                break;
            }
        }
        assert!(
            (15..=60).contains(&free_inserts),
            "mantissa allows roughly 52/2 free inserts, got {free_inserts}"
        );
        check_against_tree(&store);
    }

    #[test]
    fn prefix2_middle_insert_relabels_following_sibling_subtrees() {
        let tree = parse("<a><b><x/><y/></b><c><z/></c></a>").unwrap();
        let mut store = LabeledStore::build(Prefix2Scheme, tree).unwrap();
        let b = store.tree().first_child(store.tree().root()).unwrap();
        let rep = store.insert_before(b, "n").unwrap();
        assert_eq!(rep.inserted.len(), 1);
        assert_eq!(rep.relabeled.len(), 5, "b, x, y, c, z all shift");
        check_against_tree(&store);
    }

    #[test]
    fn prefix2_tail_append_is_free() {
        let tree = parse("<a><b/><c/></a>").unwrap();
        let mut store = LabeledStore::build(Prefix2Scheme, tree).unwrap();
        let root = store.tree().root();
        let rep = store.insert_subtree(InsertPos::LastChildOf(root), &parse("<z/>").unwrap()).unwrap();
        assert_eq!(rep.labels_touched(), 1, "appending a sibling is free for prefix schemes");
        check_against_tree(&store);
    }

    #[test]
    fn dewey_wrap_costs_subtree_plus_one() {
        let tree = parse("<a><b><c/><d/></b><e/></a>").unwrap();
        let mut store = LabeledStore::build(DeweyScheme, tree).unwrap();
        let b = store.tree().first_child(store.tree().root()).unwrap();
        let rep = store.insert_parent(b, "wrap").unwrap();
        assert_eq!(rep.inserted.len(), 1);
        assert_eq!(rep.relabeled.len(), 3, "b, c, d gain a component");
        check_against_tree(&store);
    }

    #[test]
    fn positional_delete_then_insert_recovers_from_position_gaps() {
        // Deleting a middle sibling leaves a code gap; the next insert must
        // recompute codes without minting duplicates or breaking order.
        for_each_positional(|scheme| {
            let tree = parse("<a><b/><c/><d/><e/></a>").unwrap();
            let mut store = LabeledStore::build(scheme, tree).unwrap();
            let c = store.tree().element_children(store.tree().root()).nth(1).unwrap();
            store.delete(c).unwrap();
            check_against_tree(&store);
            let e = store.tree().last_child(store.tree().root()).unwrap();
            store.insert_before(e, "n").unwrap();
            check_against_tree(&store);
        });
    }

    fn for_each_positional(f: impl Fn(Prefix2Scheme) + Copy) {
        // Prefix-2 is the sharpest case (variable-length codes); Prefix-1
        // and Dewey share the machinery and are covered by `exercise`.
        f(Prefix2Scheme);
    }
}
