//! The binary prefix labeling schemes: Prefix-1 (basic) and Prefix-2
//! (Cohen–Kaplan–Milo \[7\]), §2 / §3.1 of the paper.

use std::cmp::Ordering;
use xp_labelkit::codec::{read_bytes, read_varint, write_bytes, write_varint, CodecError};
use xp_labelkit::{BitString, LabelCodec, LabelOps, LabeledDoc, OrderedLabel, Scheme};
use xp_xmltree::{NodeId, XmlTree};

/// A prefix label: the concatenation of sibling self-labels along the root
/// path, plus the node's depth (number of self-labels concatenated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixLabel {
    bits: BitString,
    level: usize,
}

impl PrefixLabel {
    /// The root's empty label.
    pub fn root() -> Self {
        PrefixLabel { bits: BitString::new(), level: 0 }
    }

    /// Child label: parent's bits ++ the child's self-label.
    pub fn child_of(parent: &PrefixLabel, self_label: &BitString) -> Self {
        PrefixLabel { bits: parent.bits.concat(self_label), level: parent.level + 1 }
    }

    /// The label's bits.
    pub fn bits(&self) -> &BitString {
        &self.bits
    }

    /// The node's depth (number of concatenated self-labels).
    pub fn level(&self) -> usize {
        self.level
    }
}

impl LabelCodec for PrefixLabel {
    fn encode(&self, out: &mut Vec<u8>) {
        let (len, bytes) = self.bits.to_raw_parts();
        write_varint(out, len as u64);
        write_bytes(out, bytes);
        write_varint(out, self.level as u64);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = read_varint(input)? as usize;
        let bytes = read_bytes(input)?;
        if bytes.len() < len.div_ceil(8) {
            return Err(CodecError::Corrupt("bit string shorter than its length"));
        }
        let bits = BitString::from_raw_parts(len, bytes);
        let level = read_varint(input)? as usize;
        Ok(PrefixLabel { bits, level })
    }
}

impl LabelOps for PrefixLabel {
    /// The prefix schemes' ancestor test: proper-prefix containment.
    fn is_ancestor_of(&self, other: &Self) -> bool {
        self.bits.is_proper_prefix_of(&other.bits)
    }

    fn is_parent_of(&self, other: &Self) -> bool {
        self.is_ancestor_of(other) && other.level == self.level + 1
    }

    fn size_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    fn level_hint(&self) -> Option<usize> {
        Some(self.level)
    }
}

impl OrderedLabel for PrefixLabel {
    /// Prefix-respecting lexicographic order is preorder document order for
    /// both sibling-code families (their sibling codes are assigned in
    /// increasing binary order).
    fn doc_cmp(&self, other: &Self) -> Ordering {
        self.bits.cmp(&other.bits)
    }
}

/// Yields the Prefix-1 sibling self-labels: `0`, `10`, `110`, `1110`, …
/// (the i-th child is `1^(i-1) 0`).
pub fn prefix1_self_label(position: usize) -> BitString {
    assert!(position >= 1, "sibling positions are 1-indexed");
    let mut b = BitString::new();
    for _ in 0..position - 1 {
        b.push(true);
    }
    b.push(false);
    b
}

/// Iterator over the Prefix-2 (CKM) sibling codes:
/// `0, 10, 1100, 1101, 1110, 11110000, …` — increment the binary value; on
/// reaching all-ones, double the length by appending that many zeros (§2).
///
/// ```
/// use xp_baselines::prefix::CkmCodes;
/// let codes: Vec<String> = CkmCodes::new().take(4).map(|c| c.to_string()).collect();
/// assert_eq!(codes, ["0", "10", "1100", "1101"]);
/// ```
#[derive(Debug, Clone)]
pub struct CkmCodes {
    current: Option<BitString>,
}

impl CkmCodes {
    /// Starts before the first code.
    pub fn new() -> Self {
        CkmCodes { current: None }
    }
}

impl Default for CkmCodes {
    fn default() -> Self {
        Self::new()
    }
}

impl Iterator for CkmCodes {
    type Item = BitString;

    fn next(&mut self) -> Option<BitString> {
        let next = match &self.current {
            None => BitString::from_bits("0"),
            Some(cur) => {
                let mut bits: Vec<bool> = cur.iter().collect();
                // Binary increment (cannot overflow: all-ones was doubled
                // into `1…10…0` on the step that produced it).
                for bit in bits.iter_mut().rev() {
                    if *bit {
                        *bit = false;
                    } else {
                        *bit = true;
                        break;
                    }
                }
                let mut out = BitString::new();
                for &b in &bits {
                    out.push(b);
                }
                if bits.iter().all(|&b| b) {
                    // All ones: double the length with zeros.
                    for _ in 0..bits.len() {
                        out.push(false);
                    }
                }
                out
            }
        };
        self.current = Some(next.clone());
        Some(next)
    }
}

/// The basic prefix scheme (Prefix-1).
#[derive(Debug, Clone, Default)]
pub struct Prefix1Scheme;

/// The CKM optimized prefix scheme (Prefix-2) — the configuration the
/// paper's experiments use.
#[derive(Debug, Clone, Default)]
pub struct Prefix2Scheme;

fn label_with<F>(tree: &XmlTree, mut codes_for: F) -> LabeledDoc<PrefixLabel>
where
    F: FnMut(usize) -> Vec<BitString>,
{
    let mut doc = LabeledDoc::new(tree);
    doc.set(tree.root(), PrefixLabel::root());
    let mut stack = vec![tree.root()];
    while let Some(node) = stack.pop() {
        let parent_label = doc.label(node).clone();
        let kids: Vec<NodeId> = tree.element_children(node).collect();
        let codes = codes_for(kids.len());
        for (child, code) in kids.iter().zip(&codes) {
            doc.set(*child, PrefixLabel::child_of(&parent_label, code));
        }
        // Push in reverse so preorder pops left to right (cosmetic: labels
        // are position-determined either way).
        for child in kids.into_iter().rev() {
            stack.push(child);
        }
    }
    // Rebuild in document order for consumers relying on iteration order.
    let mut ordered = LabeledDoc::new(tree);
    for node in tree.elements() {
        ordered.set(node, doc.label(node).clone());
    }
    ordered
}

impl Scheme for Prefix1Scheme {
    type Label = PrefixLabel;

    fn name(&self) -> &'static str {
        "Prefix-1"
    }

    fn label(&self, tree: &XmlTree) -> LabeledDoc<PrefixLabel> {
        label_with(tree, |n| (1..=n).map(prefix1_self_label).collect())
    }
}

impl Scheme for Prefix2Scheme {
    type Label = PrefixLabel;

    fn name(&self) -> &'static str {
        "Prefix-2"
    }

    fn label(&self, tree: &XmlTree) -> LabeledDoc<PrefixLabel> {
        label_with(tree, |n| CkmCodes::new().take(n).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::parse;

    fn check_exhaustively<S: Scheme<Label = PrefixLabel>>(src: &str, scheme: &S) {
        let tree = parse(src).unwrap();
        let doc = scheme.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                assert_eq!(
                    doc.label(x).is_ancestor_of(doc.label(y)),
                    tree.is_ancestor(x, y),
                    "{}: ancestor({x},{y}) in {src}",
                    scheme.name()
                );
                assert_eq!(
                    doc.label(x).is_parent_of(doc.label(y)),
                    tree.parent(y) == Some(x),
                    "{}: parent({x},{y}) in {src}",
                    scheme.name()
                );
            }
        }
        // Lexicographic order == document order.
        for w in nodes.windows(2) {
            assert_eq!(
                doc.label(w[0]).doc_cmp(doc.label(w[1])),
                Ordering::Less,
                "{}: doc order", scheme.name()
            );
        }
    }

    #[test]
    fn prefix1_self_labels() {
        assert_eq!(prefix1_self_label(1).to_string(), "0");
        assert_eq!(prefix1_self_label(2).to_string(), "10");
        assert_eq!(prefix1_self_label(5).to_string(), "11110");
    }

    #[test]
    fn ckm_sequence_matches_the_paper() {
        // §2: "the labels for sibling nodes will be as follows: 0, 10,
        // 1100, 1101, 1110, 11110000".
        let codes: Vec<String> = CkmCodes::new().take(6).map(|b| b.to_string()).collect();
        assert_eq!(codes, ["0", "10", "1100", "1101", "1110", "11110000"]);
    }

    #[test]
    fn ckm_codes_are_prefix_free_and_ordered() {
        let codes: Vec<BitString> = CkmCodes::new().take(64).collect();
        for (i, a) in codes.iter().enumerate() {
            for (j, b) in codes.iter().enumerate() {
                if i != j {
                    assert!(!a.is_proper_prefix_of(b), "{a} prefixes {b}");
                }
                if i < j {
                    assert_eq!(a.cmp(b), Ordering::Less, "{a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn ckm_code_length_obeys_formula2() {
        // Max self-label size for F siblings is ≤ 4⌈log₂ F⌉ (for F ≥ 2).
        let codes: Vec<BitString> = CkmCodes::new().take(1000).collect();
        for f in [2usize, 4, 10, 16, 100, 1000] {
            let max_len = codes[..f].iter().map(|c| c.len()).max().unwrap() as u64;
            let bound = 4 * (f as f64).log2().ceil() as u64;
            assert!(max_len <= bound, "F={f}: {max_len} > {bound}");
        }
    }

    #[test]
    fn both_schemes_are_exact_on_varied_shapes() {
        for src in [
            "<a/>",
            "<a><b/></a>",
            "<a><b><c/><d/></b><e><f><g/></f></e><h/></a>",
            "<a><b/><c/><d/><e/><f/><g/><h/><i/><j/><k/><l/><m/></a>", // F = 12
        ] {
            check_exhaustively(src, &Prefix1Scheme);
            check_exhaustively(src, &Prefix2Scheme);
        }
    }

    #[test]
    fn section2_ambiguity_example_is_resolved() {
        // The paper's motivating bug: integer prefix labels "2"+"11" vs
        // "21"+"1" collide as "211". Binary prefix-free codes cannot: build
        // a node with 11 children under child 2, and 1 child under child 21
        // of a wide root, and check all labels are distinct.
        let mut src = String::from("<r>");
        for i in 0..21 {
            if i == 1 {
                src.push_str("<c2>");
                for _ in 0..11 {
                    src.push_str("<x/>");
                }
                src.push_str("</c2>");
            } else if i == 20 {
                src.push_str("<c21><y/></c21>");
            } else {
                src.push_str("<c/>");
            }
        }
        src.push_str("</r>");
        let tree = parse(&src).unwrap();
        for doc in [Prefix1Scheme.label(&tree), Prefix2Scheme.label(&tree)] {
            let mut seen = std::collections::HashSet::new();
            for (_, l) in doc.iter() {
                assert!(seen.insert(l.bits().to_string()), "duplicate label {}", l.bits());
            }
        }
    }

    #[test]
    fn prefix1_grows_linearly_with_fanout_prefix2_logarithmically() {
        let mut src = String::from("<r>");
        for _ in 0..50 {
            src.push_str("<c/>");
        }
        src.push_str("</r>");
        let tree = parse(&src).unwrap();
        let p1 = Prefix1Scheme.label(&tree).size_stats().max_bits;
        let p2 = Prefix2Scheme.label(&tree).size_stats().max_bits;
        assert_eq!(p1, 50, "1^49 0");
        assert!(p2 <= 24, "CKM stays near 4·log₂(50) ≈ 23, got {p2}");
    }

    #[test]
    fn codec_round_trips_prefix_documents() {
        use xp_labelkit::codec::{decode_doc, encode_doc};
        let tree = parse("<a><b><c/><d/></b><e/><f/><g/><h/><i/><j/></a>").unwrap();
        for doc in [Prefix1Scheme.label(&tree), Prefix2Scheme.label(&tree)] {
            let decoded = decode_doc::<PrefixLabel>(&tree, &encode_doc(&doc)).unwrap();
            for node in tree.elements() {
                assert_eq!(decoded.label(node), doc.label(node), "{node}");
            }
        }
    }

    #[test]
    fn sibling_insertion_at_end_changes_nothing() {
        let mut tree = parse("<a><b/><c/></a>").unwrap();
        let before = Prefix2Scheme.label(&tree);
        let c = tree.last_child(tree.root()).unwrap();
        let z = tree.create_element("z");
        tree.insert_after(c, z);
        let after = Prefix2Scheme.label(&tree);
        let diff = before.diff_count(&after);
        assert_eq!(diff.changed, 0, "appending a sibling is free for prefix schemes");
        assert_eq!(diff.new_count, 1);
    }

    #[test]
    fn ordered_insertion_relabels_following_sibling_subtrees() {
        // Fig 18's cost driver: inserting BETWEEN siblings shifts every
        // following sibling's code, relabeling their whole subtrees.
        let mut tree = parse("<a><b><x/><y/></b><c><z/></c></a>").unwrap();
        let before = Prefix2Scheme.label(&tree);
        let b = tree.first_child(tree.root()).unwrap();
        let new = tree.create_element("n");
        tree.insert_before(b, new);
        let after = Prefix2Scheme.label(&tree);
        let diff = before.diff_count(&after);
        assert_eq!(diff.changed, 5, "b, x, y, c, z all shift");
        assert_eq!(diff.new_count, 1);
    }
}
