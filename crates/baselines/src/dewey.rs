//! Dewey order labeling \[15\] (§2: "The Dewey approach … achieves a good
//! tradeoff between query performance and dynamic updates").

use std::cmp::Ordering;
use xp_labelkit::codec::{read_varint, write_varint, CodecError};
use xp_labelkit::{LabelCodec, LabelOps, LabeledDoc, OrderedLabel, Scheme};
use xp_xmltree::{NodeId, XmlTree};

/// A Dewey label: the vector of 1-based sibling ordinals on the root path
/// (the root's label is the empty vector).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeweyLabel(Vec<u32>);

impl DeweyLabel {
    /// The root label.
    pub fn root() -> Self {
        DeweyLabel(Vec::new())
    }

    /// Builds from explicit components.
    pub fn from_components(c: Vec<u32>) -> Self {
        DeweyLabel(c)
    }

    /// The components.
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Child label with the given 1-based ordinal.
    pub fn child(&self, ordinal: u32) -> Self {
        let mut c = self.0.clone();
        c.push(ordinal);
        DeweyLabel(c)
    }
}

impl std::fmt::Display for DeweyLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            return write!(f, "ε");
        }
        let parts: Vec<String> = self.0.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join("."))
    }
}

impl LabelOps for DeweyLabel {
    fn is_ancestor_of(&self, other: &Self) -> bool {
        self.0.len() < other.0.len() && other.0.starts_with(&self.0)
    }

    fn is_parent_of(&self, other: &Self) -> bool {
        other.0.len() == self.0.len() + 1 && other.0.starts_with(&self.0)
    }

    /// Components stored at their own width (the delimiter overhead the
    /// paper notes for "2,11"-style labels is what the binary prefix
    /// schemes avoid; we charge each component its bit width).
    fn size_bits(&self) -> u64 {
        self.0.iter().map(|&c| u64::from(32 - c.max(1).leading_zeros())).sum()
    }

    fn level_hint(&self) -> Option<usize> {
        Some(self.0.len())
    }
}

impl OrderedLabel for DeweyLabel {
    /// Component-wise order with "prefix first" — preorder document order.
    fn doc_cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl LabelCodec for DeweyLabel {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(out, self.0.len() as u64);
        for &c in &self.0 {
            write_varint(out, u64::from(c));
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = read_varint(input)? as usize;
        let mut components = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            let c = u32::try_from(read_varint(input)?)
                .map_err(|_| CodecError::Corrupt("ordinal exceeds u32"))?;
            components.push(c);
        }
        Ok(DeweyLabel(components))
    }
}

/// The Dewey labeling scheme.
#[derive(Debug, Clone, Default)]
pub struct DeweyScheme;

impl Scheme for DeweyScheme {
    type Label = DeweyLabel;

    fn name(&self) -> &'static str {
        "Dewey"
    }

    fn label(&self, tree: &XmlTree) -> LabeledDoc<DeweyLabel> {
        let mut doc = LabeledDoc::new(tree);
        // Preorder walk carrying the label, so insertion order is document
        // order (children pushed reversed).
        let mut stack: Vec<(NodeId, DeweyLabel)> = vec![(tree.root(), DeweyLabel::root())];
        while let Some((node, label)) = stack.pop() {
            let kids: Vec<NodeId> = tree.element_children(node).collect();
            for (i, child) in kids.iter().enumerate().rev() {
                stack.push((*child, label.child(i as u32 + 1)));
            }
            doc.set(node, label);
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xp_xmltree::parse;

    #[test]
    fn labels_are_sibling_paths() {
        let tree = parse("<a><b><c/><d/></b><e/></a>").unwrap();
        let doc = DeweyScheme.label(&tree);
        let texts: Vec<String> = tree.elements().map(|n| doc.label(n).to_string()).collect();
        assert_eq!(texts, ["ε", "1", "1.1", "1.2", "2"]);
    }

    #[test]
    fn ancestor_and_parent_tests_are_exact() {
        let tree = parse("<a><b><c/><d/></b><e><f><g/></f></e></a>").unwrap();
        let doc = DeweyScheme.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for &x in &nodes {
            for &y in &nodes {
                assert_eq!(doc.label(x).is_ancestor_of(doc.label(y)), tree.is_ancestor(x, y));
                assert_eq!(doc.label(x).is_parent_of(doc.label(y)), tree.parent(y) == Some(x));
            }
        }
    }

    #[test]
    fn doc_cmp_is_document_order() {
        let tree = parse("<a><b><c/><d/></b><e><f/></e></a>").unwrap();
        let doc = DeweyScheme.label(&tree);
        let nodes: Vec<NodeId> = tree.elements().collect();
        for w in nodes.windows(2) {
            assert_eq!(doc.label(w[0]).doc_cmp(doc.label(w[1])), Ordering::Less);
        }
    }

    #[test]
    fn sizes_charge_component_widths() {
        let l = DeweyLabel::from_components(vec![1, 11, 3]);
        assert_eq!(l.size_bits(), 1 + 4 + 2);
        assert_eq!(DeweyLabel::root().size_bits(), 0);
    }

    #[test]
    fn display_matches_dewey_notation() {
        assert_eq!(DeweyLabel::from_components(vec![2, 11]).to_string(), "2.11");
        // The paper's §2 ambiguity: "2,11" vs "21,1" stay distinct as vectors.
        let a = DeweyLabel::from_components(vec![2, 11]);
        let b = DeweyLabel::from_components(vec![21, 1]);
        assert_ne!(a, b);
        assert!(!a.is_ancestor_of(&b));
    }

    #[test]
    fn codec_round_trips_documents() {
        use xp_labelkit::codec::{decode_doc, encode_doc};
        let tree = parse("<a><b><c/><d/></b><e/></a>").unwrap();
        let doc = DeweyScheme.label(&tree);
        let decoded = decode_doc::<DeweyLabel>(&tree, &encode_doc(&doc)).unwrap();
        for node in tree.elements() {
            assert_eq!(decoded.label(node), doc.label(node));
        }
    }

    #[test]
    fn ordered_insertion_shifts_following_siblings() {
        let mut tree = parse("<a><b/><c/><d/></a>").unwrap();
        let before = DeweyScheme.label(&tree);
        let c = tree.element_children(tree.root()).nth(1).unwrap();
        let n = tree.create_element("n");
        tree.insert_before(c, n);
        let after = DeweyScheme.label(&tree);
        let diff = before.diff_count(&after);
        assert_eq!(diff.changed, 2, "c and d shift ordinals");
        assert_eq!(diff.new_count, 1);
    }
}
